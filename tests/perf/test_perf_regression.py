"""Perf-regression tier — opt in with ``pytest tests/perf --perf``.

Two kinds of guard:

* **Throughput floors** (`floors.json`): hard minimums for the simulation
  hot path and the sweep runner's overlap. Floors carry large headroom
  over the calibrated reference (see the file's comment), so they gate
  real regressions — a reverted optimization, an accidental O(n) in the
  event loop — not machine speed.
* **Zero allocation growth**: the pooled event path must stop creating
  handles once warm. This one is exact, not a floor: a single leaked
  allocation per event is a bug regardless of how fast the box is.

Every test prints its measurement so re-calibrating floors is one run.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.sim.kernel import Kernel

FLOORS = json.loads((pathlib.Path(__file__).parent / "floors.json").read_text())

pytestmark = pytest.mark.perf


def _floor(metric: str) -> float:
    return float(FLOORS[metric]["floor"])


class TestThroughputFloors:
    def test_kernel_event_throughput(self):
        kernel = Kernel()

        def repost() -> None:
            kernel.post_at(kernel.now + 1e-6, repost)

        for _ in range(8):
            kernel.post_at(0.0, repost)
        kernel.run(max_events=20_000)  # warm-up: pool + caches
        start = time.perf_counter()
        processed = kernel.run(max_events=200_000)
        elapsed = time.perf_counter() - start
        rate = processed / elapsed
        print(f"\nkernel_events_per_s = {rate:,.0f}")
        assert rate >= _floor("kernel_events_per_s")

    def test_rrt_scenario_throughput(self):
        from repro.cluster.scenarios import rrt_scenario

        rrt_scenario("sysnet", "write", samples=40, seed=1)  # warm imports
        start = time.perf_counter()
        result = rrt_scenario("sysnet", "write", samples=400, seed=1)
        elapsed = time.perf_counter() - start
        rate = result.total_requests / elapsed
        print(f"\nrrt_sysnet_write_req_per_s = {rate:,.0f}")
        assert rate >= _floor("rrt_sysnet_write_req_per_s")

    def test_sweep_overlap_speedup(self):
        """The runner must overlap runs: 12 sleep-bound runs on 4 workers
        finish in far less than the serial sum. Sleeps (not spins) so the
        floor holds on single-core CI boxes — this measures the scheduler,
        not the core count."""
        from repro.parallel import RunSpec, SweepOptions, run_sweep

        specs = [
            RunSpec(task="echo", key=f"sleep/{i:02d}", params={"sleep": 0.1, "i": i})
            for i in range(12)
        ]
        sweep = run_sweep(specs, SweepOptions(workers=4))
        assert sweep.ok
        busy = sum(record.wall for record in sweep.records)
        speedup = busy / sweep.wall
        print(f"\nsweep_overlap_speedup = {speedup:.2f} "
              f"(busy {busy:.2f}s / wall {sweep.wall:.2f}s)")
        assert speedup >= _floor("sweep_overlap_speedup")


class TestProfilerOverhead:
    """The sim-profiler's contract: zero cost when off, bounded when on."""

    def test_profiling_off_is_the_null_object_everywhere(self):
        """An unprofiled run must never construct profiler state: every
        layer shares the NULL_PROFILER singleton and no FrameStat is
        allocated anywhere in the process during the run. Exact, not a
        floor — one stray allocation means a hook lost its guard."""
        import gc

        from repro.client.workload import single_kind_steps
        from repro.cluster.harness import Cluster, ClusterSpec
        from repro.net.profiles import get_profile
        from repro.obs.prof import NULL_PROFILER, FrameStat
        from repro.types import RequestKind

        spec = ClusterSpec(profile=get_profile("sysnet"), seed=1)
        steps = [single_kind_steps(RequestKind.WRITE, 100)]
        gc.collect()
        stats_before = sum(
            1 for obj in gc.get_objects() if isinstance(obj, FrameStat)
        )
        cluster = Cluster(spec, steps).run().drain()
        gc.collect()
        stats_after = sum(
            1 for obj in gc.get_objects() if isinstance(obj, FrameStat)
        )
        print(f"\nFrameStat allocations during unprofiled run = "
              f"{stats_after - stats_before}")
        assert stats_after - stats_before == 0
        assert cluster.profiler is NULL_PROFILER
        assert cluster.kernel.profiler is NULL_PROFILER
        assert cluster.world.profiler is NULL_PROFILER
        assert all(
            replica.profiler is NULL_PROFILER
            for replica in cluster.replicas.values()
        )

    def test_profiled_run_host_overhead_bounded(self):
        """Profiling on must stay under ~30% host overhead (target <10%
        on quiet machines; the bound carries CI-noise headroom)."""
        from repro.cluster.scenarios import rrt_scenario

        def once(profiling: bool) -> float:
            start = time.perf_counter()
            rrt_scenario("sysnet", "write", samples=300, seed=1,
                         profiling=profiling)
            return time.perf_counter() - start

        rrt_scenario("sysnet", "write", samples=40, seed=1)  # warm imports
        # Paired design: each bare run is immediately followed by a
        # profiled run, and the verdict is the median of the per-pair
        # ratios. Machine-speed drift between batches then cancels out
        # instead of masquerading as profiler overhead.
        ratios = sorted(
            once(profiling=True) / once(profiling=False) for _ in range(9)
        )
        ratio = ratios[len(ratios) // 2]
        print(f"\nprofiled/bare host-time ratio (median of pairs) = "
              f"{ratio:.3f} (pairs: {', '.join(f'{r:.2f}' for r in ratios)})")
        assert ratio < 1.35


class TestZeroAllocationGrowth:
    def test_pooled_event_path_allocates_nothing_when_warm(self):
        """Steady-state post_at traffic must recycle every handle."""
        kernel = Kernel()

        def repost() -> None:
            kernel.post_at(kernel.now + 1e-6, repost)

        for _ in range(16):
            kernel.post_at(0.0, repost)
        kernel.run(max_events=1_000)  # warm-up allocates the pool
        warm = kernel.handles_created
        kernel.run(max_events=100_000)
        grown = kernel.handles_created - warm
        print(f"\nhandles created after warm-up = {grown}")
        assert grown == 0

    def test_simulation_run_allocation_plateau(self):
        """A full cluster run's handle count is dominated by held timers,
        not deliveries: handles scale far slower than events processed."""
        from repro.client.workload import single_kind_steps
        from repro.cluster.harness import Cluster, ClusterSpec
        from repro.net.profiles import get_profile
        from repro.types import RequestKind

        def handles_per_event(samples: int) -> tuple[int, int]:
            spec = ClusterSpec(profile=get_profile("sysnet"), seed=1)
            steps = [single_kind_steps(RequestKind.WRITE, samples)]
            cluster = Cluster(spec, steps)
            cluster.run()
            return cluster.kernel.handles_created, cluster.kernel.events_processed

        handles_small, events_small = handles_per_event(50)
        handles_big, events_big = handles_per_event(400)
        extra_handles = handles_big - handles_small
        extra_events = events_big - events_small
        ratio = extra_handles / extra_events
        print(f"\nmarginal handles per event = {ratio:.3f}")
        # Deliveries (the bulk of events) must ride the pool; only timers
        # and per-request scheduling may allocate. Without pooling this
        # ratio sits near 1.0.
        assert ratio < 0.6
