"""Perf guard for the whole-program analyzer — opt in with ``--perf``.

The ISSUE budget: a cold project scan of ``src/`` must finish in under
10 s and a warm (cached) scan in under 2 s, and the report — including
the ``--graph json`` export — must be byte-identical across
PYTHONHASHSEED values.  Wall-clock ceilings are deliberately generous
(the calibrated cold scan is well under 2 s); they gate accidental
quadratic blowups in the index or call-graph build, not machine speed.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

COLD_BUDGET_S = 10.0
WARM_BUDGET_S = 2.0


def _run_lint(extra: list[str], *, seed: str = "0") -> subprocess.CompletedProcess:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(SRC), *extra],
        capture_output=True,
        env={"PYTHONPATH": str(SRC), "PYTHONHASHSEED": seed},
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc


class TestAnalyzerWallClock:
    def test_cold_and_warm_scan_budgets(self, tmp_path):
        cache = tmp_path / "lint-cache.json"

        start = time.perf_counter()
        _run_lint(["--cache", str(cache)])
        cold = time.perf_counter() - start

        start = time.perf_counter()
        proc = _run_lint(["--cache", str(cache)])
        warm = time.perf_counter() - start

        print(f"cold scan: {cold:.2f}s (budget {COLD_BUDGET_S}s), "
              f"warm scan: {warm:.2f}s (budget {WARM_BUDGET_S}s)")
        assert "reindexed 0/" in proc.stderr.decode()
        assert cold < COLD_BUDGET_S
        assert warm < WARM_BUDGET_S


class TestAnalyzerHashSeedStability:
    def test_report_and_graph_export_stable_across_seeds(self):
        for extra in (["--format", "json"], ["--graph", "json"]):
            outputs = [_run_lint(extra, seed=seed).stdout for seed in ("1", "987")]
            assert outputs[0] == outputs[1], f"unstable output for {extra}"
        document = json.loads(outputs[0])
        assert document["call_edges"], "graph export must not be empty"
