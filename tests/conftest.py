"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--perf",
        action="store_true",
        default=False,
        help="run the perf-regression tier (tests marked 'perf')",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    """The perf tier is opt-in: wall-clock floors are meaningless on a
    loaded laptop, so plain ``pytest`` never runs them."""
    if config.getoption("--perf"):
        return
    skip_perf = pytest.mark.skip(reason="perf tier: opt in with --perf")
    for item in items:
        if "perf" in item.keywords:
            item.add_marker(skip_perf)

from repro.net.latency import ConstantLatency
from repro.net.link import LinkSpec
from repro.net.profiles import NetworkProfile
from repro.net.topology import Topology
from repro.sim.cpu import CpuProfile


def _flat_builder(replicas, clients):
    topo = Topology(default=LinkSpec(latency=ConstantLatency(1e-3), jitter_reorder=False))
    topo.place_all(list(replicas), "site")
    topo.place_all(list(clients), "site")
    return topo


def make_test_profile(latency: float = 1e-3) -> NetworkProfile:
    """A featureless profile for protocol-behaviour tests: constant
    ``latency`` everywhere, free CPUs, no jitter — so assertions about
    message counts and orderings are exact."""

    def builder(replicas, clients):
        topo = Topology(
            default=LinkSpec(latency=ConstantLatency(latency), jitter_reorder=False)
        )
        topo.place_all(list(replicas), "site")
        topo.place_all(list(clients), "site")
        return topo

    return NetworkProfile(
        name="test",
        description="flat constant-latency test profile",
        replica_cpu=CpuProfile(),
        client_cpu=CpuProfile(),
        paper_rrt={},
        _builder=builder,
        per_connection_overhead=0.0,
    )


@pytest.fixture
def flat_profile() -> NetworkProfile:
    return make_test_profile()


@pytest.fixture
def fast_profile() -> NetworkProfile:
    """Sub-millisecond profile for tests that run many requests."""
    return make_test_profile(latency=50e-6)
