"""Model-based property tests: KVStoreService against a plain dict, and
undo records as exact inverses."""

from __future__ import annotations

import random

from hypothesis import given, strategies as st

from repro.services.base import ExecutionContext
from repro.services.kvstore import KVStoreService

keys = st.sampled_from(["a", "b", "c", "d"])
values = st.integers(min_value=0, max_value=9)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, values),
        st.tuples(st.just("delete"), keys),
        st.tuples(st.just("get"), keys),
        st.tuples(st.just("cas"), keys, values, values),
    ),
    max_size=60,
)


def ctx():
    return ExecutionContext(rng=random.Random(0), now=0.0)


def model_apply(model: dict, op):
    kind = op[0]
    if kind == "put":
        prev = model.get(op[1])
        model[op[1]] = op[2]
        return prev
    if kind == "delete":
        return model.pop(op[1], None)
    if kind == "get":
        return model.get(op[1])
    if kind == "cas":
        if model.get(op[1]) == op[2]:
            model[op[1]] = op[3]
            return True
        return False
    raise AssertionError(op)


@given(ops=operations)
def test_matches_dict_model(ops):
    service = KVStoreService()
    model: dict = {}
    for op in ops:
        reply = service.execute(op, ctx()).reply
        expected = model_apply(model, op)
        assert reply == expected
        assert service.data == model


@given(ops=operations)
def test_undo_is_exact_inverse(ops):
    service = KVStoreService()
    for op in ops:
        before = dict(service.data)
        result = service.execute(op, ctx())
        if result.undo is not None:
            result.undo()
            assert service.data == before
            # Redo for the next iteration's starting point.
            service.execute(op, ctx())


@given(ops=operations)
def test_delta_stream_replicates(ops):
    leader, backup = KVStoreService(), KVStoreService()
    for op in ops:
        result = leader.execute(op, ctx())
        if result.delta is not None:
            backup.apply_delta(result.delta)
    assert backup.data == leader.data


@given(ops=operations)
def test_snapshot_restore_identity(ops):
    service = KVStoreService()
    for op in ops:
        service.execute(op, ctx())
    clone = KVStoreService()
    clone.restore(service.snapshot())
    assert clone.data == service.data
    assert clone.state_fingerprint() == service.state_fingerprint()
