"""Property tests: ballot / proposal-number ordering is a total order."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.ballot import Ballot, ProposalNumber

ballots = st.builds(
    Ballot,
    round=st.integers(min_value=0, max_value=1000),
    leader=st.sampled_from(["r0", "r1", "r2", "r3"]),
)
pns = st.builds(
    ProposalNumber, ballot=ballots, instance=st.integers(min_value=1, max_value=10_000)
)


@given(a=ballots, b=ballots)
def test_ballot_trichotomy(a, b):
    assert (a < b) + (b < a) + (a == b) == 1


@given(a=ballots, b=ballots, c=ballots)
def test_ballot_transitivity(a, b, c):
    if a < b and b < c:
        assert a < c


@given(a=ballots)
def test_zero_below_everything(a):
    assert Ballot.ZERO < a


@given(a=ballots, leader=st.sampled_from(["r0", "r9"]))
def test_next_for_strictly_greater(a, leader):
    assert a.next_for(leader) > a


@given(a=pns, b=pns)
def test_pn_trichotomy(a, b):
    assert (a < b) + (b < a) + (a == b) == 1


@given(a=pns, b=pns)
def test_pn_ballot_dominates_instance(a, b):
    if a.ballot < b.ballot:
        assert a < b


@given(items=st.lists(pns, min_size=2, max_size=20))
def test_pn_sort_stable_and_consistent(items):
    ordered = sorted(items)
    for x, y in zip(ordered, ordered[1:]):
        assert not (y < x)
