"""End-to-end property test: for random workload mixes, seeds, transfer
modes and fault timings, all replicas converge to one state and every
acknowledged request executed exactly once."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.client.workload import Step, single_kind_steps
from repro.cluster.faults import FaultSchedule
from repro.services.counter import CounterService
from repro.types import RequestKind, StateTransferMode
from tests.integration.util import build_cluster, converged_fingerprints

MODES = [StateTransferMode.FULL, StateTransferMode.DELTA, StateTransferMode.REPRO]


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    mode=st.sampled_from(MODES),
    n_writes=st.integers(min_value=1, max_value=25),
)
def test_random_counter_workload_converges(seed, mode, n_writes):
    steps = single_kind_steps(RequestKind.WRITE, n_writes, op=("add_random", 1, 100))
    cluster = build_cluster(
        [steps], service_factory=CounterService, state_mode=mode, seed=seed
    ).run()
    prints = converged_fingerprints(cluster)
    assert len(set(prints.values())) == 1
    # Exactly-once: the sum of acknowledged per-request amounts equals the
    # replicated state. Each reply carries the running total.
    client = cluster.clients[0]
    final = client.request_records()[-1].value
    assert set(prints.values()) == {final}


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    mode=st.sampled_from(MODES),
    switch_at=st.floats(min_value=0.002, max_value=0.06),
)
def test_convergence_across_random_leader_switch(seed, mode, switch_at):
    steps = single_kind_steps(RequestKind.WRITE, 20, op=("add", 1))
    cluster = build_cluster(
        [steps],
        service_factory=CounterService,
        state_mode=mode,
        elector="manual",
        client_timeout=0.05,
        seed=seed,
    )
    FaultSchedule(cluster).switch_leader("r1", at=switch_at)
    cluster.run(max_time=60.0)
    assert cluster.clients[0].completed_requests == 20
    prints = converged_fingerprints(cluster)
    # Exactly 20 acknowledged increments, everywhere, despite the switch.
    assert set(prints.values()) == {20}


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    crash_at=st.floats(min_value=0.001, max_value=0.05),
    recover_at=st.floats(min_value=0.1, max_value=0.3),
)
def test_backup_crash_recover_convergence(seed, crash_at, recover_at):
    steps = single_kind_steps(RequestKind.WRITE, 15, op=("add", 1))
    cluster = build_cluster(
        [steps], service_factory=CounterService, client_timeout=0.05, seed=seed
    )
    schedule = FaultSchedule(cluster)
    schedule.crash("r2", at=crash_at)
    schedule.recover("r2", at=recover_at)
    cluster.run(max_time=60.0)
    cluster.drain(3.0)
    prints = cluster.replica_fingerprints()
    assert set(prints.values()) == {15}
