"""Kernel event-ordering properties (hypothesis).

The determinism contract the whole simulator stands on:

* events scheduled for the same virtual time fire in **schedule order**
  (FIFO tie-breaking), regardless of which scheduling API created them;
* cancelling any subset of events never perturbs the relative order of
  the survivors — including cancellations issued *by* event callbacks
  mid-run, and cancellations of already-fired events (no-ops).

These became load-bearing with the slot-indexed cancellation, in-place
heap compaction and handle pooling: each optimization must be invisible
at this level.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sim.kernel import Kernel

#: Small time grid: dense collisions exercise the FIFO tie-break hard.
times = st.lists(st.sampled_from([0.0, 0.001, 0.002, 0.003]), min_size=1, max_size=40)


@settings(max_examples=200, deadline=None)
@given(times=times)
def test_same_timestamp_fires_in_schedule_order(times):
    kernel = Kernel()
    fired: list[int] = []
    for index, time in enumerate(times):
        kernel.schedule_at(time, fired.append, index)
    kernel.run()
    expected = [i for i, _ in sorted(enumerate(times), key=lambda p: (p[1], p[0]))]
    assert fired == expected


@settings(max_examples=200, deadline=None)
@given(times=times, data=st.data())
def test_post_at_and_schedule_at_share_one_fifo_order(times, data):
    """The pooled fast path must not get its own ordering domain."""
    pooled = data.draw(st.lists(st.booleans(), min_size=len(times), max_size=len(times)))
    kernel = Kernel()
    fired: list[int] = []
    for index, (time, use_pool) in enumerate(zip(times, pooled)):
        if use_pool:
            kernel.post_at(time, fired.append, index)
        else:
            kernel.schedule_at(time, fired.append, index)
    kernel.run()
    expected = [i for i, _ in sorted(enumerate(times), key=lambda p: (p[1], p[0]))]
    assert fired == expected


@settings(max_examples=200, deadline=None)
@given(times=times, data=st.data())
def test_upfront_cancellation_never_perturbs_survivors(times, data):
    """Fired survivors == a run that never scheduled the cancelled events."""
    cancel = data.draw(st.lists(st.booleans(), min_size=len(times), max_size=len(times)))

    kernel = Kernel()
    fired: list[int] = []
    handles = [kernel.schedule_at(t, fired.append, i) for i, t in enumerate(times)]
    for handle, dead in zip(handles, cancel):
        if dead:
            handle.cancel()
    kernel.run()

    reference_kernel = Kernel()
    reference: list[int] = []
    for index, time in enumerate(times):
        if not cancel[index]:
            reference_kernel.schedule_at(time, reference.append, index)
    reference_kernel.run()

    assert fired == reference


@settings(max_examples=150, deadline=None)
@given(
    times=times,
    data=st.data(),
)
def test_mid_run_cancellation_matches_model(times, data):
    """Callbacks cancelling other events behave like the obvious model:
    walk events in (time, schedule order); a fired event's targets are
    dead from then on; cancelling an already-fired event is a no-op."""
    n = len(times)
    targets = data.draw(
        st.lists(
            st.lists(st.integers(0, n - 1), max_size=3),
            min_size=n,
            max_size=n,
        )
    )

    kernel = Kernel()
    fired: list[int] = []
    handles = []

    def fire(index: int) -> None:
        fired.append(index)
        for victim in targets[index]:
            handles[victim].cancel()

    for index, time in enumerate(times):
        handles.append(kernel.schedule_at(time, fire, index))
    kernel.run()

    order = [i for i, _ in sorted(enumerate(times), key=lambda p: (p[1], p[0]))]
    dead: set[int] = set()
    expected = []
    for index in order:
        if index in dead:
            continue
        expected.append(index)
        dead.update(targets[index])
    assert fired == expected

    # Idempotent-cancel bookkeeping must survive the churn: draining the
    # kernel leaves no pending events and an internally consistent count.
    assert kernel.pending == 0


@settings(max_examples=50, deadline=None)
@given(rounds=st.integers(2, 12), width=st.integers(1, 16))
def test_pooled_handles_stop_growing(rounds, width):
    """Self-sustaining post_at chains reuse handles after the first round."""
    kernel = Kernel()

    def repost(round_index: int) -> None:
        if round_index < rounds:
            kernel.post_at(kernel.now + 0.001, repost, round_index + 1)

    for _ in range(width):
        kernel.post_at(0.0, repost, 0)
    kernel.run(until=0.002)  # warm-up: first rounds allocate the pool
    warm = kernel.handles_created
    kernel.run()
    assert kernel.handles_created == warm
