"""Property tests: lock-manager invariants under random operation streams."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.locks import LockManager

OWNERS = ["t1", "t2", "t3", "w1", "w2"]
KEYS = ["a", "b", "c"]

actions = st.lists(
    st.one_of(
        st.tuples(
            st.just("try"),
            st.sampled_from(OWNERS),
            st.sets(st.sampled_from(KEYS), max_size=2),
            st.sets(st.sampled_from(KEYS), max_size=2),
        ),
        st.tuples(
            st.just("wait"),
            st.sampled_from(OWNERS),
            st.sets(st.sampled_from(KEYS), max_size=2),
            st.sets(st.sampled_from(KEYS), max_size=2),
        ),
        st.tuples(st.just("release"), st.sampled_from(OWNERS)),
    ),
    max_size=60,
)


def run(sequence):
    lm = LockManager()
    granted_callbacks: list[str] = []
    for action in sequence:
        if action[0] == "try":
            _tag, owner, read_keys, write_keys = action
            lm.try_acquire(owner, frozenset(read_keys), frozenset(write_keys))
        elif action[0] == "wait":
            _tag, owner, read_keys, write_keys = action
            lm.acquire_or_wait(
                owner,
                frozenset(read_keys),
                frozenset(write_keys),
                grant=lambda o=owner: granted_callbacks.append(o),
            )
        else:
            _tag, owner = action
            lm.release_all(owner)
        lm.assert_consistent()
    return lm


@given(sequence=actions)
def test_internal_consistency_always_holds(sequence):
    run(sequence)


@given(sequence=actions)
def test_releasing_everyone_empties_the_table(sequence):
    lm = run(sequence)
    for owner in OWNERS:
        lm.drop_waiters(owner)
    for owner in OWNERS:
        lm.release_all(owner)
    assert lm.owners() == frozenset()
    assert lm.waiting == 0


@given(sequence=actions)
def test_no_writer_coexists_with_other_holder(sequence):
    lm = run(sequence)
    # For each key, collect owners that hold it exclusively vs shared by
    # replaying the public view: two distinct owners must never both hold a
    # key one of them holds exclusively. We probe via try_acquire on a
    # scratch owner: if someone holds the key exclusively, a read probe
    # fails; if only readers hold it, a write probe fails but a read works.
    for key in KEYS:
        read_ok = lm.try_acquire("probe", frozenset({key}), frozenset())
        if read_ok:
            lm.release_all("probe")
