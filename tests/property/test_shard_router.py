"""Property tests: the shard router is total, deterministic, and a pure
function of the key bytes (no process identity, no hash seed)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.requests import ClientRequest, RequestId
from repro.errors import ConfigError
from repro.shard.router import ShardRouter
from repro.types import RequestKind

keys = st.text(min_size=0, max_size=40)
group_counts = st.integers(min_value=1, max_value=16)


@given(key=keys, n=group_counts)
def test_total_and_in_range(key, n):
    group = ShardRouter(n).group_for_key(key)
    assert 0 <= group < n


@given(key=keys, n=group_counts)
def test_deterministic_across_instances(key, n):
    assert ShardRouter(n).group_for_key(key) == ShardRouter(n).group_for_key(key)


def test_pid_and_hashseed_independent():
    """Golden values: crc32 of the key bytes, not anything process-local.

    These constants were computed once and must hold on every host, under
    every ``PYTHONHASHSEED``, forever — a changed value would mean routers
    on different processes silently disagree about key ownership."""
    router = ShardRouter(4)
    assert router.group_for_key("x") == 3
    assert router.group_for_key("alpha") == 2
    assert router.group_for_key("beta") == 3
    assert router.group_for_key("gamma") == 1
    assert ShardRouter(2).group_for_key("x") == 1
    assert ShardRouter(2).group_for_key("alpha") == 0


@given(key=keys, n=group_counts, value=st.integers())
def test_keyed_ops_route_by_key(key, n, value):
    router = ShardRouter(n)
    assert router.group_for_op(("put", key, value)) == router.group_for_key(key)
    assert router.group_for_op(("get", key)) == router.group_for_key(key)


@given(n=group_counts)
def test_keyless_ops_route_to_group_zero(n):
    router = ShardRouter(n)
    assert router.group_for_op(("keys",)) == 0
    assert router.group_for_op(("total",)) == 0
    assert router.group_for_op(None) == 0
    assert router.group_for_op("write") == 0


@given(key=keys, n=group_counts, seq=st.integers(min_value=1, max_value=99))
def test_plain_requests_route_by_op(key, n, seq):
    request = ClientRequest(
        rid=RequestId("c0", seq), kind=RequestKind.WRITE, op=("put", key, seq)
    )
    router = ShardRouter(n)
    assert router.group_for_request(request) == router.group_for_key(key)


@given(key=keys, n=group_counts, attempt=st.integers(min_value=1, max_value=9))
def test_txn_requests_route_by_txn_id_not_key(key, n, attempt):
    """Every op of one transaction lands on one group, whatever it touches."""
    txn = f"c1/7/{attempt}"
    router = ShardRouter(n)
    op = ClientRequest(
        rid=RequestId("c1", 1), kind=RequestKind.TXN_OP,
        op=("put", key, 1), txn=txn, txn_seq=0,
    )
    commit = ClientRequest(
        rid=RequestId("c1", 2), kind=RequestKind.TXN_COMMIT,
        op=None, txn=txn, txn_seq=1,
    )
    assert router.group_for_request(op) == router.group_for_request(commit)
    assert router.group_for_request(op) == router.group_for_key(str(txn))


@given(key=keys)
def test_single_group_is_identity(key):
    assert ShardRouter(1).group_for_key(key) == 0


def test_rejects_bad_group_counts():
    with pytest.raises(ConfigError):
        ShardRouter(0)
    with pytest.raises(ConfigError):
        ShardRouter(-3)
