"""Property tests: histogram quantile estimates vs. exact sample quantiles.

The fixed-bucket histogram promises its quantile estimate is within one
bucket width of the true sample quantile whenever the samples land in the
finite buckets (linear interpolation inside the target bucket, clamped to
the observed min/max). numpy.percentile with ``method="inverted_cdf"`` is
the oracle — that is the quantile definition the histogram's cumulative
walk implements; the default (linear) method interpolates *between sample
values*, which no histogram can reproduce (two samples one per distant
bucket already break any bucket-width bound for it).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.obs.registry import DEFAULT_LATENCY_BUCKETS, Histogram

#: Uniform bucket edges over [0, 1]: width 0.05.
UNIFORM_BOUNDS = tuple(round(i * 0.05, 10) for i in range(1, 21))
UNIFORM_WIDTH = 0.05

samples_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=500,
)

quantiles_strategy = st.floats(min_value=0.0, max_value=1.0)


@settings(max_examples=200, deadline=None)
@given(samples=samples_strategy, q=quantiles_strategy)
def test_quantile_within_one_bucket_of_numpy(samples, q):
    hist = Histogram(UNIFORM_BOUNDS)
    for s in samples:
        hist.observe(s)
    estimate = hist.quantile(q)
    true = float(np.percentile(samples, q * 100, method="inverted_cdf"))
    assert abs(estimate - true) <= UNIFORM_WIDTH + 1e-9
    # The estimate also never leaves the observed range.
    assert min(samples) - 1e-9 <= estimate <= max(samples) + 1e-9


@settings(max_examples=100, deadline=None)
@given(samples=samples_strategy)
def test_extreme_quantiles_hit_min_and_max(samples):
    hist = Histogram(UNIFORM_BOUNDS)
    for s in samples:
        hist.observe(s)
    assert abs(hist.quantile(0.0) - min(samples)) <= UNIFORM_WIDTH + 1e-9
    assert abs(hist.quantile(1.0) - max(samples)) <= UNIFORM_WIDTH + 1e-9


@settings(max_examples=100, deadline=None)
@given(samples=samples_strategy)
def test_mean_and_count_are_exact(samples):
    # Unlike quantiles, mean/count/min/max do not discretize.
    hist = Histogram(UNIFORM_BOUNDS)
    for s in samples:
        hist.observe(s)
    assert hist.count == len(samples)
    assert abs(hist.mean - float(np.mean(samples))) <= 1e-9
    assert hist.minimum == min(samples)
    assert hist.maximum == max(samples)


@settings(max_examples=100, deadline=None)
@given(
    samples=st.lists(
        st.floats(min_value=1e-5, max_value=9.9, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=300,
    ),
    q=quantiles_strategy,
)
def test_default_latency_buckets_bound_error_by_local_width(samples, q):
    # The default (geometric) buckets have variable widths; the error bound
    # is the width of the bucket the estimate falls in.
    hist = Histogram(DEFAULT_LATENCY_BUCKETS)
    for s in samples:
        hist.observe(s)
    estimate = hist.quantile(q)
    true = float(np.percentile(samples, q * 100, method="inverted_cdf"))
    bounds = (0.0,) + DEFAULT_LATENCY_BUCKETS
    widths = [
        bounds[i + 1] - bounds[i]
        for i in range(len(bounds) - 1)
        if bounds[i] <= max(true, estimate) and min(true, estimate) <= bounds[i + 1]
    ]
    assert widths, (estimate, true)
    assert abs(estimate - true) <= max(widths) + 1e-12


@settings(max_examples=50, deadline=None)
@given(samples=samples_strategy)
def test_snapshot_round_trip_preserves_quantiles(samples):
    hist = Histogram(UNIFORM_BOUNDS)
    for s in samples:
        hist.observe(s)
    clone = Histogram.from_snapshot(hist.snapshot())
    for q in (0.0, 0.25, 0.5, 0.75, 0.95, 1.0):
        assert clone.quantile(q) == hist.quantile(q)
