"""Model-based property tests for the nondeterministic services: for any
random op sequence, REPRO replay and DELTA application must reproduce the
leader's state exactly, and undo must be an exact inverse."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.services.base import ExecutionContext
from repro.services.broker import ResourceBrokerService
from repro.services.gridsched import GridSchedulerService

# --------------------------------------------------------------------- broker
broker_ops = st.lists(
    st.one_of(
        st.tuples(st.just("request"), st.integers(0, 30), st.integers(1, 40)),
        st.tuples(st.just("release"), st.integers(0, 30)),
    ),
    max_size=40,
)


def fresh_broker() -> ResourceBrokerService:
    service = ResourceBrokerService()
    for i in range(4):
        service.resources[f"n{i}"] = [100.0, 0.0]
    return service


def broker_op(raw):
    if raw[0] == "request":
        return ("request", f"t{raw[1]}", raw[2])
    return ("release", f"t{raw[1]}")


@settings(max_examples=60)
@given(ops=broker_ops, seed=st.integers(0, 10_000))
def test_broker_repro_replay_equivalence(ops, seed):
    leader, backup = fresh_broker(), fresh_broker()
    rng = random.Random(seed)
    for raw in ops:
        op = broker_op(raw)
        try:
            result = leader.execute(op, ExecutionContext(rng=rng, now=0.0))
        except Exception:
            continue  # duplicate task etc.: leader rejects, nothing shipped
        backup.replay(op, result.repro)
        assert backup.state_fingerprint() == leader.state_fingerprint()


@settings(max_examples=60)
@given(ops=broker_ops, seed=st.integers(0, 10_000))
def test_broker_delta_equivalence(ops, seed):
    leader, backup = fresh_broker(), fresh_broker()
    rng = random.Random(seed)
    for raw in ops:
        op = broker_op(raw)
        try:
            result = leader.execute(op, ExecutionContext(rng=rng, now=0.0))
        except Exception:
            continue
        if result.delta is not None:
            backup.apply_delta(result.delta)
    assert backup.state_fingerprint() == leader.state_fingerprint()


@settings(max_examples=60)
@given(ops=broker_ops, seed=st.integers(0, 10_000))
def test_broker_undo_inverse(ops, seed):
    service = fresh_broker()
    rng = random.Random(seed)
    for raw in ops:
        op = broker_op(raw)
        before = service.state_fingerprint()
        try:
            result = service.execute(op, ExecutionContext(rng=rng, now=0.0))
        except Exception:
            assert service.state_fingerprint() == before  # failures mutate nothing
            continue
        if result.undo is not None:
            result.undo()
            assert service.state_fingerprint() == before
            # Redo deterministically via replay so the run continues.
            service.replay(op, result.repro)


# ----------------------------------------------------------------- gridsched
sched_ops = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.integers(0, 20), st.integers(0, 5)),
        st.tuples(st.just("dispatch")),
    ),
    max_size=40,
)


def sched_op(raw):
    if raw[0] == "submit":
        return ("submit", f"j{raw[1]}", raw[2])
    return ("dispatch",)


@settings(max_examples=60)
@given(ops=sched_ops, times=st.lists(st.floats(0, 100), min_size=40, max_size=40))
def test_gridsched_repro_replay_equivalence(ops, times):
    leader, backup = GridSchedulerService(), GridSchedulerService()
    rng = random.Random(0)
    for raw, now in zip(ops, times):
        op = sched_op(raw)
        try:
            result = leader.execute(op, ExecutionContext(rng=rng, now=now))
        except Exception:
            continue
        backup.replay(op, result.repro)
        assert backup.state_fingerprint() == leader.state_fingerprint()


@settings(max_examples=60)
@given(ops=sched_ops, times=st.lists(st.floats(0, 100), min_size=40, max_size=40))
def test_gridsched_delta_equivalence(ops, times):
    leader, backup = GridSchedulerService(), GridSchedulerService()
    rng = random.Random(0)
    for raw, now in zip(ops, times):
        op = sched_op(raw)
        try:
            result = leader.execute(op, ExecutionContext(rng=rng, now=now))
        except Exception:
            continue
        if result.delta is not None:
            backup.apply_delta(result.delta)
    assert backup.state_fingerprint() == leader.state_fingerprint()


@settings(max_examples=60)
@given(ops=sched_ops, times=st.lists(st.floats(0, 100), min_size=40, max_size=40))
def test_gridsched_snapshot_roundtrip(ops, times):
    service = GridSchedulerService()
    rng = random.Random(0)
    for raw, now in zip(ops, times):
        try:
            service.execute(sched_op(raw), ExecutionContext(rng=rng, now=now))
        except Exception:
            continue
    clone = GridSchedulerService()
    clone.restore(service.snapshot())
    assert clone.state_fingerprint() == service.state_fingerprint()
    # Both copies make the same next decision.
    a = clone.execute(("dispatch",), ExecutionContext(rng=rng, now=1000.0)).reply
    b = service.execute(("dispatch",), ExecutionContext(rng=rng, now=1000.0)).reply
    assert a == b
