"""Property tests: replica-log invariants under random operation sequences."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.ballot import Ballot, ProposalNumber
from repro.core.log import ReplicaLog
from repro.core.messages import Proposal
from repro.core.requests import ClientRequest, RequestId
from repro.core.state import StatePayload
from repro.types import RequestKind, StateTransferMode


def proposal(instance: int) -> Proposal:
    # One canonical value per instance, so choose() never conflicts.
    request = ClientRequest(RequestId(f"c{instance}", 0), RequestKind.WRITE, op=instance)
    return Proposal(
        requests=(request,), payload=StatePayload(StateTransferMode.FULL, instance)
    )


ops = st.lists(
    st.tuples(
        st.sampled_from(["accept", "choose"]),
        st.integers(min_value=1, max_value=30),   # instance
        st.integers(min_value=0, max_value=5),    # ballot round
    ),
    max_size=120,
)


@given(sequence=ops)
def test_frontier_is_contiguous_chosen_prefix(sequence):
    log = ReplicaLog()
    for kind, instance, round_ in sequence:
        if kind == "accept":
            log.accept(ProposalNumber(Ballot(round_, "r0"), instance), proposal(instance))
        else:
            log.choose(instance, proposal(instance))
    frontier = log.frontier
    for i in range(1, frontier + 1):
        assert log.is_chosen(i)
    assert not log.is_chosen(frontier + 1)


@given(sequence=ops)
def test_accepted_entry_keeps_highest_pn(sequence):
    log = ReplicaLog()
    highest: dict[int, ProposalNumber] = {}
    for kind, instance, round_ in sequence:
        if kind == "accept":
            pn = ProposalNumber(Ballot(round_, "r0"), instance)
            log.accept(pn, proposal(instance))
            if instance not in highest or pn > highest[instance]:
                highest[instance] = pn
    for instance, pn in highest.items():
        assert log.accepted_entry(instance).pn == pn


@given(sequence=ops)
def test_gaps_are_exactly_unchosen_below_top(sequence):
    log = ReplicaLog()
    chosen: set[int] = set()
    for kind, instance, _round in sequence:
        if kind == "choose":
            log.choose(instance, proposal(instance))
            chosen.add(instance)
    if chosen:
        top = max(chosen)
        expected = tuple(i for i in range(1, top) if i not in chosen)
        assert log.gaps() == expected


@given(sequence=ops, compact_to=st.integers(min_value=0, max_value=30))
def test_compaction_preserves_is_chosen(sequence, compact_to):
    log = ReplicaLog()
    for kind, instance, round_ in sequence:
        if kind == "accept":
            log.accept(ProposalNumber(Ballot(round_, "r0"), instance), proposal(instance))
        else:
            log.choose(instance, proposal(instance))
    upto = min(compact_to, log.frontier)
    chosen_before = {i for i in range(1, 31) if log.is_chosen(i)}
    log.compact(upto)
    chosen_after = {i for i in range(1, 31) if log.is_chosen(i)}
    assert chosen_before == chosen_after


@given(sequence=ops)
def test_choose_idempotent_any_order(sequence):
    log1, log2 = ReplicaLog(), ReplicaLog()
    chooses = [(i, proposal(i)) for kind, i, _r in sequence if kind == "choose"]
    for i, v in chooses:
        log1.choose(i, v)
    for i, v in reversed(chooses):
        log2.choose(i, v)
    assert log1.frontier == log2.frontier
    assert log1.gaps() == log2.gaps()
