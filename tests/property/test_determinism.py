"""Determinism property: identical seeds yield bit-identical experiment
results; different seeds perturb jitter but not correctness."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.client.workload import single_kind_steps
from repro.cluster.harness import Cluster, ClusterSpec
from repro.cluster.metrics import collect
from repro.net.profiles import sysnet
from repro.services.counter import CounterService
from repro.types import RequestKind, StateTransferMode
from tests.integration.util import build_cluster


def run_once(seed: int, mode: StateTransferMode):
    steps = single_kind_steps(RequestKind.WRITE, 10, op=("add_random", 1, 100))
    cluster = build_cluster(
        [steps], service_factory=CounterService, state_mode=mode, seed=seed
    ).run()
    cluster.drain(1.0)
    result = collect(cluster)
    values = [r.value for r in cluster.clients[0].request_records()]
    return result.rrt.mean, values, cluster.leader().service.value


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    mode=st.sampled_from(
        [StateTransferMode.FULL, StateTransferMode.DELTA, StateTransferMode.REPRO]
    ),
)
def test_same_seed_same_everything(seed, mode):
    first = run_once(seed, mode)
    second = run_once(seed, mode)
    assert first == second


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_sysnet_jitter_depends_on_seed(seed):
    def rrt(s):
        spec = ClusterSpec(profile=sysnet(), seed=s)
        cluster = Cluster(spec, [single_kind_steps(RequestKind.WRITE, 10)])
        cluster.run()
        return collect(cluster).rrt.mean

    assert rrt(seed) == rrt(seed)
    assert rrt(seed) != rrt(seed + 1)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_nondeterministic_replies_still_exactly_once(seed):
    """Random service outcomes differ across seeds, but within one run the
    replicated value always equals the last acknowledged running total."""
    _rrt, values, final = run_once(seed, StateTransferMode.REPRO)
    assert values == sorted(values)  # running totals are monotone
    assert final == values[-1]
