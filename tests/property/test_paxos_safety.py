"""Adversarial property test: single-decree Paxos safety (§3.2).

Hypothesis drives thousands of schedules: several proposers with distinct
ballots, messages delivered in arbitrary interleavings, arbitrarily
dropped or duplicated. The invariant — **at most one value is ever
chosen** — must hold on every schedule; the learner raises ProtocolError
the moment two different values each reach a majority.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from hypothesis import given, settings, strategies as st

from repro.core.ballot import Ballot
from repro.core.paxos import (
    P1a,
    P1b,
    P2a,
    P2b,
    PNack,
    PaxosAcceptor,
    PaxosLearner,
    PaxosProposer,
)

ACCEPTORS = ("a0", "a1", "a2")
PROPOSERS = ("p0", "p1")


@dataclass
class Network:
    """A bag of in-flight messages, delivered in adversary-chosen order."""

    queue: list[tuple[str, str, Any]] = field(default_factory=list)

    def send(self, src: str, dst: str, msg: Any) -> None:
        self.queue.append((src, dst, msg))

    def broadcast(self, src: str, msg: Any) -> None:
        for dst in ACCEPTORS:
            self.send(src, dst, msg)


def run_schedule(choices, drops, dups) -> None:
    """Run one adversarial schedule; the learner enforces the invariant."""
    net = Network()
    acceptors = {pid: PaxosAcceptor(pid) for pid in ACCEPTORS}
    learner = PaxosLearner(ACCEPTORS)
    proposers: dict[str, PaxosProposer] = {}
    round_counter = 0

    def start_proposer(pid: str) -> None:
        nonlocal round_counter
        round_counter += 1
        proposer = PaxosProposer(pid, ACCEPTORS, value=f"v-{pid}-{round_counter}")
        proposers[pid] = proposer
        net.broadcast(pid, proposer.start(Ballot(round_counter, pid)))

    start_proposer("p0")
    start_proposer("p1")

    step = 0
    while net.queue and step < 500:
        step += 1
        index = choices(len(net.queue))
        src, dst, msg = net.queue.pop(index)
        if drops(step):
            continue
        if dups(step):
            net.queue.append((src, dst, msg))

        if dst in acceptors:
            acceptor = acceptors[dst]
            if isinstance(msg, P1a):
                response = acceptor.on_prepare(msg)
                net.send(dst, src, response)
            elif isinstance(msg, P2a):
                response = acceptor.on_accept(msg)
                net.send(dst, src, response)
                if isinstance(response, P2b):
                    # Learners observe acceptances (value from acceptor state).
                    assert acceptor.accepted is not None
                    learner.on_accepted(dst, msg.ballot, msg.value)
        else:
            proposer = proposers.get(dst)
            if proposer is None:
                continue
            if isinstance(msg, P1b):
                accept = proposer.on_promise(src, msg)
                if accept is not None:
                    net.broadcast(dst, accept)
            elif isinstance(msg, P2b):
                proposer.on_accepted(src, msg)
            elif isinstance(msg, PNack):
                proposer.on_nack(src, msg)
                # Preempted proposers retry with a higher ballot (liveness
                # is not asserted; this just enriches the schedule space).
                if proposer.preempted_by is not None and step < 200:
                    start_proposer(dst)

    # Final cross-check: any two majorities of acceptors that accepted the
    # same ballot agree; and everything learners saw was consistent.
    chosen_values = set()
    by_ballot: dict[Ballot, list[str]] = {}
    for pid, acceptor in acceptors.items():
        if acceptor.accepted is not None:
            by_ballot.setdefault(acceptor.accepted[0], []).append(pid)
    for ballot, pids in by_ballot.items():
        if len(pids) >= 2:
            values = {acceptors[p].accepted[1] for p in pids}
            assert len(values) == 1
            chosen_values.add(values.pop())
    if learner.chosen is not None:
        chosen_values.add(learner.chosen)
    # NOTE: acceptors' *current* accepted values can disagree across ballots
    # (older acceptances get overwritten); the learner is the authoritative
    # tripwire and raises on a genuine double-choice.


@settings(max_examples=300, deadline=None)
@given(data=st.data())
def test_at_most_one_value_chosen(data):
    choices = lambda n: data.draw(st.integers(min_value=0, max_value=n - 1))
    drop_flags = data.draw(st.lists(st.booleans(), min_size=0, max_size=60))
    dup_flags = data.draw(st.lists(st.booleans(), min_size=0, max_size=60))
    drops = lambda step: step <= len(drop_flags) and drop_flags[step - 1]
    dups = lambda step: step <= len(dup_flags) and dup_flags[step - 1]
    run_schedule(choices, drops, dups)


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_random_schedules_via_seed(seed):
    import random

    rng = random.Random(seed)
    run_schedule(
        choices=lambda n: rng.randrange(n),
        drops=lambda _s: rng.random() < 0.15,
        dups=lambda _s: rng.random() < 0.15,
    )
