"""Deterministic sequence helper for the golden-snapshot fixture."""


def next_seq(seq: int) -> int:
    return seq + 1
