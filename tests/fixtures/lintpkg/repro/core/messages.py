"""Wire messages for the golden-snapshot fixture protocol."""

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Ping:
    seq: int


@dataclass(frozen=True, slots=True)
class Pong:
    seq: int


@dataclass(frozen=True, slots=True)
class Promise:
    ballot: int
