"""Stable storage stand-in for the golden-snapshot fixture protocol."""


class Store:
    def __init__(self) -> None:
        self.needs_barrier = False

    def accept(self, seq: int) -> None:
        del seq

    def record_promise(self, ballot: int) -> None:
        del ballot

    def flush(self, callback) -> None:
        callback()
