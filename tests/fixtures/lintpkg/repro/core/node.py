"""Fixture node: one handler dispatch, a barriered promise path, and a
helper chain into ``repro.util`` — enough surface to pin the call-graph
and message-flow exports as golden snapshots."""

from repro.core.messages import Ping, Pong, Promise
from repro.core.store import Store
from repro.util.seqs import next_seq


class Node:
    def __init__(self) -> None:
        self.store = Store()

    def send(self, dst: int, msg: object) -> None:
        del dst, msg

    def start(self) -> None:
        self.send(0, Ping(seq=next_seq(0)))

    def on_message(self, src: int, msg: object) -> None:
        if isinstance(msg, Ping):
            self._on_ping(src, msg)
        elif isinstance(msg, Pong):
            self._on_pong(src, msg)
        elif isinstance(msg, Promise):
            self._on_promise(src, msg)

    def _on_ping(self, src: int, msg: Ping) -> None:
        self.store.accept(msg.seq)
        reply = Pong(seq=msg.seq)
        if self.store.needs_barrier:
            self.store.flush(lambda: self.send(src, reply))
        else:
            self.send(src, reply)

    def _on_pong(self, src: int, msg: Pong) -> None:
        self._promise(src, msg.seq)

    def _on_promise(self, src: int, msg: Promise) -> None:
        del src
        self.store.record_promise(msg.ballot)

    def _promise(self, src: int, ballot: int) -> None:
        self.store.record_promise(ballot)
        reply = Promise(ballot=ballot)
        if self.store.needs_barrier:
            self.store.flush(lambda: self.send(src, reply))
        else:
            self.send(src, reply)
