"""The same protocol objects running on real (non-simulated) runtimes:
the threaded wall-clock runtime and the localhost TCP runtime."""

from __future__ import annotations

import pytest

from repro.client.client import Client
from repro.client.workload import paper_txn_steps, single_kind_steps
from repro.core.config import ReplicaConfig
from repro.core.replica import Replica
from repro.election.static import StaticElector
from repro.net.latency import ConstantLatency
from repro.services.kvstore import KVStoreService
from repro.services.noop import NoopService
from repro.transport.local import LocalRuntime
from repro.transport.tcp import TcpRuntime
from repro.types import ReplyStatus, RequestKind

PEERS = ("r0", "r1", "r2")


def build_processes(steps, service_factory=NoopService, timeout=0.5):
    config = ReplicaConfig(peers=PEERS, accept_retry=0.2, prepare_retry=0.1)
    replicas = [
        Replica(pid, config, service_factory, StaticElector("r0")) for pid in PEERS
    ]
    client = Client(
        "c0", replicas=PEERS, steps=steps, timeout=timeout, wait_for_start=False
    )
    return replicas, client


class TestLocalRuntime:
    def run_steps(self, steps, service_factory=NoopService, latency=None):
        replicas, client = build_processes(steps, service_factory)
        runtime = LocalRuntime(latency=latency)
        for replica in replicas:
            runtime.add(replica)
        runtime.add(client)
        runtime.start()
        try:
            assert runtime.run_until(lambda: client.done, timeout=30.0)
        finally:
            runtime.shutdown()
        return replicas, client

    def test_writes_complete_on_wall_clock(self):
        _replicas, client = self.run_steps(single_kind_steps(RequestKind.WRITE, 10))
        assert client.completed_requests == 10
        assert all(r.status is ReplyStatus.OK for r in client.request_records())

    def test_reads_and_writes_with_latency_injection(self):
        steps = single_kind_steps(RequestKind.READ, 5) + single_kind_steps(
            RequestKind.WRITE, 5
        )
        _replicas, client = self.run_steps(steps, latency=ConstantLatency(0.005))
        assert client.completed_requests == 10

    def test_replicas_converge(self):
        steps = single_kind_steps(RequestKind.WRITE, 10, op=lambda i: ("put", i, i))
        replicas, _client = self.run_steps(steps, service_factory=KVStoreService)
        import time

        time.sleep(0.1)  # let Chosen broadcasts land
        prints = {r.service.state_fingerprint() for r in replicas}
        assert len(prints) == 1

    def test_transactions(self):
        _replicas, client = self.run_steps(paper_txn_steps("optimized", 3, 5))
        assert client.completed_steps == 5


class TestTcpRuntime:
    def run_steps(self, steps, service_factory=NoopService):
        replicas, client = build_processes(steps, service_factory)
        runtime = TcpRuntime()
        for replica in replicas:
            runtime.add(replica)
        runtime.add(client)
        runtime.start()
        try:
            assert runtime.run_until(lambda: client.done, timeout=30.0)
        finally:
            runtime.shutdown()
        return runtime, replicas, client

    def test_writes_over_real_sockets(self):
        runtime, _replicas, client = self.run_steps(
            single_kind_steps(RequestKind.WRITE, 10)
        )
        assert client.completed_requests == 10
        assert runtime.messages_sent > 0 and runtime.bytes_sent > 0

    def test_xpaxos_reads_over_real_sockets(self):
        _runtime, _replicas, client = self.run_steps(
            single_kind_steps(RequestKind.READ, 10)
        )
        assert client.completed_requests == 10

    def test_kvstore_replication_over_tcp(self):
        steps = single_kind_steps(RequestKind.WRITE, 8, op=lambda i: ("put", i, i))
        _runtime, replicas, _client = self.run_steps(steps, service_factory=KVStoreService)
        import time

        time.sleep(0.2)
        prints = {r.service.state_fingerprint() for r in replicas}
        assert len(prints) == 1

    def test_transactions_over_tcp(self):
        _runtime, _replicas, client = self.run_steps(paper_txn_steps("optimized", 3, 3))
        assert client.completed_steps == 3
