"""Integration tests for causal request tracing: span-tree reconstruction
under message drops and leader switches, orphan flagging on truncated
exports, and the passivity regression (tracing on vs off must produce
byte-identical runs)."""

from __future__ import annotations

import pickle

import pytest

from repro.client.workload import paper_txn_steps, single_kind_steps
from repro.cluster.faults import FaultSchedule
from repro.cluster.harness import Cluster, ClusterSpec
from repro.net.latency import UniformLatency
from repro.net.link import LinkSpec
from repro.net.profiles import NetworkProfile
from repro.net.topology import Topology
from repro.obs.timeline import load_export
from repro.sim.cpu import CpuProfile
from repro.types import RequestKind
from tests.conftest import make_test_profile


def lossy_profile(loss: float) -> NetworkProfile:
    def builder(replicas, clients):
        topo = Topology(
            default=LinkSpec(
                latency=UniformLatency(0.5e-3, 2e-3), loss=loss, jitter_reorder=False
            )
        )
        topo.place_all(list(replicas), "site")
        topo.place_all(list(clients), "site")
        return topo

    return NetworkProfile(
        name="lossy",
        description=f"loss={loss}",
        replica_cpu=CpuProfile(),
        client_cpu=CpuProfile(),
        paper_rrt={},
        _builder=builder,
        per_connection_overhead=0.0,
    )


def traced_cluster(profile=None, steps=None, **overrides) -> Cluster:
    spec = ClusterSpec(
        profile=profile if profile is not None else make_test_profile(),
        tracing=True,
        **overrides,
    )
    if steps is None:
        steps = [single_kind_steps(RequestKind.WRITE, 10)]
    return Cluster(spec, steps)


def request_roots(cluster: Cluster):
    return [s for s in cluster.tracer.store.roots() if s.kind == "request"]


class TestSpanTreesUnderDrops:
    def test_dropped_messages_recorded_not_orphaned(self):
        cluster = traced_cluster(
            profile=lossy_profile(0.25),
            seed=11,
            client_timeout=0.05,
            accept_retry=0.02,
            prepare_retry=0.02,
        )
        cluster.run(max_time=120.0).drain()
        store = cluster.tracer.store
        dropped = [s for s in store.find(kind="message") if s.status == "dropped"]
        assert dropped, "a 25%-loss run must record dropped message spans"
        assert all(s.attrs.get("cause") == "loss" for s in dropped)
        roots = request_roots(cluster)
        assert len(roots) == 10
        for root in roots:
            assert root.finished, "every request completed despite the loss"
            tree = store.tree(root.trace_id)
            # The in-memory store is complete: drops mark spans, they never
            # detach subtrees.
            assert tree.orphans == []
        retransmitted = [r for r in roots if r.attrs.get("retransmits")]
        assert retransmitted, "a lossy run must retransmit at least once"

    def test_every_span_parent_resolves_in_memory(self):
        cluster = traced_cluster(seed=3)
        cluster.run(max_time=30.0).drain()
        store = cluster.tracer.store
        for span in store:
            if span.parent_id is not None:
                parent = store.get(span.parent_id)
                assert parent is not None
                assert parent.trace_id == span.trace_id


class TestSpanTreesUnderLeaderSwitch:
    def run_with_switch(self, seed=2):
        cluster = traced_cluster(
            steps=[single_kind_steps(RequestKind.WRITE, 20)],
            elector="manual",
            client_timeout=0.05,
            seed=seed,
        )
        FaultSchedule(cluster).switch_leader("r1", at=0.012)
        cluster.run(max_time=60.0).drain()
        return cluster

    def test_takeover_trace_with_recovery_child(self):
        cluster = self.run_with_switch()
        store = cluster.tracer.store
        takeovers = [s for s in store.roots() if s.kind == "takeover"]
        assert any(s.name == "takeover:r1" for s in takeovers)
        done = [s for s in takeovers if s.finished and s.status == "ok"]
        assert done, "r1's takeover must complete"
        recoveries = store.find(name="recovery", kind="recovery")
        assert any(
            r.parent_id in {s.span_id for s in takeovers} for r in recoveries
        ), "the recovery span hangs under its takeover trace"

    def test_abandoned_spans_flagged_and_requests_complete(self):
        cluster = self.run_with_switch()
        store = cluster.tracer.store
        assert cluster.clients[0].completed_requests == 20
        roots = request_roots(cluster)
        assert len(roots) == 20 and all(r.finished for r in roots)
        # The deposed leader's in-flight round is abandoned, not silently
        # closed: its status names the reason.
        statuses = {s.status for s in store if not s.status.startswith("ok")}
        assert statuses <= {
            "abandoned", "stepped_down", "cancelled", "dropped",
        } | {s for s in statuses if s.startswith("aborted")}

    def test_truncated_export_flags_orphans(self, tmp_path):
        cluster = self.run_with_switch()
        path = tmp_path / "run.jsonl"
        cluster.export_timeline(str(path))
        # Simulate a torn export: drop some span lines and corrupt another.
        lines = path.read_text().splitlines()
        span_indices = [i for i, l in enumerate(lines) if '"record":"span"' in l]
        assert len(span_indices) > 10
        removed = set(span_indices[2:6])
        kept = [l for i, l in enumerate(lines) if i not in removed]
        kept.insert(len(kept) // 2, "{torn line")
        path.write_text("\n".join(kept) + "\n")

        with pytest.warns(RuntimeWarning, match="skipped 1 unparseable"):
            export = load_export(path)
        assert export.skipped == 1
        store = export.span_store()
        orphan_total = 0
        flagged_ids = set()
        for trace_id in store.trace_ids():
            tree = store.tree(trace_id)
            orphan_total += len(tree.orphans)
            flagged_ids.update(s.span_id for s in tree.orphans)
            # Orphans stay visible in walks and waterfalls.
            walked = {s.span_id for s, _d in tree.walk()}
            assert {s.span_id for s in tree.orphans} <= walked
        assert orphan_total > 0, "removing parents must surface orphans"
        exported_ids = {s.span_id for s in store}
        assert flagged_ids <= exported_ids


class TestTracingDeterminism:
    WORKLOADS = [
        pytest.param(lambda: single_kind_steps(RequestKind.WRITE, 10), id="writes"),
        pytest.param(lambda: single_kind_steps(RequestKind.READ, 10), id="reads"),
        pytest.param(lambda: paper_txn_steps("optimized", 3, 5), id="txns"),
    ]

    @staticmethod
    def run(tracing: bool, steps_factory, seed: int = 7) -> Cluster:
        spec = ClusterSpec(
            profile=make_test_profile(), seed=seed, tracing=tracing
        )
        steps = [steps_factory() for _ in range(2)]
        return Cluster(spec, steps).run().drain()

    @staticmethod
    def chosen_log_bytes(cluster: Cluster) -> dict:
        return {
            pid: pickle.dumps(replica.log.chosen_above(0))
            for pid, replica in cluster.replicas.items()
        }

    @pytest.mark.parametrize("steps_factory", WORKLOADS)
    def test_tracing_cannot_perturb_the_run(self, steps_factory):
        traced = self.run(tracing=True, steps_factory=steps_factory)
        bare = self.run(tracing=False, steps_factory=steps_factory)
        assert self.chosen_log_bytes(traced) == self.chosen_log_bytes(bare)
        assert traced.kernel.now == bare.kernel.now
        for pid in traced.replicas:
            assert (
                traced.replicas[pid].service.state_fingerprint()
                == bare.replicas[pid].service.state_fingerprint()
            )
        assert len(traced.tracer.store) > 0
        assert not bare.tracer.enabled
