"""Latency-formula conformance (§3.4): the critical-path analyzer's measured
decomposition must reproduce the paper's analytic formulas exactly on a
calibrated constant-latency profile with free CPUs —

* basic protocol writes:  ``2M + E + 2m``
* X-Paxos reads:          ``2M + max(E, m)``
* original (unreplicated): ``2M + E``  (E = 0 here: the original path
  models no separate execution delay)

``M`` and ``m`` are one-way client<->replica and replica<->replica
latencies. With deterministic links the only slack is float rounding, so
the tolerance is one scheduling quantum (1 µs), far below M or m.
"""

from __future__ import annotations

import pytest

from repro.analysis.model import LatencyModelInputs
from repro.client.workload import single_kind_steps
from repro.cluster.harness import Cluster, ClusterSpec
from repro.net.latency import ConstantLatency
from repro.net.link import LinkSpec
from repro.net.profiles import NetworkProfile
from repro.net.topology import Topology
from repro.obs.tracing import analyze_requests, conformance, summarize_paths
from repro.sim.cpu import CpuProfile
from repro.types import RequestKind

M = 400e-6   # one-way client <-> replica
SMALL_m = 150e-6  # one-way replica <-> replica
QUANTUM = 1e-6  # acceptance tolerance: one scheduling quantum


def calibrated_profile(client_replica: float = M, replica_replica: float = SMALL_m):
    def builder(replicas, clients):
        link = lambda latency: LinkSpec(  # noqa: E731
            latency=ConstantLatency(latency), jitter_reorder=False
        )
        topo = Topology(default=link(client_replica))
        topo.place_all(list(replicas), "srv")
        topo.place_all(list(clients), "cli")
        topo.set_intra("srv", link(replica_replica))
        topo.set_intra("cli", link(client_replica))
        return topo

    return NetworkProfile(
        name="calibrated",
        description=f"constant M={client_replica} m={replica_replica}",
        replica_cpu=CpuProfile(),
        client_cpu=CpuProfile(),
        paper_rrt={},
        _builder=builder,
        per_connection_overhead=0.0,
    )


def run_traced(kind: RequestKind, execute_time: float = 0.0, requests: int = 8):
    spec = ClusterSpec(
        profile=calibrated_profile(),
        tracing=True,
        execute_time=execute_time,
        seed=0,
    )
    cluster = Cluster(spec, [single_kind_steps(kind, requests)])
    cluster.run(max_time=60.0).drain()
    return cluster


def paths_of(cluster):
    paths = analyze_requests(cluster.tracer.store)
    assert paths and all(p.complete for p in paths)
    return paths


class TestWriteConformance:
    @pytest.mark.parametrize("execute", [0.0, 300e-6], ids=["E0", "E300us"])
    def test_write_rrt_is_2M_E_2m(self, execute):
        cluster = run_traced(RequestKind.WRITE, execute_time=execute)
        paths = paths_of(cluster)
        model = LatencyModelInputs(
            client_replica=M, replica_replica=SMALL_m, execute=execute
        )
        row = conformance(paths, model)["write"]
        assert row.formula == "2M + E + 2m"
        assert abs(row.deviation) < QUANTUM
        # And the decomposition itself lands on the right components.
        summary = summarize_paths(paths)["write"]
        assert summary.mean["M"] == pytest.approx(2 * M, abs=QUANTUM)
        assert summary.mean["E"] == pytest.approx(execute, abs=QUANTUM)
        assert summary.mean["m"] == pytest.approx(2 * SMALL_m, abs=QUANTUM)
        assert summary.mean["other"] == pytest.approx(0.0, abs=QUANTUM)


class TestReadConformance:
    @pytest.mark.parametrize("execute", [0.0, 300e-6], ids=["E<m", "E>m"])
    def test_read_rrt_is_2M_max_E_m(self, execute):
        cluster = run_traced(RequestKind.READ, execute_time=execute)
        paths = paths_of(cluster)
        model = LatencyModelInputs(
            client_replica=M, replica_replica=SMALL_m, execute=execute
        )
        row = conformance(paths, model)["read"]
        assert row.formula == "2M + max(E, m)"
        assert row.expected == pytest.approx(2 * M + max(execute, SMALL_m))
        assert abs(row.deviation) < QUANTUM
        # The binding constraint shows up in the attribution: confirms (m)
        # bound the read when m > E; execution (E) when E > m.
        summary = summarize_paths(paths)["read"]
        if execute > SMALL_m:
            assert summary.mean["E"] == pytest.approx(execute, abs=QUANTUM)
        else:
            assert summary.mean["m"] == pytest.approx(SMALL_m, abs=QUANTUM)

    def test_disabled_xpaxos_reads_held_to_write_formula(self):
        spec = ClusterSpec(
            profile=calibrated_profile(), tracing=True, xpaxos_reads=False, seed=0
        )
        cluster = Cluster(spec, [single_kind_steps(RequestKind.READ, 6)])
        cluster.run(max_time=60.0).drain()
        paths = paths_of(cluster)
        model = LatencyModelInputs(client_replica=M, replica_replica=SMALL_m, execute=0.0)
        row = conformance(paths, model, xpaxos_reads=False)["read"]
        assert row.formula == "2M + E + 2m"
        assert abs(row.deviation) < QUANTUM


class TestOriginalConformance:
    def test_original_rrt_is_2M(self):
        cluster = run_traced(RequestKind.ORIGINAL)
        paths = paths_of(cluster)
        model = LatencyModelInputs(client_replica=M, replica_replica=SMALL_m, execute=0.0)
        row = conformance(paths, model)["original"]
        assert row.formula == "2M + E"
        assert abs(row.deviation) < QUANTUM
