"""Split-brain safety: a deposed leader in a minority partition must never
commit, and must fold back cleanly when the partition heals."""

from __future__ import annotations

import pytest

from repro.client.workload import single_kind_steps
from repro.cluster.faults import FaultSchedule
from repro.core.replica import ReplicaRole
from repro.services.counter import CounterService
from repro.services.kvstore import KVStoreService
from repro.types import RequestKind
from tests.integration.util import build_cluster


class TestMinorityLeader:
    def build(self, n_writes=20, **kw):
        steps = single_kind_steps(RequestKind.WRITE, n_writes, op=("add", 1))
        kw.setdefault("service_factory", CounterService)
        kw.setdefault("elector", "manual")
        kw.setdefault("client_timeout", 0.05)
        return build_cluster([steps], **kw)

    def test_minority_leader_commits_nothing(self):
        cluster = self.build()
        schedule = FaultSchedule(cluster)
        # Cut r0 (still believing it leads) from r1, r2. Clients can reach
        # everyone, so r0 keeps receiving and queueing requests.
        schedule.partition([["r0"], ["r1", "r2"]], at=0.001)
        cluster.start()
        cluster.kernel.run(until=1.0)
        r0 = cluster.replicas["r0"]
        assert r0.log.frontier == 0
        assert cluster.clients[0].completed_requests == 0

    def test_majority_side_takes_over_and_serves(self):
        cluster = self.build()
        schedule = FaultSchedule(cluster)
        schedule.partition([["r0"], ["r1", "r2"]], at=0.001)
        # The majority side elects r1 (r0's elector still says r0 — a real
        # split-brain view).
        for pid in ("r1", "r2"):
            cluster.kernel.schedule_at(
                0.01, cluster.manual_electors.electors[pid].set_leader, "r1"
            )
        cluster.run(max_time=60.0)
        assert cluster.clients[0].completed_requests == 20
        assert cluster.replicas["r1"].role is ReplicaRole.LEADING

    def test_heal_deposes_old_leader_without_divergence(self):
        cluster = self.build()
        schedule = FaultSchedule(cluster)
        schedule.partition([["r0"], ["r1", "r2"]], at=0.001)
        for pid in ("r1", "r2"):
            cluster.kernel.schedule_at(
                0.01, cluster.manual_electors.electors[pid].set_leader, "r1"
            )
        schedule.heal(at=0.5)
        # After healing, tell r0's elector the truth too (a real Ω would).
        cluster.kernel.schedule_at(
            0.6, cluster.manual_electors.electors["r0"].set_leader, "r1"
        )
        cluster.run(max_time=60.0)
        cluster.drain(3.0)
        assert cluster.replicas["r0"].role is ReplicaRole.FOLLOWER
        values = {r.service.value for r in cluster.replicas.values()}
        assert values == {20}

    def test_old_leader_nacked_if_it_retries_after_heal(self):
        # r0 keeps believing it leads even after the heal; its stale-ballot
        # rounds are Nacked and it steps down, never corrupting anything.
        cluster = self.build()
        schedule = FaultSchedule(cluster)
        schedule.partition([["r0"], ["r1", "r2"]], at=0.001)
        for pid in ("r1", "r2"):
            cluster.kernel.schedule_at(
                0.01, cluster.manual_electors.electors[pid].set_leader, "r1"
            )
        schedule.heal(at=0.3)
        cluster.run(max_time=60.0)
        cluster.drain(3.0)
        r0 = cluster.replicas["r0"]
        # r0 retried leadership across the heal and got preempted at least
        # once (its elector never changed its mind), or is still harmlessly
        # recovering with stale ballots; either way nothing diverged.
        values = {r.service.value for r in cluster.replicas.values()}
        assert values == {20}
        assert r0.applied == 20  # it caught up as an acceptor

    def test_reads_never_served_by_minority_leader(self):
        steps = single_kind_steps(RequestKind.READ, 5)
        cluster = build_cluster(
            [steps], service_factory=KVStoreService,
            elector="manual", client_timeout=0.05,
        )
        schedule = FaultSchedule(cluster)
        schedule.partition([["r0"], ["r1", "r2"]], at=0.001)
        cluster.start()
        cluster.kernel.run(until=1.0)
        # No confirms can reach r0: zero reads served.
        assert cluster.replicas["r0"].reads.served == 0
        assert cluster.clients[0].completed_requests == 0
