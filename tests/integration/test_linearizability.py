"""End-to-end linearizability: concurrent clients' reads and writes of one
register, checked with the Wing-&-Gong searcher.

This is the strongest form of the §3.4 consistency requirement ("a read
must reflect the latest update") under concurrency.
"""

from __future__ import annotations

import pytest

from repro.analysis.linearizability import check_register, history_from_clients
from repro.client.workload import Step, single_kind_steps
from repro.cluster.faults import FaultSchedule
from repro.services.kvstore import KVStoreService
from repro.types import RequestKind
from tests.integration.util import build_cluster

KEY = "x"


def writer_steps(client_index: int, n: int):
    return single_kind_steps(
        RequestKind.WRITE, n, op=lambda i: ("put", KEY, f"c{client_index}-{i}")
    )


def reader_steps(n: int):
    return single_kind_steps(RequestKind.READ, n, op=("get", KEY))


class TestLinearizability:
    def test_one_writer_two_readers(self):
        cluster = build_cluster(
            [writer_steps(0, 20), reader_steps(25), reader_steps(25)],
            service_factory=KVStoreService,
            seed=31,
        ).run()
        history = history_from_clients(cluster.clients, KEY)
        assert len(history) == 70
        assert check_register(history, initial=None)

    def test_two_writers_two_readers(self):
        cluster = build_cluster(
            [
                writer_steps(0, 15),
                writer_steps(1, 15),
                reader_steps(20),
                reader_steps(20),
            ],
            service_factory=KVStoreService,
            seed=32,
        ).run()
        history = history_from_clients(cluster.clients, KEY)
        assert check_register(history, initial=None)

    def test_mixed_clients(self):
        def mixed(client_index: int):
            steps = []
            for i in range(12):
                if i % 3 == 2:
                    steps.append(Step(requests=((RequestKind.READ, ("get", KEY)),)))
                else:
                    steps.append(
                        Step(requests=((RequestKind.WRITE, ("put", KEY, f"m{client_index}-{i}")),))
                    )
            return steps

        cluster = build_cluster(
            [mixed(0), mixed(1), mixed(2)], service_factory=KVStoreService, seed=33
        ).run()
        history = history_from_clients(cluster.clients, KEY)
        assert check_register(history, initial=None)

    def test_linearizable_across_leader_switch(self):
        # Deterministic unique-value writes: re-execution after a switch is
        # identical, so the history must stay linearizable.
        cluster = build_cluster(
            [writer_steps(0, 20), reader_steps(25)],
            service_factory=KVStoreService,
            elector="manual",
            client_timeout=0.05,
            seed=34,
        )
        FaultSchedule(cluster).switch_leader("r1", at=0.02)
        cluster.run(max_time=30.0)
        history = history_from_clients(cluster.clients, KEY)
        assert check_register(history, initial=None)

    def test_checker_would_catch_a_stale_read(self):
        """Sanity: corrupt one read in a real history and the checker fails."""
        from repro.analysis.linearizability import Op

        cluster = build_cluster(
            [writer_steps(0, 10), reader_steps(10)],
            service_factory=KVStoreService,
            seed=35,
        ).run()
        history = history_from_clients(cluster.clients, KEY)
        assert check_register(history, initial=None)
        # Replace the final read's value with the very first write's value.
        writes = [op for op in history if op.kind == "write"]
        reads = [op for op in history if op.kind == "read"]
        last_read = max(reads, key=lambda op: op.invoked)
        corrupted = [op for op in history if op is not last_read]
        # Only corrupt if the last read genuinely saw a later value.
        if last_read.value != writes[0].value and last_read.invoked > writes[-1].completed:
            corrupted.append(
                Op("read", writes[0].value, last_read.invoked, last_read.completed)
            )
            assert not check_register(corrupted, initial=None)
