"""Integration tests for the stable-storage subsystem: fsync modes end to
end, crash-restart WAL replay vs peer state transfer, storage nemeses, and
crashes landing mid-catch-up on every protocol."""

from __future__ import annotations

import pickle

import pytest

from repro.client.workload import Step, single_kind_steps, txn_steps
from repro.cluster.faults import FaultSchedule
from repro.services.counter import CounterService
from repro.services.kvstore import KVStoreService
from repro.types import RequestKind
from tests.integration.util import build_cluster, converged_fingerprints


def write_steps(count: int):
    return single_kind_steps(RequestKind.WRITE, count, op=("add", 1))


def storage_counter(cluster, name: str) -> int:
    """Sum of one storage counter over all replicas (scoped as proc.<pid>)."""
    return sum(
        value
        for key, value in cluster.metrics.counters().items()
        if key.endswith(f"storage.{name}")
    )


class TestFsyncModes:
    def test_sync_mode_completes_and_converges(self):
        cluster = build_cluster(
            [write_steps(20)], service_factory=CounterService, fsync="sync"
        )
        cluster.run(max_time=30.0)
        assert cluster.clients[0].completed_requests == 20
        prints = converged_fingerprints(cluster)
        assert len(set(prints.values())) == 1
        assert storage_counter(cluster, "fsyncs") > 0
        assert storage_counter(cluster, "appends") > 0

    def test_group_mode_batches_fsyncs(self):
        cluster = build_cluster(
            [write_steps(20)], service_factory=CounterService, fsync="group"
        )
        cluster.run(max_time=30.0)
        assert cluster.clients[0].completed_requests == 20
        assert len(set(converged_fingerprints(cluster).values())) == 1
        # Group commit exists to ride many appends on one fsync.
        fsyncs = storage_counter(cluster, "fsyncs")
        assert 0 < fsyncs < storage_counter(cluster, "appends")

    def test_sync_mode_is_slower_than_async(self):
        # Durability barriers cost modeled time; the same workload must
        # finish strictly later when every barrier waits for the platter.
        def finish(fsync):
            cluster = build_cluster(
                [write_steps(10)], service_factory=CounterService, fsync=fsync
            )
            cluster.run(max_time=30.0)
            return max(
                r.completed_at for r in cluster.clients[0].request_records()
            )

        assert finish("sync") > finish("async")

    def test_async_mode_is_deterministic(self):
        def probe():
            cluster = build_cluster(
                [write_steps(15)], service_factory=CounterService, fsync="async"
            )
            cluster.run(max_time=30.0)
            records = [
                (str(r.rid), r.sent_at, r.completed_at)
                for r in cluster.clients[0].request_records()
            ]
            return records, dict(cluster.metrics.counters())

        assert probe() == probe()


class TestCrashRestartReplay:
    def test_replayed_log_matches_peer_rebuild(self):
        # Acceptance: after a crash-restart, the chosen log the replica
        # rebuilds from checkpoint + WAL replay (plus catch-up) must be
        # byte-identical to what its never-crashed peer holds.
        steps = single_kind_steps(
            RequestKind.WRITE, 30, op=lambda i: ("put", i, i)
        )
        cluster = build_cluster(
            [steps], service_factory=KVStoreService, fsync="sync", seed=3
        )
        FaultSchedule(cluster).crash("r1", at=0.05).recover("r1", at=0.4)
        cluster.run(max_time=60.0)
        assert cluster.clients[0].completed_requests == 30
        prints = converged_fingerprints(cluster)
        assert len(set(prints.values())) == 1
        restarted = cluster.replicas["r1"]
        peer = cluster.replicas["r2"]
        assert restarted.alive
        assert restarted.stats["recovers"] >= 1
        peer_chosen = dict(peer.log.chosen_items())
        mine = dict(restarted.log.chosen_items())
        common = sorted(set(mine) & set(peer_chosen))
        assert common, "no overlapping chosen instances to compare"
        for instance in common:
            assert pickle.dumps(mine[instance]) == pickle.dumps(
                peer_chosen[instance]
            ), f"instance {instance} diverges after replay"

    def test_restart_replays_the_wal(self):
        cluster = build_cluster(
            [write_steps(20)], service_factory=CounterService, fsync="sync"
        )
        FaultSchedule(cluster).crash("r1", at=0.05).recover("r1", at=0.3)
        cluster.run(max_time=60.0)
        cluster.drain(1.0)  # the workload may finish before the recover fires
        assert storage_counter(cluster, "replays") >= 1
        assert cluster.replicas["r1"].alive
        assert len(set(converged_fingerprints(cluster).values())) == 1


class TestStorageNemeses:
    def test_torn_write_truncates_tail_and_rejoins(self):
        cluster = build_cluster(
            [write_steps(25)], service_factory=CounterService, fsync="group",
            seed=2,
        )
        schedule = FaultSchedule(cluster)
        schedule.torn_write("r1", at=0.02)
        schedule.crash("r1", at=0.03).recover("r1", at=0.3)
        cluster.run(max_time=60.0)
        cluster.drain(1.0)
        counters = cluster.metrics.counters()
        assert counters["fault.torn_write"] == 1
        assert cluster.replicas["r1"].alive  # torn tails are survivable
        assert cluster.clients[0].completed_requests == 25
        assert len(set(converged_fingerprints(cluster).values())) == 1

    def test_lost_fsync_crash_fail_stops(self):
        cluster = build_cluster(
            [write_steps(25)], service_factory=CounterService, fsync="sync",
            seed=4,
        )
        schedule = FaultSchedule(cluster)
        schedule.lost_fsync("r1", at=0.01, duration=0.05)
        schedule.crash("r1", at=0.03).recover("r1", at=0.3)
        cluster.run(max_time=60.0)
        cluster.drain(1.0)
        restarted = cluster.replicas["r1"]
        assert not restarted.alive  # rejoining would be Byzantine
        assert restarted.stats["storage_failstops"] == 1
        assert not restarted.store.intact
        assert storage_counter(cluster, "halts") >= 1
        # The cluster rides out the fail-stop on the remaining majority.
        assert cluster.clients[0].completed_requests == 25
        assert len(set(converged_fingerprints(cluster).values())) == 1

    def test_corrupt_record_fail_stops_on_restart(self):
        cluster = build_cluster(
            [write_steps(25)], service_factory=CounterService, fsync="sync",
            seed=5,
        )
        schedule = FaultSchedule(cluster)
        schedule.corrupt_record("r1", at=0.05, fraction=0.3)
        schedule.crash("r1", at=0.06).recover("r1", at=0.3)
        cluster.run(max_time=60.0)
        cluster.drain(1.0)
        restarted = cluster.replicas["r1"]
        assert not restarted.alive
        assert restarted.stats["storage_failstops"] == 1
        assert cluster.clients[0].completed_requests == 25


def protocol_cluster(protocol: str, **overrides):
    if protocol == "tpaxos":
        steps = txn_steps(
            8, lambda i: (("put", f"k{i}", i), ("put", f"j{i}", i)), optimized=True
        )
        service = KVStoreService
    elif protocol == "xpaxos":
        steps = []
        for i in range(12):
            steps.append(Step(requests=((RequestKind.WRITE, ("put", "k", i)),)))
            steps.append(Step(requests=((RequestKind.READ, ("get", "k")),)))
        service = KVStoreService
    else:
        steps = single_kind_steps(RequestKind.WRITE, 20, op=("add", 1))
        service = CounterService
    return build_cluster(
        [steps],
        service_factory=service,
        xpaxos_reads=protocol == "xpaxos",
        tpaxos=protocol == "tpaxos",
        **overrides,
    )


class TestCrashMidCatchUp:
    """A replica that crashes again while installing a snapshot / catching
    up must converge after its second restart, on every protocol."""

    @pytest.mark.parametrize("protocol", ("basic", "xpaxos", "tpaxos"))
    def test_double_crash_through_catch_up_converges(self, protocol):
        cluster = protocol_cluster(
            protocol, fsync="group", checkpoint_interval=5, seed=7
        )
        schedule = FaultSchedule(cluster)
        # First outage long enough that the leader checkpoints past r1's
        # log, forcing snapshot install on rejoin; the second crash lands
        # right in that window.
        schedule.crash("r1", at=0.02).recover("r1", at=0.35)
        schedule.crash("r1", at=0.352).recover("r1", at=0.5)
        cluster.run(max_time=60.0)  # a ProtocolError here fails the test
        cluster.drain(2.0)  # fire the restarts and let catch-up finish
        assert cluster.replicas["r1"].alive
        assert cluster.replicas["r1"].stats["recovers"] >= 2
        prints = converged_fingerprints(cluster)
        assert len(set(prints.values())) == 1
