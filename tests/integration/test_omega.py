"""Integration: full stack on the Ω elector — crash the leader, let the
heartbeat timeouts drive failover with no external intervention."""

from __future__ import annotations

import pytest

from repro.client.workload import single_kind_steps
from repro.cluster.faults import FaultSchedule
from repro.core.replica import ReplicaRole
from repro.services.counter import CounterService
from repro.types import RequestKind
from tests.integration.util import build_cluster, converged_fingerprints


def omega_cluster(steps, **kw):
    kw.setdefault("elector", "omega")
    kw.setdefault("omega_heartbeat", 0.02)
    kw.setdefault("omega_timeout", 0.1)
    kw.setdefault("client_timeout", 0.15)
    return build_cluster(steps, **kw)


class TestOmegaFailover:
    def test_normal_operation_elects_r0(self):
        cluster = omega_cluster([single_kind_steps(RequestKind.WRITE, 10)])
        cluster.run(max_time=30.0)
        assert cluster.clients[0].completed_requests == 10
        assert cluster.replicas["r0"].role is ReplicaRole.LEADING

    def test_leader_crash_fails_over_automatically(self):
        steps = single_kind_steps(RequestKind.WRITE, 30, op=("add", 1))
        cluster = omega_cluster([steps], service_factory=CounterService, seed=21)
        FaultSchedule(cluster).crash_leader(at=0.06)
        cluster.run(max_time=60.0)
        assert cluster.clients[0].completed_requests == 30
        assert cluster.replicas["r1"].role is ReplicaRole.LEADING
        cluster.drain(2.0)
        alive = {p: r.service.value for p, r in cluster.replicas.items() if r.alive}
        assert set(alive.values()) == {30}

    def test_recovered_old_leader_does_not_destabilize(self):
        # §3.6 stability: r0 coming back must not depose r1.
        steps = single_kind_steps(RequestKind.WRITE, 40, op=("add", 1))
        cluster = omega_cluster([steps], service_factory=CounterService, seed=22)
        schedule = FaultSchedule(cluster)
        schedule.crash_leader(at=0.05)
        schedule.recover("r0", at=0.5)
        cluster.run(max_time=60.0)
        assert cluster.replicas["r1"].role is ReplicaRole.LEADING
        assert cluster.replicas["r0"].role is ReplicaRole.FOLLOWER
        assert cluster.clients[0].completed_requests == 40
        cluster.drain(2.0)
        values = {r.service.value for r in cluster.replicas.values() if r.alive}
        assert values == {30 + 10}

    def test_double_failover(self):
        steps = single_kind_steps(RequestKind.WRITE, 40, op=("add", 1))
        cluster = omega_cluster([steps], service_factory=CounterService, seed=23)
        schedule = FaultSchedule(cluster)
        schedule.crash("r0", at=0.05)
        schedule.recover("r0", at=0.6)
        schedule.crash("r1", at=1.2)
        cluster.run(max_time=120.0)
        assert cluster.clients[0].completed_requests == 40
        cluster.drain(2.0)
        values = {r.service.value for r in cluster.replicas.values() if r.alive}
        assert values == {40}
