"""Shared helpers for integration tests."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.client.workload import Step
from repro.cluster.harness import Cluster, ClusterSpec
from repro.services.base import Service
from repro.services.noop import NoopService
from repro.types import StateTransferMode
from tests.conftest import make_test_profile


def build_cluster(
    client_steps: Sequence[Sequence[Step]],
    service_factory: Callable[[], Service] = NoopService,
    latency: float = 1e-3,
    seed: int = 0,
    **spec_overrides,
) -> Cluster:
    """A 3-replica cluster on the flat constant-latency test profile."""
    spec_overrides.setdefault("client_timeout", 0.2)
    spec = ClusterSpec(profile=make_test_profile(latency), seed=seed, **spec_overrides)
    return Cluster(spec, client_steps, service_factory=service_factory)


def converged_fingerprints(cluster: Cluster, grace: float = 1.0) -> dict:
    """Run the drain period and return all alive replicas' fingerprints."""
    cluster.drain(grace)
    return cluster.replica_fingerprints()
