"""State-transfer modes (§3.3): equivalence and size characteristics."""

from __future__ import annotations

import pytest

from repro.client.workload import paper_txn_steps, single_kind_steps
from repro.core.messages import AcceptBatch
from repro.services.kvstore import KVStoreService
from repro.services.noop import NoopService
from repro.types import RequestKind, StateTransferMode
from tests.integration.util import build_cluster, converged_fingerprints

MODES = [StateTransferMode.FULL, StateTransferMode.DELTA, StateTransferMode.REPRO]


class TestEquivalence:
    @pytest.mark.parametrize("mode", MODES)
    def test_kvstore_final_state_identical(self, mode):
        steps = single_kind_steps(
            RequestKind.WRITE, 20, op=lambda i: ("put", i % 5, i)
        )
        cluster = build_cluster(
            [steps], service_factory=KVStoreService, state_mode=mode
        ).run()
        prints = converged_fingerprints(cluster)
        assert len(set(prints.values())) == 1
        expected = tuple(sorted({i % 5: 15 + i % 5 for i in range(5)}.items(), key=repr))
        assert set(prints.values()) == {expected}

    @pytest.mark.parametrize("mode", MODES)
    def test_transactions_work_under_all_modes(self, mode):
        cluster = build_cluster(
            [paper_txn_steps("optimized", 3, 5)], state_mode=mode
        ).run()
        assert cluster.clients[0].completed_steps == 5
        prints = converged_fingerprints(cluster)
        assert set(prints.values()) == {15}  # 5 txns x 3 writes


class TestPayloadSizes:
    def payload_bytes(self, mode, state_size):
        cluster = build_cluster(
            [single_kind_steps(RequestKind.WRITE, 5)],
            service_factory=lambda: NoopService(state_size=state_size),
            state_mode=mode,
            trace=True,
        ).run()
        sizes = [
            e.detail.entries[0][1].payload.size_hint()
            for e in cluster.trace.of_kind("send")
            if isinstance(e.detail, AcceptBatch) and e.detail.entries
        ]
        assert sizes
        return sum(sizes) / len(sizes)

    def test_full_mode_grows_with_state(self):
        small = self.payload_bytes(StateTransferMode.FULL, state_size=10)
        large = self.payload_bytes(StateTransferMode.FULL, state_size=100_000)
        assert large > 50 * small

    def test_delta_mode_independent_of_state_size(self):
        small = self.payload_bytes(StateTransferMode.DELTA, state_size=10)
        large = self.payload_bytes(StateTransferMode.DELTA, state_size=100_000)
        assert large == pytest.approx(small, rel=0.1)

    def test_repro_mode_independent_of_state_size(self):
        small = self.payload_bytes(StateTransferMode.REPRO, state_size=10)
        large = self.payload_bytes(StateTransferMode.REPRO, state_size=100_000)
        assert large == pytest.approx(small, rel=0.1)

    def test_delta_smaller_than_full_for_big_state(self):
        full = self.payload_bytes(StateTransferMode.FULL, state_size=100_000)
        delta = self.payload_bytes(StateTransferMode.DELTA, state_size=100_000)
        assert delta < full / 100
