"""Message-complexity conformance: the per-type counters must match the
protocol analysis of §3.4 *exactly* in the failure-free case.

On the featureless test profile (constant latency, no loss, free CPUs, one
closed-loop client) there are no retransmits and no ambient traffic inside
the measured window, so the counts are sharp:

* original:     n requests + 1 reply
* X-Paxos read: n requests + (n-1) confirms + 1 reply
* basic write:  n requests + (n-1) accepts + (n-1) acks + (n-1) chosen + 1 reply

Startup recovery on an empty log runs a Prepare/Promise round but proposes
nothing, so the Accept-family counters are purely per-request traffic.
"""

from __future__ import annotations

import pytest

from repro.client.workload import paper_txn_steps, single_kind_steps
from repro.cluster.harness import Cluster, ClusterSpec
from repro.types import RequestKind
from tests.conftest import make_test_profile

R = 20  # requests per run; short enough that no frontier probe fires


def run_kind(kind: RequestKind, n_replicas: int = 3) -> Cluster:
    spec = ClusterSpec(profile=make_test_profile(), n_replicas=n_replicas, seed=2)
    return Cluster(spec, [single_kind_steps(kind, R)]).run()


class TestWriteComplexity:
    @pytest.mark.parametrize("n", [3, 5])
    def test_accept_family_counts(self, n):
        counters = run_kind(RequestKind.WRITE, n_replicas=n).metrics
        assert counters.counter_value("msg.send.AcceptBatch") == R * (n - 1)
        assert counters.counter_value("msg.send.AcceptedBatch") == R * (n - 1)
        assert counters.counter_value("msg.send.ChosenBatch") == R * (n - 1)
        assert counters.counter_value("msg.send.ClientRequest") == R * n
        assert counters.counter_value("msg.send.Reply") == R
        # Failure-free run on a lossless network: everything delivered.
        assert counters.counter_value("msg.deliver.AcceptBatch") == R * (n - 1)
        assert sum(counters.counters("msg.drop.").values()) == 0

    def test_total_matches_table_formula(self):
        n = 3
        cluster = run_kind(RequestKind.WRITE, n_replicas=n)
        counters = cluster.metrics
        protocol = sum(
            counters.counter_value(f"msg.send.{t}")
            for t in ("ClientRequest", "AcceptBatch", "AcceptedBatch", "ChosenBatch", "Reply")
        )
        assert protocol == R * (n + 3 * (n - 1) + 1)  # n=3: 10 per request

    def test_per_process_split(self):
        n = 3
        cluster = run_kind(RequestKind.WRITE, n_replicas=n)
        counters = cluster.metrics
        # Only the leader proposes and replies.
        assert counters.counter_value("proc.r0.send.AcceptBatch") == R * (n - 1)
        assert counters.counter_value("proc.r0.send.ChosenBatch") == R * (n - 1)
        assert counters.counter_value("proc.r0.send.Reply") == R
        # Each backup acks every accept round once.
        for pid in ("r1", "r2"):
            assert counters.counter_value(f"proc.{pid}.send.AcceptedBatch") == R
            assert counters.counter_value(f"proc.{pid}.send.AcceptBatch") == 0


class TestReadComplexity:
    def test_xpaxos_read_counts(self):
        n = 3
        counters = run_kind(RequestKind.READ, n_replicas=n).metrics
        assert counters.counter_value("msg.send.ClientRequest") == R * n
        assert counters.counter_value("msg.send.Confirm") == R * (n - 1)
        assert counters.counter_value("msg.send.Reply") == R
        # Reads are never ordered: no accept rounds at all.
        assert counters.counter_value("msg.send.AcceptBatch") == 0
        assert counters.counter_value("msg.send.ChosenBatch") == 0


class TestOriginalComplexity:
    def test_unreplicated_baseline_counts(self):
        n = 3
        counters = run_kind(RequestKind.ORIGINAL, n_replicas=n).metrics
        assert counters.counter_value("msg.send.ClientRequest") == R * n
        assert counters.counter_value("msg.send.Reply") == R
        assert counters.counter_value("msg.send.AcceptBatch") == 0
        assert counters.counter_value("msg.send.Confirm") == 0


class TestTransactionComplexity:
    def test_one_consensus_instance_per_txn(self):
        n, txns, ops = 3, 10, 3
        spec = ClusterSpec(profile=make_test_profile(), n_replicas=n, seed=2)
        cluster = Cluster(spec, [paper_txn_steps("optimized", ops, txns)]).run()
        counters = cluster.metrics
        # T-Paxos's whole point: ops replicate nothing; only the commit
        # runs a write-shaped accept round — one instance per transaction.
        assert counters.counter_value("msg.send.AcceptBatch") == txns * (n - 1)
        assert counters.counter_value("msg.send.AcceptedBatch") == txns * (n - 1)
        assert counters.counter_value("msg.send.ChosenBatch") == txns * (n - 1)
        # ops + commit each: client broadcast to n, one reply.
        requests_per_txn = ops + 1
        assert counters.counter_value("msg.send.ClientRequest") == txns * requests_per_txn * n
        assert counters.counter_value("msg.send.Reply") == txns * requests_per_txn
        assert counters.counter_value("proc.r0.tpaxos.commits") == txns
