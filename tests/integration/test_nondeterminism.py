"""The paper's motivating claim, demonstrated end to end:

classic Multi-Paxos (SMR: replicate the request, re-execute everywhere)
keeps *deterministic* services consistent but lets *nondeterministic*
services diverge; the paper's protocol keeps both consistent.
"""

from __future__ import annotations

import pytest

from repro.client.workload import single_kind_steps
from repro.services.broker import ResourceBrokerService
from repro.services.counter import CounterService
from repro.services.gridsched import GridSchedulerService
from repro.services.kvstore import KVStoreService
from repro.types import RequestKind, StateTransferMode
from tests.integration.util import build_cluster, converged_fingerprints


def broker_factory():
    service = ResourceBrokerService()
    for i in range(8):
        service.resources[f"node{i}"] = [100.0, 0.0]
    return service


def broker_steps(n):
    return single_kind_steps(
        RequestKind.WRITE, n, op=lambda i: ("request", f"task{i}", 10)
    )


class TestSMRBaseline:
    def test_smr_correct_for_deterministic_service(self):
        steps = single_kind_steps(RequestKind.WRITE, 20, op=lambda i: ("put", i, i))
        cluster = build_cluster(
            [steps],
            service_factory=KVStoreService,
            state_mode=StateTransferMode.SMR,
        ).run()
        prints = converged_fingerprints(cluster)
        assert len(set(prints.values())) == 1

    def test_smr_diverges_on_randomized_broker(self):
        cluster = build_cluster(
            [broker_steps(30)],
            service_factory=broker_factory,
            state_mode=StateTransferMode.SMR,
            seed=11,
        ).run()
        prints = converged_fingerprints(cluster)
        # Replicas drew from independent RNG streams: placements differ.
        assert len(set(prints.values())) > 1

    def test_smr_diverges_on_nondeterministic_counter(self):
        steps = single_kind_steps(RequestKind.WRITE, 30, op=("add_random", 1, 1000))
        cluster = build_cluster(
            [steps],
            service_factory=CounterService,
            state_mode=StateTransferMode.SMR,
            seed=11,
        ).run()
        prints = converged_fingerprints(cluster)
        assert len(set(prints.values())) > 1


class TestNondeterministicProtocol:
    @pytest.mark.parametrize(
        "mode",
        [StateTransferMode.FULL, StateTransferMode.DELTA, StateTransferMode.REPRO],
    )
    def test_broker_converges_under_all_transfer_modes(self, mode):
        cluster = build_cluster(
            [broker_steps(30)],
            service_factory=broker_factory,
            state_mode=mode,
            seed=11,
        ).run()
        prints = converged_fingerprints(cluster)
        assert len(set(prints.values())) == 1
        # And the leader actually used randomness: tasks spread over nodes.
        placements = cluster.leader().service.placements
        assert len({resource for resource, _d in placements.values()}) > 1

    def test_grid_scheduler_converges(self):
        """The §2 scheduler example: decisions depend on examination time,
        yet replicas end with identical queues and dispatch orders."""
        from repro.client.workload import Step

        steps = []
        for i in range(10):
            steps.append(
                Step(requests=((RequestKind.WRITE, ("submit", f"job{i}", i % 3)),))
            )
        for _ in range(5):
            steps.append(Step(requests=((RequestKind.WRITE, ("dispatch",)),)))
        cluster = build_cluster(
            [steps],
            service_factory=GridSchedulerService,
            state_mode=StateTransferMode.REPRO,
            seed=13,
        ).run()
        prints = converged_fingerprints(cluster)
        assert len(set(prints.values())) == 1
        dispatched = cluster.leader().service.dispatched
        assert len(dispatched) == 5

    def test_broker_converges_across_leader_switch(self):
        from repro.cluster.faults import FaultSchedule

        cluster = build_cluster(
            [broker_steps(30)],
            service_factory=broker_factory,
            state_mode=StateTransferMode.REPRO,
            elector="manual",
            client_timeout=0.05,
            seed=17,
        )
        FaultSchedule(cluster).switch_leader("r1", at=0.025)
        cluster.run(max_time=30.0)
        prints = converged_fingerprints(cluster)
        assert len(set(prints.values())) == 1
        assert cluster.clients[0].completed_requests == 30
