"""End-to-end sharded replication: two groups per process, routed by key,
one shared simulated disk per process, chaos-clean under faults."""

from __future__ import annotations

import pickle

from repro.chaos.runner import ChaosOptions, run_chaos
from repro.client.workload import single_kind_steps
from repro.cluster.faults import FaultSchedule
from repro.services.kvstore import KVStoreService
from repro.shard.router import ShardRouter
from repro.types import RequestKind
from tests.integration.util import build_cluster, converged_fingerprints

# crc32 % 2 puts these on opposite shards (see test_shard_router golden
# values); every test below leans on that placement.
G0_KEY = "alpha"  # group 0
G1_KEY = "x"  # group 1


def keyed_write_steps(count: int, prefix: str):
    def op(index):
        key = G0_KEY if index % 2 == 0 else G1_KEY
        return ("put", key, f"{prefix}:{index}")

    return single_kind_steps(RequestKind.WRITE, count, op=op)


def test_key_placement_assumption():
    router = ShardRouter(2)
    assert router.group_for_key(G0_KEY) == 0
    assert router.group_for_key(G1_KEY) == 1


class TestTwoGroups:
    def test_converges_per_group_with_disjoint_keyspaces(self):
        cluster = build_cluster(
            [keyed_write_steps(12, "c0"), keyed_write_steps(12, "c1")],
            service_factory=KVStoreService,
            groups=2,
        )
        cluster.run(max_time=30.0)
        assert all(c.completed_requests == 12 for c in cluster.clients)

        prints = converged_fingerprints(cluster)
        # Every process hosts (and reports) both groups...
        assert sorted(prints) == [
            f"r{i}/g{g}" for i in range(3) for g in range(2)
        ]
        # ...replicas of one group agree, and the two shards differ.
        g0 = {v for k, v in prints.items() if k.endswith("/g0")}
        g1 = {v for k, v in prints.items() if k.endswith("/g1")}
        assert len(g0) == 1 and len(g1) == 1
        assert g0 != g1

        # The router's word is law: each shard holds only its own keys.
        for host in cluster.replicas.values():
            assert set(host.groups[0].service.data) == {G0_KEY}
            assert set(host.groups[1].service.data) == {G1_KEY}

    def test_groups_elect_distinct_leaders(self):
        cluster = build_cluster(
            [keyed_write_steps(4, "c0")], service_factory=KVStoreService, groups=2
        )
        cluster.run(max_time=30.0)
        # Round-robin placement: group g is led by replica g % n.
        assert cluster.group_leader_pids == ("r0", "r1")
        r0, r1 = cluster.replicas["r0"], cluster.replicas["r1"]
        assert r0.groups[0].elector.current_leader() == "r0"
        assert r0.groups[1].elector.current_leader() == "r1"
        # Each shard committed through its own leader's log.
        assert r0.groups[0].stats["commits"] > 0
        assert r1.groups[1].stats["commits"] > 0

    def test_same_seed_is_deterministic(self):
        def probe():
            cluster = build_cluster(
                [keyed_write_steps(10, "c0")],
                service_factory=KVStoreService,
                groups=2,
                seed=7,
            )
            cluster.run(max_time=30.0)
            records = [
                (str(r.rid), r.sent_at, r.completed_at)
                for r in cluster.clients[0].request_records()
            ]
            return records, dict(cluster.metrics.counters())

        assert pickle.dumps(probe()) == pickle.dumps(probe())


class TestShardedCrashRecovery:
    def test_host_crash_recovers_both_groups_from_one_disk(self):
        def slow_steps(count, prefix):
            steps = keyed_write_steps(count, prefix)
            return [
                s.__class__(requests=s.requests, label=s.label, gap=0.05)
                for s in steps
            ]

        cluster = build_cluster(
            [slow_steps(10, "c0")],
            service_factory=KVStoreService,
            groups=2,
            fsync="group",
        )
        # r2 backs both groups; cut its power mid-run and bring it back.
        FaultSchedule(cluster).crash("r2", at=0.2).recover("r2", at=0.4)
        cluster.run(max_time=30.0)
        assert cluster.clients[0].completed_requests == 10

        prints = converged_fingerprints(cluster)
        assert len(prints) == 6  # r2 is back, reporting both groups
        g0 = {v for k, v in prints.items() if k.endswith("/g0")}
        g1 = {v for k, v in prints.items() if k.endswith("/g1")}
        assert len(g0) == 1 and len(g1) == 1
        # Recovery replayed the shared WAL, split by group tag.
        r2 = cluster.replicas["r2"]
        assert r2.groups[0].stats["recovers"] == 1
        assert r2.groups[1].stats["recovers"] == 1

    def test_leader_host_crash_fails_over_both_groups(self):
        cluster = build_cluster(
            [keyed_write_steps(8, "c0")],
            service_factory=KVStoreService,
            groups=2,
            elector="manual",
            client_timeout=0.3,
        )
        # r0 leads group 0 (and backs group 1). Kill it and move group 0's
        # leadership to r1, which now leads both shards.
        schedule = FaultSchedule(cluster)
        schedule.crash("r0", at=0.15)
        schedule.switch_leader("r1", at=0.2, group=0)
        cluster.run(max_time=60.0)
        assert cluster.clients[0].completed_requests == 8
        prints = converged_fingerprints(cluster)
        g0 = {v for k, v in prints.items() if k.endswith("/g0")}
        g1 = {v for k, v in prints.items() if k.endswith("/g1")}
        assert len(g0) == 1 and len(g1) == 1


class TestShardedChaos:
    def test_small_sharded_chaos_trial_is_clean(self):
        options = ChaosOptions(
            protocol="tpaxos",
            groups=2,
            fsync="group",
            storage_faults=True,
            horizon=1.0,
            requests_per_client=6,
        )
        result = run_chaos(3, options)
        assert result.ok, [v.detail for v in result.violations]
        assert result.completed_requests > 0
