"""End-to-end chaos engine tests.

Covers the acceptance criteria: zero violations across a 50-seed sweep on
every protocol, a seeded safety bug (minority-accept) caught by the
invariant layer and shrunk to a tiny repro, byte-identical reports for the
same seed, and two scripted fault scenarios (partition + leader crash +
heal; sustained duplication) asserted at the replica level.
"""

from __future__ import annotations

import pytest

from repro.chaos.report import dump_summary, render_report, to_summary
from repro.chaos.runner import (
    PROTOCOLS,
    ChaosOptions,
    run_chaos,
    run_with_schedule,
)
from repro.chaos.schedule import NemesisEvent, NemesisSchedule
from repro.chaos.shrink import shrink


class TestAcceptanceSweep:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_fifty_seeds_no_violations(self, protocol):
        options = ChaosOptions(protocol=protocol)
        for seed in range(50):
            result = run_chaos(seed, options)
            assert result.ok, (
                f"{protocol} seed {seed}: "
                f"{[str(v) for v in result.violations]}\n"
                f"{result.schedule.describe()}"
            )

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_fifty_seeds_with_storage_nemeses(self, protocol):
        # Acceptance: torn writes, lying fsyncs, stalls and rotted records
        # never cost an acknowledged write while a majority of devices
        # stays intact.
        options = ChaosOptions(
            protocol=protocol, fsync="group", storage_faults=True
        )
        for seed in range(50):
            result = run_chaos(seed, options)
            assert result.ok, (
                f"{protocol} seed {seed}: "
                f"{[str(v) for v in result.violations]}\n"
                f"{result.schedule.describe()}"
            )

    def test_storage_sweep_exercises_storage_nemeses(self):
        options = ChaosOptions(fsync="group", storage_faults=True)
        fired = {
            kind: sum(
                run_chaos(seed, options).counters.get(f"fault.{kind}", 0)
                for seed in range(50)
            )
            for kind in ("torn_write", "lost_fsync", "disk_stall", "corrupt_record")
        }
        assert all(count > 0 for count in fired.values()), fired

    def test_skip_fsync_mutation_caught_and_shrinks_small(self):
        # A replica that acks without persisting loses acked writes at its
        # first crash: acked_durability must catch it, and the repro must
        # shrink to a handful of events.
        options = ChaosOptions(mutation="skip-fsync", fsync="group")
        caught = None
        for seed in range(10):
            result = run_chaos(seed, options)
            if not result.ok:
                caught = result
                break
        assert caught is not None, "skip-fsync never caught in 10 seeds"
        assert any(
            v.invariant == "acked_durability" for v in caught.violations
        )
        outcome = shrink(
            caught.schedule, options, invariant="acked_durability"
        )
        assert outcome.events <= 5

    def test_trials_complete_requests_and_inject_faults(self):
        # The sweep is only meaningful if the workload overlaps the faults.
        options = ChaosOptions(protocol="basic")
        result = run_chaos(0, options)
        assert result.completed_requests == 2 * 12
        assert sum(
            v for k, v in result.counters.items() if k.startswith("fault.")
        ) > 0


class TestMutationDetection:
    def test_minority_accept_caught_by_invariants(self):
        # Seed 3 is a known catcher: its schedule partitions the leader
        # away while traffic is live, so the broken quorum check lets both
        # sides choose different values for the same instance.
        options = ChaosOptions(mutation="minority-accept")
        result = run_chaos(3, options)
        assert not result.ok
        assert any(v.invariant == "log_agreement" for v in result.violations)

    def test_mutation_caught_across_several_seeds(self):
        options = ChaosOptions(mutation="minority-accept")
        caught = [seed for seed in range(40) if not run_chaos(seed, options).ok]
        assert len(caught) >= 3, f"only seeds {caught} caught the mutation"

    def test_failing_schedule_shrinks_to_tiny_repro(self):
        options = ChaosOptions(mutation="minority-accept")
        result = run_chaos(3, options)
        outcome = shrink(result.schedule, options, invariant="log_agreement")
        assert outcome.events <= 5
        assert outcome.events < len(result.schedule)
        # The minimized schedule is *known* failing (it was re-run).
        assert any(
            v.invariant == "log_agreement"
            for v in outcome.result.violations
        )
        script = outcome.schedule.to_script()
        assert "FaultSchedule(cluster)" in script
        for event in outcome.schedule.events:
            assert f"at={event.at}" in script

    def test_shrink_refuses_passing_schedule(self):
        options = ChaosOptions()
        result = run_chaos(0, options)
        assert result.ok
        with pytest.raises(ValueError, match="does not fail"):
            shrink(result.schedule, options)

    def test_shrink_respects_budget(self):
        options = ChaosOptions(mutation="minority-accept")
        result = run_chaos(3, options)
        outcome = shrink(
            result.schedule, options, invariant="log_agreement", budget=5
        )
        assert outcome.trials <= 5


class TestDeterminism:
    def sweep(self):
        options = ChaosOptions(mutation="minority-accept")
        results = [run_chaos(seed, options) for seed in range(5)]
        outcomes = [
            shrink(r.schedule, options, budget=40)
            for r in results
            if not r.ok
        ]
        return results, outcomes

    def test_summary_and_report_byte_identical(self):
        first_results, first_outcomes = self.sweep()
        second_results, second_outcomes = self.sweep()
        assert [r.to_dict() for r in first_results] == [
            r.to_dict() for r in second_results
        ]
        assert dump_summary(
            to_summary(first_results, first_outcomes)
        ) == dump_summary(to_summary(second_results, second_outcomes))
        assert render_report(first_results, first_outcomes) == render_report(
            second_results, second_outcomes
        )

    def test_violating_seed_gets_a_dossier(self):
        results, outcomes = self.sweep()
        report = render_report(results, outcomes)
        assert "violation(s)" in report
        assert "runnable repro script:" in report
        assert "schedule.partition(" in report or "schedule.crash(" in report
        summary = to_summary(results, outcomes)
        assert summary["violating"] >= 1
        assert "log_agreement" in summary["violations_by_invariant"]
        assert summary["shrunk"][0]["events"] <= 5


class TestScriptedScenarios:
    def test_partition_leader_exile_crash_heal_recovers(self):
        """Partition the leader into a minority, elect a new one on the
        majority side, heal, crash the new leader, recover it: clients
        must finish and every replica must converge on one log."""
        events = (
            NemesisEvent(0.10, "partition", groups=(("r0",), ("r1", "r2"))),
            NemesisEvent(0.12, "leader", pids=("r1",), scope=("r1", "r2")),
            NemesisEvent(0.60, "heal"),
            NemesisEvent(0.70, "crash", pids=("r1",)),
            NemesisEvent(0.72, "leader", pids=("r2",)),
            NemesisEvent(1.00, "recover", pids=("r1",)),
        )
        schedule = NemesisSchedule(seed=5, horizon=1.2, events=events)
        options = ChaosOptions(protocol="basic", horizon=1.2)
        result = run_with_schedule(schedule, options, keep_cluster=True)
        assert result.ok, [str(v) for v in result.violations]
        cluster = result.cluster
        assert all(client.done for client in cluster.clients)
        assert result.counters["fault.crash"] == 1
        assert result.counters["fault.partition"] == 1
        # Every replica (including the crashed-and-recovered ex-leader r1)
        # converged on the same committed log: same frontier, same values.
        logs = {
            pid: replica.log.chosen_items()
            for pid, replica in cluster.replicas.items()
        }
        reference = logs["r2"]
        assert len(reference) == result.completed_requests
        assert logs["r0"] == reference
        assert logs["r1"] == reference

    def test_sustained_duplication_never_double_applies(self):
        """Under a run-long duplication burst, retransmit dedup and the
        executed-table must keep every request in exactly one instance."""
        events = (
            NemesisEvent(0.0, "dup_burst", value=0.8, duration=2.0),
        )
        schedule = NemesisSchedule(seed=11, horizon=2.0, events=events)
        options = ChaosOptions(protocol="basic")
        result = run_with_schedule(schedule, options, keep_cluster=True)
        assert result.ok, [str(v) for v in result.violations]
        # The burst really duplicated traffic (Accepts, Accepteds, ...).
        assert result.counters["net.dup"] > 0
        # Belt and braces on top of the at_most_once invariant: each rid
        # appears exactly once across the chosen log.
        cluster = result.cluster
        log = cluster.replicas["r0"].log.chosen_items()
        rids = [
            str(request.rid)
            for _instance, proposal in log
            for request in proposal.requests
        ]
        assert len(rids) == len(set(rids))
        assert len(log) == result.completed_requests
