"""Stress: the protocol's retransmissions restore the reliable-channel
abstraction over a lossy, duplicating, reordering network."""

from __future__ import annotations

import pytest

from repro.client.workload import paper_txn_steps, single_kind_steps
from repro.cluster.harness import Cluster, ClusterSpec
from repro.net.latency import UniformLatency
from repro.net.link import LinkSpec
from repro.net.profiles import NetworkProfile
from repro.net.topology import Topology
from repro.services.counter import CounterService
from repro.sim.cpu import CpuProfile
from repro.types import RequestKind


def hostile_profile(loss: float, duplicate: float, reorder: bool) -> NetworkProfile:
    def builder(replicas, clients):
        topo = Topology(
            default=LinkSpec(
                latency=UniformLatency(0.5e-3, 2e-3),
                loss=loss,
                duplicate=duplicate,
                jitter_reorder=reorder,
            )
        )
        topo.place_all(list(replicas), "site")
        topo.place_all(list(clients), "site")
        return topo

    return NetworkProfile(
        name="hostile",
        description=f"loss={loss} dup={duplicate} reorder={reorder}",
        replica_cpu=CpuProfile(),
        client_cpu=CpuProfile(),
        paper_rrt={},
        _builder=builder,
        per_connection_overhead=0.0,
    )


def run_hostile(loss=0.0, duplicate=0.0, reorder=False, seed=0, steps=None):
    profile = hostile_profile(loss, duplicate, reorder)
    spec = ClusterSpec(
        profile=profile,
        seed=seed,
        client_timeout=0.05,
        accept_retry=0.02,
        prepare_retry=0.02,
    )
    if steps is None:
        steps = [single_kind_steps(RequestKind.WRITE, 20, op=("add", 1))]
    cluster = Cluster(spec, steps, service_factory=CounterService)
    cluster.run(max_time=120.0)
    cluster.drain(2.0)
    return cluster


class TestLoss:
    @pytest.mark.parametrize("loss", [0.05, 0.2])
    def test_writes_complete_exactly_once_under_loss(self, loss):
        cluster = run_hostile(loss=loss, seed=3)
        assert cluster.clients[0].completed_requests == 20
        values = {r.service.value for r in cluster.replicas.values()}
        assert values == {20}

    def test_retransmissions_happened(self):
        cluster = run_hostile(loss=0.2, seed=3)
        retransmits = sum(
            r.retransmits for r in cluster.clients[0].request_records()
        )
        assert retransmits > 0


class TestDuplication:
    def test_duplicates_do_not_double_execute(self):
        cluster = run_hostile(duplicate=0.5, seed=4)
        assert cluster.clients[0].completed_requests == 20
        values = {r.service.value for r in cluster.replicas.values()}
        assert values == {20}


class TestReordering:
    def test_reordered_channels_preserve_instance_order(self):
        cluster = run_hostile(reorder=True, seed=5)
        assert cluster.clients[0].completed_requests == 20
        values = {r.service.value for r in cluster.replicas.values()}
        assert values == {20}
        for replica in cluster.replicas.values():
            assert replica.log.gaps() == ()


class TestEverythingAtOnce:
    def test_reads_writes_txns_under_chaos(self):
        steps = [
            single_kind_steps(RequestKind.WRITE, 10, op=("add", 1))
            + single_kind_steps(RequestKind.READ, 10, op=("get",)),
            paper_txn_steps("optimized", 3, 5),
        ]
        cluster = run_hostile(loss=0.1, duplicate=0.2, reorder=True, seed=6, steps=steps)
        assert cluster.all_done
        # 10 adds + 5 txns x 3 noop-writes... txn ops here are noop ("write",)
        # against CounterService -> ValueError -> ERROR replies. Use counter
        # adds for txns instead: see steps below.

    def test_counter_txns_under_chaos(self):
        from repro.client.workload import txn_steps

        steps = [
            single_kind_steps(RequestKind.WRITE, 10, op=("add", 1)),
            txn_steps(5, [("add", 2), ("add", 3)], optimized=True,
                      commit_op=("add", 0)),
        ]
        cluster = run_hostile(loss=0.1, duplicate=0.2, reorder=True, seed=7, steps=steps)
        assert cluster.all_done
        aborted = sum(1 for c in cluster.clients for s in c.records if s.aborted)
        committed_txns = cluster.clients[1].completed_steps
        expected = 10 + committed_txns * 5
        values = {r.service.value for r in cluster.replicas.values()}
        assert values == {expected}
        assert committed_txns + aborted == 5
