"""Observability must be passive: instrumentation may read the virtual
clock and count, but it must never touch an RNG or schedule an event. These
regression tests hold the subsystem to that by running the same workload
with metrics/tracing on and off and demanding identical outcomes."""

from __future__ import annotations

import pickle

import pytest

from repro.client.workload import paper_txn_steps, single_kind_steps
from repro.cluster.harness import Cluster, ClusterSpec
from repro.cluster.metrics import collect
from repro.types import RequestKind
from tests.conftest import make_test_profile


def run(metrics: bool, trace: bool, steps_factory, seed: int = 7) -> Cluster:
    spec = ClusterSpec(
        profile=make_test_profile(),
        seed=seed,
        metrics=metrics,
        measure_bytes=metrics,
        trace=trace,
    )
    steps = [steps_factory() for _ in range(2)]
    return Cluster(spec, steps).run().drain()


def chosen_log_bytes(cluster: Cluster) -> dict[str, bytes]:
    """A byte-exact digest of every replica's chosen sequence."""
    return {
        pid: pickle.dumps(replica.log.chosen_above(0))
        for pid, replica in cluster.replicas.items()
    }


WORKLOADS = [
    pytest.param(lambda: single_kind_steps(RequestKind.WRITE, 10), id="writes"),
    pytest.param(lambda: single_kind_steps(RequestKind.READ, 10), id="reads"),
    pytest.param(lambda: paper_txn_steps("optimized", 3, 5), id="txns"),
]


class TestMetricsCannotPerturbTheRun:
    @pytest.mark.parametrize("steps_factory", WORKLOADS)
    def test_chosen_logs_byte_identical(self, steps_factory):
        instrumented = run(metrics=True, trace=True, steps_factory=steps_factory)
        bare = run(metrics=False, trace=False, steps_factory=steps_factory)
        assert chosen_log_bytes(instrumented) == chosen_log_bytes(bare)

    @pytest.mark.parametrize("steps_factory", WORKLOADS)
    def test_run_results_identical(self, steps_factory):
        instrumented = collect(run(metrics=True, trace=True, steps_factory=steps_factory))
        bare = collect(run(metrics=False, trace=False, steps_factory=steps_factory))
        # Every paper-facing aggregate must match exactly. The message
        # accounting fields legitimately differ (zeros when disabled).
        assert instrumented.n_clients == bare.n_clients
        assert instrumented.duration == bare.duration
        assert instrumented.total_requests == bare.total_requests
        assert instrumented.total_steps == bare.total_steps
        assert instrumented.aborted_steps == bare.aborted_steps
        assert instrumented.total_retransmits == bare.total_retransmits
        assert (instrumented.rrt is None) == (bare.rrt is None)
        if instrumented.rrt is not None:
            assert instrumented.rrt == bare.rrt
        if instrumented.trt is not None:
            assert instrumented.trt == bare.trt
        # And the instrumented run actually recorded traffic.
        assert instrumented.total_messages > 0
        assert instrumented.total_bytes > 0
        assert bare.total_messages == 0

    def test_virtual_end_times_identical(self):
        factory = lambda: single_kind_steps(RequestKind.WRITE, 8)  # noqa: E731
        instrumented = run(metrics=True, trace=True, steps_factory=factory)
        bare = run(metrics=False, trace=False, steps_factory=factory)
        assert instrumented.kernel.now == bare.kernel.now
        for pid in instrumented.replicas:
            assert (
                instrumented.replicas[pid].service.state_fingerprint()
                == bare.replicas[pid].service.state_fingerprint()
            )

    def test_metrics_off_skips_registry(self):
        bare = run(
            metrics=False,
            trace=False,
            steps_factory=lambda: single_kind_steps(RequestKind.WRITE, 3),
        )
        assert not bare.metrics.enabled
        assert bare.metrics.counters() == {}
