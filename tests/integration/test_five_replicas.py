"""n = 5 (t = 2): the protocols under multiple failures (§4.3's setting)."""

from __future__ import annotations

import pytest

from repro.client.workload import Step, single_kind_steps
from repro.cluster.faults import FaultSchedule
from repro.services.counter import CounterService
from repro.services.kvstore import KVStoreService
from repro.types import RequestKind
from tests.integration.util import build_cluster


def five(steps, **kw):
    kw.setdefault("n_replicas", 5)
    kw.setdefault("client_timeout", 0.05)
    return build_cluster(steps, **kw)


class TestTwoFailures:
    def test_writes_survive_two_backup_crashes(self):
        steps = single_kind_steps(RequestKind.WRITE, 20, op=("add", 1))
        cluster = five([steps], service_factory=CounterService)
        schedule = FaultSchedule(cluster)
        schedule.crash("r3", at=0.01)
        schedule.crash("r4", at=0.02)
        cluster.run(max_time=30.0)
        assert cluster.clients[0].completed_requests == 20
        cluster.drain(2.0)
        alive = {r.service.value for r in cluster.replicas.values() if r.alive}
        assert alive == {20}

    def test_reads_survive_two_backup_crashes(self):
        steps = single_kind_steps(RequestKind.READ, 20)
        cluster = five([steps])
        schedule = FaultSchedule(cluster)
        schedule.crash("r3", at=0.001)
        schedule.crash("r4", at=0.001)
        cluster.run(max_time=30.0)
        assert cluster.clients[0].completed_requests == 20

    def test_three_crashes_stall_until_recovery(self):
        steps = single_kind_steps(RequestKind.WRITE, 5)
        cluster = five([steps])
        schedule = FaultSchedule(cluster)
        for pid, at in (("r2", 0.001), ("r3", 0.001), ("r4", 0.001)):
            schedule.crash(pid, at=at)
        schedule.recover("r2", at=1.0)
        cluster.start()
        cluster.kernel.run(until=0.9)
        assert cluster.clients[0].completed_requests == 0  # 2 of 5 is no majority
        cluster.run(max_time=30.0)
        assert cluster.clients[0].completed_requests == 5

    def test_leader_plus_backup_crash_with_failover(self):
        steps = single_kind_steps(RequestKind.WRITE, 30, op=("add", 1))
        cluster = five([steps], service_factory=CounterService, elector="manual")
        schedule = FaultSchedule(cluster)
        schedule.crash("r4", at=0.01)
        schedule.crash_leader(at=0.02)
        schedule.switch_leader("r1", at=0.03)
        cluster.run(max_time=60.0)
        assert cluster.clients[0].completed_requests == 30
        cluster.drain(2.0)
        alive = {r.service.value for r in cluster.replicas.values() if r.alive}
        assert alive == {30}


class TestMixedWorkloadAtFive:
    def test_read_write_interleaving_consistent(self):
        steps = []
        for i in range(15):
            steps.append(Step(requests=((RequestKind.WRITE, ("put", "k", i)),)))
            steps.append(Step(requests=((RequestKind.READ, ("get", "k")),)))
        cluster = five([steps], service_factory=KVStoreService)
        FaultSchedule(cluster).crash("r4", at=0.01)
        cluster.run(max_time=30.0)
        records = cluster.clients[0].request_records()
        for i in range(15):
            assert records[2 * i + 1].value == i

    def test_omega_failover_at_five(self):
        steps = single_kind_steps(RequestKind.WRITE, 30, op=("add", 1))
        cluster = five(
            [steps],
            service_factory=CounterService,
            elector="omega",
            omega_heartbeat=0.02,
            omega_timeout=0.1,
            client_timeout=0.15,
        )
        schedule = FaultSchedule(cluster)
        schedule.crash_leader(at=0.05)
        schedule.crash("r1", at=0.4)  # kill the first successor too
        cluster.run(max_time=120.0)
        assert cluster.clients[0].completed_requests == 30
        cluster.drain(2.0)
        alive = {r.service.value for r in cluster.replicas.values() if r.alive}
        assert alive == {30}
