"""Integration tests for new-leader recovery (§3.3) under leader switches
and crashes, driving writes throughout."""

from __future__ import annotations

import pytest

from repro.client.workload import single_kind_steps
from repro.cluster.faults import FaultSchedule
from repro.core.replica import ReplicaRole
from repro.services.counter import CounterService
from repro.services.kvstore import KVStoreService
from repro.types import ReplyStatus, RequestKind
from tests.integration.util import build_cluster, converged_fingerprints


class TestLeaderSwitch:
    def test_writes_survive_instant_switch(self):
        steps = single_kind_steps(RequestKind.WRITE, 30, op=lambda i: ("put", i, i))
        cluster = build_cluster(
            [steps], service_factory=KVStoreService, elector="manual",
            client_timeout=0.05, seed=2,
        )
        FaultSchedule(cluster).switch_leader("r1", at=0.02)
        cluster.run(max_time=30.0)
        client = cluster.clients[0]
        assert client.completed_requests == 30
        prints = converged_fingerprints(cluster)
        assert len(set(prints.values())) == 1
        # Every key landed exactly once.
        assert cluster.replicas["r1"].service.data == {i: i for i in range(30)}

    def test_no_write_lost_or_duplicated_across_switch(self):
        # The counter's final value is exactly the number of acknowledged
        # increments — a committed-then-reexecuted write would overshoot.
        steps = single_kind_steps(RequestKind.WRITE, 40, op=("add", 1))
        cluster = build_cluster(
            [steps], service_factory=CounterService, elector="manual",
            client_timeout=0.05, seed=4,
        )
        schedule = FaultSchedule(cluster)
        schedule.switch_leader("r1", at=0.015)
        schedule.switch_leader("r2", at=0.08)
        schedule.switch_leader("r0", at=0.15)
        cluster.run(max_time=60.0)
        assert cluster.clients[0].completed_requests == 40
        prints = converged_fingerprints(cluster)
        assert set(prints.values()) == {40}

    def test_new_leader_takes_over_role(self):
        cluster = build_cluster(
            [single_kind_steps(RequestKind.WRITE, 10)],
            elector="manual", client_timeout=0.05,
        )
        FaultSchedule(cluster).switch_leader("r2", at=0.01)
        cluster.run(max_time=30.0)
        assert cluster.replicas["r2"].role is ReplicaRole.LEADING
        assert cluster.replicas["r0"].role is ReplicaRole.FOLLOWER
        assert cluster.replicas["r2"].stats["recovery_complete"] >= 1

    def test_reads_after_switch_reflect_committed_writes(self):
        from repro.client.workload import Step

        steps = []
        for i in range(10):
            steps.append(Step(requests=((RequestKind.WRITE, ("put", "k", i)),)))
            steps.append(Step(requests=((RequestKind.READ, ("get", "k")),)))
        cluster = build_cluster(
            [steps], service_factory=KVStoreService, elector="manual",
            client_timeout=0.05,
        )
        FaultSchedule(cluster).switch_leader("r1", at=0.012)
        cluster.run(max_time=30.0)
        records = cluster.clients[0].request_records()
        for i in range(10):
            read = records[2 * i + 1]
            assert read.value == i

    def test_ballot_rises_across_switches(self):
        cluster = build_cluster(
            [single_kind_steps(RequestKind.WRITE, 20)],
            elector="manual", client_timeout=0.05,
        )
        schedule = FaultSchedule(cluster)
        schedule.switch_leader("r1", at=0.01)
        schedule.switch_leader("r0", at=0.05)
        cluster.run(max_time=30.0)
        r0 = cluster.replicas["r0"]
        assert r0.role is ReplicaRole.LEADING
        assert r0.ballot is not None and r0.ballot.round >= 2


class TestLeaderCrash:
    def test_leader_crash_with_manual_failover(self):
        steps = single_kind_steps(RequestKind.WRITE, 25, op=("add", 1))
        cluster = build_cluster(
            [steps], service_factory=CounterService, elector="manual",
            client_timeout=0.05, seed=5,
        )
        schedule = FaultSchedule(cluster)
        schedule.crash_leader(at=0.02)
        schedule.switch_leader("r1", at=0.03)
        cluster.run(max_time=60.0)
        assert cluster.clients[0].completed_requests == 25
        cluster.drain()
        alive = {
            pid: r.service.value for pid, r in cluster.replicas.items() if r.alive
        }
        assert set(alive.values()) == {25}

    def test_crashed_leader_recovers_as_follower_and_catches_up(self):
        steps = single_kind_steps(RequestKind.WRITE, 30, op=("add", 1))
        cluster = build_cluster(
            [steps], service_factory=CounterService, elector="manual",
            client_timeout=0.05, seed=6,
        )
        schedule = FaultSchedule(cluster)
        schedule.crash_leader(at=0.02)
        schedule.switch_leader("r1", at=0.03)
        schedule.recover("r0", at=0.2)
        cluster.run(max_time=60.0)
        cluster.drain(2.0)
        r0 = cluster.replicas["r0"]
        assert r0.alive and r0.role is ReplicaRole.FOLLOWER
        # r0 must have caught up with everything committed while it was down.
        assert r0.service.value == 30

    def test_backup_crash_does_not_stall_writes(self):
        steps = single_kind_steps(RequestKind.WRITE, 20)
        cluster = build_cluster([steps], client_timeout=0.05)
        FaultSchedule(cluster).crash("r2", at=0.01)
        cluster.run(max_time=30.0)
        assert cluster.clients[0].completed_requests == 20

    def test_no_progress_without_majority_then_resume(self):
        steps = single_kind_steps(RequestKind.WRITE, 5)
        cluster = build_cluster([steps], client_timeout=0.05)
        schedule = FaultSchedule(cluster)
        schedule.crash("r1", at=0.001)
        schedule.crash("r2", at=0.001)
        schedule.recover("r1", at=1.0)
        cluster.start()
        cluster.kernel.run(until=0.9)
        assert cluster.clients[0].completed_requests == 0  # no majority
        cluster.run(max_time=30.0)
        assert cluster.clients[0].completed_requests == 5


class TestPartition:
    def test_leader_isolated_from_backups_stalls_then_heals(self):
        steps = single_kind_steps(RequestKind.WRITE, 10)
        cluster = build_cluster([steps], client_timeout=0.05)
        schedule = FaultSchedule(cluster)
        schedule.partition([["r0"], ["r1", "r2"]], at=0.001)
        schedule.heal(at=1.0)
        cluster.start()
        cluster.kernel.run(until=0.9)
        stalled = cluster.clients[0].completed_requests
        assert stalled == 0
        cluster.run(max_time=30.0)
        assert cluster.clients[0].completed_requests == 10

    def test_writes_commit_with_one_partitioned_backup(self):
        steps = single_kind_steps(RequestKind.WRITE, 10)
        cluster = build_cluster([steps], client_timeout=0.05)
        FaultSchedule(cluster).partition([["r0", "r1"], ["r2"]], at=0.001)
        cluster.run(max_time=30.0)
        assert cluster.clients[0].completed_requests == 10

    def test_partitioned_backup_catches_up_after_heal(self):
        steps = single_kind_steps(RequestKind.WRITE, 10, op=("add", 1))
        cluster = build_cluster(
            [steps], service_factory=CounterService, client_timeout=0.05
        )
        schedule = FaultSchedule(cluster)
        schedule.partition([["r0", "r1"], ["r2"]], at=0.001)
        schedule.heal(at=0.5)
        cluster.run(max_time=30.0)
        cluster.drain(3.0)
        assert cluster.replicas["r2"].service.value == 10
