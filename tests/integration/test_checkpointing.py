"""Checkpointing, log compaction and snapshot-based catch-up."""

from __future__ import annotations

import pytest

from repro.client.workload import single_kind_steps
from repro.cluster.faults import FaultSchedule
from repro.services.counter import CounterService
from repro.types import RequestKind
from tests.integration.util import build_cluster


def counter_writes(n):
    return single_kind_steps(RequestKind.WRITE, n, op=("add", 1))


class TestCheckpointing:
    def test_log_compacts_at_interval(self):
        cluster = build_cluster(
            [counter_writes(50)],
            service_factory=CounterService,
            checkpoint_interval=10,
        ).run()
        cluster.drain()
        for replica in cluster.replicas.values():
            assert replica.stats["checkpoints"] >= 4
            assert replica.log.compacted_to >= 40
            # The log holds only the tail above the last checkpoint.
            assert len(replica.log) <= 10

    def test_checkpoint_contents_match_applied_state(self):
        cluster = build_cluster(
            [counter_writes(25)],
            service_factory=CounterService,
            checkpoint_interval=5,
        ).run()
        cluster.drain()
        leader = cluster.leader()
        instance, service_snap, _executed = leader.store.checkpoint
        assert instance <= leader.applied
        assert service_snap == instance  # counter value == #adds applied

    def test_recover_from_checkpoint_replays_tail(self):
        cluster = build_cluster(
            [counter_writes(30)],
            service_factory=CounterService,
            checkpoint_interval=8,
            client_timeout=0.05,
        )
        schedule = FaultSchedule(cluster)
        schedule.crash("r2", at=0.05)
        schedule.recover("r2", at=0.1)
        cluster.run(max_time=60.0)
        cluster.drain(2.0)
        assert cluster.replicas["r2"].service.value == 30

    def test_catch_up_over_compacted_prefix_uses_snapshot(self):
        # r2 is partitioned while the leader commits and *compacts* the
        # instances r2 missed; healing must ship a snapshot, not log entries.
        cluster = build_cluster(
            [counter_writes(40)],
            service_factory=CounterService,
            checkpoint_interval=5,
            client_timeout=0.05,
        )
        schedule = FaultSchedule(cluster)
        schedule.partition([["r0", "r1"], ["r2"]], at=0.001)
        schedule.heal(at=1.0)
        cluster.run(max_time=60.0)
        cluster.drain(3.0)
        leader = cluster.leader()
        assert leader.log.compacted_to >= 35  # prefix is gone
        assert cluster.replicas["r2"].service.value == 40
        assert cluster.replicas["r2"].applied == leader.applied

    def test_new_leader_recovers_after_compaction(self):
        cluster = build_cluster(
            [counter_writes(40)],
            service_factory=CounterService,
            checkpoint_interval=5,
            elector="manual",
            client_timeout=0.05,
        )
        FaultSchedule(cluster).switch_leader("r1", at=0.08)
        cluster.run(max_time=60.0)
        cluster.drain(2.0)
        values = {r.service.value for r in cluster.replicas.values()}
        assert values == {40}
        assert cluster.clients[0].completed_requests == 40

    def test_executed_table_restored_from_checkpoint(self):
        # After a crash+recover, retransmitted old requests still dedup.
        cluster = build_cluster(
            [counter_writes(20)],
            service_factory=CounterService,
            checkpoint_interval=4,
            client_timeout=0.05,
        )
        schedule = FaultSchedule(cluster)
        schedule.crash("r0", at=0.04)
        schedule.recover("r0", at=0.08)
        cluster.run(max_time=60.0)
        cluster.drain(2.0)
        assert cluster.clients[0].completed_requests == 20
        values = {r.service.value for r in cluster.replicas.values()}
        assert values == {20}
