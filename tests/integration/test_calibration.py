"""Calibration tests: the simulator must reproduce the paper's §4 numbers.

Latency targets are checked within a few percent (the paper's own 99%
confidence intervals are of that order); throughput is checked for *shape*
(ordering, crossovers), as absolute throughput depends on testbed details
the paper does not fully specify.
"""

from __future__ import annotations

import pytest

from repro.cluster.scenarios import (
    rrt_scenario,
    throughput_scenario,
    txn_rrt_scenario,
    txn_throughput_scenario,
)


def rrt_ms(profile, kind, samples=150, seed=1):
    return rrt_scenario(profile, kind, samples=samples, seed=seed).rrt.mean * 1e3


class TestSysnetRRT:
    """§4.1 text: original 0.181 ms, read 0.263 ms, write 0.338 ms."""

    def test_original(self):
        assert rrt_ms("sysnet", "original") == pytest.approx(0.181, rel=0.05)

    def test_read(self):
        assert rrt_ms("sysnet", "read") == pytest.approx(0.263, rel=0.05)

    def test_write(self):
        assert rrt_ms("sysnet", "write") == pytest.approx(0.338, rel=0.05)

    def test_xpaxos_reduction_is_about_22_percent(self):
        read = rrt_ms("sysnet", "read")
        write = rrt_ms("sysnet", "write")
        reduction = (write - read) / write
        assert reduction == pytest.approx(0.22, abs=0.05)


class TestBerkeleyPrincetonRRT:
    """§4.1: original 91.85 ms, read 92.79 ms, write 93.13 ms — all close:
    X-Paxos does not help when replicas are co-located (m << M)."""

    def test_original(self):
        assert rrt_ms("berkeley_princeton", "original", 60) == pytest.approx(91.85, rel=0.02)

    def test_read(self):
        assert rrt_ms("berkeley_princeton", "read", 60) == pytest.approx(92.79, rel=0.02)

    def test_write(self):
        assert rrt_ms("berkeley_princeton", "write", 60) == pytest.approx(93.13, rel=0.02)

    def test_curves_collapse(self):
        o = rrt_ms("berkeley_princeton", "original", 60)
        w = rrt_ms("berkeley_princeton", "write", 60)
        assert (w - o) / o < 0.03  # replication adds ~1 ms to ~92 ms


class TestWanRRT:
    """§4.1: original 70.82 ms, read 75.49 ms, write 106.73 ms — X-Paxos
    clearly wins when replicas are spread across sites."""

    def test_original(self):
        assert rrt_ms("wan", "original", 60) == pytest.approx(70.82, rel=0.02)

    def test_read(self):
        assert rrt_ms("wan", "read", 60) == pytest.approx(75.49, rel=0.02)

    def test_write(self):
        assert rrt_ms("wan", "write", 60) == pytest.approx(106.73, rel=0.02)

    def test_xpaxos_wins_on_wan(self):
        read = rrt_ms("wan", "read", 60)
        write = rrt_ms("wan", "write", 60)
        assert read < 0.75 * write


class TestFig5Shape:
    """Fig. 5: on Sysnet, original > read > write, read >= 1.13 * write."""

    def test_ordering_at_16_clients(self):
        results = {
            kind: throughput_scenario("sysnet", kind, 16, seed=3).throughput
            for kind in ("original", "read", "write")
        }
        assert results["original"] > results["read"] > results["write"]
        assert results["read"] >= 1.13 * results["write"]

    def test_throughput_rises_from_1_to_16(self):
        for kind in ("read", "write", "original"):
            one = throughput_scenario("sysnet", kind, 1, seed=3).throughput
            sixteen = throughput_scenario("sysnet", kind, 16, seed=3).throughput
            assert sixteen > 3 * one


class TestFig6Shape:
    """Fig. 6: basic & X-Paxos peak between ~16 and 64 clients, then decline."""

    def test_peak_then_decline(self):
        for kind in ("read", "write"):
            curve = {
                c: throughput_scenario("sysnet", kind, c, seed=3).throughput
                for c in (8, 32, 128)
            }
            assert curve[32] > curve[8]      # still rising to the peak zone
            assert curve[128] < curve[32]    # declining past it


class TestTable1:
    """Table 1: transaction response times (ms)."""

    PAPER = {
        ("read_write", 3): 1.17,
        ("read_write", 5): 1.79,
        ("write_only", 3): 1.29,
        ("write_only", 5): 2.01,
        ("optimized", 3): 0.85,
        ("optimized", 5): 1.23,
    }

    @pytest.mark.parametrize("mode,k", list(PAPER))
    def test_trt(self, mode, k):
        measured = txn_rrt_scenario(mode, k, samples=60, seed=2).trt.mean * 1e3
        assert measured == pytest.approx(self.PAPER[(mode, k)], rel=0.07)

    def test_tpaxos_reduction_3req(self):
        rw = txn_rrt_scenario("read_write", 3, samples=60, seed=2).trt.mean
        opt = txn_rrt_scenario("optimized", 3, samples=60, seed=2).trt.mean
        assert (rw - opt) / rw == pytest.approx(0.28, abs=0.05)

    def test_tpaxos_reduction_5req_write_only(self):
        wo = txn_rrt_scenario("write_only", 5, samples=60, seed=2).trt.mean
        opt = txn_rrt_scenario("optimized", 5, samples=60, seed=2).trt.mean
        assert (wo - opt) / wo == pytest.approx(0.39, abs=0.05)


class TestFig9Shape:
    """Fig. 9: T-Paxos transaction throughput beats both baselines, and the
    advantage grows with the client count."""

    def test_optimized_wins_at_every_client_count(self):
        for c in (1, 4, 16):
            opt = txn_throughput_scenario("optimized", 3, c, total_txns=200, seed=5)
            rw = txn_throughput_scenario("read_write", 3, c, total_txns=200, seed=5)
            wo = txn_throughput_scenario("write_only", 3, c, total_txns=200, seed=5)
            assert opt.step_throughput > rw.step_throughput > wo.step_throughput

    def test_improvement_at_least_paper_magnitude(self):
        opt = txn_throughput_scenario("optimized", 3, 16, total_txns=300, seed=5)
        rw = txn_throughput_scenario("read_write", 3, 16, total_txns=300, seed=5)
        gain = opt.step_throughput / rw.step_throughput - 1
        assert gain > 0.3  # paper: +57% at 16 clients

    def test_5req_improvement_larger_than_3req(self):
        def gain(k):
            opt = txn_throughput_scenario("optimized", k, 8, total_txns=240, seed=5)
            wo = txn_throughput_scenario("write_only", k, 8, total_txns=240, seed=5)
            return opt.step_throughput / wo.step_throughput

        assert gain(5) > gain(3)
