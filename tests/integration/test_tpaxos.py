"""Integration tests for T-Paxos transactions (§3.5)."""

from __future__ import annotations

import pytest

from repro.client.workload import Step, paper_txn_steps, txn_steps
from repro.cluster.faults import FaultSchedule
from repro.core.messages import AcceptBatch
from repro.services.bank import BankService
from repro.services.kvstore import KVStoreService
from repro.types import ReplyStatus, RequestKind
from tests.integration.util import build_cluster, converged_fingerprints


def bank_factory():
    service = BankService()
    # Pre-fund synchronously: every replica starts from the same snapshot.
    service.accounts = {"alice": 100, "bob": 100}
    return service


class TestCommit:
    def test_txn_ops_answered_immediately(self):
        # A TXN_OP's RRT equals the unreplicated baseline (§3.5); compare
        # against a write in the same topology.
        opt = build_cluster([paper_txn_steps("optimized", 3, 10)]).run()
        base = build_cluster([paper_txn_steps("write_only", 3, 10)]).run()
        opt_op_rrts = [
            r.rrt
            for s in opt.clients[0].records
            for r in s.requests
            if r.kind is RequestKind.TXN_OP
        ]
        base_op_rrts = [
            r.rrt
            for s in base.clients[0].records
            for r in s.requests[:-1]
        ]
        assert max(opt_op_rrts) < min(base_op_rrts)

    def test_commit_replicates_all_ops(self):
        ops = [("put", "a", 1), ("put", "b", 2), ("put", "c", 3)]
        cluster = build_cluster(
            [txn_steps(1, ops, optimized=True)], service_factory=KVStoreService
        ).run()
        prints = converged_fingerprints(cluster)
        expected = tuple(sorted({"a": 1, "b": 2, "c": 3}.items()))
        assert set(prints.values()) == {expected}

    def test_one_consensus_instance_per_txn(self):
        cluster = build_cluster(
            [paper_txn_steps("optimized", 5, 4)], trace=True
        ).run()
        cluster.drain()
        # 4 transactions -> 4 instances, regardless of 5 ops each.
        assert cluster.leader().log.frontier == 4

    def test_commit_reply_ok(self):
        cluster = build_cluster([paper_txn_steps("optimized", 3, 5)]).run()
        for step in cluster.clients[0].records:
            assert not step.aborted
            assert step.requests[-1].status is ReplyStatus.OK

    def test_bank_transfer_txn(self):
        transfer = [("withdraw", "alice", 30), ("deposit", "bob", 30)]
        cluster = build_cluster(
            [txn_steps(1, transfer, optimized=True)], service_factory=bank_factory
        ).run()
        prints = converged_fingerprints(cluster)
        expected = (("alice", 70), ("bob", 130))
        assert set(prints.values()) == {expected}


class TestAbort:
    def test_client_abort_rolls_back(self):
        steps = [
            Step(
                requests=(
                    (RequestKind.TXN_OP, ("withdraw", "alice", 30)),
                    (RequestKind.TXN_ABORT, None),
                ),
                transactional=True,
            )
        ]
        cluster = build_cluster([steps], service_factory=bank_factory).run()
        cluster.drain()
        # Nothing replicated, leader rolled back.
        assert cluster.leader().service.accounts["alice"] == 100
        assert all(r.log.frontier == 0 for r in cluster.replicas.values())

    def test_lock_conflict_aborts_younger_txn(self):
        # Two clients transact on the same account: no-wait 2PL aborts one.
        op = [("withdraw", "alice", 10), ("deposit", "bob", 10)]
        steps = txn_steps(1, op, optimized=True)
        cluster = build_cluster(
            [steps, steps], service_factory=bank_factory, seed=7
        ).run()
        aborted = sum(1 for c in cluster.clients for s in c.records if s.aborted)
        committed = sum(c.completed_steps for c in cluster.clients)
        assert aborted == 1 and committed == 1
        # Conservation: exactly one transfer applied everywhere.
        prints = converged_fingerprints(cluster)
        assert set(prints.values()) == {(("alice", 90), ("bob", 110))}

    def test_aborted_txn_retries_and_succeeds(self):
        op = [("withdraw", "alice", 10), ("deposit", "bob", 10)]
        steps = txn_steps(1, op, optimized=True)
        cluster = build_cluster(
            [steps, steps],
            service_factory=bank_factory,
            seed=7,
            retry_aborted=True,
        ).run()
        committed = sum(c.completed_steps for c in cluster.clients)
        assert committed == 2
        prints = converged_fingerprints(cluster)
        assert set(prints.values()) == {(("alice", 80), ("bob", 120))}

    def test_paper_interleaving_hazard_prevented(self):
        """§3.5: T1 = r1, r3, commit; T2 = r2, r4, abort, interleaved. With
        strict 2PL + no-wait, T2 conflicts on the shared key and aborts
        *before* T1 could observe its effects — no inconsistency."""
        t1 = Step(
            requests=(
                (RequestKind.TXN_OP, ("put", "x", "T1")),
                (RequestKind.TXN_OP, ("put", "y", "T1")),
                (RequestKind.TXN_COMMIT, None),
            ),
            transactional=True,
        )
        t2 = Step(
            requests=(
                (RequestKind.TXN_OP, ("put", "x", "T2")),
                (RequestKind.TXN_OP, ("put", "z", "T2")),
                (RequestKind.TXN_ABORT, None),
            ),
            transactional=True,
        )
        cluster = build_cluster([[t1], [t2]], service_factory=KVStoreService).run()
        cluster.drain()
        data = cluster.leader().service.data
        # Whichever txn won the race on "x", the final state contains no
        # torn mixture: either T1 committed fully, or it aborted fully.
        if "x" in data:
            assert data.get("x") == "T1" and data.get("y") == "T1"
        assert "z" not in data or data.get("z") != "T2" or "x" not in data

    def test_txn_op_after_abort_reports_aborted_conflict_free(self):
        # An op for an unknown txn starts a new one; commit of an unknown
        # txn reports ABORTED.
        steps = [
            Step(requests=((RequestKind.TXN_COMMIT, None),), transactional=True)
        ]
        cluster = build_cluster([steps]).run()
        record = cluster.clients[0].records[0]
        assert record.aborted


class TestLeaderSwitchAbort:
    def test_leader_switch_mid_txn_aborts(self):
        """§3.6: "if the leader switches during the transaction, the
        previous leader ... cannot commit, and the transaction has to be
        aborted."""
        ops = [("withdraw", "alice", 30), ("deposit", "bob", 30)]
        steps = txn_steps(1, ops, optimized=True)
        cluster = build_cluster(
            [steps], service_factory=bank_factory, elector="manual",
            client_timeout=0.05,
        )
        # Ops take ~2 ms each on 1 ms links: op1 is executed and answered by
        # r0 at ~4 ms; switch at 4.5 ms, before op2 reaches r0 — so r0 has
        # executed part of the transaction when it is deposed.
        FaultSchedule(cluster).switch_leader("r1", at=0.0045)
        cluster.run(max_time=10.0)
        record = cluster.clients[0].records[0]
        assert record.requests[0].status is ReplyStatus.OK  # op1 ran on r0
        assert record.aborted
        # No replica holds a partial transfer.
        prints = converged_fingerprints(cluster)
        assert set(prints.values()) == {(("alice", 100), ("bob", 100))}

    def test_txn_after_switch_succeeds_on_new_leader(self):
        ops = [("withdraw", "alice", 30), ("deposit", "bob", 30)]
        steps = txn_steps(2, ops, optimized=True)  # two transactions
        cluster = build_cluster(
            [steps], service_factory=bank_factory, elector="manual",
            client_timeout=0.05, retry_aborted=True,
        )
        FaultSchedule(cluster).switch_leader("r1", at=0.003)
        cluster.run(max_time=10.0)
        assert cluster.clients[0].completed_steps == 2
        prints = converged_fingerprints(cluster)
        assert set(prints.values()) == {(("alice", 40), ("bob", 160))}
