"""Integration tests for X-Paxos reads (§3.4).

The core consistency requirement: "the value that the service returns as a
response to a read must reflect the latest update."
"""

from __future__ import annotations

import pytest

from repro.client.workload import Step, single_kind_steps
from repro.cluster.faults import FaultSchedule
from repro.core.messages import AcceptBatch, Confirm
from repro.services.kvstore import KVStoreService
from repro.types import ReplyStatus, RequestKind
from tests.integration.util import build_cluster


def mixed_steps(n_pairs: int):
    """Alternate write k=i / read k, so every read has a defined expectation."""
    steps = []
    for i in range(n_pairs):
        steps.append(Step(requests=((RequestKind.WRITE, ("put", "k", i)),)))
        steps.append(Step(requests=((RequestKind.READ, ("get", "k")),)))
    return steps


class TestReadPath:
    def test_reads_complete(self):
        cluster = build_cluster([single_kind_steps(RequestKind.READ, 20)]).run()
        client = cluster.clients[0]
        assert client.completed_requests == 20
        assert all(r.status is ReplyStatus.OK for r in client.request_records())

    def test_reads_use_no_consensus_round(self):
        cluster = build_cluster([single_kind_steps(RequestKind.READ, 10)], trace=True)
        cluster.run()
        accepts = [e for e in cluster.trace.of_kind("send") if isinstance(e.detail, AcceptBatch)]
        assert accepts == []

    def test_backups_send_confirms(self):
        cluster = build_cluster([single_kind_steps(RequestKind.READ, 10)], trace=True)
        cluster.run()
        confirms = [e for e in cluster.trace.of_kind("send") if isinstance(e.detail, Confirm)]
        # Two backups confirm each of the 10 reads.
        assert len(confirms) == 20
        assert all(e.dst == cluster.leader_pid for e in confirms)

    def test_read_reflects_latest_write(self):
        cluster = build_cluster([mixed_steps(15)], service_factory=KVStoreService).run()
        records = cluster.clients[0].request_records()
        for i in range(15):
            read = records[2 * i + 1]
            assert read.kind is RequestKind.READ
            assert read.value == i, f"read {i} returned stale value {read.value}"

    def test_reads_do_not_advance_log(self):
        cluster = build_cluster([single_kind_steps(RequestKind.READ, 10)]).run()
        cluster.drain()
        assert all(r.log.frontier == 0 for r in cluster.replicas.values())

    def test_read_faster_than_write(self):
        reads = build_cluster([single_kind_steps(RequestKind.READ, 50)], seed=1).run()
        writes = build_cluster([single_kind_steps(RequestKind.WRITE, 50)], seed=1).run()
        read_rrt = sum(reads.clients[0].rrts()) / 50
        write_rrt = sum(writes.clients[0].rrts()) / 50
        assert read_rrt < write_rrt

    def test_basic_mode_reads_go_through_consensus(self):
        cluster = build_cluster(
            [single_kind_steps(RequestKind.READ, 5)], xpaxos_reads=False, trace=True
        ).run()
        accepts = [e for e in cluster.trace.of_kind("send") if isinstance(e.detail, AcceptBatch)]
        assert len(accepts) > 0
        cluster.drain()
        assert cluster.leader().log.frontier == 5


class TestMajorityRequirement:
    def test_read_survives_one_backup_crash(self):
        cluster = build_cluster([single_kind_steps(RequestKind.READ, 10)])
        FaultSchedule(cluster).crash("r1", at=0.0005)
        cluster.run()
        assert cluster.clients[0].completed_requests == 10

    def test_read_blocks_without_majority(self):
        # Both backups down: the leader alone is not a majority of 3, so
        # X-Paxos must NOT answer reads (it could miss a committed write).
        cluster = build_cluster([single_kind_steps(RequestKind.READ, 1)])
        FaultSchedule(cluster).crash("r1", at=0.0005).crash("r2", at=0.0005)
        cluster.start()
        cluster.kernel.run(until=2.0)
        assert cluster.clients[0].completed_requests == 0

    def test_read_completes_after_backup_recovers(self):
        cluster = build_cluster([single_kind_steps(RequestKind.READ, 1)])
        schedule = FaultSchedule(cluster)
        schedule.crash("r1", at=0.0005).crash("r2", at=0.0005)
        schedule.recover("r1", at=1.0)
        cluster.run(max_time=5.0)
        assert cluster.clients[0].completed_requests == 1


class TestStaleLeaderSafety:
    def test_deposed_leader_cannot_answer_reads(self):
        """A leader that lost its majority to a newer ballot can never
        assemble confirms: its reads starve instead of returning stale data."""
        cluster = build_cluster(
            [single_kind_steps(RequestKind.READ, 1)], elector="manual"
        )
        # Give leadership to r1 everywhere EXCEPT r0 keeps believing in r0:
        cluster.start()
        cluster.kernel.run(until=0.0001)
        for pid in ("r1", "r2"):
            cluster.manual_electors.electors[pid].set_leader("r1")
        # r0 still thinks it leads; backups now confirm r1's ballot, not r0's.
        cluster.kernel.run(until=1.0)
        r0 = cluster.replicas["r0"]
        # r0 received the read and is leading in its own view, yet must not
        # have replied: zero completed requests at the client... unless r1
        # answered it (r1 is leading with a majority). The client accepts
        # r1's answer; the assertion is that r0 itself never finished it.
        assert r0.reads.served == 0
