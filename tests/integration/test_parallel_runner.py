"""Parallel sweep runner: determinism, crash recovery, seed hygiene.

The load-bearing promise: the merged ``results`` section is a pure
function of the spec list — byte-identical for any worker count, any
completion order, and any retry history. Everything host-dependent
(wall-clock, attempts, worker ids) lives in the separated timing section.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.chaos.runner import ChaosOptions, run_chaos
from repro.errors import ConfigError
from repro.parallel import (
    RunSpec,
    SweepOptions,
    calibration_grid,
    canonical_json,
    chaos_grid,
    figures_grid,
    merge_records,
    merge_sweep,
    pmap,
    run_sweep,
    selftest_grid,
)

#: Small, fast chaos trials for sweep-level tests (~10 ms each).
FAST_CHAOS = dict(n_clients=1, requests_per_client=3, horizon=0.4, liveness_grace=4.0)


def merged_bytes(sweep) -> str:
    return canonical_json(merge_records(sweep.records))


class TestMergedDeterminism:
    def test_workers_1_4_8_byte_identical(self):
        specs = chaos_grid(seeds=6, **FAST_CHAOS)
        docs = {
            workers: merged_bytes(run_sweep(specs, SweepOptions(workers=workers)))
            for workers in (1, 4, 8)
        }
        assert docs[1] == docs[4] == docs[8]

    def test_submission_order_does_not_matter(self):
        specs = chaos_grid(seeds=5, **FAST_CHAOS)
        forward = run_sweep(specs, SweepOptions(workers=1))
        backward = run_sweep(list(reversed(specs)), SweepOptions(workers=3))
        assert merged_bytes(forward) == merged_bytes(backward)

    def test_timing_is_separated_from_results(self):
        specs = chaos_grid(seeds=3, **FAST_CHAOS)
        doc = merge_sweep(run_sweep(specs, SweepOptions(workers=2)))
        assert set(doc) == {"name", "results", "timing"}
        # Nothing host-dependent in the results section.
        assert "wall" not in json.dumps(doc["results"])
        # Timing has per-run wall and realized parallelism.
        assert doc["timing"]["workers"] == 2
        assert set(doc["timing"]["runs"]) == {spec.key for spec in specs}

    def test_canonical_json_is_stable(self):
        doc = {"b": 1, "a": [1.5, {"z": None, "y": "x"}]}
        assert canonical_json(doc) == canonical_json(json.loads(canonical_json(doc)))


class TestCrashRecovery:
    def test_killed_worker_is_retried_with_unchanged_merge(self, tmp_path):
        marker = tmp_path / "crashed"
        specs = [RunSpec(task="echo", key=f"echo/{i}", params={"value": i})
                 for i in range(5)]
        crash = RunSpec(
            task="crash",
            key="crash/once",
            params={"marker": str(marker), "value": 42},
        )
        specs.insert(2, crash)

        # Reference: the same specs where the crash never happens (marker
        # pre-created, so the task completes on its first attempt).
        marker.write_text("pre-existing\n")
        reference = run_sweep(specs, SweepOptions(workers=1))
        marker.unlink()

        sweep = run_sweep(specs, SweepOptions(workers=3, retries=1))
        record = next(r for r in sweep.records if r.spec.key == "crash/once")
        assert record.ok
        assert record.attempts == 2  # first attempt SIGKILLed the worker
        assert merged_bytes(sweep) == merged_bytes(reference)

    def test_timeout_kills_and_records_error(self):
        specs = [
            RunSpec(task="hang", key="hang/0", params={"duration": 60.0}),
            RunSpec(task="echo", key="echo/0", params={"value": 0}),
            RunSpec(task="echo", key="echo/1", params={"value": 1}),
        ]
        sweep = run_sweep(specs, SweepOptions(workers=2, timeout=0.3, retries=0))
        hang = next(r for r in sweep.records if r.spec.key == "hang/0")
        assert not hang.ok
        assert "timeout" in hang.error
        assert all(r.ok for r in sweep.records if r.spec.key != "hang/0")
        assert not sweep.ok and sweep.failed() == [hang]

    def test_task_exception_becomes_error_record_not_retry(self):
        specs = [
            RunSpec(task="fail", key="fail/0", params={"message": "boom"}),
            RunSpec(task="echo", key="echo/0", params={"value": 1}),
        ]
        sweep = run_sweep(specs, SweepOptions(workers=2, retries=3))
        failed = next(r for r in sweep.records if r.spec.key == "fail/0")
        assert failed.error == "RuntimeError: boom"
        # Deterministic failures are not retried (they would fail again).
        assert failed.attempts == 1


class TestSeedHygiene:
    """Satellite fix: run seeds are part of the run spec, so parallel
    execution (sharding, stealing, retries) cannot skew any schedule."""

    def test_every_chaos_spec_carries_its_own_seed(self):
        specs = chaos_grid(seeds=4, first_seed=7, **FAST_CHAOS)
        assert [spec.params["seed"] for spec in specs] == [7, 8, 9, 10]
        for spec in specs:
            assert f"seed={spec.params['seed']:06d}" in spec.key
            # The options are fully materialized — a worker needs nothing
            # beyond the spec to reproduce the trial.
            ChaosOptions(**spec.params["options"])

    def test_parallel_chaos_trial_equals_direct_serial_call(self):
        specs = chaos_grid(seeds=3, **FAST_CHAOS)
        sweep = run_sweep(specs, SweepOptions(workers=3))
        options = ChaosOptions(**specs[0].params["options"])
        for record in sweep.records:
            direct = run_chaos(record.spec.params["seed"], options)
            assert record.result == direct.to_dict()

    def test_figure_grid_seeds_match_serial_report(self):
        """The grid must pin the exact seeds the serial sections use —
        a parallel sweep reproduces the serial report's numbers."""
        by_task = {}
        for spec in figures_grid(quick=True):
            by_task.setdefault(spec.task, set()).add(spec.params["seed"])
        assert by_task == {
            "rrt": {1},
            "throughput": {3},
            "txn_rrt": {2},
            "txn_throughput": {5},
        }

    def test_calibration_grid_keys_unique_and_sorted_stable(self):
        specs = calibration_grid(samples=10, seeds=3)
        keys = [spec.key for spec in specs]
        assert len(set(keys)) == len(keys)

    def test_selftest_grid_deterministic_across_workers(self):
        """The selftest grid merges byte-identically at any worker count,
        and the sleep knob (overlap only) never reaches a task result."""
        specs = selftest_grid(runs=5, sleep=0.01)
        serial = run_sweep(specs, SweepOptions(workers=1))
        sharded = run_sweep(specs, SweepOptions(workers=3))
        assert merged_bytes(serial) == merged_bytes(sharded)
        assert [r.result for r in serial.records] == [
            {"echo": {"index": i}} for i in range(5)
        ]


class TestSpecsAndPmap:
    def test_duplicate_keys_rejected(self):
        specs = [
            RunSpec(task="echo", key="dup", params={}),
            RunSpec(task="echo", key="dup", params={}),
        ]
        with pytest.raises(ConfigError, match="duplicate run key"):
            run_sweep(specs, SweepOptions(workers=1))

    def test_pmap_preserves_order(self):
        results = pmap("echo", [{"value": i} for i in range(7)], workers=3)
        assert [r["echo"]["value"] for r in results] == list(range(7))

    def test_pmap_raises_on_failure(self):
        with pytest.raises(RuntimeError, match="boom"):
            pmap("fail", [{"message": "boom"}, {"message": "boom"}], workers=2)

    def test_unknown_task_rejected(self):
        with pytest.raises(ConfigError, match="unknown task"):
            run_sweep([RunSpec(task="nope", key="k", params={})])

    def test_invalid_options_rejected(self):
        with pytest.raises(ConfigError):
            SweepOptions(workers=-1)
        with pytest.raises(ConfigError):
            SweepOptions(timeout=0.0)
        with pytest.raises(ConfigError):
            SweepOptions(retries=-1)

    def test_spec_requires_key(self):
        with pytest.raises(ConfigError):
            RunSpec(task="echo", key="")

    def test_options_roundtrip_through_worker(self):
        """ChaosOptions survive asdict/reconstruct across the process
        boundary — guards against adding an unpicklable field."""
        options = ChaosOptions(protocol="xpaxos", **FAST_CHAOS)
        rebuilt = ChaosOptions(**dataclasses.asdict(options))
        assert rebuilt == options
