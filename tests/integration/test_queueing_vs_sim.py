"""Cross-validation: the analytic queueing model vs the simulator.

If the MVA model and the DES disagree badly, one of them is wrong about
the system being modeled — this is the internal consistency check of the
whole throughput methodology.
"""

from __future__ import annotations

import pytest

from repro.analysis.queueing import sysnet_model
from repro.cluster.scenarios import throughput_scenario


class TestModelVsSimulator:
    @pytest.mark.parametrize("kind", ["original", "read"])
    @pytest.mark.parametrize("clients", [1, 4, 16])
    def test_throughput_agreement_below_saturation(self, kind, clients):
        model = sysnet_model(kind)
        predicted = model.throughput(clients)
        measured = throughput_scenario(
            "sysnet", kind, clients, total_requests=1000, seed=3,
            connection_scaling=False,
        ).throughput
        assert measured == pytest.approx(predicted, rel=0.25)

    def test_rrt_agreement_at_single_client(self):
        for kind in ("original", "read", "write"):
            model = sysnet_model(kind)
            measured = throughput_scenario(
                "sysnet", kind, 1, total_requests=300, seed=3,
                connection_scaling=False,
            )
            assert measured.rrt.mean == pytest.approx(
                model.response_time(1), rel=0.1
            )

    def test_saturation_prediction_order_of_magnitude(self):
        # The model says the original service saturates at ~1/S = 100k/s;
        # the simulator at very high client counts should get within 2x.
        model = sysnet_model("original")
        cap = 1.0 / model.service
        measured = throughput_scenario(
            "sysnet", "original", 64, total_requests=2000, seed=3,
            connection_scaling=False,
        ).throughput
        assert cap / 2 < measured <= cap * 1.05

    def test_model_explains_read_over_write_margin(self):
        # The Fig. 5 ordering is a direct consequence of per-kind demand.
        read_model = sysnet_model("read")
        write_model = sysnet_model("write")
        assert read_model.throughput(16) > write_model.throughput(16)
