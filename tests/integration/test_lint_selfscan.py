"""The linter's acceptance test is the repo itself.

* the shipped ``src/`` tree is clean (under the shipped, empty baseline);
* seeding a DET001 violation into a copy of ``core/replica.py`` turns the
  scan red and the report names the rule, file and line;
* seeding a two-hop ambient leak trips the whole-program DET101 with the
  full witness chain, and a typo'd ``Promise`` field trips MSG101;
* the on-disk index cache is correct: warm output is byte-identical to
  cold and touching one file re-indexes only that file;
* two full self-scans are byte-identical across PYTHONHASHSEED values.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import Baseline, LintEngine

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "lint-baseline.json"


class TestSelfScan:
    def test_src_is_clean(self):
        result = LintEngine().check_paths([SRC])
        assert result.ok, "\n".join(f.render() for f in result.findings)
        assert result.files > 90  # the whole tree was actually scanned

    def test_src_is_clean_under_shipped_baseline(self, capsys):
        assert BASELINE.exists(), "lint-baseline.json must ship with the repo"
        baseline = Baseline.load(BASELINE)
        assert baseline.fingerprints == {}, (
            "the shipped baseline must stay empty: fix findings, do not bank them"
        )
        code = main(["lint", str(SRC), "--baseline", str(BASELINE)])
        capsys.readouterr()
        assert code == 0

    def test_cli_exits_zero_on_shipped_tree(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out


class TestSeededViolation:
    @pytest.fixture
    def tainted_tree(self, tmp_path):
        """A copy of the real core/ with a wall-clock read spliced into
        replica.py — the exact leak DET001 exists to catch."""
        tree = tmp_path / "repro" / "core"
        tree.parent.mkdir()
        shutil.copytree(SRC / "repro" / "core", tree)
        target = tree / "replica.py"
        source = target.read_text(encoding="utf-8")
        source += (
            "\n\nimport time\n\n\n"
            "def _leaky_timestamp() -> float:\n"
            "    return time.time()\n"
        )
        target.write_text(source, encoding="utf-8")
        line = source.count("\n")  # the return is the last line
        return tmp_path, line

    def test_seeded_det001_fails_scan_naming_rule_file_line(
        self, tainted_tree, capsys
    ):
        root, line = tainted_tree
        assert main(["lint", str(root)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert f"repro/core/replica.py:{line}" in out
        assert "time.time" in out

    def test_seeded_violation_is_suppressible_with_reason(self, tainted_tree, capsys):
        root, _ = tainted_tree
        target = root / "repro" / "core" / "replica.py"
        source = target.read_text(encoding="utf-8").replace(
            "return time.time()",
            "return time.time()  # lint: ignore[DET001] -- test fixture",
        )
        target.write_text(source, encoding="utf-8")
        assert main(["lint", str(root)]) == 0
        # The seeded DET001 suppression plus the shipped MSG102 suppression
        # in the copied fastpaxos.py.
        assert "2 suppressed" in capsys.readouterr().out


class TestSeededProjectViolations:
    """The ISSUE-mandated seeded bugs for the whole-program rules: the
    analyzer must catch them *through* the call graph, not just at the
    offending line."""

    @pytest.fixture
    def core_copy(self, tmp_path):
        tree = tmp_path / "repro" / "core"
        tree.parent.mkdir()
        shutil.copytree(SRC / "repro" / "core", tree)
        return tmp_path

    def test_two_hop_ambient_leak_trips_det101_with_full_path(
        self, core_copy, capsys
    ):
        # A helper package two call hops away from replica.py reads the
        # wall clock; replica.py itself never mentions ``time``.
        util = core_copy / "repro" / "util"
        util.mkdir()
        (util / "leak.py").write_text(
            "import time\n\n\n"
            "def leak_helper(x):\n"
            "    return _stamp(x)\n\n\n"
            "def _stamp(x):\n"
            "    return (x, time.time())\n",
            encoding="utf-8",
        )
        target = core_copy / "repro" / "core" / "replica.py"
        source = target.read_text(encoding="utf-8")
        source += (
            "\n\nfrom repro.util.leak import leak_helper\n\n\n"
            "def _leaky_entry(x):\n"
            "    return leak_helper(x)\n"
        )
        target.write_text(source, encoding="utf-8")
        assert main(["lint", str(core_copy), "--select", "DET101"]) == 1
        out = capsys.readouterr().out
        assert "DET101" in out
        assert "repro/core/replica.py" in out
        # The witness names every hop of the chain, ending at the clock.
        assert "repro.core.replica._leaky_entry" in out
        assert "repro.util.leak.leak_helper" in out
        assert "repro.util.leak._stamp" in out
        assert "time.time" in out

    def test_promise_field_typo_trips_msg101_with_file_line(
        self, core_copy, capsys
    ):
        target = core_copy / "repro" / "core" / "replica.py"
        source = target.read_text(encoding="utf-8")
        source += (
            "\n\ndef _peek_promise(msg: Promise) -> int:\n"
            "    return msg.balot\n"
        )
        target.write_text(source, encoding="utf-8")
        line = source.count("\n")  # the read is the last line
        assert main(["lint", str(core_copy), "--select", "MSG101"]) == 1
        out = capsys.readouterr().out
        assert "MSG101" in out
        assert f"repro/core/replica.py:{line}" in out
        assert "balot" in out


class TestIndexCache:
    def test_warm_scan_byte_identical_and_single_file_reindex(
        self, tmp_path, capsys
    ):
        tree = tmp_path / "repro"
        shutil.copytree(SRC / "repro", tree)
        cache = tmp_path / "lint-cache.json"
        argv = ["lint", str(tmp_path), "--cache", str(cache)]

        assert main(argv) == 0
        cold = capsys.readouterr()
        total = int(cold.err.split("reindexed ")[1].split("/")[1].split()[0])
        assert f"reindexed {total}/{total}" in cold.err

        assert main(argv) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out  # stdout never depends on cache state
        assert f"reindexed 0/{total}" in warm.err

        # Touching one file re-indexes exactly that file...
        target = tree / "core" / "replica.py"
        target.write_text(
            target.read_text(encoding="utf-8") + "\n# touched\n",
            encoding="utf-8",
        )
        assert main(argv) == 0
        touched = capsys.readouterr()
        assert f"reindexed 1/{total}" in touched.err
        assert "repro/core/replica.py" in touched.err
        # ...and the report is still byte-identical to a cold scan.
        cache.unlink()
        assert main(argv) == 0
        recold = capsys.readouterr()
        assert touched.out == recold.out


class TestGraphExport:
    def test_graph_json_export(self, capsys):
        assert main(["lint", str(SRC), "--graph", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert "repro.core.messages.Promise" in document["messages"]
        assert document["sends"], "the real tree has send sites"
        assert document["handlers"], "the real tree has handlers"
        assert document["call_edges"], "the real tree has call edges"

    def test_graph_dot_export(self, capsys):
        assert main(["lint", str(SRC), "--graph", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph msgflow {")
        assert out.rstrip().endswith("}")
        assert "Promise" in out


class TestSelfScanDeterminism:
    def test_full_scan_byte_identical_across_hash_seeds(self):
        outputs = []
        for seed in ("0", "4242"):
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "lint", str(SRC),
                 "--format", "json"],
                capture_output=True,
                env={"PYTHONPATH": str(SRC), "PYTHONHASHSEED": seed},
            )
            assert proc.returncode == 0, proc.stderr.decode()
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        document = json.loads(outputs[0])
        assert document["summary"]["findings"] == 0
