"""The linter's acceptance test is the repo itself.

* the shipped ``src/`` tree is clean (under the shipped, empty baseline);
* seeding a DET001 violation into a copy of ``core/replica.py`` turns the
  scan red and the report names the rule, file and line;
* two full self-scans are byte-identical across PYTHONHASHSEED values.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import Baseline, LintEngine

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "lint-baseline.json"


class TestSelfScan:
    def test_src_is_clean(self):
        result = LintEngine().check_paths([SRC])
        assert result.ok, "\n".join(f.render() for f in result.findings)
        assert result.files > 90  # the whole tree was actually scanned

    def test_src_is_clean_under_shipped_baseline(self, capsys):
        assert BASELINE.exists(), "lint-baseline.json must ship with the repo"
        baseline = Baseline.load(BASELINE)
        assert baseline.fingerprints == {}, (
            "the shipped baseline must stay empty: fix findings, do not bank them"
        )
        code = main(["lint", str(SRC), "--baseline", str(BASELINE)])
        capsys.readouterr()
        assert code == 0

    def test_cli_exits_zero_on_shipped_tree(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out


class TestSeededViolation:
    @pytest.fixture
    def tainted_tree(self, tmp_path):
        """A copy of the real core/ with a wall-clock read spliced into
        replica.py — the exact leak DET001 exists to catch."""
        tree = tmp_path / "repro" / "core"
        tree.parent.mkdir()
        shutil.copytree(SRC / "repro" / "core", tree)
        target = tree / "replica.py"
        source = target.read_text(encoding="utf-8")
        source += (
            "\n\nimport time\n\n\n"
            "def _leaky_timestamp() -> float:\n"
            "    return time.time()\n"
        )
        target.write_text(source, encoding="utf-8")
        line = source.count("\n")  # the return is the last line
        return tmp_path, line

    def test_seeded_det001_fails_scan_naming_rule_file_line(
        self, tainted_tree, capsys
    ):
        root, line = tainted_tree
        assert main(["lint", str(root)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert f"repro/core/replica.py:{line}" in out
        assert "time.time" in out

    def test_seeded_violation_is_suppressible_with_reason(self, tainted_tree, capsys):
        root, _ = tainted_tree
        target = root / "repro" / "core" / "replica.py"
        source = target.read_text(encoding="utf-8").replace(
            "return time.time()",
            "return time.time()  # lint: ignore[DET001] -- test fixture",
        )
        target.write_text(source, encoding="utf-8")
        assert main(["lint", str(root)]) == 0
        assert "1 suppressed" in capsys.readouterr().out


class TestSelfScanDeterminism:
    def test_full_scan_byte_identical_across_hash_seeds(self):
        outputs = []
        for seed in ("0", "4242"):
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "lint", str(SRC),
                 "--format", "json"],
                capture_output=True,
                env={"PYTHONPATH": str(SRC), "PYTHONHASHSEED": seed},
            )
            assert proc.returncode == 0, proc.stderr.decode()
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        document = json.loads(outputs[0])
        assert document["summary"]["findings"] == 0
