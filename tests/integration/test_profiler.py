"""The profiler must be passive and deterministic: a profiled run is
byte-identical to a bare one, two profiled runs of the same seed produce
byte-identical sim-CPU output, and the exported artifacts validate.

Mirrors tests/integration/test_obs_determinism.py — the profiler signs the
same passivity contract as the metrics registry and the tracer."""

from __future__ import annotations

import pickle

import pytest

from repro.client.workload import paper_txn_steps, single_kind_steps
from repro.cluster.harness import Cluster, ClusterSpec
from repro.obs.chrome import validate_chrome_trace
from repro.obs.prof import NULL_PROFILER, attribution, collapsed_lines
from repro.types import RequestKind
from tests.conftest import make_test_profile


def run(profiling: bool, steps_factory, seed: int = 7,
        execute_time: float = 0.0, tracing: bool = False) -> Cluster:
    spec = ClusterSpec(
        profile=make_test_profile(),
        seed=seed,
        profiling=profiling,
        execute_time=execute_time,
        tracing=tracing,
    )
    steps = [steps_factory() for _ in range(2)]
    return Cluster(spec, steps).run().drain()


def chosen_log_bytes(cluster: Cluster) -> dict[str, bytes]:
    """A byte-exact digest of every replica's chosen sequence."""
    return {
        pid: pickle.dumps(replica.log.chosen_above(0))
        for pid, replica in cluster.replicas.items()
    }


WORKLOADS = [
    pytest.param(lambda: single_kind_steps(RequestKind.WRITE, 10), id="writes"),
    pytest.param(lambda: single_kind_steps(RequestKind.READ, 10), id="reads"),
    pytest.param(lambda: paper_txn_steps("optimized", 3, 5), id="txns"),
]


class TestProfilerCannotPerturbTheRun:
    @pytest.mark.parametrize("steps_factory", WORKLOADS)
    def test_chosen_logs_byte_identical(self, steps_factory):
        profiled = run(profiling=True, steps_factory=steps_factory)
        bare = run(profiling=False, steps_factory=steps_factory)
        assert chosen_log_bytes(profiled) == chosen_log_bytes(bare)
        assert profiled.kernel.now == bare.kernel.now

    @pytest.mark.parametrize("steps_factory", WORKLOADS)
    def test_byte_identical_with_modeled_execution(self, steps_factory):
        profiled = run(profiling=True, steps_factory=steps_factory,
                       execute_time=0.002)
        bare = run(profiling=False, steps_factory=steps_factory,
                   execute_time=0.002)
        assert chosen_log_bytes(profiled) == chosen_log_bytes(bare)
        assert profiled.kernel.now == bare.kernel.now

    def test_profiling_composes_with_tracing(self):
        factory = lambda: single_kind_steps(RequestKind.WRITE, 8)  # noqa: E731
        both = run(profiling=True, tracing=True, steps_factory=factory)
        bare = run(profiling=False, tracing=False, steps_factory=factory)
        assert chosen_log_bytes(both) == chosen_log_bytes(bare)

    def test_scopes_balanced_at_end_of_run(self):
        for steps_factory in (
            lambda: single_kind_steps(RequestKind.WRITE, 10),
            lambda: single_kind_steps(RequestKind.READ, 10),
            lambda: paper_txn_steps("optimized", 3, 5),
        ):
            cluster = run(profiling=True, steps_factory=steps_factory,
                          execute_time=0.001)
            assert cluster.profiler._stack == []


class TestProfilerDeterminism:
    @pytest.mark.parametrize("steps_factory", WORKLOADS)
    def test_sim_collapsed_output_byte_identical(self, steps_factory):
        a = run(profiling=True, steps_factory=steps_factory)
        b = run(profiling=True, steps_factory=steps_factory)
        # Sim-CPU frames and counter samples derive only from simulation
        # state, so two runs of the same seed agree to the byte.
        assert collapsed_lines(a.profiler, metric="sim") == \
            collapsed_lines(b.profiler, metric="sim")
        assert a.profiler.samples == b.profiler.samples

    def test_frames_cover_protocol_and_messaging(self):
        cluster = run(
            profiling=True,
            steps_factory=lambda: single_kind_steps(RequestKind.WRITE, 10),
            execute_time=0.001,
        )
        leaves = {path[-1] for path in cluster.profiler.frames()}
        assert "execute" in leaves
        assert "apply" in leaves
        assert "propose" in leaves
        assert any(leaf.startswith("send.AcceptBatch") for leaf in leaves)
        assert any(leaf.startswith("on_message.") for leaf in leaves)

    def test_attribution_accounts_expected_components(self):
        cluster = run(
            profiling=True,
            steps_factory=lambda: single_kind_steps(RequestKind.WRITE, 10),
            execute_time=0.001,
        )
        result = attribution(cluster.profiler)
        # E: one modeled execution per committed write, 1 ms each.
        calls, seconds = result["E"]
        assert calls == 20  # 2 clients x 10 writes
        assert seconds == pytest.approx(20 * 0.001)
        # The test profile's CPU costs are zero, so M/m frames carry no
        # sim time and stay out of the attribution — but the frames
        # themselves must exist and classify correctly.
        from repro.obs.prof import classify_frame

        components = {
            classify_frame(path, cluster.profiler.actors)
            for path in cluster.profiler.frames()
        }
        assert {"E", "M", "m"} <= components


class TestProfilerExports:
    def test_chrome_trace_with_counters_validates(self, tmp_path):
        cluster = run(
            profiling=True, tracing=True,
            steps_factory=lambda: single_kind_steps(RequestKind.WRITE, 8),
        )
        path = cluster.export_chrome(tmp_path / "trace.json")
        counts = validate_chrome_trace(path)
        assert counts["counter_events"] > 0
        assert counts["duration_spans"] > 0

    def test_timeline_export_carries_prof_records(self, tmp_path):
        from repro.obs.timeline import load_export

        cluster = run(
            profiling=True,
            steps_factory=lambda: single_kind_steps(RequestKind.WRITE, 8),
        )
        path = cluster.export_timeline(tmp_path / "run.jsonl")
        export = load_export(path)
        assert export.skipped == 0
        assert export.prof
        paths = {tuple(r["path"]) for r in export.prof}
        assert any(p[-1].startswith("send.") for p in paths)

    def test_unprofiled_run_exports_no_prof_records(self, tmp_path):
        from repro.obs.timeline import load_export

        cluster = run(
            profiling=False,
            steps_factory=lambda: single_kind_steps(RequestKind.WRITE, 5),
        )
        assert cluster.profiler is NULL_PROFILER
        path = cluster.export_timeline(tmp_path / "run.jsonl")
        assert load_export(path).prof == []
