"""Integration tests for the basic protocol (§3.3): writes through consensus."""

from __future__ import annotations

import pytest

from repro.client.workload import Step, single_kind_steps
from repro.services.counter import CounterService
from repro.services.kvstore import KVStoreService
from repro.types import ReplyStatus, RequestKind
from tests.integration.util import build_cluster, converged_fingerprints


class TestWrites:
    def test_all_writes_complete(self):
        cluster = build_cluster([single_kind_steps(RequestKind.WRITE, 20)])
        cluster.run()
        client = cluster.clients[0]
        assert client.completed_requests == 20
        assert all(r.status is ReplyStatus.OK for r in client.request_records())

    def test_replies_come_from_leader(self):
        cluster = build_cluster([single_kind_steps(RequestKind.WRITE, 5)])
        cluster.run()
        # Only the leader replies (§3.3): the noop version counter counts
        # every write exactly once.
        values = [r.value for r in cluster.clients[0].request_records()]
        assert values == [1, 2, 3, 4, 5]

    def test_replicas_converge_after_drain(self):
        cluster = build_cluster(
            [single_kind_steps(RequestKind.WRITE, 30, op=("add_random", 1, 100))],
            service_factory=CounterService,
            seed=3,
        ).run()
        prints = converged_fingerprints(cluster)
        assert len(set(prints.values())) == 1

    def test_kvstore_replication(self):
        steps = single_kind_steps(
            RequestKind.WRITE, 10, op=lambda i: ("put", f"k{i}", i)
        )
        cluster = build_cluster([steps], service_factory=KVStoreService).run()
        prints = converged_fingerprints(cluster)
        expected = tuple(sorted((f"k{i}", i) for i in range(10)))
        assert set(prints.values()) == {expected}

    def test_multiple_clients_interleave_consistently(self):
        steps = [
            single_kind_steps(RequestKind.WRITE, 10, op=lambda i, c=c: ("put", f"{c}-{i}", i))
            for c in range(4)
        ]
        cluster = build_cluster(steps, service_factory=KVStoreService).run()
        prints = converged_fingerprints(cluster)
        assert len(set(prints.values())) == 1
        # All 40 writes landed.
        assert len(cluster.leader().service.data) == 40

    def test_log_instances_are_gapless(self):
        cluster = build_cluster([single_kind_steps(RequestKind.WRITE, 25)]).run()
        cluster.drain()
        for replica in cluster.replicas.values():
            assert replica.log.gaps() == ()
            assert replica.applied == replica.log.frontier

    def test_chosen_sequences_identical_across_replicas(self):
        cluster = build_cluster(
            [single_kind_steps(RequestKind.WRITE, 15) for _ in range(2)]
        ).run()
        cluster.drain()
        sequences = []
        for replica in cluster.replicas.values():
            top = replica.log.frontier
            seq = [
                replica.log.chosen_value(i).primary_rid
                for i in range(replica.log.compacted_to + 1, top + 1)
            ]
            sequences.append((replica.log.compacted_to, tuple(seq)))
        assert len({s for s in sequences}) == 1

    def test_service_error_reported_not_replicated(self):
        # Withdrawing from a nonexistent account raises ServiceError.
        steps = [Step(requests=((RequestKind.WRITE, ("deposit", "ghost", 5)),))]
        from repro.services.bank import BankService

        cluster = build_cluster([steps], service_factory=BankService).run()
        record = cluster.clients[0].request_records()[0]
        assert record.status is ReplyStatus.ERROR
        cluster.drain()
        # Nothing was committed for the failed request.
        assert all(r.log.frontier == 0 for r in cluster.replicas.values())


class TestRetransmitDedup:
    def test_duplicate_request_not_executed_twice(self):
        # A short client timeout forces retransmits even in a healthy run:
        # pick a timeout below the write RRT (~4 ms with 1 ms links).
        cluster = build_cluster(
            [single_kind_steps(RequestKind.WRITE, 10)],
            client_timeout=0.003,
        )
        cluster.run()
        client = cluster.clients[0]
        assert sum(r.retransmits for r in client.request_records()) > 0
        # At-most-once: the version counter saw exactly 10 increments.
        assert cluster.leader().service.version == 10
        assert [r.value for r in client.request_records()] == list(range(1, 11))

    def test_duplicate_delivery_by_network(self):
        # Force the network itself to duplicate every message.
        from repro.net.latency import ConstantLatency
        from repro.net.link import LinkSpec
        from repro.net.profiles import NetworkProfile
        from repro.net.topology import Topology
        from repro.sim.cpu import CpuProfile
        from repro.cluster.harness import Cluster, ClusterSpec

        def builder(replicas, clients):
            topo = Topology(
                default=LinkSpec(latency=ConstantLatency(1e-3), duplicate=1.0)
            )
            topo.place_all(list(replicas), "site")
            topo.place_all(list(clients), "site")
            return topo

        profile = NetworkProfile(
            name="dup",
            description="always duplicates",
            replica_cpu=CpuProfile(),
            client_cpu=CpuProfile(),
            paper_rrt={},
            _builder=builder,
            per_connection_overhead=0.0,
        )
        from repro.client.workload import single_kind_steps as sks

        cluster = Cluster(ClusterSpec(profile=profile, seed=1), [sks(RequestKind.WRITE, 10)])
        cluster.run()
        assert cluster.leader().service.version == 10


class TestBackupBehaviour:
    def test_backups_do_not_reply_to_writes(self):
        cluster = build_cluster([single_kind_steps(RequestKind.WRITE, 5)], trace=True)
        cluster.run()
        from repro.core.messages import Reply

        replies = [
            e for e in cluster.trace.of_kind("send")
            if isinstance(e.detail, Reply) and e.src != cluster.leader_pid
        ]
        assert replies == []

    def test_original_requests_skip_coordination(self):
        cluster = build_cluster([single_kind_steps(RequestKind.ORIGINAL, 5)], trace=True)
        cluster.run()
        from repro.core.messages import AcceptBatch

        accepts = [e for e in cluster.trace.of_kind("send") if isinstance(e.detail, AcceptBatch)]
        assert accepts == []

    def test_original_leaves_backups_stale(self):
        # The baseline really is unreplicated: backups never see the writes.
        cluster = build_cluster(
            [single_kind_steps(RequestKind.ORIGINAL, 5, op=("write",))]
        ).run()
        cluster.drain()
        leader = cluster.leader()
        backups = [r for pid, r in cluster.replicas.items() if pid != cluster.leader_pid]
        assert leader.service.version == 5
        assert all(b.service.version == 0 for b in backups)
