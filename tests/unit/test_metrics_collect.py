"""Edge-case tests for :func:`repro.cluster.metrics.collect`.

``collect`` only reads ``cluster.clients`` and ``cluster.metrics``, so the
edge cases (zero clients, nothing finished, mixed abort outcomes) are
exercised against hand-built clients rather than full simulated runs.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.client.client import Client, RequestRecord, StepRecord
from repro.client.workload import single_kind_steps
from repro.cluster.metrics import collect
from repro.core.requests import RequestId
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.types import ReplyStatus, RequestKind


def make_client(pid: str = "c0", steps=()) -> Client:
    return Client(pid, replicas=("r0",), steps=list(steps))


def fake_cluster(clients, registry=None) -> SimpleNamespace:
    return SimpleNamespace(
        clients=list(clients),
        metrics=registry if registry is not None else NULL_REGISTRY,
    )


def completed_request(client: str, seq: int, sent: float, done: float) -> RequestRecord:
    record = RequestRecord(
        rid=RequestId(client, seq), kind=RequestKind.WRITE, sent_at=sent
    )
    record.completed_at = done
    record.status = ReplyStatus.OK
    return record


class TestCollectEdgeCases:
    def test_zero_clients(self):
        result = collect(fake_cluster([]))
        assert result.n_clients == 0
        assert result.duration == 0.0
        assert result.total_requests == 0
        assert result.total_steps == 0
        assert result.aborted_steps == 0
        assert result.rrt is None and result.trt is None
        assert result.throughput == 0.0
        assert result.step_throughput == 0.0

    def test_client_that_never_finished(self):
        # Started but no request ever completed: duration stays 0 because
        # there is no finish timestamp, and no summary is produced.
        client = make_client(steps=single_kind_steps(RequestKind.WRITE, 3))
        client.started_at = 1.0
        client.records.append(StepRecord(label="w", started_at=1.0))
        client.records[-1].requests.append(
            RequestRecord(rid=RequestId("c0", 0), kind=RequestKind.WRITE, sent_at=1.0)
        )
        result = collect(fake_cluster([client]))
        assert result.duration == 0.0
        assert result.total_requests == 0
        assert result.rrt is None
        assert result.throughput == 0.0  # duration == 0 must not divide

    def test_mixed_aborted_and_completed_steps(self):
        client = make_client()
        ok = StepRecord(label="ok", started_at=0.0)
        ok.completed_at = 0.5
        ok.requests.append(completed_request("c0", 0, 0.0, 0.5))
        aborted = StepRecord(label="dead", started_at=0.5)
        aborted.completed_at = 0.7
        aborted.aborted = True
        aborted.requests.append(completed_request("c0", 1, 0.5, 0.7))
        client.records.extend([ok, aborted])
        client.started_at = 0.0
        client.finished_at = 0.7

        result = collect(fake_cluster([client]))
        assert result.n_clients == 1
        assert result.duration == pytest.approx(0.7)
        assert result.total_requests == 2  # both requests got replies
        assert result.total_steps == 1  # aborted steps don't count as completed
        assert result.aborted_steps == 1
        assert result.trt is not None
        assert result.trt.mean == pytest.approx(0.5)  # aborted TRT excluded

    def test_retransmits_summed_across_clients(self):
        clients = []
        for i, retransmits in enumerate((2, 3)):
            client = make_client(pid=f"c{i}")
            step = StepRecord(label="w", started_at=0.0)
            step.completed_at = 1.0
            request = completed_request(f"c{i}", 0, 0.0, 1.0)
            request.retransmits = retransmits
            step.requests.append(request)
            client.records.append(step)
            client.started_at, client.finished_at = 0.0, 1.0
            clients.append(client)
        assert collect(fake_cluster(clients)).total_retransmits == 5

    def test_message_totals_read_from_registry(self):
        registry = MetricsRegistry()
        registry.counter("msg.send.Reply").inc(7)
        registry.counter("msg.send.AcceptBatch").inc(9)
        registry.counter("msg.send_bytes.Reply").inc(700)
        registry.counter("msg.drop.Reply").inc(2)
        result = collect(fake_cluster([], registry))
        assert result.total_messages == 16
        assert result.total_dropped == 2
        assert result.total_bytes == 700
        assert result.messages_by_type == (("AcceptBatch", 9), ("Reply", 7))

    def test_null_registry_leaves_zeros(self):
        result = collect(fake_cluster([]))
        assert result.total_messages == 0
        assert result.total_bytes == 0
        assert result.messages_by_type == ()

    def test_describe_includes_message_line_only_when_counted(self):
        registry = MetricsRegistry()
        registry.counter("msg.send.Reply").inc(4)
        with_messages = collect(fake_cluster([], registry))
        assert "messages=4" in with_messages.describe()
        without = collect(fake_cluster([]))
        assert "messages=" not in without.describe()
