"""Unit tests for the chaos engine: schedule generation/serialization,
invariant checkers on synthetic snapshots, and trial option validation."""

from __future__ import annotations

import pytest

from repro.chaos.invariants import (
    Violation,
    check_acked_durability,
    check_at_most_once,
    check_linearizability,
    check_liveness,
    check_log_agreement,
    check_prefix_consistency,
    check_state_convergence,
    check_txn_atomicity,
)
from repro.chaos.runner import ChaosOptions
from repro.chaos.schedule import (
    EVENT_KINDS,
    STORAGE_KINDS,
    NemesisEvent,
    NemesisSchedule,
    generate_schedule,
)
from repro.client.client import RequestRecord
from repro.core.messages import Proposal
from repro.core.requests import ClientRequest, RequestId
from repro.errors import ConfigError
from repro.types import ReplyStatus, RequestKind

PIDS = ("r0", "r1", "r2")


# ----------------------------------------------------------------- generation
class TestGenerateSchedule:
    def test_same_seed_same_schedule(self):
        a = generate_schedule(7, PIDS)
        b = generate_schedule(7, PIDS)
        assert a == b

    def test_different_seeds_differ(self):
        schedules = {generate_schedule(s, PIDS).events for s in range(20)}
        assert len(schedules) > 1

    def test_events_sorted_and_within_horizon(self):
        for seed in range(30):
            schedule = generate_schedule(seed, PIDS, horizon=1.5)
            ats = [e.at for e in schedule.events]
            assert ats == sorted(ats)
            # Only the final stabilizing leader switch may exceed the horizon.
            assert all(e.at <= 1.5 + 0.011 for e in schedule.events)

    def test_every_crash_is_paired_with_recovery(self):
        for seed in range(30):
            schedule = generate_schedule(seed, PIDS)
            crashes = sum(1 for e in schedule.events if e.kind == "crash")
            recoveries = sum(1 for e in schedule.events if e.kind == "recover")
            # Final stabilization recovers everyone, so recover >= crash.
            assert recoveries >= crashes

    def test_majority_stays_alive_by_default(self):
        max_faults = (len(PIDS) - 1) // 2
        for seed in range(50):
            schedule = generate_schedule(seed, PIDS)
            down: set[str] = set()
            worst = 0
            for event in schedule.events:
                if event.kind == "crash":
                    down.add(event.pids[0])
                elif event.kind == "recover":
                    down.discard(event.pids[0])
                worst = max(worst, len(down))
            assert worst <= max_faults, f"seed {seed} took down {worst}"

    def test_ends_with_heal_recover_all_and_leader(self):
        schedule = generate_schedule(3, PIDS, horizon=2.0)
        tail = [e for e in schedule.events if e.at >= 2.0]
        kinds = [e.kind for e in tail]
        assert "heal" in kinds
        assert sum(1 for k in kinds if k == "recover") == len(PIDS)
        assert kinds[-1] == "leader"
        # The final switch is unscoped: every replica learns the view.
        assert tail[-1].scope == ()

    def test_leader_switches_target_alive_replicas(self):
        for seed in range(50):
            schedule = generate_schedule(seed, PIDS)
            down: set[str] = set()
            for event in schedule.events:
                if event.kind == "crash":
                    down.add(event.pids[0])
                elif event.kind == "recover":
                    down.discard(event.pids[0])
                elif event.kind == "leader":
                    assert event.pids[0] not in down, f"seed {seed}"

    def test_intensity_scales_event_count(self):
        calm = sum(len(generate_schedule(s, PIDS, intensity=0.3)) for s in range(20))
        wild = sum(len(generate_schedule(s, PIDS, intensity=3.0)) for s in range(20))
        assert wild > calm

    def test_too_few_replicas_rejected(self):
        with pytest.raises(ConfigError):
            generate_schedule(0, ("r0",))

    def test_bad_horizon_rejected(self):
        with pytest.raises(ConfigError):
            generate_schedule(0, PIDS, horizon=0.0)


# -------------------------------------------------------------- serialization
class TestScheduleSerialization:
    def test_event_round_trip(self):
        event = NemesisEvent(
            at=0.5, kind="leader", pids=("r1",), scope=("r1", "r2")
        )
        assert NemesisEvent.from_dict(event.to_dict()) == event

    def test_schedule_round_trip(self):
        for seed in range(10):
            schedule = generate_schedule(seed, PIDS)
            assert NemesisSchedule.from_dict(schedule.to_dict()) == schedule

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            NemesisEvent(at=0.0, kind="meteor")

    def test_describe_covers_every_kind(self):
        samples = {
            "crash": NemesisEvent(0.1, "crash", pids=("r0",)),
            "partition": NemesisEvent(0.1, "partition", groups=(("r0",), ("r1", "r2"))),
            "heal": NemesisEvent(0.1, "heal"),
            "leader": NemesisEvent(0.1, "leader", pids=("r1",), scope=("r1", "r2")),
            "loss_burst": NemesisEvent(0.1, "loss_burst", value=0.2, duration=0.3),
        }
        for kind, event in samples.items():
            text = event.describe()
            assert kind.split("_")[0] in text

    def test_to_script_is_runnable_fault_calls(self):
        schedule = NemesisSchedule(
            seed=1,
            horizon=1.0,
            events=(
                NemesisEvent(0.1, "crash", pids=("r0",)),
                NemesisEvent(0.2, "partition", groups=(("r0",), ("r1", "r2"))),
                NemesisEvent(0.3, "leader", pids=("r1",), scope=("r1", "r2")),
                NemesisEvent(0.5, "heal"),
                NemesisEvent(0.6, "recover", pids=("r0",)),
                NemesisEvent(0.7, "dup_burst", value=0.4, duration=0.1),
            ),
        )
        script = schedule.to_script()
        assert "schedule.crash('r0', at=0.1)" in script
        assert "schedule.switch_leader('r1', at=0.3, pids=['r1', 'r2'])" in script
        assert "schedule.dup_burst(0.4, at=0.7, duration=0.1)" in script

    def test_with_events_replaces(self):
        schedule = generate_schedule(0, PIDS)
        emptied = schedule.with_events(())
        assert len(emptied) == 0
        assert emptied.seed == schedule.seed

    def test_event_kind_order_is_stable(self):
        # The sort key indexes into EVENT_KINDS; renaming/reordering breaks
        # reproducibility of stored schedules.
        assert EVENT_KINDS == (
            "crash", "recover", "partition", "heal", "leader",
            "loss_burst", "dup_burst", "latency_spike",
            "torn_write", "lost_fsync", "disk_stall", "corrupt_record",
        )


# ------------------------------------------------------------------- storage
class TestStorageSchedule:
    def test_storage_off_by_default(self):
        for seed in range(20):
            schedule = generate_schedule(seed, PIDS)
            assert not any(e.kind in STORAGE_KINDS for e in schedule.events)

    def test_storage_flag_leaves_base_generation_unchanged(self):
        # storage=False must draw the exact same rng sequence as the
        # pre-storage generator; explicit False equals the default.
        for seed in range(10):
            assert generate_schedule(seed, PIDS) == generate_schedule(
                seed, PIDS, storage=False
            )

    def test_storage_kinds_all_reachable(self):
        seen: set[str] = set()
        for seed in range(60):
            schedule = generate_schedule(seed, PIDS, storage=True)
            seen.update(e.kind for e in schedule.events)
        assert seen.issuperset(STORAGE_KINDS)

    def test_storage_schedules_deterministic(self):
        for seed in range(10):
            a = generate_schedule(seed, PIDS, storage=True)
            b = generate_schedule(seed, PIDS, storage=True)
            assert a == b

    def test_torn_write_is_paired_with_a_crash(self):
        for seed in range(60):
            schedule = generate_schedule(seed, PIDS, storage=True)
            for event in schedule.events:
                if event.kind == "torn_write":
                    pid = event.pids[0]
                    assert any(
                        e.kind == "crash" and e.pids == (pid,) and e.at > event.at
                        for e in schedule.events
                    ), f"seed {seed}: torn write on {pid} never lands (no crash)"

    def test_corrupted_pid_never_leads_at_the_end(self):
        # A replica with a rotted record fail-stops on restart; the final
        # stabilizing leader switch must target a clean replica.
        for seed in range(60):
            schedule = generate_schedule(seed, PIDS, storage=True)
            poisoned = {
                e.pids[0] for e in schedule.events if e.kind == "corrupt_record"
            }
            if not poisoned:
                continue
            leaders = [e for e in schedule.events if e.kind == "leader"]
            assert leaders[-1].pids[0] not in poisoned

    def test_storage_events_round_trip(self):
        for seed in range(20):
            schedule = generate_schedule(seed, PIDS, storage=True)
            assert NemesisSchedule.from_dict(schedule.to_dict()) == schedule

    def test_to_script_emits_storage_fault_calls(self):
        events = (
            NemesisEvent(0.1, "torn_write", pids=("r1",)),
            NemesisEvent(0.2, "lost_fsync", pids=("r2",), duration=0.1),
            NemesisEvent(0.3, "disk_stall", pids=("r0",), duration=0.2, value=2e-3),
            NemesisEvent(0.4, "corrupt_record", pids=("r1",), value=0.5),
        )
        script = NemesisSchedule(seed=1, horizon=1.0, events=events).to_script()
        assert "schedule.torn_write('r1', at=0.1)" in script
        assert "schedule.lost_fsync('r2', at=0.2, duration=0.1)" in script
        assert "schedule.disk_stall('r0', at=0.3, duration=0.2, extra=0.002)" in script
        assert "schedule.corrupt_record('r1', at=0.4, fraction=0.5)" in script


# ------------------------------------------------------------------- options
class TestChaosOptions:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigError):
            ChaosOptions(protocol="raft")

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ConfigError):
            ChaosOptions(mutation="clock-skew")

    def test_deadline_is_horizon_plus_grace(self):
        options = ChaosOptions(horizon=2.0, liveness_grace=3.0)
        assert options.deadline == 5.0

    def test_unknown_fsync_mode_rejected(self):
        with pytest.raises(ConfigError):
            ChaosOptions(fsync="eventually")

    def test_storage_faults_require_a_durable_fsync_mode(self):
        with pytest.raises(ConfigError):
            ChaosOptions(storage_faults=True)  # default fsync="async"
        ChaosOptions(storage_faults=True, fsync="group")
        ChaosOptions(storage_faults=True, fsync="sync")

    def test_skip_fsync_mutation_requires_a_durable_fsync_mode(self):
        with pytest.raises(ConfigError):
            ChaosOptions(mutation="skip-fsync")
        ChaosOptions(mutation="skip-fsync", fsync="group")


# ---------------------------------------------------------------- invariants
def _request(client: str, seq: int, kind=RequestKind.WRITE, **kw) -> ClientRequest:
    return ClientRequest(RequestId(client, seq), kind, op=("put", "x", seq), **kw)


def _proposal(*requests: ClientRequest) -> Proposal:
    return Proposal(requests=tuple(requests), payload=None)


def _snap(pid: str, chosen=(), alive=True, applied=0, frontier=None,
          compacted=0, checkpoint=0, fingerprint="fp",
          intact=True, durable=()):
    return {
        "pid": pid,
        "alive": alive,
        "role": "following",
        "applied": applied,
        "frontier": frontier if frontier is not None else applied,
        "compacted_to": compacted,
        "checkpoint_instance": checkpoint,
        "chosen": tuple(chosen),
        "fingerprint": fingerprint,
        "storage_intact": intact,
        "durable_rids": frozenset(durable),
    }


class _DurClient:
    """request_records()-shaped stand-in for the durability checker."""

    def __init__(self, pid: str, records: list[RequestRecord]) -> None:
        self.pid = pid
        self._records = records

    def request_records(self) -> list[RequestRecord]:
        return self._records


def _acked_write(
    client: str,
    seq: int,
    kind: RequestKind = RequestKind.WRITE,
    status: ReplyStatus = ReplyStatus.OK,
) -> RequestRecord:
    return RequestRecord(
        RequestId(client, seq), kind, sent_at=0.0, completed_at=0.1, status=status
    )


class TestInvariantCheckers:
    def test_log_agreement_clean(self):
        p = _proposal(_request("c0", 0))
        snaps = [_snap("r0", [(1, p)]), _snap("r1", [(1, p)])]
        assert check_log_agreement(snaps) == []

    def test_log_agreement_detects_conflict(self):
        snaps = [
            _snap("r0", [(1, _proposal(_request("c0", 0)))]),
            _snap("r1", [(1, _proposal(_request("c1", 5)))]),
        ]
        (violation,) = check_log_agreement(snaps)
        assert violation.invariant == "log_agreement"
        assert "instance 1" in violation.detail

    def test_log_agreement_includes_crashed_replicas(self):
        # The log is stable storage: a crashed replica's divergent entry
        # still counts.
        snaps = [
            _snap("r0", [(1, _proposal(_request("c0", 0)))]),
            _snap("r1", [(1, _proposal(_request("c1", 5)))], alive=False),
        ]
        assert len(check_log_agreement(snaps)) == 1

    def test_at_most_once_detects_double_commit(self):
        request = _request("c0", 0)
        snaps = [
            _snap("r0", [(1, _proposal(request)), (2, _proposal(request))]),
        ]
        (violation,) = check_at_most_once(snaps)
        assert violation.invariant == "at_most_once"
        assert violation.data["instances"] == [1, 2]

    def test_at_most_once_clean_across_replicas(self):
        request = _request("c0", 0)
        snaps = [
            _snap("r0", [(1, _proposal(request))]),
            _snap("r1", [(1, _proposal(request))]),
        ]
        assert check_at_most_once(snaps) == []

    def test_prefix_consistency_detects_applied_past_frontier(self):
        snaps = [_snap("r0", applied=5, frontier=3)]
        violations = check_prefix_consistency(snaps)
        assert any("out of order" in v.detail for v in violations)

    def test_prefix_consistency_detects_checkpoint_ahead(self):
        snaps = [_snap("r0", applied=2, checkpoint=4)]
        violations = check_prefix_consistency(snaps)
        assert any("checkpoint" in v.detail for v in violations)

    def test_prefix_consistency_detects_stale_chosen(self):
        snaps = [
            _snap("r0", chosen=[(1, _proposal(_request("c0", 0)))],
                  applied=4, compacted=2, checkpoint=2),
        ]
        violations = check_prefix_consistency(snaps)
        assert any("compaction point" in v.detail for v in violations)

    def test_state_convergence_detects_divergence(self):
        snaps = [
            _snap("r0", applied=3, fingerprint="aaa"),
            _snap("r1", applied=3, fingerprint="bbb"),
        ]
        (violation,) = check_state_convergence(snaps)
        assert violation.invariant == "state_convergence"

    def test_state_convergence_ignores_crashed_and_other_prefixes(self):
        snaps = [
            _snap("r0", applied=3, fingerprint="aaa"),
            _snap("r1", applied=3, fingerprint="bbb", alive=False),
            _snap("r2", applied=2, fingerprint="ccc"),
        ]
        assert check_state_convergence(snaps) == []

    def test_txn_atomicity_accepts_whole_bundle(self):
        op0 = _request("c0", 0, kind=RequestKind.TXN_OP, txn="t1", txn_seq=0)
        op1 = _request("c0", 1, kind=RequestKind.TXN_OP, txn="t1", txn_seq=1)
        commit = _request("c0", 2, kind=RequestKind.TXN_COMMIT, txn="t1", txn_seq=2)
        snaps = [_snap("r0", [(1, _proposal(op0, op1, commit))])]
        assert check_txn_atomicity(snaps) == []

    def test_txn_atomicity_detects_torn_suffix(self):
        # Commit claims two ops but the bundle carries one: the §3.6 torn
        # transaction a leader switch could produce.
        op1 = _request("c0", 1, kind=RequestKind.TXN_OP, txn="t1", txn_seq=1)
        commit = _request("c0", 2, kind=RequestKind.TXN_COMMIT, txn="t1", txn_seq=2)
        snaps = [_snap("r0", [(1, _proposal(op1, commit))])]
        violations = check_txn_atomicity(snaps)
        assert len(violations) == 1
        assert violations[0].invariant == "txn_atomicity"

    def test_txn_atomicity_detects_mixed_ids(self):
        op0 = _request("c0", 0, kind=RequestKind.TXN_OP, txn="t1", txn_seq=0)
        commit = _request("c0", 1, kind=RequestKind.TXN_COMMIT, txn="t2", txn_seq=1)
        snaps = [_snap("r0", [(1, _proposal(op0, commit))])]
        assert len(check_txn_atomicity(snaps)) == 1

    def test_acked_durability_clean_when_covered(self):
        client = _DurClient("c0", [_acked_write("c0", 0)])
        snaps = [
            _snap("r0", durable=("c0#0",)),
            _snap("r1", durable=("c0#0",)),
            _snap("r2", intact=False),
        ]
        assert check_acked_durability([client], snaps, majority=2) == []

    def test_acked_durability_detects_lost_write(self):
        client = _DurClient("c0", [_acked_write("c0", 0), _acked_write("c0", 1)])
        snaps = [_snap("r0", durable=("c0#0",)), _snap("r1"), _snap("r2")]
        (violation,) = check_acked_durability([client], snaps, majority=2)
        assert violation.invariant == "acked_durability"
        assert violation.data["rid"] == "c0#1"

    def test_acked_durability_stands_down_below_majority(self):
        # With a minority of intact devices, data loss is outside the
        # fault model's budget: the checker must not cry wolf.
        client = _DurClient("c0", [_acked_write("c0", 0)])
        snaps = [_snap("r0"), _snap("r1", intact=False), _snap("r2", intact=False)]
        assert check_acked_durability([client], snaps, majority=2) == []

    def test_acked_durability_ignores_reads_and_failures(self):
        records = [
            _acked_write("c0", 0, kind=RequestKind.READ),
            RequestRecord(
                RequestId("c0", 1), RequestKind.WRITE, sent_at=0.0
            ),  # never completed
            _acked_write("c0", 2, status=ReplyStatus.ABORTED),
        ]
        snaps = [_snap("r0"), _snap("r1"), _snap("r2")]
        assert check_acked_durability([_DurClient("c0", records)], snaps, 2) == []

    def test_liveness_reports_unfinished_clients(self):
        class FakeClient:
            pid = "c0"
            done = False
            completed_requests = 3

            def request_records(self):
                return []

        (violation,) = check_liveness([FakeClient()], deadline=5.0)
        assert violation.invariant == "liveness"
        assert "c0" in violation.detail

    def test_linearizability_clean_on_empty_history(self):
        class FakeClient:
            records = []

            def request_records(self):
                return []

        assert check_linearizability([FakeClient()], key="x") == []

    def test_violation_to_dict_sorted(self):
        violation = Violation("log_agreement", "boom", data={"b": 1, "a": 2})
        assert list(violation.to_dict()["data"]) == ["a", "b"]
