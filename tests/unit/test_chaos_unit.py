"""Unit tests for the chaos engine: schedule generation/serialization,
invariant checkers on synthetic snapshots, and trial option validation."""

from __future__ import annotations

import pytest

from repro.chaos.invariants import (
    Violation,
    check_at_most_once,
    check_linearizability,
    check_liveness,
    check_log_agreement,
    check_prefix_consistency,
    check_state_convergence,
    check_txn_atomicity,
)
from repro.chaos.runner import ChaosOptions
from repro.chaos.schedule import (
    EVENT_KINDS,
    NemesisEvent,
    NemesisSchedule,
    generate_schedule,
)
from repro.core.messages import Proposal
from repro.core.requests import ClientRequest, RequestId
from repro.errors import ConfigError
from repro.types import RequestKind

PIDS = ("r0", "r1", "r2")


# ----------------------------------------------------------------- generation
class TestGenerateSchedule:
    def test_same_seed_same_schedule(self):
        a = generate_schedule(7, PIDS)
        b = generate_schedule(7, PIDS)
        assert a == b

    def test_different_seeds_differ(self):
        schedules = {generate_schedule(s, PIDS).events for s in range(20)}
        assert len(schedules) > 1

    def test_events_sorted_and_within_horizon(self):
        for seed in range(30):
            schedule = generate_schedule(seed, PIDS, horizon=1.5)
            ats = [e.at for e in schedule.events]
            assert ats == sorted(ats)
            # Only the final stabilizing leader switch may exceed the horizon.
            assert all(e.at <= 1.5 + 0.011 for e in schedule.events)

    def test_every_crash_is_paired_with_recovery(self):
        for seed in range(30):
            schedule = generate_schedule(seed, PIDS)
            crashes = sum(1 for e in schedule.events if e.kind == "crash")
            recoveries = sum(1 for e in schedule.events if e.kind == "recover")
            # Final stabilization recovers everyone, so recover >= crash.
            assert recoveries >= crashes

    def test_majority_stays_alive_by_default(self):
        max_faults = (len(PIDS) - 1) // 2
        for seed in range(50):
            schedule = generate_schedule(seed, PIDS)
            down: set[str] = set()
            worst = 0
            for event in schedule.events:
                if event.kind == "crash":
                    down.add(event.pids[0])
                elif event.kind == "recover":
                    down.discard(event.pids[0])
                worst = max(worst, len(down))
            assert worst <= max_faults, f"seed {seed} took down {worst}"

    def test_ends_with_heal_recover_all_and_leader(self):
        schedule = generate_schedule(3, PIDS, horizon=2.0)
        tail = [e for e in schedule.events if e.at >= 2.0]
        kinds = [e.kind for e in tail]
        assert "heal" in kinds
        assert sum(1 for k in kinds if k == "recover") == len(PIDS)
        assert kinds[-1] == "leader"
        # The final switch is unscoped: every replica learns the view.
        assert tail[-1].scope == ()

    def test_leader_switches_target_alive_replicas(self):
        for seed in range(50):
            schedule = generate_schedule(seed, PIDS)
            down: set[str] = set()
            for event in schedule.events:
                if event.kind == "crash":
                    down.add(event.pids[0])
                elif event.kind == "recover":
                    down.discard(event.pids[0])
                elif event.kind == "leader":
                    assert event.pids[0] not in down, f"seed {seed}"

    def test_intensity_scales_event_count(self):
        calm = sum(len(generate_schedule(s, PIDS, intensity=0.3)) for s in range(20))
        wild = sum(len(generate_schedule(s, PIDS, intensity=3.0)) for s in range(20))
        assert wild > calm

    def test_too_few_replicas_rejected(self):
        with pytest.raises(ConfigError):
            generate_schedule(0, ("r0",))

    def test_bad_horizon_rejected(self):
        with pytest.raises(ConfigError):
            generate_schedule(0, PIDS, horizon=0.0)


# -------------------------------------------------------------- serialization
class TestScheduleSerialization:
    def test_event_round_trip(self):
        event = NemesisEvent(
            at=0.5, kind="leader", pids=("r1",), scope=("r1", "r2")
        )
        assert NemesisEvent.from_dict(event.to_dict()) == event

    def test_schedule_round_trip(self):
        for seed in range(10):
            schedule = generate_schedule(seed, PIDS)
            assert NemesisSchedule.from_dict(schedule.to_dict()) == schedule

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            NemesisEvent(at=0.0, kind="meteor")

    def test_describe_covers_every_kind(self):
        samples = {
            "crash": NemesisEvent(0.1, "crash", pids=("r0",)),
            "partition": NemesisEvent(0.1, "partition", groups=(("r0",), ("r1", "r2"))),
            "heal": NemesisEvent(0.1, "heal"),
            "leader": NemesisEvent(0.1, "leader", pids=("r1",), scope=("r1", "r2")),
            "loss_burst": NemesisEvent(0.1, "loss_burst", value=0.2, duration=0.3),
        }
        for kind, event in samples.items():
            text = event.describe()
            assert kind.split("_")[0] in text

    def test_to_script_is_runnable_fault_calls(self):
        schedule = NemesisSchedule(
            seed=1,
            horizon=1.0,
            events=(
                NemesisEvent(0.1, "crash", pids=("r0",)),
                NemesisEvent(0.2, "partition", groups=(("r0",), ("r1", "r2"))),
                NemesisEvent(0.3, "leader", pids=("r1",), scope=("r1", "r2")),
                NemesisEvent(0.5, "heal"),
                NemesisEvent(0.6, "recover", pids=("r0",)),
                NemesisEvent(0.7, "dup_burst", value=0.4, duration=0.1),
            ),
        )
        script = schedule.to_script()
        assert "schedule.crash('r0', at=0.1)" in script
        assert "schedule.switch_leader('r1', at=0.3, pids=['r1', 'r2'])" in script
        assert "schedule.dup_burst(0.4, at=0.7, duration=0.1)" in script

    def test_with_events_replaces(self):
        schedule = generate_schedule(0, PIDS)
        emptied = schedule.with_events(())
        assert len(emptied) == 0
        assert emptied.seed == schedule.seed

    def test_event_kind_order_is_stable(self):
        # The sort key indexes into EVENT_KINDS; renaming/reordering breaks
        # reproducibility of stored schedules.
        assert EVENT_KINDS == (
            "crash", "recover", "partition", "heal", "leader",
            "loss_burst", "dup_burst", "latency_spike",
        )


# ------------------------------------------------------------------- options
class TestChaosOptions:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigError):
            ChaosOptions(protocol="raft")

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ConfigError):
            ChaosOptions(mutation="clock-skew")

    def test_deadline_is_horizon_plus_grace(self):
        options = ChaosOptions(horizon=2.0, liveness_grace=3.0)
        assert options.deadline == 5.0


# ---------------------------------------------------------------- invariants
def _request(client: str, seq: int, kind=RequestKind.WRITE, **kw) -> ClientRequest:
    return ClientRequest(RequestId(client, seq), kind, op=("put", "x", seq), **kw)


def _proposal(*requests: ClientRequest) -> Proposal:
    return Proposal(requests=tuple(requests), payload=None)


def _snap(pid: str, chosen=(), alive=True, applied=0, frontier=None,
          compacted=0, checkpoint=0, fingerprint="fp"):
    return {
        "pid": pid,
        "alive": alive,
        "role": "following",
        "applied": applied,
        "frontier": frontier if frontier is not None else applied,
        "compacted_to": compacted,
        "checkpoint_instance": checkpoint,
        "chosen": tuple(chosen),
        "fingerprint": fingerprint,
    }


class TestInvariantCheckers:
    def test_log_agreement_clean(self):
        p = _proposal(_request("c0", 0))
        snaps = [_snap("r0", [(1, p)]), _snap("r1", [(1, p)])]
        assert check_log_agreement(snaps) == []

    def test_log_agreement_detects_conflict(self):
        snaps = [
            _snap("r0", [(1, _proposal(_request("c0", 0)))]),
            _snap("r1", [(1, _proposal(_request("c1", 5)))]),
        ]
        (violation,) = check_log_agreement(snaps)
        assert violation.invariant == "log_agreement"
        assert "instance 1" in violation.detail

    def test_log_agreement_includes_crashed_replicas(self):
        # The log is stable storage: a crashed replica's divergent entry
        # still counts.
        snaps = [
            _snap("r0", [(1, _proposal(_request("c0", 0)))]),
            _snap("r1", [(1, _proposal(_request("c1", 5)))], alive=False),
        ]
        assert len(check_log_agreement(snaps)) == 1

    def test_at_most_once_detects_double_commit(self):
        request = _request("c0", 0)
        snaps = [
            _snap("r0", [(1, _proposal(request)), (2, _proposal(request))]),
        ]
        (violation,) = check_at_most_once(snaps)
        assert violation.invariant == "at_most_once"
        assert violation.data["instances"] == [1, 2]

    def test_at_most_once_clean_across_replicas(self):
        request = _request("c0", 0)
        snaps = [
            _snap("r0", [(1, _proposal(request))]),
            _snap("r1", [(1, _proposal(request))]),
        ]
        assert check_at_most_once(snaps) == []

    def test_prefix_consistency_detects_applied_past_frontier(self):
        snaps = [_snap("r0", applied=5, frontier=3)]
        violations = check_prefix_consistency(snaps)
        assert any("out of order" in v.detail for v in violations)

    def test_prefix_consistency_detects_checkpoint_ahead(self):
        snaps = [_snap("r0", applied=2, checkpoint=4)]
        violations = check_prefix_consistency(snaps)
        assert any("checkpoint" in v.detail for v in violations)

    def test_prefix_consistency_detects_stale_chosen(self):
        snaps = [
            _snap("r0", chosen=[(1, _proposal(_request("c0", 0)))],
                  applied=4, compacted=2, checkpoint=2),
        ]
        violations = check_prefix_consistency(snaps)
        assert any("compaction point" in v.detail for v in violations)

    def test_state_convergence_detects_divergence(self):
        snaps = [
            _snap("r0", applied=3, fingerprint="aaa"),
            _snap("r1", applied=3, fingerprint="bbb"),
        ]
        (violation,) = check_state_convergence(snaps)
        assert violation.invariant == "state_convergence"

    def test_state_convergence_ignores_crashed_and_other_prefixes(self):
        snaps = [
            _snap("r0", applied=3, fingerprint="aaa"),
            _snap("r1", applied=3, fingerprint="bbb", alive=False),
            _snap("r2", applied=2, fingerprint="ccc"),
        ]
        assert check_state_convergence(snaps) == []

    def test_txn_atomicity_accepts_whole_bundle(self):
        op0 = _request("c0", 0, kind=RequestKind.TXN_OP, txn="t1", txn_seq=0)
        op1 = _request("c0", 1, kind=RequestKind.TXN_OP, txn="t1", txn_seq=1)
        commit = _request("c0", 2, kind=RequestKind.TXN_COMMIT, txn="t1", txn_seq=2)
        snaps = [_snap("r0", [(1, _proposal(op0, op1, commit))])]
        assert check_txn_atomicity(snaps) == []

    def test_txn_atomicity_detects_torn_suffix(self):
        # Commit claims two ops but the bundle carries one: the §3.6 torn
        # transaction a leader switch could produce.
        op1 = _request("c0", 1, kind=RequestKind.TXN_OP, txn="t1", txn_seq=1)
        commit = _request("c0", 2, kind=RequestKind.TXN_COMMIT, txn="t1", txn_seq=2)
        snaps = [_snap("r0", [(1, _proposal(op1, commit))])]
        violations = check_txn_atomicity(snaps)
        assert len(violations) == 1
        assert violations[0].invariant == "txn_atomicity"

    def test_txn_atomicity_detects_mixed_ids(self):
        op0 = _request("c0", 0, kind=RequestKind.TXN_OP, txn="t1", txn_seq=0)
        commit = _request("c0", 1, kind=RequestKind.TXN_COMMIT, txn="t2", txn_seq=1)
        snaps = [_snap("r0", [(1, _proposal(op0, commit))])]
        assert len(check_txn_atomicity(snaps)) == 1

    def test_liveness_reports_unfinished_clients(self):
        class FakeClient:
            pid = "c0"
            done = False
            completed_requests = 3

            def request_records(self):
                return []

        (violation,) = check_liveness([FakeClient()], deadline=5.0)
        assert violation.invariant == "liveness"
        assert "c0" in violation.detail

    def test_linearizability_clean_on_empty_history(self):
        class FakeClient:
            records = []

            def request_records(self):
                return []

        assert check_linearizability([FakeClient()], key="x") == []

    def test_violation_to_dict_sorted(self):
        violation = Violation("log_agreement", "boom", data={"b": 1, "a": 2})
        assert list(violation.to_dict()["data"]) == ["a", "b"]
