"""Unit tests for the X-Paxos read coordinator (§3.4) at message level."""

from __future__ import annotations

import pytest

from repro.core.ballot import Ballot
from repro.core.config import ReplicaConfig
from repro.core.messages import Confirm, Reply
from repro.core.replica import Replica
from repro.core.requests import ClientRequest, RequestId
from repro.election.static import ManualElector, StaticElector
from repro.services.counter import CounterService
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.sim.trace import TraceRecorder
from repro.sim.world import World
from repro.types import ReplyStatus, RequestKind

PEERS = ("r0", "r1", "r2", "r3", "r4")


def make_leader(n=3, execute_time=0.0, seed=0):
    """A leader r0 of an n-replica group.

    Backups are real replicas (so recovery completes), but reads are
    injected directly into the leader's coordinator — backups never see
    them, so every Confirm in these tests is explicitly injected.
    """
    kernel = Kernel(seed=seed)
    trace = TraceRecorder()
    world = World(kernel, trace=trace)
    peers = PEERS[:n]
    config = ReplicaConfig(peers=peers, execute_time=execute_time)
    elector = ManualElector(None)
    leader = Replica("r0", config, CounterService, elector)
    world.add(leader)
    for pid in peers[1:]:
        world.add(Replica(pid, config, CounterService, StaticElector("r0")))
    world.add(Process("c0"))
    world.start()
    elector.set_leader("r0")
    kernel.run(until=0.1)  # recovery completes
    assert leader.is_leading
    return kernel, trace, leader


def read_request(seq=0):
    return ClientRequest(RequestId("c0", seq), RequestKind.READ, op=("get",))


def replies(trace):
    return [e.detail for e in trace.of_kind("send") if isinstance(e.detail, Reply)]


class TestLeaderSide:
    def test_no_reply_before_majority_confirms(self):
        kernel, trace, leader = make_leader()
        leader.reads.begin("c0", read_request())
        kernel.run(until=kernel.now + 0.05)
        assert replies(trace) == []
        assert leader.reads.pending_count == 1

    def test_reply_after_one_confirm_in_three(self):
        kernel, trace, leader = make_leader(n=3)
        request = read_request()
        leader.reads.begin("c0", request)
        leader.reads.on_confirm("r1", Confirm(ballot=leader.ballot, rid=request.rid))
        kernel.run(until=kernel.now + 0.05)
        assert len(replies(trace)) == 1
        assert replies(trace)[0].status is ReplyStatus.OK

    def test_five_replicas_need_two_confirms(self):
        kernel, trace, leader = make_leader(n=5)
        request = read_request()
        leader.reads.begin("c0", request)
        leader.reads.on_confirm("r1", Confirm(ballot=leader.ballot, rid=request.rid))
        kernel.run(until=kernel.now + 0.05)
        assert replies(trace) == []
        leader.reads.on_confirm("r2", Confirm(ballot=leader.ballot, rid=request.rid))
        kernel.run(until=kernel.now + 0.05)
        assert len(replies(trace)) == 1

    def test_duplicate_confirms_from_same_backup_dont_count_twice(self):
        kernel, trace, leader = make_leader(n=5)
        request = read_request()
        leader.reads.begin("c0", request)
        for _ in range(3):
            leader.reads.on_confirm("r1", Confirm(ballot=leader.ballot, rid=request.rid))
        kernel.run(until=kernel.now + 0.05)
        assert replies(trace) == []

    def test_stale_ballot_confirm_ignored(self):
        kernel, trace, leader = make_leader()
        request = read_request()
        leader.reads.begin("c0", request)
        stale = Ballot(leader.ballot.round - 1, "r0")
        leader.reads.on_confirm("r1", Confirm(ballot=stale, rid=request.rid))
        kernel.run(until=kernel.now + 0.05)
        assert replies(trace) == []

    def test_confirm_arriving_before_read_is_buffered(self):
        kernel, trace, leader = make_leader()
        request = read_request()
        leader.reads.on_confirm("r1", Confirm(ballot=leader.ballot, rid=request.rid))
        leader.reads.begin("c0", request)
        kernel.run(until=kernel.now + 0.05)
        assert len(replies(trace)) == 1

    def test_execute_time_overlaps_confirm_wait(self):
        kernel, trace, leader = make_leader(execute_time=0.03)
        request = read_request()
        leader.reads.begin("c0", request)
        leader.reads.on_confirm("r1", Confirm(ballot=leader.ballot, rid=request.rid))
        # Confirm is in, but E has not elapsed.
        kernel.run(until=kernel.now + 0.02)
        assert replies(trace) == []
        kernel.run(until=kernel.now + 0.05)
        assert len(replies(trace)) == 1

    def test_retransmitted_read_not_served_twice_concurrently(self):
        kernel, trace, leader = make_leader()
        request = read_request()
        leader.reads.begin("c0", request)
        leader.reads.begin("c0", request)  # retransmit while pending
        assert leader.reads.pending_count == 1
        leader.reads.on_confirm("r1", Confirm(ballot=leader.ballot, rid=request.rid))
        kernel.run(until=kernel.now + 0.05)
        assert len(replies(trace)) == 1

    def test_clear_drops_pending(self):
        kernel, trace, leader = make_leader()
        leader.reads.begin("c0", read_request())
        leader.reads.clear()
        leader.reads.on_confirm("r1", Confirm(ballot=leader.ballot, rid=read_request().rid))
        kernel.run(until=kernel.now + 0.05)
        assert replies(trace) == []

    def test_malformed_read_rejected_cleanly(self):
        kernel, trace, leader = make_leader()
        bad = ClientRequest(RequestId("c0", 0), RequestKind.READ, op=("nonsense",))
        leader.reads.begin("c0", bad)
        kernel.run(until=kernel.now + 0.05)
        assert len(replies(trace)) == 1
        assert replies(trace)[0].status is ReplyStatus.ERROR


class TestBackupSide:
    def test_backup_confirms_to_promised_leader(self):
        kernel = Kernel()
        trace = TraceRecorder()
        world = World(kernel, trace=trace)
        config = ReplicaConfig(peers=PEERS[:3])
        backup = Replica("r1", config, CounterService, StaticElector("r0"))
        world.add(backup)
        for pid in ("r0", "r2", "c0"):
            world.add(Process(pid))
        world.start()
        from repro.core.messages import Prepare

        backup.on_message("r0", Prepare(ballot=Ballot(0, "r0"), gaps=(), from_instance=1))
        backup.on_message("c0", read_request())
        kernel.run(until=0.1)
        confirms = [e for e in trace.of_kind("send") if isinstance(e.detail, Confirm)]
        assert len(confirms) == 1
        assert confirms[0].dst == "r0"
        assert confirms[0].detail.ballot == Ballot(0, "r0")

    def test_backup_without_promise_stays_silent(self):
        kernel = Kernel()
        trace = TraceRecorder()
        world = World(kernel, trace=trace)
        config = ReplicaConfig(peers=PEERS[:3])
        backup = Replica("r1", config, CounterService, StaticElector("r0"))
        world.add(backup)
        for pid in ("r0", "r2", "c0"):
            world.add(Process(pid))
        world.start()
        backup.on_message("c0", read_request())
        kernel.run(until=0.1)
        confirms = [e for e in trace.of_kind("send") if isinstance(e.detail, Confirm)]
        assert confirms == []
