"""Unit tests for JSONL timeline export/import and report rendering."""

from __future__ import annotations

import json

import pytest

from repro.client.workload import single_kind_steps
from repro.cluster.harness import Cluster, ClusterSpec
from repro.obs.registry import MetricsRegistry
from repro.obs.report import (
    compare_table,
    export_from_registry,
    message_table,
    per_replica_table,
    phase_table,
    render_comparison,
    render_report,
)
from repro.obs.timeline import RunExport, load_export, registry_records
from repro.types import RequestKind
from tests.conftest import make_test_profile


def run_cluster(seed: int = 0, trace: bool = True) -> Cluster:
    spec = ClusterSpec(profile=make_test_profile(), seed=seed, trace=trace)
    return Cluster(spec, [single_kind_steps(RequestKind.WRITE, 4)]).run()


class TestExportRoundTrip:
    def test_export_and_load(self, tmp_path):
        cluster = run_cluster()
        path = cluster.export_timeline(str(tmp_path / "run.jsonl"))
        export = load_export(path)

        assert export.meta["seed"] == 0
        assert export.meta["n_replicas"] == 3
        assert export.meta["profile"] == "test"
        # Counters survive the round trip exactly.
        assert export.counters == cluster.metrics.counters()
        # Every trace event made it across, payloads reduced to type names.
        assert len(export.events) == len(cluster.trace)
        assert all(isinstance(e["type"], str) for e in export.events)
        # The result record carries the aggregates.
        assert export.result["total_requests"] == 4
        assert export.result["total_messages"] == export.counter("msg.send.ClientRequest") + sum(
            v for k, v in export.counters.items()
            if k.startswith("msg.send.") and k != "msg.send.ClientRequest"
        )

    def test_histograms_survive_round_trip(self, tmp_path):
        cluster = run_cluster()
        export = load_export(cluster.export_timeline(str(tmp_path / "run.jsonl")))
        live = cluster.metrics.histograms()
        assert set(export.histograms) == set(live)
        for name, hist in export.histograms.items():
            assert hist.count == live[name].count
            assert hist.quantile(0.5) == pytest.approx(live[name].quantile(0.5))

    def test_include_events_false_drops_events(self, tmp_path):
        cluster = run_cluster()
        export = load_export(
            cluster.export_timeline(str(tmp_path / "run.jsonl"), include_events=False)
        )
        assert export.events == []
        assert export.counters  # metrics still exported

    def test_export_without_trace(self, tmp_path):
        cluster = run_cluster(trace=False)
        export = load_export(cluster.export_timeline(str(tmp_path / "run.jsonl")))
        assert export.events == []

    def test_message_types_unions_all_counter_families(self):
        export = RunExport()
        export.counters = {
            "msg.send.A": 1,
            "msg.deliver.B": 1,
            "msg.drop.C": 1,
            "proc.r0.send.A": 1,
        }
        assert export.message_types() == ["A", "B", "C"]

    def test_load_skips_bad_json_with_warning(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "meta"}\nnot json\n')
        with pytest.warns(RuntimeWarning, match="skipped 1 unparseable"):
            export = load_export(path)
        assert export.skipped == 1
        assert export.meta == {"record": "meta"}

    def test_load_skips_unknown_record_with_warning(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"record": "mystery"}) + "\n")
        with pytest.warns(RuntimeWarning, match="unknown record kind 'mystery'"):
            export = load_export(path)
        assert export.skipped == 1

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "sparse.jsonl"
        path.write_text('\n{"record": "counter", "name": "a", "value": 2}\n\n')
        assert load_export(path).counter("a") == 2


class TestReportRendering:
    def make_export(self) -> RunExport:
        registry = MetricsRegistry()
        registry.counter("msg.send.Reply").inc(10)
        registry.counter("msg.send_bytes.Reply").inc(1500)
        registry.counter("msg.deliver.Reply").inc(9)
        registry.counter("msg.drop.Reply").inc(1)
        registry.counter("proc.r0.send.Reply").inc(10)
        registry.scope("r0").histogram("phase.accept_chosen").observe(2e-3)
        return export_from_registry(registry)

    def test_message_table_has_counts_and_total(self):
        table = message_table(self.make_export())
        lines = table.splitlines()
        reply_row = next(line for line in lines if line.startswith("Reply"))
        assert reply_row.split() == ["Reply", "10", "9", "1", "1500", "150"]
        assert any(line.startswith("TOTAL") for line in lines)

    def test_per_replica_table(self):
        table = per_replica_table(self.make_export())
        assert "r0" in table and "Reply" in table

    def test_per_replica_table_empty(self):
        assert "no per-process counters" in per_replica_table(RunExport())

    def test_phase_table(self):
        table = phase_table(self.make_export())
        assert "r0.phase.accept_chosen" in table
        assert "2.000" in table  # 2ms mean

    def test_phase_table_empty(self):
        assert "no histograms" in phase_table(RunExport())

    def test_render_report_composes_blocks(self):
        report = render_report(self.make_export())
        assert "Per-message-type traffic" in report
        assert "Messages sent per process" in report
        assert "Phase latencies" in report

    def test_compare_table_deltas(self):
        a, b = self.make_export(), self.make_export()
        b.counters["msg.send.Reply"] = 15
        b.counters["msg.send.Extra"] = 3
        table = compare_table(a, b)
        assert "+50.0%" in table
        assert "new" in table

    def test_render_comparison_from_real_runs(self, tmp_path):
        paths = []
        for seed in (1, 2):
            cluster = run_cluster(seed=seed, trace=False)
            paths.append(cluster.export_timeline(str(tmp_path / f"run{seed}.jsonl")))
        text = render_comparison(load_export(paths[0]), load_export(paths[1]))
        assert "AcceptBatch" in text
        assert "[A] run: seed=1" in text
        assert "[B] run: seed=2" in text


class TestRegistryRecords:
    def test_one_record_per_instrument(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(0.5)
        kinds = sorted(r["record"] for r in registry_records(registry))
        assert kinds == ["counter", "gauge", "hist"]
