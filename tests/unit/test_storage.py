"""Stable-storage subsystem: WAL framing, device crash semantics, store."""

from __future__ import annotations

import pytest

from repro.core.ballot import Ballot, ProposalNumber
from repro.core.config import ReplicaConfig
from repro.core.messages import Proposal
from repro.core.requests import ClientRequest, RequestId
from repro.errors import ConfigError
from repro.storage import (
    CheckpointBlob,
    SimDisk,
    StableStore,
    WalRecord,
    decode_frames,
    encode_frame,
)
from repro.types import RequestKind


def proposal(client: str = "c0", seq: int = 1) -> Proposal:
    request = ClientRequest(
        rid=RequestId(client, seq), kind=RequestKind.WRITE, op=("add", 1)
    )
    return Proposal(requests=(request,), payload=None)


def pn(instance: int, round_: int = 1, leader: str = "r0") -> ProposalNumber:
    return ProposalNumber(Ballot(round_, leader), instance)


def accept_record(instance: int, seq: int = 1) -> WalRecord:
    return WalRecord("accept", (pn(instance), proposal(seq=seq)))


# ------------------------------------------------------------------- framing
class TestWalFraming:
    def test_round_trip(self):
        records = [
            WalRecord("accept", (pn(1), proposal())),
            WalRecord("choose", (1, proposal())),
            WalRecord("promise", Ballot(3, "r1")),
            WalRecord("round", 7),
        ]
        data = b"".join(encode_frame(r) for r in records)
        decoded, consumed, status = decode_frames(data)
        assert status == "ok"
        assert consumed == len(data)
        assert [r.kind for r in decoded] == [r.kind for r in records]
        assert decoded[3].payload == 7
        assert decoded[2].payload == Ballot(3, "r1")

    def test_torn_tail_truncates(self):
        good = encode_frame(WalRecord("round", 1))
        torn = encode_frame(WalRecord("round", 2))[:-3]
        decoded, consumed, status = decode_frames(good + torn)
        assert status == "torn"
        assert consumed == len(good)
        assert [r.payload for r in decoded] == [1]

    def test_bad_crc_at_tail_is_torn(self):
        good = encode_frame(WalRecord("round", 1))
        bad = bytearray(encode_frame(WalRecord("round", 2)))
        bad[-1] ^= 0xFF
        decoded, _, status = decode_frames(good + bytes(bad))
        assert status == "torn"
        assert len(decoded) == 1

    def test_mid_log_corruption_detected(self):
        first = bytearray(encode_frame(WalRecord("round", 1)))
        second = encode_frame(WalRecord("round", 2))
        first[len(first) // 2] ^= 0xFF
        decoded, consumed, status = decode_frames(bytes(first) + second)
        assert status == "corrupt"
        assert decoded == []
        assert consumed == 0

    def test_empty_stream_ok(self):
        assert decode_frames(b"") == ([], 0, "ok")


# -------------------------------------------------------------------- device
class TestSimDisk:
    def test_write_through_is_immediately_durable(self):
        disk = SimDisk(write_through=True)
        disk.append(WalRecord("round", 1))
        assert disk.unsynced == 0
        assert len(disk.durable) == 1
        assert disk.durable[0].acked

    def test_fsync_covers_only_earlier_seqs(self):
        disk = SimDisk()
        s1 = disk.append(WalRecord("round", 1))
        disk.append(WalRecord("round", 2))
        assert disk.unsynced == 2
        covered = disk.complete_fsync(s1)
        assert covered == 1
        assert len(disk.durable) == 1
        assert disk.unsynced == 1

    def test_crash_drops_unsynced_cache(self):
        disk = SimDisk()
        disk.append(WalRecord("round", 1))
        disk.crash()
        assert disk.durable == []
        assert not disk.poisoned  # nothing was acked

    def test_lying_fsync_then_crash_poisons(self):
        disk = SimDisk()
        seq = disk.append(WalRecord("round", 1))
        disk.complete_fsync(seq, lie=True)
        assert disk.durable == []  # acked but never persisted
        disk.crash()
        assert disk.poisoned
        assert disk.replay().status == "poisoned"
        assert not disk.intact

    def test_honest_fsync_after_lie_heals(self):
        disk = SimDisk()
        seq = disk.append(WalRecord("round", 1))
        disk.complete_fsync(seq, lie=True)
        disk.complete_fsync(seq)  # honest retry persists the acked frame
        disk.crash()
        assert not disk.poisoned
        assert disk.replay().status == "ok"

    def test_armed_torn_write_lands_truncated_tail(self):
        disk = SimDisk()
        s1 = disk.append(accept_record(1))
        disk.complete_fsync(s1)
        disk.append(accept_record(2, seq=2))
        disk.arm_torn_write()
        disk.crash()
        assert [f.status for f in disk.durable] == ["ok", "torn"]
        result = disk.replay()
        assert result.status == "ok"
        assert result.truncated == 1
        assert len(result.records) == 1  # torn tail dropped, synced prefix kept

    def test_corruption_never_rots_the_tail(self):
        disk = SimDisk()
        assert not disk.corrupt_record(0.5)  # nothing durable yet
        disk.complete_fsync(disk.append(WalRecord("round", 1)))
        assert not disk.corrupt_record(0.5)  # a 1-frame log has only a tail
        disk.complete_fsync(disk.append(WalRecord("round", 2)))
        assert disk.corrupt_record(1.0)
        assert [f.status for f in disk.durable] == ["corrupt", "ok"]
        assert disk.replay().status == "corrupt"
        assert not disk.intact

    def test_checkpoint_waits_for_fsync_and_truncates(self):
        disk = SimDisk()
        disk.append(accept_record(1))
        disk.append(WalRecord("choose", (1, proposal())))
        seq = disk.append(WalRecord("promise", Ballot(2, "r0")))
        blob = CheckpointBlob(1, "snap", {}, frozenset({"c0#1"}), seq)
        disk.stage_checkpoint(blob)
        assert disk.checkpoint is None  # not durable yet
        disk.complete_fsync(seq)
        assert disk.checkpoint is blob
        # accept/choose at instance <= 1 truncated; latest promise kept.
        assert [f.record.kind for f in disk.durable] == ["promise"]

    def test_pending_checkpoint_lost_at_crash(self):
        disk = SimDisk()
        seq = disk.append(accept_record(1))
        disk.stage_checkpoint(CheckpointBlob(1, "snap", {}, frozenset(), seq))
        disk.crash()
        assert disk.checkpoint is None
        assert disk.pending_checkpoint is None


# --------------------------------------------------------------------- store
class _Handle:
    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled


class _Tracer:
    enabled = False
    current = None

    def activate(self, ctx):
        return None

    def activate_for(self, ctx):
        return None

    def restore(self, token):
        pass


class _Off:
    enabled = False


class _Service:
    def snapshot(self):
        return "empty"


class _FakeHost:
    """Just enough of a Replica for StableStore: config, clock, timers."""

    def __init__(self, **config) -> None:
        self.config = ReplicaConfig(peers=("r0", "r1", "r2"), **config)
        self.pid = "r0"
        self.now = 0.0
        self.metrics = _Off()
        self.profiler = _Off()
        self.tracer = _Tracer()
        self.service_factory = _Service
        self.timers: list[tuple[float, object, _Handle]] = []

    def set_timer(self, delay, fn, *args):
        handle = _Handle()
        self.timers.append((self.now + delay, lambda: fn(*args), handle))
        return handle

    def advance(self, to: float) -> None:
        while True:
            due = [t for t in self.timers if t[0] <= to and t[2].active]
            if not due:
                break
            due.sort(key=lambda t: t[0])
            at, fn, handle = due[0]
            self.timers.remove((at, fn, handle))
            self.now = max(self.now, at)
            fn()
        self.now = max(self.now, to)


class TestStableStore:
    def test_async_mode_flush_is_inline(self):
        store = StableStore(_FakeHost(fsync_mode="async"))
        store.record_round(1)
        fired = []
        store.flush(lambda: fired.append(True))
        assert fired == [True]
        assert not store.needs_barrier
        assert store.host.timers == []  # no fsync machinery at all

    def test_sync_mode_barrier_waits_for_fsync(self):
        host = _FakeHost(fsync_mode="sync", fsync_latency=1e-3)
        store = StableStore(host)
        store.record_round(1)
        fired = []
        store.flush(lambda: fired.append(True))
        assert fired == []  # durability costs modeled time
        host.advance(2e-3)
        assert fired == [True]
        assert store.device.unsynced == 0

    def test_group_mode_batches_one_fsync(self):
        host = _FakeHost(
            fsync_mode="group", fsync_latency=1e-3, group_commit_interval=5e-3
        )
        store = StableStore(host)
        fired = []
        store.record_round(1)
        store.flush(lambda: fired.append("a"))
        store.record_round(2)
        store.flush(lambda: fired.append("b"))
        host.advance(0.02)
        assert fired == ["a", "b"]
        assert store.device.fsyncs == 1  # both barriers rode one fsync

    def test_flush_with_nothing_outstanding_is_inline(self):
        store = StableStore(_FakeHost(fsync_mode="sync"))
        fired = []
        store.flush(lambda: fired.append(True))
        assert fired == [True]

    def test_lost_fsync_window_then_crash_halts_recovery(self):
        host = _FakeHost(fsync_mode="sync", fsync_latency=1e-3)
        store = StableStore(host)
        store.inject_lost_fsync(duration=1.0)
        store.record_round(1)
        store.flush(lambda: None)
        host.advance(0.01)  # the lying fsync acks without persisting
        store.crash()
        assert store.recover() is None
        assert store.halted
        assert not store.intact

    def test_disk_stall_delays_fsync(self):
        host = _FakeHost(fsync_mode="sync", fsync_latency=1e-3)
        store = StableStore(host)
        store.inject_disk_stall(duration=1.0, extra=5e-3)
        store.record_round(1)
        fired = []
        store.flush(lambda: fired.append(True))
        host.advance(2e-3)  # normal latency has passed, stall has not
        assert fired == []
        host.advance(7e-3)
        assert fired == [True]

    def test_recover_replays_synced_records(self):
        host = _FakeHost(fsync_mode="sync", fsync_latency=1e-3, track_commits=True)
        store = StableStore(host)
        store.accept(pn(1), proposal(seq=1))
        store.choose(1, proposal(seq=1))
        store.record_promise(Ballot(4, "r1"))
        store.record_round(9)
        store.flush(lambda: None)
        host.advance(0.01)
        store.crash()
        state = store.recover()
        assert state is not None
        assert state.promised == Ballot(4, "r1")
        assert state.max_round == 9
        assert state.replayed_records == 4
        assert store.log.is_chosen(1)
        assert store.durable_rids() == frozenset({"c0#1"})

    def test_unsynced_records_lost_at_crash(self):
        host = _FakeHost(fsync_mode="group", group_commit_interval=1.0)
        store = StableStore(host)
        store.accept(pn(1), proposal())
        store.crash()  # group timer never fired: nothing durable
        state = store.recover()
        assert state is not None
        assert state.replayed_records == 0
        assert not store.log.is_chosen(1)


class TestConfigValidation:
    PEERS = ("r0", "r1", "r2")

    def test_unknown_fsync_mode_rejected(self):
        with pytest.raises(ConfigError):
            ReplicaConfig(peers=self.PEERS, fsync_mode="lazy")

    @pytest.mark.parametrize(
        "field", ["fsync_latency", "group_commit_interval"]
    )
    def test_non_positive_latencies_rejected(self, field):
        with pytest.raises(ConfigError):
            ReplicaConfig(peers=self.PEERS, **{field: 0.0})
