"""Unit tests for the strict-2PL lock manager (§3.5 concurrency control)."""

from __future__ import annotations

from repro.core.locks import LockManager


def fs(*keys):
    return frozenset(keys)


class TestTryAcquire:
    def test_acquire_free_keys(self):
        lm = LockManager()
        assert lm.try_acquire("t1", fs("a"), fs("b"))
        assert lm.holds("t1") == fs("a", "b")

    def test_write_write_conflict(self):
        lm = LockManager()
        assert lm.try_acquire("t1", fs(), fs("k"))
        assert not lm.try_acquire("t2", fs(), fs("k"))

    def test_read_write_conflict(self):
        lm = LockManager()
        assert lm.try_acquire("t1", fs("k"), fs())
        assert not lm.try_acquire("t2", fs(), fs("k"))

    def test_write_read_conflict(self):
        lm = LockManager()
        assert lm.try_acquire("t1", fs(), fs("k"))
        assert not lm.try_acquire("t2", fs("k"), fs())

    def test_shared_reads_allowed(self):
        lm = LockManager()
        assert lm.try_acquire("t1", fs("k"), fs())
        assert lm.try_acquire("t2", fs("k"), fs())

    def test_reacquire_own_keys(self):
        lm = LockManager()
        assert lm.try_acquire("t1", fs("a"), fs("b"))
        assert lm.try_acquire("t1", fs("a"), fs("b"))

    def test_upgrade_read_to_write_when_sole_reader(self):
        lm = LockManager()
        assert lm.try_acquire("t1", fs("k"), fs())
        assert lm.try_acquire("t1", fs(), fs("k"))
        # Now exclusive: others blocked.
        assert not lm.try_acquire("t2", fs("k"), fs())

    def test_upgrade_blocked_by_other_reader(self):
        lm = LockManager()
        assert lm.try_acquire("t1", fs("k"), fs())
        assert lm.try_acquire("t2", fs("k"), fs())
        assert not lm.try_acquire("t1", fs(), fs("k"))

    def test_all_or_nothing(self):
        lm = LockManager()
        assert lm.try_acquire("t1", fs(), fs("a"))
        # t2 wants a (conflicts) and b (free): must get neither.
        assert not lm.try_acquire("t2", fs(), fs("a", "b"))
        assert lm.holds("t2") == frozenset()
        assert lm.try_acquire("t3", fs(), fs("b"))


class TestRelease:
    def test_release_frees_keys(self):
        lm = LockManager()
        lm.try_acquire("t1", fs(), fs("k"))
        lm.release_all("t1")
        assert lm.try_acquire("t2", fs(), fs("k"))

    def test_release_unknown_owner_is_noop(self):
        lm = LockManager()
        lm.release_all("ghost")

    def test_owners(self):
        lm = LockManager()
        lm.try_acquire("t1", fs("a"), fs())
        lm.try_acquire("t2", fs("b"), fs())
        assert lm.owners() == frozenset({"t1", "t2"})
        lm.release_all("t1")
        assert lm.owners() == frozenset({"t2"})

    def test_clear(self):
        lm = LockManager()
        lm.try_acquire("t1", fs(), fs("k"))
        lm.acquire_or_wait("w1", fs(), fs("k"), grant=lambda: None)
        lm.clear()
        assert lm.owners() == frozenset()
        assert lm.waiting == 0


class TestAcquireOrWait:
    def test_immediate_grant_when_free(self):
        lm = LockManager()
        granted = []
        assert lm.acquire_or_wait("w1", fs(), fs("k"), grant=lambda: granted.append(1))
        assert granted == []  # no callback when granted synchronously
        assert lm.holds("w1") == fs("k")

    def test_waiter_granted_on_release(self):
        lm = LockManager()
        lm.try_acquire("t1", fs(), fs("k"))
        granted = []
        assert not lm.acquire_or_wait("w1", fs(), fs("k"), grant=lambda: granted.append(1))
        assert lm.waiting == 1
        lm.release_all("t1")
        assert granted == [1]
        assert lm.holds("w1") == fs("k")
        assert lm.waiting == 0

    def test_fifo_wakeup(self):
        lm = LockManager()
        lm.try_acquire("t1", fs(), fs("k"))
        order = []
        lm.acquire_or_wait("w1", fs(), fs("k"), grant=lambda: order.append("w1"))
        lm.acquire_or_wait("w2", fs(), fs("k"), grant=lambda: order.append("w2"))
        lm.release_all("t1")
        # w1 is granted first; w2 waits for w1.
        assert order == ["w1"]
        lm.release_all("w1")
        assert order == ["w1", "w2"]

    def test_independent_waiters_both_wake(self):
        lm = LockManager()
        lm.try_acquire("t1", fs(), fs("a", "b"))
        order = []
        lm.acquire_or_wait("w1", fs(), fs("a"), grant=lambda: order.append("w1"))
        lm.acquire_or_wait("w2", fs(), fs("b"), grant=lambda: order.append("w2"))
        lm.release_all("t1")
        assert sorted(order) == ["w1", "w2"]

    def test_drop_waiters(self):
        lm = LockManager()
        lm.try_acquire("t1", fs(), fs("k"))
        granted = []
        lm.acquire_or_wait("w1", fs(), fs("k"), grant=lambda: granted.append(1))
        lm.drop_waiters("w1")
        lm.release_all("t1")
        assert granted == []

    def test_consistency_invariant(self):
        lm = LockManager()
        lm.try_acquire("t1", fs("a"), fs("b"))
        lm.try_acquire("t2", fs("a"), fs())
        lm.assert_consistent()
        lm.release_all("t1")
        lm.assert_consistent()
