"""Unit tests for fault schedules, the starter, and trace extras."""

from __future__ import annotations

import pytest

from repro.client.workload import single_kind_steps
from repro.cluster.faults import FaultSchedule
from repro.cluster.harness import Cluster, ClusterSpec, Starter
from repro.core.messages import StartSignal
from repro.errors import ConfigError
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.sim.trace import TraceEvent, TraceRecorder
from repro.sim.world import World
from repro.types import RequestKind
from tests.conftest import make_test_profile


def small_cluster(**overrides):
    overrides.setdefault("client_timeout", 0.2)
    spec = ClusterSpec(profile=make_test_profile(), **overrides)
    return Cluster(spec, [single_kind_steps(RequestKind.WRITE, 3)])


class TestFaultSchedule:
    def test_crash_recover_applied_at_times(self):
        cluster = small_cluster()
        schedule = FaultSchedule(cluster)
        schedule.crash("r1", at=0.01).recover("r1", at=0.02)
        cluster.start()
        cluster.kernel.run(until=0.015)
        assert not cluster.replicas["r1"].alive
        cluster.kernel.run(until=0.05)
        assert cluster.replicas["r1"].alive
        assert [entry for _t, entry in schedule.applied] == ["crash r1", "recover r1"]

    def test_crash_leader_targets_r0(self):
        cluster = small_cluster()
        FaultSchedule(cluster).crash_leader(at=0.01)
        cluster.start()
        cluster.kernel.run(until=0.02)
        assert not cluster.replicas["r0"].alive

    def test_switch_leader_requires_manual_elector(self):
        cluster = small_cluster()  # static elector
        with pytest.raises(ConfigError):
            FaultSchedule(cluster).switch_leader("r1", at=0.01)

    def test_partition_and_heal(self):
        cluster = small_cluster()
        schedule = FaultSchedule(cluster)
        schedule.partition([["r0"], ["r1", "r2"]], at=0.01)
        schedule.heal(at=0.02)
        cluster.start()
        cluster.kernel.run(until=0.015)
        assert cluster.network.partitions.active
        cluster.kernel.run(until=0.03)
        assert not cluster.network.partitions.active


class TestFaultValidation:
    def test_unknown_pid_rejected(self):
        cluster = small_cluster()
        with pytest.raises(ConfigError, match="unknown process"):
            FaultSchedule(cluster).crash("r9", at=0.01)
        with pytest.raises(ConfigError, match="unknown process"):
            FaultSchedule(cluster).recover("r9", at=0.01)
        with pytest.raises(ConfigError, match="unknown process"):
            FaultSchedule(cluster).partition([["r0"], ["r9"]], at=0.01)

    def test_negative_time_rejected(self):
        cluster = small_cluster()
        with pytest.raises(ConfigError, match="negative time"):
            FaultSchedule(cluster).crash("r0", at=-0.5)
        with pytest.raises(ConfigError, match="negative time"):
            FaultSchedule(cluster).heal(at=-1.0)

    def test_double_crash_same_instant_rejected(self):
        cluster = small_cluster()
        schedule = FaultSchedule(cluster).crash("r0", at=0.01)
        with pytest.raises(ConfigError, match="already scheduled"):
            schedule.crash("r0", at=0.01)
        # Different instants are a legitimate crash-recover-crash script.
        schedule.recover("r0", at=0.02).crash("r0", at=0.03)

    def test_double_recover_same_instant_rejected(self):
        cluster = small_cluster()
        schedule = FaultSchedule(cluster).crash("r0", at=0.01)
        schedule.recover("r0", at=0.02)
        with pytest.raises(ConfigError, match="already scheduled"):
            schedule.recover("r0", at=0.02)
        # A later recover (crash-recover-crash-recover script) is fine.
        schedule.crash("r0", at=0.03).recover("r0", at=0.04)

    def test_storage_faults_require_a_replica(self):
        cluster = small_cluster()
        schedule = FaultSchedule(cluster)
        with pytest.raises(ConfigError, match="not a replica"):
            schedule.torn_write("c0", at=0.01)
        with pytest.raises(ConfigError, match="not a replica"):
            schedule.lost_fsync("c0", at=0.01, duration=0.1)
        with pytest.raises(ConfigError, match="not a replica"):
            schedule.disk_stall("c0", at=0.01, duration=0.1, extra=1e-3)
        with pytest.raises(ConfigError, match="not a replica"):
            schedule.corrupt_record("c0", at=0.01, fraction=0.5)

    def test_storage_fault_parameter_bounds(self):
        cluster = small_cluster()
        schedule = FaultSchedule(cluster)
        with pytest.raises(ConfigError, match="duration"):
            schedule.lost_fsync("r1", at=0.01, duration=0.0)
        with pytest.raises(ConfigError, match="duration"):
            schedule.disk_stall("r1", at=0.01, duration=-0.1, extra=1e-3)
        with pytest.raises(ConfigError, match="extra"):
            schedule.disk_stall("r1", at=0.01, duration=0.1, extra=0.0)
        with pytest.raises(ConfigError, match="fraction"):
            schedule.corrupt_record("r1", at=0.01, fraction=1.5)

    def test_burst_duration_must_be_positive(self):
        cluster = small_cluster()
        with pytest.raises(ConfigError, match="duration"):
            FaultSchedule(cluster).loss_burst(0.5, at=0.01, duration=0.0)
        with pytest.raises(ConfigError, match="duration"):
            FaultSchedule(cluster).dup_burst(0.5, at=0.01, duration=-0.1)

    def test_switch_leader_scope_validated(self):
        cluster = small_cluster(elector="manual")
        with pytest.raises(ConfigError, match="unknown process"):
            FaultSchedule(cluster).switch_leader("r1", at=0.01, pids=["r1", "r9"])

    def test_faults_increment_counters(self):
        cluster = small_cluster()
        schedule = FaultSchedule(cluster)
        schedule.crash("r1", at=0.01).recover("r1", at=0.02)
        schedule.partition([["r0"], ["r1", "r2"]], at=0.03)
        schedule.heal(at=0.04)
        schedule.loss_burst(0.1, at=0.05, duration=0.01)
        cluster.start()
        cluster.kernel.run(until=0.1)
        counters = cluster.metrics.counters()
        for kind in ("crash", "recover", "partition", "heal", "burst"):
            assert counters[f"fault.{kind}"] == 1


class TestScopedLeaderSwitch:
    def test_scoped_switch_flips_only_targets(self):
        cluster = small_cluster(elector="manual")
        schedule = FaultSchedule(cluster)
        schedule.switch_leader("r1", at=0.01, pids=["r1", "r2"])
        cluster.start()
        cluster.kernel.run(until=0.05)
        electors = cluster.manual_electors.electors
        # r0 was outside the scope: it still believes in the old view.
        assert electors["r0"].current_leader() == "r0"
        assert electors["r1"].current_leader() == "r1"
        assert electors["r2"].current_leader() == "r1"
        assert any("on r1,r2" in entry for _t, entry in schedule.applied)

    def test_unscoped_switch_flips_everyone(self):
        cluster = small_cluster(elector="manual")
        FaultSchedule(cluster).switch_leader("r2", at=0.01)
        cluster.start()
        cluster.kernel.run(until=0.05)
        electors = cluster.manual_electors.electors
        assert all(e.current_leader() == "r2" for e in electors.values())


class TestStarter:
    class Sink(Process):
        def __init__(self, pid):
            super().__init__(pid)
            self.signals = 0

        def on_message(self, src, msg):
            if isinstance(msg, StartSignal):
                self.signals += 1

    def test_starter_fires_at_time(self):
        kernel = Kernel()
        world = World(kernel)
        sink = world.add(self.Sink("c0"))
        world.add(Starter("starter", ("c0",), at=0.5, repeats=0))
        world.start()
        kernel.run(until=0.4)
        assert sink.signals == 0
        kernel.run(until=0.6)
        assert sink.signals == 1

    def test_starter_retransmits(self):
        kernel = Kernel()
        world = World(kernel)
        sink = world.add(self.Sink("c0"))
        world.add(Starter("starter", ("c0",), at=0.0, repeat_interval=0.1, repeats=3))
        world.start()
        kernel.run(until=1.0)
        assert sink.signals == 4  # initial + 3 repeats

    def test_clients_ignore_duplicate_signals(self):
        cluster = small_cluster()
        cluster.run()
        client = cluster.clients[0]
        # Exactly one begin despite repeated signals.
        assert client.completed_requests == 3
        assert client.started_at is not None


class TestTraceExtras:
    def test_messages_filter_by_type(self):
        trace = TraceRecorder()
        trace.emit(0.0, "send", "a", "b", detail={"k": 1})
        trace.emit(0.1, "send", "a", "b", detail="text")
        assert len(trace.messages()) == 2
        assert len(trace.messages(dict)) == 1
        assert len(trace.messages(str)) == 1

    def test_len_and_iter(self):
        trace = TraceRecorder()
        trace.emit(0.0, "crash", "a")
        trace.emit(0.1, "recover", "a")
        assert len(trace) == 2
        assert [e.kind for e in trace] == ["crash", "recover"]

    def test_event_str_renders(self):
        event = TraceEvent(time=0.001, kind="send", src="a", dst="b", detail="x")
        text = str(event)
        assert "send" in text and "a->b" in text

    def test_event_str_renders_falsy_pids(self):
        # Numeric pid 0 and the empty string are valid process ids; the
        # arrow must not vanish just because a pid is falsy.
        event = TraceEvent(time=0.0, kind="send", src=0, dst=1, detail=None)
        assert "0->1" in str(event)
        event = TraceEvent(time=0.0, kind="send", src="", dst="b", detail=None)
        assert "->b" in str(event)
        event = TraceEvent(time=0.0, kind="deliver", src=None, dst=0, detail=None)
        assert "None->0" in str(event)

    def test_event_str_no_arrow_when_both_none(self):
        event = TraceEvent(time=0.0, kind="timer", src=None, dst=None, detail="t")
        assert "->" not in str(event)

    def test_dump(self):
        trace = TraceRecorder()
        trace.emit(0.0, "send", "a", "b", detail=1)
        assert "send" in trace.dump()
