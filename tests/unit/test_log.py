"""Unit tests for the replica log (§3.3 retention and recovery queries)."""

from __future__ import annotations

import pytest

from repro.core.ballot import Ballot, ProposalNumber
from repro.core.log import ReplicaLog
from repro.core.messages import Proposal
from repro.core.requests import ClientRequest, RequestId
from repro.core.state import StatePayload
from repro.errors import ProtocolError
from repro.types import RequestKind, StateTransferMode


def proposal(tag: str) -> Proposal:
    request = ClientRequest(
        rid=RequestId(f"client-{tag}", 0), kind=RequestKind.WRITE, op=("write",)
    )
    return Proposal(
        requests=(request,),
        payload=StatePayload(StateTransferMode.FULL, tag),
        reply=tag,
    )


def pn(round_: int, instance: int, leader: str = "r0") -> ProposalNumber:
    return ProposalNumber(Ballot(round_, leader), instance)


class TestAccept:
    def test_accept_records_entry(self):
        log = ReplicaLog()
        log.accept(pn(1, 1), proposal("a"))
        entry = log.accepted_entry(1)
        assert entry is not None and entry.value.reply == "a"

    def test_higher_pn_overwrites(self):
        log = ReplicaLog()
        log.accept(pn(1, 1), proposal("old"))
        log.accept(pn(2, 1), proposal("new"))
        assert log.accepted_entry(1).value.reply == "new"

    def test_lower_pn_ignored(self):
        log = ReplicaLog()
        log.accept(pn(2, 1), proposal("new"))
        log.accept(pn(1, 1), proposal("old"))
        assert log.accepted_entry(1).value.reply == "new"

    def test_instances_are_one_based(self):
        log = ReplicaLog()
        with pytest.raises(ProtocolError):
            log.accept(pn(1, 0), proposal("x"))


class TestChoose:
    def test_frontier_advances_contiguously(self):
        log = ReplicaLog()
        log.choose(1, proposal("a"))
        assert log.frontier == 1
        log.choose(3, proposal("c"))
        assert log.frontier == 1  # gap at 2
        log.choose(2, proposal("b"))
        assert log.frontier == 3

    def test_choose_idempotent(self):
        log = ReplicaLog()
        p = proposal("a")
        log.choose(1, p)
        log.choose(1, p)
        assert log.frontier == 1

    def test_conflicting_choice_raises(self):
        log = ReplicaLog()
        log.choose(1, proposal("a"))
        with pytest.raises(ProtocolError):
            log.choose(1, proposal("b"))

    def test_is_chosen(self):
        log = ReplicaLog()
        log.choose(1, proposal("a"))
        assert log.is_chosen(1)
        assert not log.is_chosen(2)

    def test_chosen_above(self):
        log = ReplicaLog()
        for i in (1, 2, 4):
            log.choose(i, proposal(str(i)))
        above = log.chosen_above(1)
        assert [i for i, _v in above] == [2, 4]


class TestRecoveryQueries:
    def test_gaps_matches_paper_example(self):
        # "Assume the leader knows requests 1-87 and 90": gaps are 88, 89.
        log = ReplicaLog()
        for i in range(1, 88):
            log.choose(i, proposal(str(i)))
        log.choose(90, proposal("90"))
        assert log.gaps() == (88, 89)
        assert log.max_instance_chosen() == 90

    def test_gaps_empty_when_contiguous(self):
        log = ReplicaLog()
        log.choose(1, proposal("a"))
        assert log.gaps() == ()

    def test_gaps_empty_log(self):
        assert ReplicaLog().gaps() == ()
        assert ReplicaLog().max_instance_chosen() == 0

    def test_promise_entries_covers_gaps_and_tail(self):
        log = ReplicaLog()
        for i in (2, 5, 6):
            log.accept(pn(1, i), proposal(str(i)))
        entries = log.promise_entries(gaps=(2,), from_instance=6)
        assert [e.pn.instance for e in entries] == [2, 6]

    def test_promise_entries_empty_range(self):
        log = ReplicaLog()
        log.accept(pn(1, 1), proposal("a"))
        assert log.promise_entries(gaps=(), from_instance=5) == ()

    def test_max_instance_includes_accepted(self):
        log = ReplicaLog()
        log.accept(pn(1, 7), proposal("x"))
        assert log.max_instance() == 7


class TestCompaction:
    def filled_log(self, upto=5):
        log = ReplicaLog()
        for i in range(1, upto + 1):
            log.accept(pn(1, i), proposal(str(i)))
            log.choose(i, proposal(str(i)))
        return log

    def test_compact_drops_entries(self):
        log = self.filled_log()
        dropped = log.compact(3)
        assert dropped == 6  # 3 chosen + 3 accepted
        assert log.chosen_value(3) is None
        assert log.chosen_value(4) is not None
        assert log.compacted_to == 3

    def test_compact_beyond_frontier_rejected(self):
        log = self.filled_log()
        with pytest.raises(ProtocolError):
            log.compact(6)

    def test_compacted_instances_count_as_chosen(self):
        log = self.filled_log()
        log.compact(3)
        assert log.is_chosen(2)

    def test_gaps_respect_compaction(self):
        log = self.filled_log()
        log.compact(3)
        log.choose(7, proposal("7"))
        assert log.gaps() == (6,)

    def test_install_prefix_jumps_frontier(self):
        log = ReplicaLog()
        log.choose(5, proposal("5"))  # gap below
        log.install_prefix(4)
        assert log.frontier == 5  # extends over the already-chosen 5
        assert log.compacted_to == 4

    def test_install_prefix_noop_when_behind(self):
        log = self.filled_log()
        log.install_prefix(2)
        assert log.frontier == 5
        # Entries above the prefix survive.
        assert log.chosen_value(5) is not None

    def test_frontier_skips_compacted(self):
        log = self.filled_log()
        log.compact(5)
        log.choose(6, proposal("6"))
        assert log.frontier == 6
