"""Unit tests for workload/step generation."""

from __future__ import annotations

import pytest

from repro.client.workload import Step, paper_txn_steps, single_kind_steps, txn_steps
from repro.types import RequestKind


class TestSingleKindSteps:
    def test_count_and_kind(self):
        steps = single_kind_steps(RequestKind.WRITE, 5)
        assert len(steps) == 5
        assert all(len(s.requests) == 1 for s in steps)
        assert all(s.requests[0][0] is RequestKind.WRITE for s in steps)

    def test_default_op_matches_kind(self):
        (step,) = single_kind_steps(RequestKind.READ, 1)
        assert step.requests[0][1] == ("read",)

    def test_op_factory(self):
        steps = single_kind_steps(RequestKind.WRITE, 3, op=lambda i: ("put", i, i))
        assert steps[2].requests[0][1] == ("put", 2, 2)

    def test_fixed_op(self):
        steps = single_kind_steps(RequestKind.WRITE, 2, op=("put", "k", 1))
        assert all(s.requests[0][1] == ("put", "k", 1) for s in steps)


class TestTxnSteps:
    def test_optimized_shape(self):
        (step,) = txn_steps(1, [("a",), ("b",)], optimized=True)
        kinds = [k for k, _op in step.requests]
        assert kinds == [RequestKind.TXN_OP, RequestKind.TXN_OP, RequestKind.TXN_COMMIT]
        assert step.transactional

    def test_unoptimized_shape(self):
        (step,) = txn_steps(1, [("a",), ("b",)], optimized=False, read_flags=[True, False])
        kinds = [k for k, _op in step.requests]
        # read, write, plus the commit request (a write).
        assert kinds == [RequestKind.READ, RequestKind.WRITE, RequestKind.WRITE]
        assert not step.transactional

    def test_read_flags_length_checked(self):
        with pytest.raises(ValueError):
            txn_steps(1, [("a",)], optimized=False, read_flags=[True, False])

    def test_ops_factory(self):
        steps = txn_steps(2, lambda i: [("op", i)], optimized=True)
        assert steps[1].requests[0][1] == ("op", 1)


class TestPaperTxnSteps:
    def test_read_write_3_is_2r1w(self):
        (step,) = paper_txn_steps("read_write", 3, 1)
        kinds = [k for k, _op in step.requests]
        assert kinds.count(RequestKind.READ) == 2
        assert kinds.count(RequestKind.WRITE) == 2  # 1 op + commit
        assert len(kinds) == 4

    def test_read_write_5_is_3r2w(self):
        (step,) = paper_txn_steps("read_write", 5, 1)
        kinds = [k for k, _op in step.requests]
        assert kinds.count(RequestKind.READ) == 3
        assert kinds.count(RequestKind.WRITE) == 3  # 2 ops + commit

    def test_write_only(self):
        (step,) = paper_txn_steps("write_only", 3, 1)
        kinds = [k for k, _op in step.requests]
        assert kinds == [RequestKind.WRITE] * 4

    def test_optimized(self):
        (step,) = paper_txn_steps("optimized", 5, 1)
        kinds = [k for k, _op in step.requests]
        assert kinds == [RequestKind.TXN_OP] * 5 + [RequestKind.TXN_COMMIT]
        assert step.transactional

    def test_count(self):
        assert len(paper_txn_steps("optimized", 3, 7)) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            paper_txn_steps("bogus", 3, 1)
        with pytest.raises(ValueError):
            paper_txn_steps("optimized", 0, 1)
