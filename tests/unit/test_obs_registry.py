"""Unit tests for the metrics registry: instruments, scoping, the null path."""

from __future__ import annotations

import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)


class TestCounterAndGauge:
    def test_counter_starts_at_zero_and_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_gauge_holds_last_value(self):
        gauge = Gauge()
        gauge.set(3.5)
        gauge.set(-1.0)
        assert gauge.value == -1.0


class TestHistogram:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))

    def test_counts_mean_min_max(self):
        hist = Histogram((1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0, 9.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.mean == pytest.approx(3.1)
        assert hist.minimum == 0.5
        assert hist.maximum == 9.0
        # buckets: <=1, <=2, <=4, overflow
        assert hist.counts == [1, 2, 1, 1]

    def test_quantile_empty_is_zero(self):
        assert Histogram((1.0,)).quantile(0.5) == 0.0

    def test_quantile_bounds_validated(self):
        hist = Histogram((1.0,))
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.1)

    def test_quantile_single_value_collapses(self):
        hist = Histogram((1.0, 2.0))
        for _ in range(10):
            hist.observe(1.2)
        assert hist.quantile(0.01) == pytest.approx(1.2)
        assert hist.quantile(0.99) == pytest.approx(1.2)

    def test_quantile_within_bucket_width(self):
        hist = Histogram(tuple(i / 10 for i in range(1, 11)))
        samples = [i / 100 for i in range(100)]
        for s in samples:
            hist.observe(s)
        for q in (0.1, 0.5, 0.9):
            true = samples[int(q * len(samples))]
            assert abs(hist.quantile(q) - true) <= 0.1

    def test_snapshot_round_trip(self):
        hist = Histogram((1e-3, 1e-2, 1e-1))
        for value in (5e-4, 5e-3, 5e-2, 5e-1):
            hist.observe(value)
        clone = Histogram.from_snapshot(hist.snapshot())
        assert clone.bounds == hist.bounds
        assert clone.counts == hist.counts
        assert clone.count == hist.count
        assert clone.mean == pytest.approx(hist.mean)
        assert clone.quantile(0.5) == pytest.approx(hist.quantile(0.5))

    def test_empty_snapshot_round_trip(self):
        clone = Histogram.from_snapshot(Histogram((1.0,)).snapshot())
        assert clone.count == 0
        assert clone.quantile(0.9) == 0.0


class TestMetricsRegistry:
    def test_instruments_cached_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_prefix_queries(self):
        registry = MetricsRegistry()
        registry.counter("msg.send.Reply").inc(3)
        registry.counter("msg.send.Accept").inc(1)
        registry.counter("msg.drop.Reply").inc()
        assert registry.counters("msg.send.") == {
            "msg.send.Accept": 1,
            "msg.send.Reply": 3,
        }
        assert registry.counter_value("msg.drop.Reply") == 1
        assert registry.counter_value("never.created") == 0
        # counter_value never creates the instrument
        assert "never.created" not in registry.counters()

    def test_scope_prefixes_names(self):
        registry = MetricsRegistry()
        scope = registry.scope("r1")
        scope.counter("send.Reply").inc()
        scope.gauge("depth").set(4)
        scope.histogram("phase.x").observe(0.001)
        assert registry.counter_value("proc.r1.send.Reply") == 1
        assert registry.gauges("proc.r1.") == {"proc.r1.depth": 4}
        assert registry.histograms("proc.r1.")["proc.r1.phase.x"].count == 1
        assert scope.enabled

    def test_iter_yields_every_name(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.gauge("g")
        registry.histogram("h")
        assert sorted(registry) == ["c", "g", "h"]

    def test_default_buckets_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(set(DEFAULT_LATENCY_BUCKETS))


class TestNullRegistry:
    def test_records_nothing(self):
        registry = NullRegistry()
        registry.counter("a").inc(100)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        assert registry.counters() == {}
        assert registry.gauges() == {}
        assert registry.histograms() == {}
        assert registry.counter_value("a") == 0

    def test_shared_noop_instruments(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.scope("r0") is NULL_REGISTRY.scope("r1")
        assert not NULL_REGISTRY.enabled
        assert not NULL_REGISTRY.scope("r0").enabled

    def test_scope_through_null_registry_records_nothing(self):
        scope = NULL_REGISTRY.scope("r0")
        scope.counter("x").inc()
        scope.histogram("y").observe(1.0)
        assert NULL_REGISTRY.counters() == {}
