"""Unit tests for single-decree classic Paxos (§3.2)."""

from __future__ import annotations

import pytest

from repro.core.ballot import Ballot
from repro.core.paxos import (
    P1a,
    P1b,
    P2a,
    P2b,
    PNack,
    PaxosAcceptor,
    PaxosLearner,
    PaxosProposer,
)
from repro.errors import ProtocolError

PEERS = ("a0", "a1", "a2")


def run_round(proposer, acceptors, ballot):
    """Drive one full round synchronously; returns True if chosen."""
    prepare = proposer.start(ballot)
    accept_msg = None
    for acceptor in acceptors:
        response = acceptor.on_prepare(prepare)
        if isinstance(response, P1b):
            maybe = proposer.on_promise(acceptor.pid, response)
            if maybe is not None:
                accept_msg = maybe
        else:
            proposer.on_nack(acceptor.pid, response)
    if accept_msg is None:
        return False
    chosen = False
    for acceptor in acceptors:
        response = acceptor.on_accept(accept_msg)
        if isinstance(response, P2b):
            chosen |= proposer.on_accepted(acceptor.pid, response)
        else:
            proposer.on_nack(acceptor.pid, response)
    return chosen


class TestHappyPath:
    def test_value_chosen(self):
        acceptors = [PaxosAcceptor(p) for p in PEERS]
        proposer = PaxosProposer("a0", PEERS, value="v")
        assert run_round(proposer, acceptors, Ballot(1, "a0"))
        assert proposer.chosen == "v"

    def test_majority_suffices(self):
        acceptors = [PaxosAcceptor(p) for p in PEERS]
        proposer = PaxosProposer("a0", PEERS, value="v")
        prepare = proposer.start(Ballot(1, "a0"))
        accept = None
        for acceptor in acceptors[:2]:  # only 2 of 3 respond
            accept = proposer.on_promise(acceptor.pid, acceptor.on_prepare(prepare)) or accept
        assert accept is not None
        done = False
        for acceptor in acceptors[:2]:
            done |= proposer.on_accepted(acceptor.pid, acceptor.on_accept(accept))
        assert done

    def test_single_acceptor_cluster(self):
        acceptors = [PaxosAcceptor("a0")]
        proposer = PaxosProposer("a0", ("a0",), value=1)
        assert run_round(proposer, acceptors, Ballot(1, "a0"))


class TestSafetyRules:
    def test_acceptor_rejects_lower_prepare(self):
        acceptor = PaxosAcceptor("a0")
        acceptor.on_prepare(P1a(Ballot(5, "x")))
        response = acceptor.on_prepare(P1a(Ballot(3, "y")))
        assert isinstance(response, PNack)
        assert response.promised == Ballot(5, "x")

    def test_acceptor_rejects_lower_accept(self):
        acceptor = PaxosAcceptor("a0")
        acceptor.on_prepare(P1a(Ballot(5, "x")))
        response = acceptor.on_accept(P2a(Ballot(3, "y"), "v"))
        assert isinstance(response, PNack)

    def test_acceptor_accepts_equal_ballot(self):
        acceptor = PaxosAcceptor("a0")
        acceptor.on_prepare(P1a(Ballot(5, "x")))
        assert isinstance(acceptor.on_accept(P2a(Ballot(5, "x"), "v")), P2b)

    def test_new_leader_adopts_accepted_value(self):
        # §3.2: "p can only propose a new proposal that is consistent with
        # the existing ones."
        acceptors = [PaxosAcceptor(p) for p in PEERS]
        first = PaxosProposer("a0", PEERS, value="old")
        assert run_round(first, acceptors, Ballot(1, "a0"))
        second = PaxosProposer("a1", PEERS, value="new")
        assert run_round(second, acceptors, Ballot(2, "a1"))
        assert second.chosen == "old"  # not "new"

    def test_highest_ballot_accepted_value_wins(self):
        # Footnote 1: adopt the value of the highest ballot number seen.
        a0, a1, a2 = (PaxosAcceptor(p) for p in PEERS)
        a0.accepted = (Ballot(1, "x"), "low")
        a1.accepted = (Ballot(3, "y"), "high")
        proposer = PaxosProposer("a2", PEERS, value="own")
        prepare = proposer.start(Ballot(5, "a2"))
        proposer.on_promise("a0", a0.on_prepare(prepare))
        accept = proposer.on_promise("a1", a1.on_prepare(prepare))
        assert accept is not None and accept.value == "high"

    def test_proposer_preempted_records_higher_ballot(self):
        acceptors = [PaxosAcceptor(p) for p in PEERS]
        for acceptor in acceptors:
            acceptor.on_prepare(P1a(Ballot(9, "z")))
        proposer = PaxosProposer("a0", PEERS, value="v")
        assert not run_round(proposer, acceptors, Ballot(1, "a0"))
        assert proposer.preempted_by == Ballot(9, "z")

    def test_wrong_ballot_owner_rejected(self):
        proposer = PaxosProposer("a0", PEERS, value="v")
        with pytest.raises(ProtocolError):
            proposer.start(Ballot(1, "a1"))

    def test_stale_promise_ignored(self):
        proposer = PaxosProposer("a0", PEERS, value="v")
        proposer.start(Ballot(2, "a0"))
        stale = P1b(ballot=Ballot(1, "a0"), accepted=None)
        assert proposer.on_promise("a1", stale) is None


class TestLearner:
    def test_learns_on_majority(self):
        learner = PaxosLearner(PEERS)
        b = Ballot(1, "a0")
        assert not learner.on_accepted("a0", b, "v")
        assert learner.on_accepted("a1", b, "v")
        assert learner.chosen == "v"

    def test_minority_not_chosen(self):
        learner = PaxosLearner(PEERS)
        learner.on_accepted("a0", Ballot(1, "a0"), "v")
        assert learner.chosen is None

    def test_conflicting_choices_detected(self):
        # This cannot happen under Paxos; the learner is the tripwire the
        # property tests rely on.
        learner = PaxosLearner(PEERS)
        learner.on_accepted("a0", Ballot(1, "a0"), "v1")
        learner.on_accepted("a1", Ballot(1, "a0"), "v1")
        learner.on_accepted("a0", Ballot(2, "a1"), "v2")
        with pytest.raises(ProtocolError):
            learner.on_accepted("a1", Ballot(2, "a1"), "v2")

    def test_same_value_at_higher_ballot_ok(self):
        learner = PaxosLearner(PEERS)
        learner.on_accepted("a0", Ballot(1, "a0"), "v")
        learner.on_accepted("a1", Ballot(1, "a0"), "v")
        learner.on_accepted("a1", Ballot(2, "a1"), "v")
        assert learner.on_accepted("a2", Ballot(2, "a1"), "v")
        assert learner.chosen == "v"
