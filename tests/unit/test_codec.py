"""Unit tests for the TCP framing codec."""

from __future__ import annotations

import pytest

from repro.core.ballot import Ballot
from repro.core.messages import Confirm
from repro.core.requests import RequestId
from repro.transport.codec import FrameDecoder, decode_frames, encode_frame


class TestRoundTrip:
    def test_simple_roundtrip(self):
        frame = encode_frame({"a": 1})
        assert decode_frames(frame) == [{"a": 1}]

    def test_multiple_frames(self):
        data = encode_frame(1) + encode_frame("two") + encode_frame([3])
        assert decode_frames(data) == [1, "two", [3]]

    def test_protocol_messages_picklable(self):
        msg = Confirm(ballot=Ballot(3, "r1"), rid=RequestId("c0", 7))
        (decoded,) = decode_frames(encode_frame(("r2", msg)))
        assert decoded == ("r2", msg)

    def test_trailing_garbage_detected(self):
        with pytest.raises(ValueError):
            decode_frames(encode_frame(1) + b"\x00\x01")


class TestIncremental:
    def test_byte_at_a_time(self):
        frame = encode_frame({"k": list(range(50))})
        decoder = FrameDecoder()
        out = []
        for i in range(len(frame)):
            out.extend(decoder.feed(frame[i : i + 1]))
        assert out == [{"k": list(range(50))}]
        assert decoder.pending_bytes == 0

    def test_split_across_header(self):
        frame = encode_frame("x")
        decoder = FrameDecoder()
        assert list(decoder.feed(frame[:2])) == []
        assert list(decoder.feed(frame[2:])) == ["x"]

    def test_two_frames_one_feed(self):
        decoder = FrameDecoder()
        out = list(decoder.feed(encode_frame(1) + encode_frame(2)))
        assert out == [1, 2]

    def test_oversize_frame_rejected(self):
        import struct

        decoder = FrameDecoder()
        bogus = struct.pack(">I", 2**31)
        with pytest.raises(ValueError):
            list(decoder.feed(bogus))
