"""Unit tests for the CLI."""

from __future__ import annotations

import pytest

from repro.cli import _md_table, build_experiments_report, main


class TestMdTable:
    def test_shape(self):
        out = _md_table(["a", "b"], [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
        assert len(lines) == 4


class TestCommands:
    def test_profiles_command(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "sysnet" in out and "wan" in out and "berkeley_princeton" in out
        assert "0.181" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestRunAndReport:
    def test_run_prints_summary(self, capsys):
        assert main(["run", "--requests", "6", "--clients", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "clients=2" in out
        assert "messages=" in out  # metrics on by default

    def test_run_export_then_report(self, tmp_path, capsys):
        export = tmp_path / "run.jsonl"
        assert main(["run", "--requests", "6", "--export", str(export), "--trace"]) == 0
        capsys.readouterr()
        assert export.exists()
        assert main(["report", str(export)]) == 0
        out = capsys.readouterr().out
        assert "Per-message-type traffic" in out
        assert "AcceptBatch" in out
        assert "Phase latencies" in out

    def test_report_compares_two_exports(self, tmp_path, capsys):
        paths = []
        for seed, kind in ((1, "write"), (2, "read")):
            path = tmp_path / f"run{seed}.jsonl"
            assert main([
                "run", "--requests", "6", "--kind", kind,
                "--seed", str(seed), "--export", str(path),
            ]) == 0
            paths.append(str(path))
        capsys.readouterr()
        assert main(["report", *paths]) == 0
        out = capsys.readouterr().out
        assert "A sent" in out and "B sent" in out
        # Writes run accept rounds, reads don't: the diff must show it.
        assert "AcceptBatch" in out

    def test_report_rejects_three_paths(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", "a", "b", "c"])

    def test_run_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            main(["run", "--kind", "bogus"])


class TestExperimentsReport:
    # One slow-ish end-to-end check of the generator (quick mode).
    def test_quick_report_contains_every_artefact(self):
        report = build_experiments_report(quick=True)
        for marker in (
            "sysnet — request response time",
            "berkeley_princeton — request response time",
            "wan — request response time",
            "Fig. 5",
            "Fig. 6",
            "Fig. 7",
            "Fig. 8",
            "Table 1",
            "Fig. 9a",
            "Fig. 9b",
        ):
            assert marker in report, f"missing {marker}"
        # Spot-check one paper number appears alongside a measured one.
        assert "0.181" in report and "106.7" in report


class TestChaosCommand:
    def test_clean_sweep_exits_zero_and_writes_summary(self, tmp_path, capsys):
        summary_path = tmp_path / "chaos.json"
        code = main([
            "chaos", "--seeds", "3", "--requests", "4", "--horizon", "0.5",
            "--summary", str(summary_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 seed(s): 3 ok, 0 violating" in out
        import json

        summary = json.loads(summary_path.read_text())
        assert summary["seeds"] == 3 and summary["violating"] == 0

    def test_mutation_sweep_exits_nonzero_with_dossier(self, capsys):
        code = main([
            "chaos", "--seeds", "1", "--seed", "3",
            "--mutation", "minority-accept", "--quiet",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "violation(s)" in out
        assert "runnable repro script:" in out

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--protocol", "raft"])
