"""Unit tests for the CLI."""

from __future__ import annotations

import re

import pytest

from repro.cli import _md_table, build_experiments_report, main


class TestMdTable:
    def test_shape(self):
        out = _md_table(["a", "b"], [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
        assert len(lines) == 4


class TestCommands:
    def test_profiles_command(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "sysnet" in out and "wan" in out and "berkeley_princeton" in out
        assert "0.181" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestRunAndReport:
    def test_run_prints_summary(self, capsys):
        assert main(["run", "--requests", "6", "--clients", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "clients=2" in out
        assert "messages=" in out  # metrics on by default

    def test_run_export_then_report(self, tmp_path, capsys):
        export = tmp_path / "run.jsonl"
        assert main(["run", "--requests", "6", "--export", str(export), "--trace"]) == 0
        capsys.readouterr()
        assert export.exists()
        assert main(["report", str(export)]) == 0
        out = capsys.readouterr().out
        assert "Per-message-type traffic" in out
        assert "AcceptBatch" in out
        assert "Phase latencies" in out

    def test_report_compares_two_exports(self, tmp_path, capsys):
        paths = []
        for seed, kind in ((1, "write"), (2, "read")):
            path = tmp_path / f"run{seed}.jsonl"
            assert main([
                "run", "--requests", "6", "--kind", kind,
                "--seed", str(seed), "--export", str(path),
            ]) == 0
            paths.append(str(path))
        capsys.readouterr()
        assert main(["report", *paths]) == 0
        out = capsys.readouterr().out
        assert "A sent" in out and "B sent" in out
        # Writes run accept rounds, reads don't: the diff must show it.
        assert "AcceptBatch" in out

    def test_report_rejects_three_paths(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", "a", "b", "c"])

    def test_run_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            main(["run", "--kind", "bogus"])


class TestExperimentsReport:
    # One slow-ish end-to-end check of the generator (quick mode).
    def test_quick_report_contains_every_artefact(self):
        report = build_experiments_report(quick=True)
        for marker in (
            "sysnet — request response time",
            "berkeley_princeton — request response time",
            "wan — request response time",
            "Fig. 5",
            "Fig. 6",
            "Fig. 7",
            "Fig. 8",
            "Table 1",
            "Fig. 9a",
            "Fig. 9b",
        ):
            assert marker in report, f"missing {marker}"
        # Spot-check one paper number appears alongside a measured one.
        assert "0.181" in report and "106.7" in report


class TestChaosCommand:
    def test_clean_sweep_exits_zero_and_writes_summary(self, tmp_path, capsys):
        summary_path = tmp_path / "chaos.json"
        code = main([
            "chaos", "--seeds", "3", "--requests", "4", "--horizon", "0.5",
            "--summary", str(summary_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 seed(s): 3 ok, 0 violating" in out
        import json

        summary = json.loads(summary_path.read_text())
        assert summary["seeds"] == 3 and summary["violating"] == 0

    def test_mutation_sweep_exits_nonzero_with_dossier(self, capsys):
        code = main([
            "chaos", "--seeds", "1", "--seed", "3",
            "--mutation", "minority-accept", "--quiet",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "violation(s)" in out
        assert "runnable repro script:" in out

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--protocol", "raft"])


class TestProfileCommand:
    def test_profile_prints_tables(self, capsys):
        assert main(["profile", "--requests", "6", "--clients", "2"]) == 0
        out = capsys.readouterr().out
        assert "Hottest handlers" in out
        assert "Sim-CPU attribution" in out
        assert re.search(r"^E\s", out, re.M)

    def test_profile_writes_collapsed_and_chrome(self, tmp_path, capsys):
        flame = tmp_path / "flame.txt"
        trace = tmp_path / "trace.json"
        assert main([
            "profile", "--requests", "6", "--execute-time", "0.001",
            "--out", str(flame), "--chrome", str(trace),
        ]) == 0
        capsys.readouterr()
        lines = flame.read_text().splitlines()
        assert lines and all(line.rsplit(" ", 1)[1].isdigit() for line in lines)
        from repro.obs.chrome import validate_chrome_trace

        assert validate_chrome_trace(trace)["counter_events"] > 0

    def test_profile_host_metric_out(self, tmp_path, capsys):
        flame = tmp_path / "host.txt"
        assert main([
            "profile", "--requests", "6", "--out", str(flame),
            "--metric", "host",
        ]) == 0
        capsys.readouterr()
        assert flame.read_text().strip()


class TestPerfCommand:
    def _bench_doc(self, value):
        return {
            "schema": 2,
            "name": "rrt_sysnet",
            "text": "",
            "data": None,
            "metrics": {
                "rrt_write_s": {
                    "value": value, "unit": "s", "direction": "lower",
                },
            },
            "meta": {"commit": "t" * 7},
        }

    def _record(self, tmp_path, ledger, value, idx):
        import json

        doc = tmp_path / f"BENCH_rrt_{idx}.json"
        doc.write_text(json.dumps(self._bench_doc(value)))
        assert main([
            "perf", "record", str(doc), "--ledger", str(ledger),
        ]) == 0

    def test_record_then_flat_check_passes(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        for i, v in enumerate([1.0, 1.01, 0.99, 1.0, 1.005]):
            self._record(tmp_path, ledger, v, i)
        capsys.readouterr()
        assert main(["perf", "check", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "rrt_write_s" in out and "ok" in out

    def test_seeded_regression_fails_check(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        for i, v in enumerate([1.0, 1.01, 0.99, 1.0, 1.3]):  # +30% step
            self._record(tmp_path, ledger, v, i)
        capsys.readouterr()
        code = main(["perf", "check", "--ledger", str(ledger)])
        captured = capsys.readouterr()
        assert code == 1
        assert "REGRESSION" in captured.err
        assert "rrt_write_s" in captured.err

    def test_trend_renders_table(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        for i, v in enumerate([1.0, 1.0, 1.0, 1.0]):
            self._record(tmp_path, ledger, v, i)
        capsys.readouterr()
        assert main(["perf", "trend", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "rrt_sysnet" in out and "rrt_write_s" in out

    def test_check_on_missing_ledger_passes(self, tmp_path, capsys):
        assert main([
            "perf", "check", "--ledger", str(tmp_path / "absent.jsonl"),
        ]) == 0

    def test_record_from_results_dir_glob(self, tmp_path, capsys):
        import json

        ledger = tmp_path / "ledger.jsonl"
        (tmp_path / "BENCH_a.json").write_text(json.dumps(self._bench_doc(1.0)))
        (tmp_path / "notes.txt").write_text("ignored")
        assert main([
            "perf", "record", "--results-dir", str(tmp_path),
            "--ledger", str(ledger),
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded 1 metric(s)" in out

    def test_legacy_bench_doc_warn_skipped(self, tmp_path, capsys):
        import json

        ledger = tmp_path / "ledger.jsonl"
        doc = tmp_path / "BENCH_old.json"
        doc.write_text(json.dumps({"name": "old", "text": "", "data": None}))
        assert main([
            "perf", "record", str(doc), "--ledger", str(ledger),
        ]) == 0
        captured = capsys.readouterr()
        assert "legacy" in captured.err
        assert not ledger.exists()
