"""Unit tests for the CLI."""

from __future__ import annotations

import pytest

from repro.cli import _md_table, build_experiments_report, main


class TestMdTable:
    def test_shape(self):
        out = _md_table(["a", "b"], [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
        assert len(lines) == 4


class TestCommands:
    def test_profiles_command(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "sysnet" in out and "wan" in out and "berkeley_princeton" in out
        assert "0.181" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestExperimentsReport:
    # One slow-ish end-to-end check of the generator (quick mode).
    def test_quick_report_contains_every_artefact(self):
        report = build_experiments_report(quick=True)
        for marker in (
            "sysnet — request response time",
            "berkeley_princeton — request response time",
            "wan — request response time",
            "Fig. 5",
            "Fig. 6",
            "Fig. 7",
            "Fig. 8",
            "Table 1",
            "Fig. 9a",
            "Fig. 9b",
        ):
            assert marker in report, f"missing {marker}"
        # Spot-check one paper number appears alongside a measured one.
        assert "0.181" in report and "106.7" in report
