"""Unit tests for the linearizability checker itself."""

from __future__ import annotations

import pytest

from repro.analysis.linearizability import Op, check_register


class TestBasics:
    def test_empty_history(self):
        assert check_register([])

    def test_sequential_write_then_read(self):
        ops = [
            Op("write", 1, 0.0, 1.0),
            Op("read", 1, 2.0, 3.0),
        ]
        assert check_register(ops)

    def test_stale_sequential_read_rejected(self):
        ops = [
            Op("write", 1, 0.0, 1.0),
            Op("read", None, 2.0, 3.0),  # must see 1
        ]
        assert not check_register(ops, initial=None)

    def test_read_of_initial_value(self):
        assert check_register([Op("read", 42, 0.0, 1.0)], initial=42)
        assert not check_register([Op("read", 41, 0.0, 1.0)], initial=42)

    def test_concurrent_read_may_see_either(self):
        # Read overlaps the write: old or new value both legal.
        write = Op("write", 1, 0.0, 2.0)
        assert check_register([write, Op("read", 1, 1.0, 3.0)], initial=0)
        assert check_register([write, Op("read", 0, 1.0, 3.0)], initial=0)

    def test_read_cannot_travel_back_in_time(self):
        # w1 completes, then w2 completes, then a read sees w1's value: bad.
        ops = [
            Op("write", 1, 0.0, 1.0),
            Op("write", 2, 2.0, 3.0),
            Op("read", 1, 4.0, 5.0),
        ]
        assert not check_register(ops)

    def test_two_reads_cannot_flip_flop(self):
        # Classic non-linearizable pattern: r1 sees new, later r2 sees old.
        ops = [
            Op("write", 2, 0.0, 10.0),      # long write
            Op("read", 2, 1.0, 2.0),        # observed the new value...
            Op("read", 1, 3.0, 4.0),        # ...then the old one: illegal
        ]
        assert not check_register(ops, initial=1)

    def test_flip_flop_other_order_is_fine(self):
        ops = [
            Op("write", 2, 0.0, 10.0),
            Op("read", 1, 1.0, 2.0),
            Op("read", 2, 3.0, 4.0),
        ]
        assert check_register(ops, initial=1)

    def test_interleaved_writers(self):
        ops = [
            Op("write", "a", 0.0, 3.0),
            Op("write", "b", 1.0, 2.0),
            Op("read", "a", 4.0, 5.0),   # a linearized after b
        ]
        assert check_register(ops)
        ops_bad = [
            Op("write", "a", 0.0, 1.0),
            Op("write", "b", 2.0, 3.0),
            Op("read", "a", 4.0, 5.0),
        ]
        assert not check_register(ops_bad)

    def test_validation(self):
        with pytest.raises(ValueError):
            Op("swap", 1, 0.0, 1.0)
        with pytest.raises(ValueError):
            Op("read", 1, 2.0, 1.0)

    def test_moderate_history_performance(self):
        # 60 sequential pairs: must finish instantly with memoization.
        ops = []
        t = 0.0
        for i in range(60):
            ops.append(Op("write", i, t, t + 1))
            ops.append(Op("read", i, t + 2, t + 3))
            t += 4
        assert check_register(ops)
