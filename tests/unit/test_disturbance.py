"""Unit tests for runtime network disturbances (loss/dup/latency bursts)
and their observability counters (``net.dup``, ``last_dup_cause``)."""

from __future__ import annotations

import pytest

from repro.net.latency import ConstantLatency
from repro.net.link import LinkSpec
from repro.net.network import Disturbance, SimNetwork
from repro.net.topology import Topology
from repro.obs.registry import MetricsRegistry


def make_network(seed: int = 0, **spec_kw) -> SimNetwork:
    spec_kw.setdefault("latency", ConstantLatency(1e-3))
    spec_kw.setdefault("jitter_reorder", False)
    topo = Topology(default=LinkSpec(**spec_kw))
    topo.place_all(["a", "b"], "site")
    network = SimNetwork(topo, seed=seed)
    network.metrics = MetricsRegistry()
    return network


class TestDisturbanceConfig:
    def test_inactive_by_default(self):
        assert not make_network().disturbance.active

    def test_set_and_clear(self):
        network = make_network()
        network.set_disturbance(loss=0.5)
        assert network.disturbance == Disturbance(loss=0.5)
        network.clear_disturbance()
        assert not network.disturbance.active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss": -0.1},
            {"loss": 1.0},
            {"duplicate": -0.1},
            {"duplicate": 1.5},
            {"extra_latency": -1.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_network().set_disturbance(**kwargs)


class TestDisturbanceDelivery:
    def test_certain_duplicate_counts_and_records_cause(self):
        network = make_network()
        network.set_disturbance(duplicate=1.0)
        copies = network.delays("a", "b", depart=0.0)
        assert len(copies) == 2
        assert copies[0] == copies[1]  # same-instant duplicate, not delayed
        assert network.last_dup_cause == "disturbance"
        assert network.messages_duplicated == 1
        counters = network.metrics.counters()
        assert counters["net.dup"] == 1
        assert counters["net.dup.disturbance"] == 1

    def test_dup_cause_cleared_on_clean_delivery(self):
        network = make_network()
        network.set_disturbance(duplicate=1.0)
        network.delays("a", "b", depart=0.0)
        network.clear_disturbance()
        copies = network.delays("a", "b", depart=0.0)
        assert len(copies) == 1
        assert network.last_dup_cause is None

    def test_link_level_duplicate_reported_as_link(self):
        network = make_network(duplicate=1.0)  # duplication on the link spec
        network.delays("a", "b", depart=0.0)
        assert network.last_dup_cause == "link"
        assert network.metrics.counters()["net.dup.link"] == 1

    def test_loss_burst_drops_and_records_cause(self):
        network = make_network()
        network.set_disturbance(loss=0.999999)
        dropped = sum(
            1 for _ in range(20) if network.delays("a", "b", depart=0.0) == ()
        )
        assert dropped == 20
        assert network.last_drop_cause == "disturbance"
        assert network.metrics.counters()["net.drop.disturbance"] == 20

    def test_extra_latency_applied_to_every_copy(self):
        network = make_network()
        base = network.delays("a", "b", depart=0.0)[0]
        network.set_disturbance(extra_latency=0.25)
        spiked = network.delays("a", "b", depart=0.0)
        assert all(delay == pytest.approx(base + 0.25) for delay in spiked)

    def test_self_messages_untouched(self):
        network = make_network()
        network.set_disturbance(loss=0.999999, duplicate=1.0)
        copies = network.delays("a", "a", depart=0.0)
        assert len(copies) == 1

    def test_disturbance_rng_is_seeded_and_independent(self):
        # Same seed -> same drop pattern; the per-link jitter streams are not
        # consumed by disturbance decisions.
        def pattern(seed):
            network = make_network(seed=seed)
            network.set_disturbance(loss=0.5)
            return [network.delays("a", "b", depart=0.0) == () for _ in range(50)]

        assert pattern(1) == pattern(1)
        assert pattern(1) != pattern(2)
