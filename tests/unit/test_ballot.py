"""Unit tests for ballot and proposal numbers (§3.2/§3.3 ordering rules)."""

from __future__ import annotations

import pytest

from repro.core.ballot import Ballot, ProposalNumber


class TestBallot:
    def test_ordering_by_round_first(self):
        assert Ballot(1, "z") < Ballot(2, "a")

    def test_ordering_by_leader_within_round(self):
        assert Ballot(1, "a") < Ballot(1, "b")

    def test_equality(self):
        assert Ballot(3, "r1") == Ballot(3, "r1")
        assert Ballot(3, "r1") != Ballot(3, "r2")

    def test_zero_is_smallest(self):
        assert Ballot.ZERO < Ballot(0, "")
        assert Ballot.ZERO < Ballot(0, "a")
        assert Ballot.ZERO < Ballot(1000, "zzz")

    def test_next_for_is_strictly_greater(self):
        b = Ballot(5, "r2")
        nxt = b.next_for("r0")
        assert nxt > b
        assert nxt.leader == "r0"

    def test_next_for_from_zero(self):
        assert Ballot.ZERO.next_for("r1") == Ballot(0, "r1")

    def test_distinct_leaders_never_equal(self):
        # Two leaders can never mint the same ballot.
        assert Ballot(4, "r1") != Ballot(4, "r2")

    def test_hashable(self):
        assert len({Ballot(1, "a"), Ballot(1, "a"), Ballot(2, "a")}) == 2

    def test_total_ordering_helpers(self):
        assert Ballot(1, "a") <= Ballot(1, "a")
        assert Ballot(2, "a") >= Ballot(1, "z")
        assert not (Ballot(1, "a") > Ballot(1, "a"))

    def test_str(self):
        assert str(Ballot(3, "r1")) == "b(3,r1)"


class TestProposalNumber:
    def test_lexicographic_ballot_then_instance(self):
        # §3.3: "ordered lexicographically, first by the ballot number and
        # then by the instance number".
        low_ballot_high_instance = ProposalNumber(Ballot(1, "a"), 99)
        high_ballot_low_instance = ProposalNumber(Ballot(2, "a"), 1)
        assert low_ballot_high_instance < high_ballot_low_instance

    def test_same_ballot_orders_by_instance(self):
        b = Ballot(1, "a")
        assert ProposalNumber(b, 3) < ProposalNumber(b, 4)

    def test_equality_and_hash(self):
        a = ProposalNumber(Ballot(1, "a"), 3)
        b = ProposalNumber(Ballot(1, "a"), 3)
        assert a == b
        assert hash(a) == hash(b)

    def test_leader_breaks_ties(self):
        assert ProposalNumber(Ballot(1, "a"), 5) < ProposalNumber(Ballot(1, "b"), 5)

    def test_sorting_mixed(self):
        pns = [
            ProposalNumber(Ballot(2, "a"), 1),
            ProposalNumber(Ballot(1, "b"), 9),
            ProposalNumber(Ballot(1, "a"), 9),
            ProposalNumber(Ballot(1, "b"), 2),
        ]
        ordered = sorted(pns)
        assert ordered == [
            ProposalNumber(Ballot(1, "a"), 9),
            ProposalNumber(Ballot(1, "b"), 2),
            ProposalNumber(Ballot(1, "b"), 9),
            ProposalNumber(Ballot(2, "a"), 1),
        ]

    def test_str(self):
        assert "pn(1,a,#7)" == str(ProposalNumber(Ballot(1, "a"), 7))
