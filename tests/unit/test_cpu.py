"""Unit tests for the CPU occupancy model."""

from __future__ import annotations

import pytest

from repro.sim.cpu import CpuModel, CpuProfile


class TestCpuProfile:
    def test_defaults_are_free(self):
        p = CpuProfile()
        assert p.send_cost == 0.0 and p.recv_cost == 0.0

    def test_scaled(self):
        p = CpuProfile(send_cost=2e-6, recv_cost=4e-6, execute_cost=1e-6)
        s = p.scaled(0.5)
        assert s.send_cost == pytest.approx(1e-6)
        assert s.recv_cost == pytest.approx(2e-6)
        assert s.execute_cost == pytest.approx(0.5e-6)

    def test_with_extra(self):
        p = CpuProfile(send_cost=1e-6)
        q = p.with_extra(3e-6)
        assert q.extra_per_message == pytest.approx(3e-6)
        assert q.send_cost == pytest.approx(1e-6)
        assert p.extra_per_message == 0.0  # original untouched


class TestCpuModel:
    def test_idle_cpu_starts_immediately(self):
        cpu = CpuModel(CpuProfile(recv_cost=10e-6))
        assert cpu.recv_completion(1.0) == pytest.approx(1.0 + 10e-6)

    def test_busy_cpu_queues_work(self):
        cpu = CpuModel(CpuProfile(recv_cost=10e-6))
        first = cpu.recv_completion(1.0)
        second = cpu.recv_completion(1.0)  # arrives while busy
        assert second == pytest.approx(first + 10e-6)

    def test_gap_leaves_cpu_idle(self):
        cpu = CpuModel(CpuProfile(send_cost=5e-6))
        cpu.send_completion(0.0)
        # Much later arrival: no queueing.
        assert cpu.send_completion(1.0) == pytest.approx(1.0 + 5e-6)

    def test_extra_per_message_added(self):
        cpu = CpuModel(CpuProfile(recv_cost=10e-6, extra_per_message=2e-6))
        assert cpu.recv_completion(0.0) == pytest.approx(12e-6)

    def test_negative_cost_rejected(self):
        cpu = CpuModel()
        with pytest.raises(ValueError):
            cpu.acquire(0.0, -1e-6)

    def test_busy_time_accumulates(self):
        cpu = CpuModel(CpuProfile(recv_cost=10e-6))
        cpu.recv_completion(0.0)
        cpu.recv_completion(0.0)
        assert cpu.busy_time == pytest.approx(20e-6)

    def test_utilization(self):
        cpu = CpuModel(CpuProfile(recv_cost=10e-6))
        for _ in range(10):
            cpu.recv_completion(0.0)
        assert cpu.utilization(1e-3) == pytest.approx(0.1)
        assert cpu.utilization(0.0) == 0.0
        assert cpu.utilization(1e-6) == 1.0  # clamped

    def test_reset_forgets_backlog_not_stats(self):
        cpu = CpuModel(CpuProfile(recv_cost=10e-6))
        cpu.recv_completion(0.0)
        cpu.reset()
        assert cpu.busy_until == 0.0
        assert cpu.busy_time > 0.0

    def test_execute_completion_uses_execute_cost(self):
        cpu = CpuModel(CpuProfile(execute_cost=7e-6))
        assert cpu.execute_completion(0.0) == pytest.approx(7e-6)
