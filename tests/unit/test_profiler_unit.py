"""Unit tests for the sim-profiler's collection and export machinery.

Host time is injected through ``host_clock`` (a fake counter), so the
self-time/child-time arithmetic is asserted exactly, not approximately.
"""

from __future__ import annotations

import re

import pytest

from repro.obs.prof import (
    NULL_PROFILER,
    FrameStat,
    NullProfiler,
    SimProfiler,
    attribution,
    collapsed_lines,
    counter_samples,
    frame_rows,
    write_collapsed,
)
from repro.obs.prof.export import classify_frame, leaf_is_component


class FakeHostClock:
    """Deterministic nanosecond counter: each read advances by ``step``."""

    def __init__(self, step: int = 100):
        self.now = 0
        self.step = step

    def __call__(self) -> int:
        self.now += self.step
        return self.now


def make_profiler(step: int = 100) -> tuple[SimProfiler, FakeHostClock]:
    clock = FakeHostClock(step)
    profiler = SimProfiler(clock=lambda: 0.0, host_clock=clock, sample_interval=0.01)
    return profiler, clock


class TestFrameStat:
    def test_add_cpu_accumulates_calls_and_seconds(self):
        stat = FrameStat()
        stat.add_cpu(0.5)
        stat.add_cpu(0.25)
        assert stat.calls == 2
        assert stat.sim_cpu == 0.75
        assert stat.host_ns == 0


class TestScopes:
    def test_enter_exit_records_self_time(self):
        profiler, _clock = make_profiler(step=100)
        profiler.enter("execute")
        profiler.exit()
        stats = profiler.frames()
        assert set(stats) == {("execute",)}
        stat = stats[("execute",)]
        assert stat.calls == 1
        assert stat.host_ns == 100  # one clock step between enter and exit

    def test_child_time_excluded_from_parent(self):
        profiler, _clock = make_profiler(step=100)
        profiler.enter("propose")   # read 1
        profiler.enter("execute")   # read 2
        profiler.exit()             # read 3: child elapsed = 100
        profiler.exit()             # read 4: parent elapsed = 300, child 100
        stats = profiler.frames()
        assert stats[("propose", "execute")].host_ns == 100
        assert stats[("propose",)].host_ns == 200  # 300 elapsed - 100 child

    def test_nested_paths_interned_per_parent(self):
        profiler, _clock = make_profiler()
        for _ in range(3):
            profiler.enter("a")
            profiler.enter("b")
            profiler.exit()
            profiler.exit()
        stats = profiler.frames()
        assert stats[("a", "b")].calls == 3
        assert stats[("a",)].calls == 3

    def test_enter_handler_pushes_actor_and_handler_frames(self):
        profiler, _clock = make_profiler(step=100)
        profiler.enter_handler("r0", "on_message.Prepare")
        profiler.exit_handler()
        stats = profiler.frames()
        # The handler frame gets the self time; the actor frame is a pure
        # grouping node (all of its time lives in children).
        assert stats[("r0", "on_message.Prepare")].calls == 1
        assert stats[("r0", "on_message.Prepare")].host_ns == 100
        assert ("r0",) not in stats  # zero calls, zero time -> pruned

    def test_handler_elapsed_propagates_to_enclosing_scope(self):
        profiler, _clock = make_profiler(step=100)
        profiler.enter("event")                       # read 1
        profiler.enter_handler("r0", "on_start")      # read 2 (shared)
        profiler.exit_handler()                       # read 3
        profiler.exit()                               # read 4
        stats = profiler.frames()
        # event: elapsed 300, child (handler) elapsed 100 -> 200 self.
        assert stats[("event",)].host_ns == 200

    def test_event_aliases_are_the_same_mechanics(self):
        profiler, _clock = make_profiler(step=50)
        profiler.enter_event("Kernel.run")
        profiler.exit_event()
        assert profiler.frames()[("Kernel.run",)].host_ns == 50

    def test_stat_creates_and_caches_path(self):
        profiler, _clock = make_profiler()
        stat = profiler.stat(("r0", "send.Prepare.replica"))
        assert profiler.stat(("r0", "send.Prepare.replica")) is stat
        stat.add_cpu(1e-6)
        assert profiler.frames()[("r0", "send.Prepare.replica")].sim_cpu == 1e-6


class TestSampling:
    def test_sample_rows_are_sorted_and_advance_next_sample(self):
        profiler, _clock = make_profiler()
        profiler.register_actor("r1", "replica")
        profiler.register_actor("r0", "replica")
        profiler.stat(("r0", "send.X.replica")).add_cpu(2e-3)
        profiler.sample(0.5, events=10, heap=3, pool=2)
        assert profiler.next_sample == 0.5 + profiler.sample_interval
        names = [(actor, name) for _t, actor, name, _v in profiler.samples]
        assert names == [
            ("r0", "sim_cpu_ms"),
            ("r1", "sim_cpu_ms"),
            ("kernel", "events_processed"),
            ("kernel", "heap_size"),
            ("kernel", "pool_size"),
        ]
        values = {(a, n): v for _t, a, n, v in profiler.samples}
        assert values[("r0", "sim_cpu_ms")] == pytest.approx(2.0)
        assert values[("r1", "sim_cpu_ms")] == 0.0

    def test_counter_samples_adapts_rows(self):
        profiler, _clock = make_profiler()
        profiler.register_actor("r0", "replica")
        profiler.sample(0.25, events=1, heap=1, pool=0)
        rows = counter_samples(profiler)
        assert rows[0] == {
            "actor": "r0", "name": "sim_cpu_ms", "t": 0.25, "value": 0.0,
        }


class TestExport:
    COLLAPSED_LINE = re.compile(r"^\S+( \S+)* \d+$")

    def populated(self) -> SimProfiler:
        profiler, _clock = make_profiler(step=100)
        profiler.register_actor("r0", "replica")
        profiler.register_actor("c0", "client")
        profiler.stat(("r0", "send.AcceptBatch.replica")).add_cpu(5e-6)
        profiler.stat(("r0", "recv.ClientRequest.client")).add_cpu(3e-6)
        profiler.stat(("c0", "send.ClientRequest.replica")).add_cpu(1e-6)
        profiler.stat(("r0", "execute")).add_cpu(2e-3)
        profiler.enter("propose")
        profiler.exit()
        return profiler

    def test_collapsed_sim_lines_format_and_sorting(self):
        lines = collapsed_lines(self.populated(), metric="sim")
        assert lines == sorted(lines)
        for line in lines:
            assert self.COLLAPSED_LINE.match(line), line
        assert "r0;execute 2000000" in lines
        # The host-only frame carries zero sim ns and is dropped.
        assert not any(line.startswith("propose") for line in lines)

    def test_collapsed_host_metric(self):
        lines = collapsed_lines(self.populated(), metric="host")
        assert lines == ["propose 100"]

    def test_unknown_metric_raises(self):
        with pytest.raises(ValueError, match="unknown collapsed metric"):
            collapsed_lines(self.populated(), metric="wall")

    def test_write_collapsed_round_trip(self, tmp_path):
        path = write_collapsed(self.populated(), tmp_path / "flame.txt")
        text = path.read_text()
        assert text.endswith("\n")
        assert text.splitlines() == collapsed_lines(self.populated())

    def test_frame_rows_integer_nanoseconds(self):
        rows = {path: (calls, sim, host)
                for path, calls, sim, host in frame_rows(self.populated())}
        assert rows[("r0", "execute")] == (1, 2_000_000, 0)
        assert rows[("propose",)] == (1, 0, 100)


class TestAttribution:
    def test_classify_frame_components(self):
        actors = {"r0": "replica", "c0": "client"}
        assert classify_frame(("r0", "execute"), actors) == "E"
        assert classify_frame(("r0", "send.AcceptBatch.replica"), actors) == "m"
        assert classify_frame(("r0", "send.Reply.client"), actors) == "M"
        assert classify_frame(("c0", "send.ClientRequest.replica"), actors) == "M"
        assert classify_frame(("r0", "on_message.Prepare"), actors) == "other"

    def test_leaf_is_component(self):
        assert leaf_is_component(("r0", "execute"))
        assert leaf_is_component(("r0", "send.X.replica"))
        assert leaf_is_component(("r0", "recv.X.client"))
        assert not leaf_is_component(("r0", "on_message.X"))
        assert not leaf_is_component(("r0", "timer.fire"))

    def test_attribution_rolls_up_sim_cpu_only(self):
        profiler, _clock = make_profiler()
        profiler.register_actor("r0", "replica")
        profiler.register_actor("c0", "client")
        profiler.stat(("r0", "send.AcceptBatch.replica")).add_cpu(5e-6)
        profiler.stat(("r0", "recv.ClientRequest.client")).add_cpu(3e-6)
        profiler.stat(("r0", "execute")).add_cpu(2e-3)
        # A host-time scope sharing the "execute" leaf must not double in.
        profiler.enter("execute")
        profiler.exit()
        result = attribution(profiler)
        assert result["E"] == (1, pytest.approx(2e-3))
        assert result["m"] == (1, pytest.approx(5e-6))
        assert result["M"] == (1, pytest.approx(3e-6))
        assert result["other"] == (0, 0.0)


class TestNullProfiler:
    def test_disabled_and_inert(self):
        assert NULL_PROFILER.enabled is False
        assert isinstance(NULL_PROFILER, NullProfiler)
        NULL_PROFILER.enter("anything")
        NULL_PROFILER.exit()
        NULL_PROFILER.enter_handler("r0", "f")
        NULL_PROFILER.exit_handler()
        NULL_PROFILER.register_actor("r0", "replica")
        NULL_PROFILER.sample(1.0, 1, 1, 1)
        assert NULL_PROFILER.frames() == {}
        assert NULL_PROFILER.actors == {}
        assert NULL_PROFILER.samples == []
        assert NULL_PROFILER.actor_kind("r0") == "other"

    def test_stat_returns_shared_sink(self):
        sink = NULL_PROFILER.stat(("a", "b"))
        assert sink is NULL_PROFILER.stat(("c",))
        sink.add_cpu(1.0)  # harmless; nothing observable
        assert NULL_PROFILER.frames() == {}

    def test_next_sample_never_fires(self):
        assert NULL_PROFILER.next_sample == float("inf")
