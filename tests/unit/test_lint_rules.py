"""Per-rule unit tests: positive, negative and suppression fixtures.

Each fixture is a small source snippet checked through the real engine
(`LintEngine.check_source`), so suppression handling, layer
classification and import resolution are exercised exactly as they are
on the real tree.
"""

from __future__ import annotations

import pytest

from repro.lint import LintEngine

CORE = "repro/core/mod.py"
NET = "repro/net/mod.py"
OBS = "repro/obs/mod.py"
ANALYSIS = "repro/analysis/mod.py"


def lint(source: str, rel: str = CORE, select: list[str] | None = None):
    engine = LintEngine(select=select)
    return engine.check_source(source, rel)


def rule_ids(source: str, rel: str = CORE, select: list[str] | None = None):
    return [finding.rule for finding in lint(source, rel, select)]


# ------------------------------------------------------------------ DET001
class TestAmbientNondeterminism:
    def test_time_time_in_core_flagged(self):
        findings = lint("import time\n\nnow = time.time()\n")
        assert [f.rule for f in findings] == ["DET001"]
        assert findings[0].line == 3
        assert "time.time" in findings[0].message

    def test_random_module_function_flagged(self):
        assert rule_ids("import random\nx = random.randint(0, 5)\n") == ["DET001"]

    def test_from_import_alias_resolved(self):
        src = "from random import randint as ri\nx = ri(0, 5)\n"
        assert rule_ids(src) == ["DET001"]

    def test_datetime_now_flagged(self):
        src = "from datetime import datetime\nts = datetime.now()\n"
        assert rule_ids(src) == ["DET001"]

    @pytest.mark.parametrize("call", ["uuid.uuid4()", "os.urandom(8)"])
    def test_entropy_sources_flagged(self, call):
        assert rule_ids(f"import uuid, os\nx = {call}\n") == ["DET001"]

    def test_seeded_random_instance_allowed(self):
        src = "import random\nrng = random.Random('seed/1')\nx = rng.random()\n"
        assert rule_ids(src) == []

    def test_outside_deterministic_layers_allowed(self):
        src = "import time\nnow = time.time()\n"
        assert rule_ids(src, rel="repro/transport/mod.py") == []
        assert rule_ids(src, rel="repro/cli.py") == []

    @pytest.mark.parametrize(
        "layer", ["sim", "core", "net", "chaos", "election", "cluster"]
    )
    def test_applies_in_every_deterministic_layer(self, layer):
        src = "import time\nnow = time.time()\n"
        assert rule_ids(src, rel=f"repro/{layer}/mod.py") == ["DET001"]


# ------------------------------------------------------------------ DET002
class TestUnseededRng:
    def test_unseeded_flagged_everywhere(self):
        src = "import random\nrng = random.Random()\n"
        assert rule_ids(src, rel=ANALYSIS) == ["DET002"]

    def test_seeded_allowed(self):
        src = "import random\nrng = random.Random(42)\n"
        assert rule_ids(src, rel=ANALYSIS) == []

    def test_world_boundary_exempt(self):
        src = "import random\nrng = random.Random()\n"
        assert rule_ids(src, rel="repro/sim/world.py") == []


# ------------------------------------------------------------------ DET003
class TestHashOrderIteration:
    def test_for_over_set_call_flagged(self):
        assert rule_ids("for x in set(items):\n    emit(x)\n") == ["DET003"]

    def test_set_union_flagged(self):
        src = "for x in set(a) | set(b):\n    emit(x)\n"
        assert rule_ids(src) == ["DET003"]

    def test_attribute_union_with_set_literal_flagged(self):
        src = "for o in lock.readers | ({lock.writer} if lock.writer else set()):\n    pass\n"
        assert rule_ids(src) == ["DET003"]

    def test_comprehension_over_set_flagged(self):
        assert rule_ids("ys = [f(x) for x in {1, 2, 3}]\n") == ["DET003"]

    def test_sorted_wrapper_allowed(self):
        assert rule_ids("for x in sorted(set(items)):\n    emit(x)\n") == []

    def test_plain_list_iteration_allowed(self):
        assert rule_ids("for x in [1, 2]:\n    emit(x)\n") == []


# ------------------------------------------------------------------ DET004
class TestUnsortedJson:
    def test_dumps_without_sort_keys_flagged(self):
        src = "import json\nout = json.dumps({'a': 1})\n"
        assert rule_ids(src, rel=OBS) == ["DET004"]

    def test_dump_sort_keys_false_flagged(self):
        src = "import json\njson.dump(d, fh, sort_keys=False)\n"
        assert rule_ids(src, rel=OBS) == ["DET004"]

    def test_sort_keys_true_allowed(self):
        src = "import json\nout = json.dumps({'a': 1}, sort_keys=True)\n"
        assert rule_ids(src, rel=OBS) == []

    def test_forwarded_kwargs_not_flagged(self):
        src = "import json\nout = json.dumps(d, **kwargs)\n"
        assert rule_ids(src, rel=OBS) == []


# ------------------------------------------------------------------ MSG001
class TestMutableMessageDataclass:
    FROZEN = (
        "from dataclasses import dataclass\n\n"
        "@dataclass(frozen=True, slots=True)\n"
        "class Accept:\n"
        '    """Leader -> replicas: accept this value."""\n'
        "    value: int\n"
    )

    def test_frozen_slots_allowed(self):
        assert rule_ids(self.FROZEN, rel="repro/core/messages.py") == []

    def test_bare_dataclass_in_messages_module_flagged(self):
        src = "from dataclasses import dataclass\n\n@dataclass\nclass M:\n    x: int\n"
        findings = lint(src, rel="repro/core/messages.py")
        assert [f.rule for f in findings] == ["MSG001"]
        assert "frozen=True" in findings[0].message
        assert "slots=True" in findings[0].message

    def test_missing_slots_flagged(self):
        src = (
            "from dataclasses import dataclass\n\n"
            "@dataclass(frozen=True)\nclass M:\n    x: int\n"
        )
        findings = lint(src, rel="repro/core/messages.py")
        assert [f.rule for f in findings] == ["MSG001"]
        assert "slots=True" in findings[0].message
        assert "frozen=True" not in findings[0].message

    def test_direction_docstring_marks_message_outside_messages_py(self):
        src = (
            "from dataclasses import dataclass\n\n"
            "@dataclass(slots=True)\n"
            "class P1a:\n"
            '    """Prepare: leader -> acceptors."""\n'
            "    ballot: int\n"
        )
        assert rule_ids(src, rel=CORE) == ["MSG001"]

    def test_mutable_state_dataclass_allowed(self):
        src = (
            "from dataclasses import dataclass\n\n"
            "@dataclass(slots=True)\n"
            "class ExecutedTable:\n"
            '    """At-most-once table of executed requests."""\n'
            "    entries: dict\n"
        )
        assert rule_ids(src, rel=CORE) == []

    def test_outside_core_net_not_checked(self):
        src = "from dataclasses import dataclass\n\n@dataclass\nclass M:\n    x: int\n"
        assert rule_ids(src, rel="repro/obs/messages.py") == []


# ------------------------------------------------------------------ MSG002
class TestHandlerMutatesMessage:
    def test_assignment_to_message_param_flagged(self):
        src = (
            "class Replica:\n"
            "    def _on_accept(self, src, msg):\n"
            "        msg.ballot = 7\n"
        )
        findings = lint(src)
        assert [f.rule for f in findings] == ["MSG002"]
        assert "'msg'" in findings[0].message

    def test_nested_attribute_assignment_flagged(self):
        src = (
            "def handle_request(ctx, request):\n"
            "    request.header.seen = True\n"
        )
        assert rule_ids(src) == ["MSG002"]

    def test_augmented_assignment_flagged(self):
        src = "def on_reply(self, src, msg):\n    msg.count += 1\n"
        assert rule_ids(src) == ["MSG002"]

    def test_self_attribute_assignment_allowed(self):
        src = (
            "class Replica:\n"
            "    def _on_accept(self, src, msg):\n"
            "        self.last = msg.ballot\n"
        )
        assert rule_ids(src) == []

    def test_local_variable_attribute_allowed(self):
        src = (
            "def on_commit(self, src, msg):\n"
            "    entry = make_entry()\n"
            "    entry.value = msg.value\n"
        )
        assert rule_ids(src) == []

    def test_non_handler_not_checked(self):
        src = "def rebuild(self, snapshot):\n    snapshot.count = 1\n"
        assert rule_ids(src) == []


# ---------------------------------------------------------------- PROTO001
class TestCoreLayering:
    def test_transport_import_flagged(self):
        src = "from repro.transport.codec import encode_frame\n"
        assert rule_ids(src) == ["PROTO001"]

    def test_socket_import_flagged(self):
        assert rule_ids("import socket\n") == ["PROTO001"]

    def test_relative_layering_unaffected(self):
        src = "from repro.core.messages import Accept\n"
        assert rule_ids(src) == []

    def test_print_flagged_in_core(self):
        assert rule_ids("print('debug')\n") == ["PROTO001"]

    def test_open_flagged_in_election(self):
        src = "fh = open('/tmp/x')\n"
        assert rule_ids(src, rel="repro/election/mod.py") == ["PROTO001"]

    def test_transport_layer_itself_allowed(self):
        src = "import socket\nprint('server up')\n"
        assert rule_ids(src, rel="repro/transport/tcp.py") == []


# ---------------------------------------------------------------- PROTO002
class TestStableStoreBypass:
    def test_subscript_write_flagged(self):
        src = "self.stable['promised'] = ballot\n"
        assert rule_ids(src) == ["PROTO002"]

    def test_augassign_flagged(self):
        src = "self.stable['round'] += 1\n"
        assert rule_ids(src) == ["PROTO002"]

    def test_delete_flagged(self):
        src = "del replica.stable['checkpoint']\n"
        assert rule_ids(src) == ["PROTO002"]

    @pytest.mark.parametrize(
        "call",
        [
            "self.stable.update({'a': 1})",
            "self.stable.pop('a')",
            "self.stable.clear()",
            "self.stable.setdefault('a', [])",
        ],
    )
    def test_mutator_calls_flagged(self, call):
        assert rule_ids(f"{call}\n") == ["PROTO002"]

    def test_rebinding_stable_flagged(self):
        assert rule_ids("self.stable = {}\n") == ["PROTO002"]

    def test_store_aliasing_flagged(self):
        src = "replica.store = other.store\n"
        assert rule_ids(src) == ["PROTO002"]

    def test_store_construction_allowed(self):
        src = (
            "from repro.storage.store import StableStore\n"
            "self.store = StableStore(self)\n"
        )
        assert rule_ids(src) == []

    def test_reads_allowed(self):
        src = "promised = self.stable.get('promised')\nx = self.stable['round']\n"
        assert rule_ids(src) == []

    def test_store_api_calls_allowed(self):
        src = "self.store.accept(pn, value)\nself.store.flush(cb)\n"
        assert rule_ids(src) == []

    def test_storage_layer_exempt(self):
        src = "self.stable['promised'] = ballot\n"
        assert rule_ids(src, rel="repro/storage/store.py") == []

    def test_sim_layer_exempt(self):
        src = "self.stable = {}\n"
        assert rule_ids(src, rel="repro/sim/process.py") == []

    def test_cluster_layer_checked(self):
        src = "replica.stable['promised'] = ballot\n"
        assert rule_ids(src, rel="repro/cluster/mod.py") == ["PROTO002"]

    def test_suppression_honored(self):
        src = (
            "self.stable['promised'] = b  "
            "# lint: ignore[PROTO002] -- legacy fixture\n"
        )
        assert rule_ids(src) == []


# ------------------------------------------------------------------ OBS001
class TestMetricNameConvention:
    def test_literal_name_allowed(self):
        src = "self.metrics.counter('net.drop.partition').inc()\n"
        assert rule_ids(src, rel=NET) == []

    def test_fstring_with_literal_head_allowed(self):
        src = "metrics.counter(f'msg.send.{type_name}').inc()\n"
        assert rule_ids(src, rel=NET) == []

    def test_variable_name_flagged(self):
        src = "metrics.counter(name).inc()\n"
        assert rule_ids(src, rel=NET) == ["OBS001"]

    def test_fstring_without_literal_head_flagged(self):
        src = "metrics.counter(f'{prefix}.sends').inc()\n"
        assert rule_ids(src, rel=NET) == ["OBS001"]

    def test_uppercase_literal_flagged(self):
        src = "metrics.counter('Net.Drops').inc()\n"
        assert rule_ids(src, rel=NET) == ["OBS001"]

    def test_registry_module_exempt(self):
        src = "self._registry.counter(f'{self._prefix}.{name}')\n"
        assert rule_ids(src, rel="repro/obs/registry.py") == []


# ------------------------------------------------------------------ OBS002
class TestProfilerScopeConvention:
    def test_balanced_literal_scope_allowed(self):
        src = (
            "def f(self):\n"
            "    self.profiler.enter('execute')\n"
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        self.profiler.exit()\n"
        )
        assert rule_ids(src) == []

    def test_computed_label_flagged(self):
        src = (
            "def f(self, label):\n"
            "    self.profiler.enter(label)\n"
            "    self.profiler.exit()\n"
        )
        assert rule_ids(src) == ["OBS002"]

    def test_fstring_label_flagged(self):
        src = (
            "def f(prof, kind):\n"
            "    prof.enter(f'execute.{kind}')\n"
            "    prof.exit()\n"
        )
        assert rule_ids(src) == ["OBS002"]

    def test_uppercase_label_flagged(self):
        src = "def f(prof):\n    prof.enter('Execute')\n    prof.exit()\n"
        assert rule_ids(src) == ["OBS002"]

    def test_unbalanced_enter_flagged(self):
        src = "def f(profiler):\n    profiler.enter('apply')\n    work()\n"
        assert rule_ids(src) == ["OBS002"]

    def test_unbalanced_exit_flagged(self):
        src = "def f(profiler):\n    profiler.exit()\n"
        assert rule_ids(src) == ["OBS002"]

    def test_balance_is_per_function_scope(self):
        # An enter in one function cannot be closed by an exit in another.
        src = (
            "def opens(prof):\n"
            "    prof.enter('propose')\n"
            "\n"
            "def closes(prof):\n"
            "    prof.exit()\n"
        )
        assert rule_ids(src) == ["OBS002", "OBS002"]

    def test_nested_function_scopes_independent(self):
        src = (
            "def outer(prof):\n"
            "    prof.enter('txn')\n"
            "    def inner():\n"
            "        prof.enter('read')\n"
            "        prof.exit()\n"
            "    try:\n"
            "        inner()\n"
            "    finally:\n"
            "        prof.exit()\n"
        )
        assert rule_ids(src) == []

    def test_event_aliases_not_matched(self):
        # The kernel's dynamic-label event frames use the enter_event /
        # exit_event aliases on purpose; OBS002 keys only on .enter/.exit.
        src = (
            "def loop(profiler, fn):\n"
            "    profiler.enter_event(fn.__qualname__)\n"
            "    fn()\n"
            "    profiler.exit_event()\n"
        )
        assert rule_ids(src) == []

    def test_non_profiler_receiver_not_matched(self):
        src = "def f(ctx):\n    ctx.enter(compute_name())\n"
        assert rule_ids(src) == []

    def test_profiler_module_itself_exempt(self):
        src = (
            "def enter(self, label):\n"
            "    self._stack.append(label)\n"
            "\n"
            "def f(profiler, label):\n"
            "    profiler.enter(label)\n"
        )
        assert rule_ids(src, rel="repro/obs/prof/profiler.py") == []


# ------------------------------------------------------------- suppressions
class TestSuppressions:
    def test_reasoned_suppression_silences_finding(self):
        src = (
            "import time\n"
            "now = time.time()  # lint: ignore[DET001] -- wall clock is display-only here\n"
        )
        assert rule_ids(src) == []

    def test_suppression_without_reason_is_its_own_finding(self):
        src = "import time\nnow = time.time()  # lint: ignore[DET001]\n"
        ids = rule_ids(src)
        assert ids == ["LINT001"]

    def test_unknown_rule_in_suppression_flagged(self):
        src = "x = 1  # lint: ignore[NOPE999] -- because\n"
        assert rule_ids(src) == ["LINT001"]

    def test_unused_suppression_flagged(self):
        src = "x = 1  # lint: ignore[DET001] -- leftover\n"
        assert rule_ids(src) == ["LINT002"]

    def test_wrong_rule_does_not_suppress(self):
        src = (
            "import time\n"
            "now = time.time()  # lint: ignore[DET004] -- wrong rule\n"
        )
        ids = rule_ids(src)
        assert "DET001" in ids  # the finding survives

    def test_wildcard_suppression(self):
        src = (
            "import time\n"
            "now = time.time()  # lint: ignore[*] -- fixture exercising everything\n"
        )
        assert rule_ids(src) == []

    def test_docstring_mentioning_syntax_is_not_a_suppression(self):
        src = '"""Docs: write # lint: ignore[DET001] to suppress."""\nx = 1\n'
        assert rule_ids(src) == []


# ------------------------------------------------------------------ LINT000
class TestParseErrors:
    def test_syntax_error_reported_not_raised(self):
        findings = lint("def broken(:\n")
        assert [f.rule for f in findings] == ["LINT000"]
        assert "syntax error" in findings[0].message
