"""Engine-level tests: discovery, baseline workflow, reporters, CLI."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import Baseline, LintEngine, all_rules, render_json, render_text

DIRTY = "import time\n\nnow = time.time()\nlater = time.time()\n"


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


@pytest.fixture
def dirty_tree(tmp_path):
    return write_tree(
        tmp_path / "tree",
        {
            "repro/core/mod.py": DIRTY,
            "repro/obs/export.py": "import json\nout = json.dumps({'a': 1})\n",
            "repro/analysis/clean.py": "def f():\n    return 1\n",
        },
    )


class TestDiscovery:
    def test_directory_scan_counts_files(self, dirty_tree):
        result = LintEngine().check_paths([dirty_tree])
        assert result.files == 3
        assert [f.rule for f in result.findings] == ["DET001", "DET001", "DET004"]

    def test_findings_sorted_by_location(self, dirty_tree):
        result = LintEngine().check_paths([dirty_tree])
        assert [f.sort_key for f in result.findings] == sorted(
            f.sort_key for f in result.findings
        )

    def test_explicit_file_keeps_layer(self, dirty_tree):
        target = dirty_tree / "repro" / "core" / "mod.py"
        result = LintEngine().check_paths([target])
        assert [f.rule for f in result.findings] == ["DET001", "DET001"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            LintEngine().check_paths([tmp_path / "nope"])

    def test_pycache_and_egg_info_skipped(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/__pycache__/mod.py": DIRTY.replace("core", "x"),
                "repro.egg-info/mod.py": DIRTY,
                "repro/core/ok.py": "x = 1\n",
            },
        )
        result = LintEngine().check_paths([tmp_path])
        assert result.files == 1


class TestSelect:
    def test_select_limits_rules(self, dirty_tree):
        result = LintEngine(select=["DET004"]).check_paths([dirty_tree])
        assert [f.rule for f in result.findings] == ["DET004"]

    def test_unknown_select_raises(self):
        with pytest.raises(ValueError, match="NOPE999"):
            LintEngine(select=["NOPE999"])


class TestBaseline:
    def test_roundtrip(self, tmp_path, dirty_tree):
        first = LintEngine().check_paths([dirty_tree])
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_fingerprints(first.fingerprints).write(baseline_path)

        gated = LintEngine(baseline=Baseline.load(baseline_path))
        result = gated.check_paths([dirty_tree])
        assert result.ok
        assert result.baselined == 3

    def test_new_findings_escape_baseline(self, tmp_path, dirty_tree):
        first = LintEngine().check_paths([dirty_tree])
        baseline = Baseline.from_fingerprints(first.fingerprints)

        extra = dirty_tree / "repro" / "core" / "fresh.py"
        extra.write_text("import uuid\nx = uuid.uuid4()\n", encoding="utf-8")
        result = LintEngine(baseline=baseline).check_paths([dirty_tree])
        assert [f.rule for f in result.findings] == ["DET001"]
        assert result.findings[0].path == "repro/core/fresh.py"

    def test_line_number_drift_stays_baselined(self, tmp_path, dirty_tree):
        first = LintEngine().check_paths([dirty_tree])
        baseline = Baseline.from_fingerprints(first.fingerprints)

        target = dirty_tree / "repro" / "core" / "mod.py"
        target.write_text("# a comment pushing lines down\n" + DIRTY, encoding="utf-8")
        result = LintEngine(baseline=baseline).check_paths([dirty_tree])
        assert result.ok

    def test_duplicate_fingerprints_counted(self, dirty_tree):
        # The two identical-text time.time() lines differ, so the tree has
        # two distinct fingerprints and one shared one... assert exact math:
        # baseline with ONE of two identical findings keeps the other.
        first = LintEngine().check_paths([dirty_tree])
        same = [fp for fp in first.fingerprints if "DET001" in fp]
        assert len(same) == 2
        baseline = Baseline.from_fingerprints(same[:1])
        result = LintEngine(baseline=baseline).check_paths([dirty_tree])
        assert sum(1 for f in result.findings if f.rule == "DET001") == 1

    def test_bad_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestReporters:
    def test_text_report_names_rule_file_line(self, dirty_tree):
        result = LintEngine().check_paths([dirty_tree])
        text = render_text(result)
        assert "repro/core/mod.py:3:7: DET001" in text
        assert "3 finding(s)" in text

    def test_json_report_is_valid_and_sorted(self, dirty_tree):
        result = LintEngine().check_paths([dirty_tree])
        document = json.loads(render_json(result))
        assert document["summary"]["findings"] == 3
        assert document["findings"][0]["rule"] == "DET001"
        assert document["findings"][0]["path"] == "repro/core/mod.py"

    def test_json_reports_byte_identical_across_runs(self, dirty_tree):
        first = render_json(LintEngine().check_paths([dirty_tree]))
        second = render_json(LintEngine().check_paths([dirty_tree]))
        assert first == second


class TestRuleCatalogue:
    def test_every_rule_documents_itself(self):
        rules = all_rules()
        assert len(rules) >= 8
        for rule in rules:
            assert rule.rule_id
            assert rule.summary
            assert rule.rationale

    def test_rule_ids_unique_and_sorted(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        tree = write_tree(tmp_path, {"repro/core/ok.py": "x = 1\n"})
        assert main(["lint", str(tree)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_names_rule_file_line(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "repro/core/mod.py:3" in out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "missing")]) == 2

    def test_json_format(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["errors"] == 3

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET004", "MSG001", "PROTO001", "OBS001"):
            assert rule_id in out

    def test_write_then_gate_on_baseline(self, tmp_path, dirty_tree, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(dirty_tree), "--write-baseline", str(baseline)]) == 0
        assert baseline.exists()
        assert main(["lint", str(dirty_tree), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "3 baselined" in out

    def test_select_flag(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree), "--select", "DET004"]) == 1
        out = capsys.readouterr().out
        assert "DET004" in out
        assert "DET001" not in out


class TestHashSeedDeterminism:
    def test_json_report_byte_identical_across_hash_seeds(self, dirty_tree):
        """The linter holds itself to DET003/DET004: reports may not vary
        with PYTHONHASHSEED (two seeds, two subprocesses, byte compare)."""
        src_dir = Path(__file__).resolve().parents[2] / "src"
        outputs = []
        for seed in ("1", "2"):
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "lint", str(dirty_tree),
                 "--format", "json"],
                capture_output=True,
                env={"PYTHONPATH": str(src_dir), "PYTHONHASHSEED": seed},
            )
            assert proc.returncode == 1, proc.stderr.decode()
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
