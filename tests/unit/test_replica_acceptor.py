"""Unit tests for the replica's acceptor role and helpers, driven by
injected protocol messages (no clients)."""

from __future__ import annotations

import pytest

from repro.core.ballot import Ballot, ProposalNumber
from repro.core.config import ReplicaConfig
from repro.core.messages import (
    AcceptBatch,
    AcceptedBatch,
    ChosenBatch,
    Nack,
    Prepare,
    Promise,
    Proposal,
)
from repro.core.replica import Replica, ReplicaRole
from repro.core.requests import ClientRequest, RequestId
from repro.core.state import StatePayload
from repro.election.static import ManualElector
from repro.services.counter import CounterService
from repro.sim.kernel import Kernel
from repro.sim.trace import TraceRecorder
from repro.sim.world import World
from repro.types import RequestKind, StateTransferMode

PEERS = ("r0", "r1", "r2")


def make_follower(seed=0):
    """A single follower replica r1 in a world with message sinks."""
    kernel = Kernel(seed=seed)
    trace = TraceRecorder()
    world = World(kernel, trace=trace)
    config = ReplicaConfig(peers=PEERS)
    replica = Replica("r1", config, CounterService, ManualElector(None))
    world.add(replica)
    from repro.sim.process import Process

    for pid in ("r0", "r2", "c0"):
        world.add(Process(pid))
    world.start()
    return kernel, world, trace, replica


def proposal(amount: int, client="c0", seq=0) -> Proposal:
    request = ClientRequest(
        RequestId(client, seq), RequestKind.WRITE, op=("add", amount)
    )
    return Proposal(
        requests=(request,),
        payload=StatePayload(StateTransferMode.DELTA, (amount,)),
        reply=amount,
    )


def sent_to(trace, dst, msg_type):
    return [e.detail for e in trace.of_kind("send") if e.dst == dst and isinstance(e.detail, msg_type)]


class TestAcceptPath:
    def test_accept_batch_acknowledged_and_logged(self):
        kernel, _world, trace, replica = make_follower()
        ballot = Ballot(0, "r0")
        batch = AcceptBatch(ballot=ballot, entries=((1, proposal(5)),))
        replica.on_message("r0", batch)
        kernel.run(until=0.1)
        acks = sent_to(trace, "r0", AcceptedBatch)
        assert len(acks) == 1 and acks[0].instances == (1,)
        assert replica.log.accepted_entry(1) is not None
        assert replica.promised == ballot

    def test_stale_ballot_nacked(self):
        kernel, _world, trace, replica = make_follower()
        replica.on_message("r0", Prepare(ballot=Ballot(5, "r2"), gaps=(), from_instance=1))
        stale = AcceptBatch(ballot=Ballot(1, "r0"), entries=((1, proposal(5)),))
        replica.on_message("r0", stale)
        kernel.run(until=0.1)
        nacks = sent_to(trace, "r0", Nack)
        assert len(nacks) == 1
        assert nacks[0].promised == Ballot(5, "r2")
        assert replica.log.accepted_entry(1) is None

    def test_equal_ballot_accepted(self):
        kernel, _world, trace, replica = make_follower()
        ballot = Ballot(3, "r0")
        replica.on_message("r0", Prepare(ballot=ballot, gaps=(), from_instance=1))
        replica.on_message("r0", AcceptBatch(ballot=ballot, entries=((1, proposal(1)),)))
        kernel.run(until=0.1)
        assert sent_to(trace, "r0", AcceptedBatch)

    def test_chosen_batch_applies_in_order(self):
        kernel, _world, _trace, replica = make_follower()
        ballot = Ballot(0, "r0")
        items = tuple((i, proposal(i, seq=i - 1)) for i in (1, 2, 3))
        replica.on_message("r0", ChosenBatch(items=items, ballot=ballot))
        kernel.run(until=0.1)
        assert replica.applied == 3
        assert replica.service.value == 1 + 2 + 3

    def test_chosen_gap_stalls_application(self):
        kernel, _world, _trace, replica = make_follower()
        ballot = Ballot(0, "r0")
        replica.on_message("r0", ChosenBatch(items=((2, proposal(2)),), ballot=ballot))
        kernel.run(until=0.1)
        assert replica.applied == 0  # instance 1 missing
        replica.on_message("r0", ChosenBatch(items=((1, proposal(1, seq=9)),), ballot=ballot))
        kernel.run(until=0.1)
        assert replica.applied == 2

    def test_chosen_triggers_catch_up_query(self):
        from repro.core.messages import CatchUpQuery

        kernel, _world, trace, replica = make_follower()
        ballot = Ballot(0, "r0")
        replica.on_message("r0", ChosenBatch(items=((5, proposal(5)),), ballot=ballot))
        kernel.run(until=0.1)
        queries = sent_to(trace, "r0", CatchUpQuery)
        assert len(queries) == 1 and queries[0].from_instance == 0

    def test_duplicate_chosen_idempotent(self):
        kernel, _world, _trace, replica = make_follower()
        ballot = Ballot(0, "r0")
        msg = ChosenBatch(items=((1, proposal(7)),), ballot=ballot)
        replica.on_message("r0", msg)
        replica.on_message("r0", msg)
        kernel.run(until=0.1)
        assert replica.service.value == 7  # applied once


class TestPreparePath:
    def test_promise_reports_accepted_entries(self):
        kernel, _world, trace, replica = make_follower()
        old = Ballot(0, "r0")
        replica.on_message(
            "r0",
            AcceptBatch(ballot=old, entries=((1, proposal(1)), (2, proposal(2, seq=1)))),
        )
        new = Ballot(1, "r2")
        replica.on_message("r2", Prepare(ballot=new, gaps=(), from_instance=1))
        kernel.run(until=0.1)
        promises = sent_to(trace, "r2", Promise)
        assert len(promises) == 1
        promise = promises[0]
        assert {e.pn.instance for e in promise.entries} == {1, 2}
        assert promise.ballot == new
        assert replica.promised == new

    def test_promise_includes_latest_state(self):
        kernel, _world, trace, replica = make_follower()
        ballot = Ballot(0, "r0")
        replica.on_message("r0", ChosenBatch(items=((1, proposal(9)),), ballot=ballot))
        replica.on_message("r2", Prepare(ballot=Ballot(1, "r2"), gaps=(), from_instance=2))
        kernel.run(until=0.1)
        (promise,) = sent_to(trace, "r2", Promise)
        assert promise.latest is not None
        instance, (service_snap, _executed) = promise.latest
        assert instance == 1 and service_snap == 9

    def test_lower_prepare_nacked(self):
        kernel, _world, trace, replica = make_follower()
        replica.on_message("r2", Prepare(ballot=Ballot(5, "r2"), gaps=(), from_instance=1))
        replica.on_message("r0", Prepare(ballot=Ballot(1, "r0"), gaps=(), from_instance=1))
        kernel.run(until=0.1)
        assert sent_to(trace, "r0", Nack)

    def test_chosen_values_reported_in_promise(self):
        # A replica that learned a decision must surface it to new leaders.
        kernel, _world, trace, replica = make_follower()
        replica.on_message(
            "r0", ChosenBatch(items=((1, proposal(4)),), ballot=Ballot(0, "r0"))
        )
        replica.on_message("r2", Prepare(ballot=Ballot(1, "r2"), gaps=(1,), from_instance=2))
        kernel.run(until=0.1)
        (promise,) = sent_to(trace, "r2", Promise)
        assert {e.pn.instance for e in promise.entries} == {1}


class TestStableStorage:
    def test_promised_ballot_survives_crash(self):
        kernel, world, _trace, replica = make_follower()
        ballot = Ballot(7, "r0")
        replica.on_message("r0", Prepare(ballot=ballot, gaps=(), from_instance=1))
        kernel.run(until=0.1)
        world.crash("r1")
        world.recover("r1")
        assert replica.promised == ballot

    def test_service_state_rebuilt_from_checkpoint_and_log(self):
        kernel, world, _trace, replica = make_follower()
        ballot = Ballot(0, "r0")
        items = tuple((i, proposal(i, seq=i - 1)) for i in (1, 2, 3))
        replica.on_message("r0", ChosenBatch(items=items, ballot=ballot))
        kernel.run(until=0.1)
        assert replica.service.value == 6
        world.crash("r1")
        world.recover("r1")
        assert replica.service.value == 6
        assert replica.applied == 3

    def test_max_round_survives_crash(self):
        kernel, world, _trace, replica = make_follower()
        replica.on_message("r0", Prepare(ballot=Ballot(9, "r0"), gaps=(), from_instance=1))
        kernel.run(until=0.1)
        world.crash("r1")
        world.recover("r1")
        assert replica.max_round_seen == 9
