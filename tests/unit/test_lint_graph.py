"""Unit tests for the whole-program analysis layer: facts, index, cache,
call graph, and the v2 (symbol-based) baseline fingerprints."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import Baseline, LintEngine, render_json
from repro.lint.context import FileContext
from repro.lint.graph.callgraph import CallGraph
from repro.lint.graph.facts import FileFacts, extract_facts, module_of
from repro.lint.graph.index import IndexCache, ProjectIndex


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


def parse(source: str, rel: str) -> FileContext:
    return FileContext.parse(source, rel)


def build_index(files: dict[str, str], cache: IndexCache | None = None) -> ProjectIndex:
    contexts = {rel: parse(source, rel) for rel, source in files.items()}
    return ProjectIndex.build(contexts, cache)


NODE = """\
from repro.core.messages import Ping, Pong
from repro.core.store import Store


class Node:
    def __init__(self) -> None:
        self.store = Store()

    def send(self, dst: int, msg: object) -> None:
        del dst, msg

    def on_message(self, src: int, msg: object) -> None:
        if isinstance(msg, Ping):
            self._on_ping(src, msg)
        elif isinstance(msg, Pong):
            self._on_pong(src, msg)

    def _on_ping(self, src: int, msg: Ping) -> None:
        self.store.accept(msg.seq)
        if self.store.needs_barrier:
            self.store.flush(lambda: self.send(src, Pong(seq=msg.seq)))
        else:
            self.send(src, Pong(seq=msg.seq))

    def _on_pong(self, src: int, msg: Pong) -> None:
        del src
        self.helper(msg.seq)

    def helper(self, seq: int) -> int:
        return seq * 2

    def start(self) -> None:
        self.send(0, Ping(seq=1))
"""

MESSAGES = """\
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Ping:
    seq: int


@dataclass(frozen=True, slots=True)
class Pong:
    seq: int
"""

STORE = """\
class Store:
    def __init__(self) -> None:
        self.rows: list[int] = []
        self.needs_barrier = True

    def accept(self, seq: int) -> None:
        self.rows.append(seq)

    def flush(self, callback) -> None:
        callback()
"""

FIXTURE = {
    "repro/core/messages.py": MESSAGES,
    "repro/core/node.py": NODE,
    "repro/core/store.py": STORE,
}


class TestFacts:
    def test_module_of(self):
        assert module_of("repro/core/replica.py") == "repro.core.replica"
        assert module_of("repro/core/__init__.py") == "repro.core"
        assert module_of("mod.py") == "mod"

    def test_handler_and_dispatch_extraction(self):
        facts = extract_facts(parse(NODE, "repro/core/node.py"))
        on_message = facts.functions["Node.on_message"]
        assert on_message.handler
        assert on_message.handled == (
            "repro.core.messages.Ping",
            "repro.core.messages.Pong",
        )
        assert not facts.functions["Node.helper"].handler

    def test_sends_and_flush_callback_attribution(self):
        facts = extract_facts(parse(NODE, "repro/core/node.py"))
        on_ping = facts.functions["Node._on_ping"]
        # Both the flush-callback send and the else-branch send belong to
        # _on_ping, and both resolve the Pong constructor.
        assert [send.msg for send in on_ping.sends] == [
            "repro.core.messages.Pong",
            "repro.core.messages.Pong",
        ]
        assert on_ping.barrier
        assert on_ping.stable_calls == (("accept", 19),)

    def test_param_reads_and_annotations(self):
        facts = extract_facts(parse(NODE, "repro/core/node.py"))
        on_pong = facts.functions["Node._on_pong"]
        assert ("msg", "repro.core.messages.Pong") in on_pong.params
        assert ("msg", "seq", 27) in on_pong.reads

    def test_ambient_detection(self):
        source = "import time\n\n\ndef now():\n    return time.time()\n"
        facts = extract_facts(parse(source, "repro/util/clock.py"))
        assert facts.functions["now"].ambient == (("time.time", 5),)

    def test_local_names_qualified_with_module(self):
        source = (
            "from dataclasses import dataclass\n\n\n"
            "@dataclass(frozen=True, slots=True)\n"
            "class Local:\n"
            "    x: int\n\n\n"
            "def make():\n"
            "    return Local(x=1)\n"
        )
        facts = extract_facts(parse(source, "repro/core/mod.py"))
        targets = [c.target for c in facts.functions["make"].calls]
        assert "repro.core.mod.Local" in targets

    def test_json_roundtrip_is_lossless(self):
        for rel, source in FIXTURE.items():
            facts = extract_facts(parse(source, rel))
            restored = FileFacts.from_json(json.loads(json.dumps(facts.to_json())))
            assert restored == facts

    def test_message_classification(self):
        facts = extract_facts(parse(MESSAGES, "repro/core/messages.py"))
        assert facts.classes["Ping"].is_message
        assert facts.classes["Ping"].frozen
        assert facts.classes["Ping"].fields == ("seq",)


class TestProjectIndex:
    def test_function_lookup_module_and_method(self):
        index = build_index(FIXTURE)
        assert index.function("repro.core.node.Node._on_ping") is not None
        assert index.function("repro.core.node.Node.missing") is None
        facts, fn = index.function("repro.core.node.Node.helper")
        assert facts.rel == "repro/core/node.py"
        assert fn.name == "helper"

    def test_resolve_symbol_chases_reexports(self):
        files = dict(FIXTURE)
        files["repro/core/__init__.py"] = "from repro.core.messages import Ping\n"
        files["repro/api.py"] = "from repro.core import Ping\n"
        index = build_index(files)
        assert index.resolve_symbol("repro.api.Ping") == "repro.core.messages.Ping"

    def test_find_method_walks_bases(self):
        files = dict(FIXTURE)
        files["repro/core/subnode.py"] = (
            "from repro.core.node import Node\n\n\n"
            "class SubNode(Node):\n"
            "    def extra(self) -> None:\n"
            "        pass\n"
        )
        index = build_index(files)
        assert (
            index.find_method("repro.core.subnode.SubNode", "helper")
            == "repro.core.node.Node.helper"
        )

    def test_attr_type_wiring(self):
        index = build_index(FIXTURE)
        assert (
            index.attr_type("repro.core.node.Node", "store")
            == "repro.core.store.Store"
        )

    def test_message_classes_enumeration(self):
        index = build_index(FIXTURE)
        assert sorted(index.message_classes()) == [
            "repro.core.messages.Ping",
            "repro.core.messages.Pong",
        ]


class TestCallGraph:
    @pytest.fixture
    def graph(self):
        return CallGraph.build(build_index(FIXTURE))

    def test_self_method_edges(self, graph):
        callees = [c for c, _ in graph.callees("repro.core.node.Node.on_message")]
        assert "repro.core.node.Node._on_ping" in callees
        assert "repro.core.node.Node._on_pong" in callees

    def test_attr_method_edges(self, graph):
        callees = [c for c, _ in graph.callees("repro.core.node.Node._on_ping")]
        assert "repro.core.store.Store.accept" in callees
        assert "repro.core.store.Store.flush" in callees

    def test_constructor_edges(self, graph):
        callees = [c for c, _ in graph.callees("repro.core.node.Node.__init__")]
        assert "repro.core.store.Store.__init__" in callees

    def test_reverse_edges(self, graph):
        callers = graph.callers("repro.core.node.Node.helper")
        assert callers == ("repro.core.node.Node._on_pong",)

    def test_shortest_path_and_rendering(self, graph):
        path = graph.shortest_path(
            "repro.core.node.Node.on_message",
            {"repro.core.node.Node.helper"},
        )
        assert [node for node, _ in path] == [
            "repro.core.node.Node.on_message",
            "repro.core.node.Node._on_pong",
            "repro.core.node.Node.helper",
        ]
        rendered = graph.render_path(path)
        assert rendered[0].startswith("repro.core.node.Node.on_message (repro/core/node.py:")
        assert rendered[-1].endswith(")")

    def test_reachability_respects_blocked_nodes(self, graph):
        blocked = frozenset({"repro.core.node.Node._on_pong"})
        reach = graph.reachable_from(
            ["repro.core.node.Node.on_message"], blocked=blocked
        )
        assert "repro.core.node.Node.helper" not in reach
        assert "repro.core.node.Node._on_ping" in reach


class TestIndexCache:
    def test_cold_run_reindexes_everything(self, tmp_path):
        cache = IndexCache.load(tmp_path / "cache.json")
        index = build_index(FIXTURE, cache)
        assert sorted(index.reindexed) == sorted(FIXTURE)
        assert (tmp_path / "cache.json").exists()

    def test_warm_run_reindexes_nothing(self, tmp_path):
        path = tmp_path / "cache.json"
        build_index(FIXTURE, IndexCache.load(path))
        warm = build_index(FIXTURE, IndexCache.load(path))
        assert warm.reindexed == ()

    def test_edit_reindexes_only_that_file(self, tmp_path):
        path = tmp_path / "cache.json"
        build_index(FIXTURE, IndexCache.load(path))
        edited = dict(FIXTURE)
        edited["repro/core/store.py"] += "\n# trailing comment\n"
        warm = build_index(edited, IndexCache.load(path))
        assert warm.reindexed == ("repro/core/store.py",)

    def test_warm_facts_equal_cold_facts(self, tmp_path):
        path = tmp_path / "cache.json"
        cold = build_index(FIXTURE, IndexCache.load(path))
        warm = build_index(FIXTURE, IndexCache.load(path))
        assert warm.files == cold.files

    def test_corrupt_cache_treated_as_cold(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{ not json", encoding="utf-8")
        index = build_index(FIXTURE, IndexCache.load(path))
        assert sorted(index.reindexed) == sorted(FIXTURE)

    def test_version_mismatch_treated_as_cold(self, tmp_path):
        path = tmp_path / "cache.json"
        build_index(FIXTURE, IndexCache.load(path))
        document = json.loads(path.read_text(encoding="utf-8"))
        document["facts_version"] = -1
        path.write_text(json.dumps(document), encoding="utf-8")
        index = build_index(FIXTURE, IndexCache.load(path))
        assert sorted(index.reindexed) == sorted(FIXTURE)

    def test_deleted_files_dropped_from_cache(self, tmp_path):
        path = tmp_path / "cache.json"
        build_index(FIXTURE, IndexCache.load(path))
        smaller = {k: v for k, v in FIXTURE.items() if "store" not in k}
        build_index(smaller, IndexCache.load(path))
        document = json.loads(path.read_text(encoding="utf-8"))
        assert "repro/core/store.py" not in document["files"]

    def test_cached_engine_report_byte_identical_to_cold(self, tmp_path):
        tree = write_tree(tmp_path / "tree", FIXTURE)
        cache = tmp_path / "cache.json"
        cold = render_json(LintEngine().check_paths([tree], cache_path=cache))
        warm = render_json(LintEngine().check_paths([tree], cache_path=cache))
        assert cold == warm


class TestSymbolAt:
    def test_innermost_symbol_wins(self):
        ctx = parse(NODE, "repro/core/node.py")
        assert ctx.symbol_at(19) == "Node._on_ping"
        assert ctx.symbol_at(1) == "<module>"

    def test_nested_defs(self):
        source = (
            "class A:\n"
            "    def outer(self):\n"
            "        def inner():\n"
            "            return 1\n"
            "        return inner\n"
        )
        ctx = parse(source, "repro/core/mod.py")
        assert ctx.symbol_at(4) == "A.outer.inner"
        assert ctx.symbol_at(5) == "A.outer"


class TestBaselineV2:
    DIRTY = "import time\n\nnow = time.time()\n"

    def test_fingerprints_survive_file_moves(self, tmp_path):
        tree = write_tree(
            tmp_path / "tree",
            {"repro/core/mod.py": "import time\n\n\ndef f():\n    return time.time()\n"},
        )
        first = LintEngine().check_paths([tree])
        baseline = Baseline.from_fingerprints(first.fingerprints)
        assert first.fingerprints  # something to baseline

        # Move the file: same symbol, new path.
        (tree / "repro" / "core" / "mod.py").rename(
            tree / "repro" / "core" / "renamed.py"
        )
        result = LintEngine(baseline=baseline).check_paths([tree])
        assert result.ok
        assert result.baselined == len(first.fingerprints)

    def test_legacy_v1_baseline_still_matches(self, tmp_path):
        tree = write_tree(tmp_path / "tree", {"repro/core/mod.py": self.DIRTY})
        clean = LintEngine().check_paths([tree])
        assert not clean.ok
        legacy = tmp_path / "v1.json"
        legacy.write_text(
            json.dumps(
                {
                    "version": 1,
                    "tool": "repro-lint",
                    "fingerprints": {
                        "DET001::repro/core/mod.py::now = time.time()": 1
                    },
                }
            ),
            encoding="utf-8",
        )
        result = LintEngine(baseline=Baseline.load(legacy)).check_paths([tree])
        assert result.ok
        assert result.baselined == 1

    def test_write_baseline_emits_v2(self, tmp_path):
        tree = write_tree(tmp_path / "tree", {"repro/core/mod.py": self.DIRTY})
        result = LintEngine().check_paths([tree])
        path = tmp_path / "baseline.json"
        Baseline.from_fingerprints(result.fingerprints).write(path)
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["version"] == 2
        # v2 keys are symbol-based: module-level finding -> <module>.
        assert list(document["fingerprints"]) == [
            "DET001::<module>::now = time.time()"
        ]
