"""Unit tests for the §3.4 analytic latency model."""

from __future__ import annotations

import pytest

from repro.analysis.model import (
    LatencyModelInputs,
    basic_rrt,
    original_rrt,
    tpaxos_trt,
    unoptimized_trt,
    xpaxos_rrt,
)
from repro.analysis.report import comparison_table, percent_change


class TestModel:
    def test_paper_formulas(self):
        p = LatencyModelInputs(client_replica=10.0, replica_replica=2.0, execute=1.0)
        assert original_rrt(p) == pytest.approx(21.0)       # 2M + E
        assert xpaxos_rrt(p) == pytest.approx(22.0)         # 2M + max(E, m)
        assert basic_rrt(p) == pytest.approx(25.0)          # 2M + E + 2m

    def test_xpaxos_max_of_e_and_m(self):
        slow_exec = LatencyModelInputs(10.0, 2.0, execute=5.0)
        assert xpaxos_rrt(slow_exec) == pytest.approx(25.0)  # E dominates m

    def test_xpaxos_never_slower_than_basic(self):
        for m in (0.0, 0.5, 3.0):
            for e in (0.0, 1.0, 10.0):
                p = LatencyModelInputs(10.0, m, e)
                assert xpaxos_rrt(p) <= basic_rrt(p)

    def test_xpaxos_gain_vanishes_when_m_negligible(self):
        # The Berkeley->Princeton observation: m << M collapses the curves.
        p = LatencyModelInputs(45.9e-3, 0.5e-3)
        assert xpaxos_rrt(p) == pytest.approx(original_rrt(p), rel=0.02)
        assert basic_rrt(p) == pytest.approx(original_rrt(p), rel=0.03)

    def test_sysnet_calibration_matches_paper(self):
        # M = 84us, m = 70us reproduce the paper's RRTs (±CPU costs).
        p = LatencyModelInputs(client_replica=84e-6, replica_replica=70e-6)
        assert original_rrt(p) == pytest.approx(0.181e-3, abs=0.02e-3)
        assert xpaxos_rrt(p) == pytest.approx(0.263e-3, abs=0.03e-3)
        assert basic_rrt(p) == pytest.approx(0.338e-3, abs=0.04e-3)

    def test_tpaxos_trt_beats_unoptimized(self):
        p = LatencyModelInputs(84e-6, 70e-6)
        assert tpaxos_trt(p, 3) < unoptimized_trt(p, reads=2, writes=1)
        assert tpaxos_trt(p, 5) < unoptimized_trt(p, reads=0, writes=5)

    def test_table1_shape(self):
        # The model reproduces Table 1's ordering and rough magnitudes.
        p = LatencyModelInputs(84e-6, 70e-6)
        rw3 = unoptimized_trt(p, reads=2, writes=1)
        w3 = unoptimized_trt(p, reads=0, writes=3)
        opt3 = tpaxos_trt(p, 3)
        assert opt3 < rw3 < w3
        assert rw3 == pytest.approx(1.17e-3, rel=0.1)
        assert w3 == pytest.approx(1.29e-3, rel=0.1)
        assert opt3 == pytest.approx(0.85e-3, rel=0.1)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            LatencyModelInputs(-1.0, 0.0)


class TestReport:
    def test_percent_change(self):
        assert percent_change(100.0, 122.0) == pytest.approx(22.0)
        assert percent_change(100.0, 78.0) == pytest.approx(-22.0)
        with pytest.raises(ValueError):
            percent_change(0.0, 1.0)

    def test_comparison_table_contents(self):
        out = comparison_table(
            "RRT", [("read", 0.263e-3, 0.261e-3), ("write", 0.338e-3, 0.341e-3)]
        )
        assert "RRT" in out and "read" in out
        assert "0.263" in out and "0.341" in out
        assert "%" in out
