"""Unit tests for state-transfer payloads (§3.3 FULL / DELTA / REPRO / SMR)."""

from __future__ import annotations

import pytest

from repro.core.state import StatePayload, apply_payload, build_payload
from repro.errors import ProtocolError
from repro.services.base import ExecutionContext, ExecutionResult
from repro.services.counter import CounterService
from repro.services.kvstore import KVStoreService
from repro.types import StateTransferMode

import random


def ctx() -> ExecutionContext:
    return ExecutionContext(rng=random.Random(0), now=0.0)


class TestBuildPayload:
    def test_full_snapshots_service(self):
        service = CounterService()
        service.value = 42
        payload = build_payload(StateTransferMode.FULL, service, (ExecutionResult(),))
        assert payload.mode is StateTransferMode.FULL
        assert payload.data == 42

    def test_delta_collects_results(self):
        service = CounterService()
        results = (ExecutionResult(delta=3), ExecutionResult(delta=4))
        payload = build_payload(StateTransferMode.DELTA, service, results)
        assert payload.data == (3, 4)

    def test_repro_collects_results(self):
        service = CounterService()
        results = (ExecutionResult(repro=7),)
        payload = build_payload(StateTransferMode.REPRO, service, results)
        assert payload.data == (7,)

    def test_smr_ships_nothing(self):
        payload = build_payload(StateTransferMode.SMR, CounterService(), ())
        assert payload.data is None


class TestApplyPayload:
    def test_full_restores(self):
        service = CounterService()
        apply_payload(StatePayload(StateTransferMode.FULL, 9), service, (("add", 1),))
        assert service.value == 9

    def test_delta_applies_each(self):
        service = CounterService()
        apply_payload(
            StatePayload(StateTransferMode.DELTA, (3, 4)), service, (None, None)
        )
        assert service.value == 7

    def test_delta_skips_none_entries(self):
        # The commit marker of a transaction bundle contributes delta=None.
        service = CounterService()
        apply_payload(
            StatePayload(StateTransferMode.DELTA, (3, None)), service, (None, None)
        )
        assert service.value == 3

    def test_repro_replays_with_leader_outcome(self):
        service = CounterService()
        apply_payload(
            StatePayload(StateTransferMode.REPRO, (5,)),
            service,
            (("add_random", 1, 10),),
        )
        assert service.value == 5

    def test_repro_skips_commit_marker(self):
        service = CounterService()
        apply_payload(
            StatePayload(StateTransferMode.REPRO, (5, None)),
            service,
            (("add", 5), None),
        )
        assert service.value == 5

    def test_repro_length_mismatch_raises(self):
        service = CounterService()
        with pytest.raises(ProtocolError):
            apply_payload(
                StatePayload(StateTransferMode.REPRO, (5, 6)), service, (("add", 5),)
            )


class TestRoundTrip:
    """build followed by apply must reproduce the leader's state exactly."""

    @pytest.mark.parametrize(
        "mode",
        [StateTransferMode.FULL, StateTransferMode.DELTA, StateTransferMode.REPRO],
    )
    def test_counter_roundtrip(self, mode):
        leader, backup = CounterService(), CounterService()
        op = ("add_random", 1, 100)
        result = leader.execute(op, ctx())
        payload = build_payload(mode, leader, (result,))
        apply_payload(payload, backup, (op,))
        assert backup.value == leader.value

    @pytest.mark.parametrize(
        "mode", [StateTransferMode.FULL, StateTransferMode.DELTA]
    )
    def test_kvstore_roundtrip(self, mode):
        leader, backup = KVStoreService(), KVStoreService()
        ops = [("put", "a", 1), ("put", "b", 2), ("delete", "a")]
        for op in ops:
            result = leader.execute(op, ctx())
            payload = build_payload(mode, leader, (result,))
            apply_payload(payload, backup, (op,))
        assert backup.data == leader.data == {"b": 2}

    def test_size_hint_positive(self):
        payload = StatePayload(StateTransferMode.FULL, {"key": "x" * 100})
        assert payload.size_hint() > 100

    def test_size_hint_grows_with_state(self):
        small = StatePayload(StateTransferMode.FULL, "x")
        big = StatePayload(StateTransferMode.FULL, "x" * 10_000)
        assert big.size_hint() > small.size_hint()
