"""Unit tests for stats, tables and sequence utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.seq import SequenceGenerator
from repro.util.stats import confidence_interval, summarize
from repro.util.tables import format_series, format_table


class TestSequenceGenerator:
    def test_monotonic(self):
        seq = SequenceGenerator()
        assert [seq.next() for _ in range(3)] == [0, 1, 2]

    def test_start(self):
        assert SequenceGenerator(start=10).next() == 10


class TestStats:
    def test_summarize_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.p50 == pytest.approx(2.0)

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ci_zero_for_tiny_samples(self):
        assert confidence_interval([1.0]) == 0.0
        assert confidence_interval([]) == 0.0

    def test_ci_zero_for_constant_samples(self):
        assert confidence_interval([2.0] * 10) == 0.0

    def test_ci_99_matches_t_distribution(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 1.0, size=200).tolist()
        ci = confidence_interval(samples, confidence=0.99)
        # For n=200, t_crit ~= 2.6; sem ~= 1/sqrt(200).
        assert ci == pytest.approx(2.6 / np.sqrt(200), rel=0.15)

    def test_ci_bounds(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.ci_lo < s.mean < s.ci_hi
        assert s.ci_hi - s.mean == pytest.approx(s.ci99)

    def test_wider_confidence_wider_interval(self):
        samples = list(np.linspace(0, 1, 50))
        assert confidence_interval(samples, 0.99) > confidence_interval(samples, 0.90)

    def test_single_sample_summary(self):
        s = summarize([5.0])
        assert s.mean == 5.0 and s.std == 0.0 and s.ci99 == 0.0


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_format_series(self):
        out = format_series(
            "Figure X", "clients", [1, 2], {"read": [10.0, 20.0], "write": [5.0, 6.0]}
        )
        assert "Figure X" in out
        assert "read" in out and "write" in out
        assert "10.0" in out and "6.0" in out
