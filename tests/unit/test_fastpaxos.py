"""Unit and adversarial tests for the Fast Paxos comparator (§5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ballot import Ballot
from repro.core.fastpaxos import (
    FAccept,
    FAccepted,
    FAny,
    FClientValue,
    FPrepare,
    FastAcceptor,
    FastCoordinator,
    classic_quorum,
    fast_quorum,
)
from repro.errors import ProtocolError

PEERS = ("a0", "a1", "a2", "a3")


def open_round(coordinator, acceptors, ballot=None):
    ballot = ballot or Ballot(1, coordinator.pid)
    any_msg = coordinator.open_fast_round(ballot)
    for acceptor in acceptors.values():
        assert acceptor.on_any(any_msg)
    return ballot


def setup():
    acceptors = {pid: FastAcceptor(pid) for pid in PEERS}
    coordinator = FastCoordinator("a0", PEERS)
    return coordinator, acceptors


class TestQuorums:
    def test_fast_quorum_sizes(self):
        assert fast_quorum(4) == 3
        assert fast_quorum(7) == 5
        assert classic_quorum(4) == 3

    def test_needs_four_acceptors(self):
        with pytest.raises(ProtocolError):
            FastCoordinator("a0", ("a0", "a1", "a2"))


class TestFastPath:
    def test_uncontended_value_chosen_in_two_delays(self):
        coordinator, acceptors = setup()
        open_round(coordinator, acceptors)
        # One client, all acceptors see the same value: fast decision.
        done = False
        for pid, acceptor in acceptors.items():
            accepted = acceptor.on_client_value(FClientValue("v"))
            assert accepted is not None
            done = coordinator.on_fast_accepted(pid, accepted) or done
        assert done and coordinator.chosen == "v"
        assert not coordinator.interceded

    def test_fast_quorum_subset_suffices(self):
        coordinator, acceptors = setup()
        open_round(coordinator, acceptors)
        done = False
        for pid in PEERS[:3]:  # 3 of 4 = fast quorum
            accepted = acceptors[pid].on_client_value(FClientValue("v"))
            done = coordinator.on_fast_accepted(pid, accepted) or done
        assert done

    def test_acceptor_takes_first_value_only(self):
        _coordinator, acceptors = setup()
        open_round(FastCoordinator("a0", PEERS), acceptors)
        acceptor = acceptors["a1"]
        assert acceptor.on_client_value(FClientValue("first")) is not None
        assert acceptor.on_client_value(FClientValue("second")) is None
        assert acceptor.accepted[1] == "first"

    def test_closed_round_rejects_client_values(self):
        _coordinator, acceptors = setup()
        acceptor = acceptors["a1"]
        assert acceptor.on_client_value(FClientValue("v")) is None  # no Any yet


class TestCollision:
    def split_votes(self, coordinator, acceptors):
        """Two clients race: a1,a2 take 'x'; a3,a0 take 'y'."""
        open_round(coordinator, acceptors)
        votes = {}
        for pid, value in (("a1", "x"), ("a2", "x"), ("a3", "y"), ("a0", "y")):
            votes[pid] = acceptors[pid].on_client_value(FClientValue(value))
        return votes

    def test_collision_detected(self):
        coordinator, acceptors = setup()
        votes = self.split_votes(coordinator, acceptors)
        for pid, accepted in votes.items():
            assert not coordinator.on_fast_accepted(pid, accepted)
        assert coordinator.collided

    def test_coordinator_intercedes_and_decides(self):
        coordinator, acceptors = setup()
        votes = self.split_votes(coordinator, acceptors)
        for pid, accepted in votes.items():
            coordinator.on_fast_accepted(pid, accepted)
        prepare = coordinator.intercede()
        assert coordinator.interceded
        accept = None
        for pid, acceptor in acceptors.items():
            promise = acceptor.on_prepare(prepare)
            if promise is not None:
                accept = coordinator.on_promise(pid, promise) or accept
        assert accept is not None
        assert accept.value in ("x", "y")
        done = False
        for pid, acceptor in acceptors.items():
            accepted = acceptor.on_accept(accept)
            if accepted is not None:
                done = coordinator.on_classic_accepted(pid, accepted) or done
        assert done and coordinator.chosen == accept.value

    def test_recovery_preserves_fast_chosen_value(self):
        # 'x' reached a fast quorum (3 of 4); a later recovery must pick 'x'.
        coordinator, acceptors = setup()
        open_round(coordinator, acceptors)
        for pid in ("a1", "a2", "a3"):
            acceptors[pid].on_client_value(FClientValue("x"))
        acceptors["a0"].on_client_value(FClientValue("y"))
        # A second coordinator (say after the first crashed) recovers with a
        # classic quorum that must include >= 2 'x' voters.
        recovery = FastCoordinator("a0", PEERS)
        recovery.round = Ballot(1, "a0")
        recovery.phase = "fast"
        prepare = recovery.intercede()
        accept = None
        for pid in ("a0", "a1", "a2"):  # classic quorum incl. the dissenter
            promise = acceptors[pid].on_prepare(prepare)
            accept = recovery.on_promise(pid, promise) or accept
        assert accept is not None and accept.value == "x"


@settings(max_examples=200, deadline=None)
@given(
    assignment=st.lists(st.sampled_from(["x", "y"]), min_size=4, max_size=4),
    quorum_pick=st.sets(st.sampled_from(PEERS), min_size=3, max_size=3),
)
def test_recovery_never_contradicts_fast_decision(assignment, quorum_pick):
    """For every split of client values and every classic recovery quorum:
    if some value reached a fast quorum, recovery must choose it."""
    acceptors = {pid: FastAcceptor(pid) for pid in PEERS}
    coordinator = FastCoordinator("a0", PEERS)
    open_round(coordinator, acceptors)
    counts: dict[str, int] = {}
    for pid, value in zip(PEERS, assignment):
        acceptors[pid].on_client_value(FClientValue(value))
        counts[value] = counts.get(value, 0) + 1
    fast_chosen = [v for v, c in counts.items() if c >= fast_quorum(4)]
    recovery = FastCoordinator("a0", PEERS)
    recovery.round = Ballot(1, "a0")
    recovery.phase = "fast"
    prepare = recovery.intercede()
    accept = None
    for pid in quorum_pick:
        promise = acceptors[pid].on_prepare(prepare)
        if promise is not None:
            accept = recovery.on_promise(pid, promise) or accept
    assert accept is not None
    if fast_chosen:
        assert accept.value == fast_chosen[0]
