"""Unit tests for the threaded wall-clock runtime."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import TransportError
from repro.net.latency import ConstantLatency
from repro.sim.process import Process
from repro.transport.local import LocalRuntime


class Recorder(Process):
    def __init__(self, pid):
        super().__init__(pid)
        self.inbox = []
        self.started = threading.Event()

    def on_start(self):
        self.started.set()

    def on_message(self, src, msg):
        self.inbox.append((src, msg))


class Echo(Process):
    def on_message(self, src, msg):
        self.send(src, ("echo", msg))


def run_pair(latency=None):
    runtime = LocalRuntime(latency=latency)
    a, b = Recorder("a"), Echo("b")
    runtime.add(a)
    runtime.add(b)
    runtime.start()
    return runtime, a, b


class TestLifecycle:
    def test_on_start_called(self):
        runtime, a, _b = run_pair()
        try:
            assert a.started.wait(timeout=5.0)
        finally:
            runtime.shutdown()

    def test_add_after_start_rejected(self):
        runtime, _a, _b = run_pair()
        try:
            with pytest.raises(TransportError):
                runtime.add(Recorder("late"))
        finally:
            runtime.shutdown()

    def test_duplicate_pid_rejected(self):
        runtime = LocalRuntime()
        runtime.add(Recorder("a"))
        with pytest.raises(TransportError):
            runtime.add(Recorder("a"))
        runtime.shutdown()

    def test_double_start_rejected(self):
        runtime = LocalRuntime()
        runtime.add(Recorder("a"))
        runtime.start()
        try:
            with pytest.raises(TransportError):
                runtime.start()
        finally:
            runtime.shutdown()


class TestMessaging:
    def test_round_trip(self):
        runtime, a, _b = run_pair()
        try:
            a.send("b", "ping")
            assert runtime.run_until(lambda: a.inbox, timeout=5.0)
            assert a.inbox == [("b", ("echo", "ping"))]
        finally:
            runtime.shutdown()

    def test_send_to_unknown_raises(self):
        runtime, a, _b = run_pair()
        try:
            with pytest.raises(TransportError):
                a.send("ghost", "x")
        finally:
            runtime.shutdown()

    def test_injected_latency_delays_delivery(self):
        runtime, a, _b = run_pair(latency=ConstantLatency(0.05))
        try:
            t0 = time.monotonic()
            a.send("b", "ping")
            assert runtime.run_until(lambda: a.inbox, timeout=5.0)
            elapsed = time.monotonic() - t0
            assert elapsed >= 0.09  # two legs of 50 ms (minus scheduling slop)
        finally:
            runtime.shutdown()

    def test_crashed_process_receives_nothing(self):
        runtime, a, b = run_pair()
        try:
            b.alive = False
            a.send("b", "ping")
            time.sleep(0.05)
            assert a.inbox == []
        finally:
            runtime.shutdown()


class TestTimers:
    def test_timer_fires(self):
        runtime = LocalRuntime()
        a = Recorder("a")
        runtime.add(a)
        runtime.start()
        fired = threading.Event()
        try:
            assert a.started.wait(5.0)
            a.set_timer(0.01, fired.set)
            assert runtime.run_until(fired.is_set, timeout=5.0)
        finally:
            runtime.shutdown()

    def test_timer_cancel(self):
        runtime = LocalRuntime()
        a = Recorder("a")
        runtime.add(a)
        runtime.start()
        fired = []
        try:
            assert a.started.wait(5.0)
            handle = a.set_timer(0.02, fired.append, 1)
            handle.cancel()
            assert not handle.active
            time.sleep(0.08)
            assert fired == []
        finally:
            runtime.shutdown()

    def test_now_is_monotonic(self):
        runtime = LocalRuntime()
        first = runtime.now
        time.sleep(0.01)
        assert runtime.now > first
        runtime.shutdown()
