"""Unit tests for the open-loop Poisson client."""

from __future__ import annotations

import pytest

from repro.client.openloop import OpenLoopClient
from repro.core.config import ReplicaConfig
from repro.core.replica import Replica
from repro.election.static import StaticElector
from repro.services.noop import NoopService
from repro.sim.kernel import Kernel
from repro.sim.world import World
from repro.types import RequestKind

PEERS = ("r0", "r1", "r2")


def run_client(kind=RequestKind.ORIGINAL, rate=1000.0, total=50, seed=1, warmup=0.01):
    kernel = Kernel(seed=seed)
    world = World(kernel)
    config = ReplicaConfig(peers=PEERS)
    for pid in PEERS:
        world.add(Replica(pid, config, NoopService, StaticElector("r0")))
    client = OpenLoopClient(
        "c0", PEERS, kind, op=(kind.value,), rate=rate, total=total,
        wait_for_start=False, warmup=warmup,
    )
    world.add(client)
    world.start()
    while not client.done and kernel.now < 30.0:
        kernel.run(until=kernel.now + 0.1)
    return client


class TestOpenLoop:
    def test_all_requests_complete(self):
        client = run_client()
        assert client.done
        assert client.stats.fired == 50
        assert client.stats.completed == 50
        assert len(client.stats.rrts) == 50

    def test_write_kind_goes_through_consensus(self):
        client = run_client(kind=RequestKind.WRITE, total=30)
        assert client.stats.completed == 30

    def test_poisson_interarrivals_average_to_rate(self):
        client = run_client(rate=2000.0, total=400)
        assert client.done
        # 400 arrivals at 2000/s take ~0.2 s on average.
        # (Completion time also includes RTTs; just sanity-check magnitude.)
        assert client.stats.completed == 400

    def test_warmup_zero_loses_requests_to_recovery(self):
        # Documents WHY warmup exists: with real link latency the initial
        # leader recovery takes a few hundred microseconds; at high rate
        # with no warmup, the first arrivals land on a still-recovering
        # leader and are lost (open-loop clients never retransmit).
        from repro.net.network import SimNetwork
        from repro.net.profiles import sysnet

        profile = sysnet()
        topology = profile.build_topology(PEERS, ("c0",))
        kernel = Kernel(seed=1)
        world = World(kernel, SimNetwork(topology, seed=1))
        config = ReplicaConfig(peers=PEERS)
        for pid in PEERS:
            world.add(Replica(pid, config, NoopService, StaticElector("r0")))
        client = OpenLoopClient(
            "c0", PEERS, RequestKind.ORIGINAL, op=("original",),
            rate=100_000.0, total=50, wait_for_start=False, warmup=0.0,
        )
        world.add(client)
        world.start()
        kernel.run(until=5.0)
        assert client.stats.fired == 50
        assert client.stats.completed < client.stats.fired

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            OpenLoopClient("c0", PEERS, RequestKind.READ, op=None, rate=0.0, total=1)

    def test_duplicate_reply_ignored(self):
        client = run_client(total=10)
        before = client.stats.completed
        from repro.core.messages import Reply
        from repro.core.requests import RequestId
        from repro.types import ReplyStatus

        client.on_message(
            "r0", Reply(rid=RequestId("c0", 0), status=ReplyStatus.OK, value=1)
        )
        assert client.stats.completed == before
