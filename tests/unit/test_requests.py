"""Unit tests for request ids and the at-most-once table."""

from __future__ import annotations

from repro.core.requests import ClientRequest, ExecutedTable, RequestId
from repro.types import RequestKind


class TestRequestId:
    def test_equality_and_hash(self):
        assert RequestId("c0", 1) == RequestId("c0", 1)
        assert RequestId("c0", 1) != RequestId("c0", 2)
        assert RequestId("c0", 1) != RequestId("c1", 1)
        assert len({RequestId("c0", 1), RequestId("c0", 1)}) == 1

    def test_str(self):
        assert str(RequestId("c0", 7)) == "c0#7"


class TestClientRequest:
    def test_str_includes_txn(self):
        r = ClientRequest(RequestId("c0", 1), RequestKind.TXN_OP, op=("x",), txn="t1")
        assert "txn=t1" in str(r)

    def test_kind_transactional(self):
        assert RequestKind.TXN_OP.is_transactional
        assert RequestKind.TXN_COMMIT.is_transactional
        assert RequestKind.TXN_ABORT.is_transactional
        assert not RequestKind.WRITE.is_transactional
        assert not RequestKind.READ.is_transactional


class TestExecutedTable:
    def test_lookup_hit(self):
        table = ExecutedTable()
        table.record(RequestId("c0", 1), "reply-1")
        executed, value = table.lookup(RequestId("c0", 1))
        assert executed and value == "reply-1"

    def test_lookup_miss(self):
        table = ExecutedTable()
        executed, value = table.lookup(RequestId("c0", 1))
        assert not executed and value is None

    def test_newer_request_replaces(self):
        table = ExecutedTable()
        table.record(RequestId("c0", 1), "one")
        table.record(RequestId("c0", 2), "two")
        assert table.lookup(RequestId("c0", 2)) == (True, "two")
        assert table.lookup(RequestId("c0", 1)) == (False, None)
        assert table.is_stale(RequestId("c0", 1))

    def test_out_of_order_record_ignored(self):
        # Closed-loop clients cannot regress; a late older record must not
        # clobber the newer reply.
        table = ExecutedTable()
        table.record(RequestId("c0", 5), "five")
        table.record(RequestId("c0", 3), "three")
        assert table.lookup(RequestId("c0", 5)) == (True, "five")

    def test_clients_independent(self):
        table = ExecutedTable()
        table.record(RequestId("c0", 1), "a")
        table.record(RequestId("c1", 9), "b")
        assert table.lookup(RequestId("c0", 1)) == (True, "a")
        assert table.lookup(RequestId("c1", 9)) == (True, "b")

    def test_snapshot_restore_roundtrip(self):
        table = ExecutedTable()
        table.record(RequestId("c0", 1), "a")
        snap = table.snapshot()
        other = ExecutedTable()
        other.restore(snap)
        assert other.lookup(RequestId("c0", 1)) == (True, "a")
        # Snapshot is a copy, not a view.
        table.record(RequestId("c0", 2), "b")
        assert other.lookup(RequestId("c0", 2)) == (False, None)

    def test_is_stale_false_for_latest_and_future(self):
        table = ExecutedTable()
        table.record(RequestId("c0", 1), "a")
        assert not table.is_stale(RequestId("c0", 1))
        assert not table.is_stale(RequestId("c0", 2))
