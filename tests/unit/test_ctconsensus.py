"""Unit + adversarial tests for Chandra-Toueg ♦S consensus."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ctconsensus import (
    CTAck,
    CTDecide,
    CTEstimate,
    CTNack,
    CTProcess,
    CTPropose,
)
from repro.errors import ProtocolError

PEERS = ("p0", "p1", "p2")


class SyncDriver:
    """Delivers messages synchronously with optional per-round suspicion."""

    def __init__(self, values, suspect_rounds=frozenset()):
        self.processes = {
            pid: CTProcess(pid, PEERS, value) for pid, value in zip(PEERS, values)
        }
        self.suspect_rounds = suspect_rounds
        self.inbox = []

    def post(self, src, dst, msg):
        targets = PEERS if dst is None else [dst]
        for target in targets:
            self.inbox.append((src, target, msg))

    def dispatch(self, src, dst, msg):
        process = self.processes[dst]
        handler = {
            CTEstimate: process.on_estimate,
            CTPropose: process.on_propose,
            CTAck: process.on_ack,
            CTNack: process.on_nack,
            CTDecide: process.on_decide,
        }[type(msg)]
        for dst2, msg2 in handler(src, msg):
            self.post(dst, dst2, msg2)

    def run(self, max_steps=500):
        for pid in PEERS:
            for dst, msg in self.processes[pid].start():
                self.post(pid, dst, msg)
        steps = 0
        while self.inbox and steps < max_steps:
            steps += 1
            src, dst, msg = self.inbox.pop(0)
            self.dispatch(src, dst, msg)
        return all(p.decided for p in self.processes.values())


class TestHappyPath:
    def test_round_zero_decides(self):
        driver = SyncDriver(values=("a", "b", "c"))
        assert driver.run()
        decisions = {p.decision for p in driver.processes.values()}
        assert len(decisions) == 1

    def test_coordinator_of_rotation(self):
        process = CTProcess("p0", PEERS, "v")
        assert [process.coordinator_of(r) for r in range(4)] == ["p0", "p1", "p2", "p0"]

    def test_decision_is_someones_initial_value(self):
        driver = SyncDriver(values=("a", "b", "c"))
        driver.run()
        assert driver.processes["p0"].decision in ("a", "b", "c")


class TestSuspicion:
    def test_suspicion_moves_to_next_round(self):
        process = CTProcess("p1", PEERS, "v")
        process.start()
        out = process.suspect_coordinator()
        # NACK to p0, estimate to p1 (itself, coordinator of round 1).
        kinds = [type(m).__name__ for _d, m in out]
        assert kinds == ["CTNack", "CTEstimate"]
        assert process.round == 1

    def test_decided_process_ignores_suspicion(self):
        process = CTProcess("p0", PEERS, "v")
        process.on_decide("p1", CTDecide(value="w"))
        assert process.suspect_coordinator() == []

    def test_nacked_round_cannot_be_acked_later(self):
        process = CTProcess("p1", PEERS, "v")
        process.start()
        process.suspect_coordinator()  # now in round 1
        # A late proposal for round 0 must be ignored (no ACK).
        assert process.on_propose("p0", CTPropose(round=0, value="w")) == []

    def test_double_decide_same_value_ok(self):
        process = CTProcess("p0", PEERS, "v")
        process.on_decide("p1", CTDecide(value="w"))
        process.on_decide("p2", CTDecide(value="w"))
        assert process.decision == "w"

    def test_double_decide_different_value_raises(self):
        process = CTProcess("p0", PEERS, "v")
        process.on_decide("p1", CTDecide(value="w"))
        with pytest.raises(ProtocolError):
            process.on_decide("p2", CTDecide(value="x"))


class TestLocking:
    def test_locked_value_survives_round_change(self):
        """p0's round-0 proposal is adopted by a majority; a round-1
        coordinator must re-propose the same value."""
        processes = {pid: CTProcess(pid, PEERS, pid) for pid in PEERS}
        coordinator = processes["p0"]
        # Round 0: coordinator gathers estimates and proposes.
        out = coordinator.on_estimate("p1", CTEstimate(0, "b", -1))
        out += coordinator.on_estimate("p2", CTEstimate(0, "c", -1))
        proposal = next(m for _d, m in out if isinstance(m, CTPropose))
        # p1 adopts; p2 never hears it.
        processes["p1"].on_propose("p0", proposal)
        assert processes["p1"].stamp == 0
        # Round 1: p1 coordinates; gathers estimates from p1 and p2.
        coordinator1 = processes["p1"]
        coordinator1.round = 1
        out = coordinator1.on_estimate(
            "p1", CTEstimate(1, coordinator1.estimate, coordinator1.stamp)
        )
        out += coordinator1.on_estimate("p2", CTEstimate(1, "c", -1))
        proposal1 = next(m for _d, m in out if isinstance(m, CTPropose))
        assert proposal1.value == proposal.value  # the locked value sticks

    def test_propose_hook_replaces_placeholder_only(self):
        hook_calls = []

        def hook(value):
            hook_calls.append(value)
            return value if value is not None else "computed"

        coordinator = CTProcess("p0", PEERS, None, propose_hook=hook)
        out = coordinator.on_estimate("p1", CTEstimate(0, None, -1))
        out += coordinator.on_estimate("p2", CTEstimate(0, None, -1))
        proposal = next(m for _d, m in out if isinstance(m, CTPropose))
        assert proposal.value == "computed"
        # Locked value passes through untouched.
        coordinator2 = CTProcess("p1", PEERS, None, propose_hook=hook)
        coordinator2.round = 1
        out = coordinator2.on_estimate("p0", CTEstimate(1, "locked", 0))
        out += coordinator2.on_estimate("p2", CTEstimate(1, None, -1))
        proposal2 = next(m for _d, m in out if isinstance(m, CTPropose))
        assert proposal2.value == "locked"


@settings(max_examples=200, deadline=None)
@given(data=st.data())
def test_agreement_under_adversarial_schedules(data):
    """Random delivery order + random suspicion injections: all processes
    that decide, decide the same value."""
    processes = {pid: CTProcess(pid, PEERS, f"v-{pid}") for pid in PEERS}
    inbox: list[tuple[str, str, object]] = []

    def post(src, dst, msg):
        targets = PEERS if dst is None else [dst]
        for target in targets:
            inbox.append((src, target, msg))

    for pid in PEERS:
        for dst, msg in processes[pid].start():
            post(pid, dst, msg)

    steps = 0
    while inbox and steps < 300:
        steps += 1
        # Adversary may inject a suspicion at any point.
        if data.draw(st.booleans(), label="suspect?") and steps < 60:
            victim = data.draw(st.sampled_from(PEERS), label="who suspects")
            for dst, msg in processes[victim].suspect_coordinator():
                post(victim, dst, msg)
        index = data.draw(
            st.integers(min_value=0, max_value=len(inbox) - 1), label="pick"
        )
        src, dst, msg = inbox.pop(index)
        process = processes[dst]
        handler = {
            CTEstimate: process.on_estimate,
            CTPropose: process.on_propose,
            CTAck: process.on_ack,
            CTNack: process.on_nack,
            CTDecide: process.on_decide,
        }[type(msg)]
        for dst2, msg2 in handler(src, msg):
            post(dst, dst2, msg2)

    decisions = {p.decision for p in processes.values() if p.decided}
    assert len(decisions) <= 1
