"""Client retransmission backoff, jitter, the ``client.retransmit``
metric, and per-step think-time gaps (``Step.gap``)."""

from __future__ import annotations

import pytest

from repro.client.client import Client
from repro.client.workload import Step, single_kind_steps
from repro.cluster.faults import FaultSchedule
from repro.cluster.harness import Cluster, ClusterSpec
from repro.services.kvstore import KVStoreService
from repro.types import RequestKind
from tests.conftest import make_test_profile


def build_cluster(steps, **spec_kw) -> Cluster:
    spec_kw.setdefault("client_timeout", 0.05)
    spec_kw.setdefault("client_jitter", 0.0)
    spec = ClusterSpec(profile=make_test_profile(), **spec_kw)
    return Cluster(spec, [steps], service_factory=KVStoreService)


def run_with_outage(cluster, until=1.0) -> list[float]:
    """Crash every replica for [0, until) and record retransmit times."""
    schedule = FaultSchedule(cluster)
    for pid in cluster.replica_pids:
        schedule.crash(pid, at=0.0)
        schedule.recover(pid, at=until)
    client = cluster.clients[0]
    times: list[float] = []
    original = client._retransmit

    def spy():
        times.append(client.now)
        original()

    client._retransmit = spy
    cluster.run(max_time=30.0)
    return times


class TestBackoff:
    def test_intervals_grow_geometrically_to_cap(self):
        steps = single_kind_steps(RequestKind.WRITE, 1, op=("put", "x", 1))
        cluster = build_cluster(steps, client_backoff=2.0)
        times = run_with_outage(cluster, until=1.5)
        diffs = [b - a for a, b in zip(times, times[1:])]
        assert len(diffs) >= 3
        # Each gap doubles until the cap (10x the 0.05 base = 0.5s).
        for a, b in zip(diffs, diffs[1:]):
            assert b == pytest.approx(min(2.0 * a, 0.5))
        assert max(diffs) <= 0.5 + 1e-9

    def test_timeout_cap_bounds_growth(self):
        steps = single_kind_steps(RequestKind.WRITE, 1, op=("put", "x", 1))
        cluster = build_cluster(steps, client_backoff=2.0, client_timeout_cap=0.12)
        times = run_with_outage(cluster, until=1.0)
        diffs = [b - a for a, b in zip(times, times[1:])]
        assert max(diffs) <= 0.12 + 1e-9
        assert diffs.count(pytest.approx(0.12)) >= 2

    def test_backoff_one_restores_fixed_interval(self):
        steps = single_kind_steps(RequestKind.WRITE, 1, op=("put", "x", 1))
        cluster = build_cluster(steps, client_backoff=1.0)
        times = run_with_outage(cluster, until=0.6)
        diffs = [b - a for a, b in zip(times, times[1:])]
        assert all(d == pytest.approx(0.05) for d in diffs)

    def test_backoff_resets_per_fresh_request(self):
        # Two writes: the first rides out the outage with grown timeouts;
        # the second starts back at the base timeout.
        steps = single_kind_steps(RequestKind.WRITE, 2, op=("put", "x", 1))
        cluster = build_cluster(steps, client_backoff=2.0)
        run_with_outage(cluster, until=0.4)
        assert cluster.clients[0].done
        assert cluster.clients[0]._timeout_current == pytest.approx(0.05)

    def test_jitter_is_seeded_and_deterministic(self):
        def retransmit_times(seed):
            steps = single_kind_steps(RequestKind.WRITE, 1, op=("put", "x", 1))
            cluster = build_cluster(
                steps, seed=seed, client_backoff=2.0, client_jitter=0.5
            )
            return run_with_outage(cluster, until=1.0)

        assert retransmit_times(7) == retransmit_times(7)
        assert retransmit_times(7) != retransmit_times(8)

    def test_jitter_never_shrinks_the_delay(self):
        steps = single_kind_steps(RequestKind.WRITE, 1, op=("put", "x", 1))
        jittered = build_cluster(steps, client_backoff=2.0, client_jitter=0.5)
        times = run_with_outage(jittered, until=1.0)
        diffs = [b - a for a, b in zip(times, times[1:])]
        # Base gaps without jitter would be 0.1, 0.2, ... — jitter only adds.
        assert diffs[0] >= 0.1 - 1e-9

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Client("c0", replicas=("r0",), steps=[], backoff=0.5)
        with pytest.raises(ValueError):
            Client("c0", replicas=("r0",), steps=[], jitter=-0.1)

    def test_retransmit_metric_matches_records(self):
        steps = single_kind_steps(RequestKind.WRITE, 2, op=("put", "x", 1))
        cluster = build_cluster(steps, client_backoff=2.0)
        run_with_outage(cluster, until=0.4)
        recorded = sum(
            r.retransmits for r in cluster.clients[0].request_records()
        )
        assert recorded > 0
        assert cluster.metrics.counters()["client.retransmit"] == recorded


class TestStepGap:
    def write_steps(self, n, gap):
        return [
            Step(
                requests=((RequestKind.WRITE, ("put", "x", i)),),
                label="write",
                gap=gap,
            )
            for i in range(n)
        ]

    def test_gap_paces_step_starts(self):
        cluster = build_cluster(self.write_steps(4, gap=0.2))
        cluster.run(max_time=10.0)
        starts = [record.started_at for record in cluster.clients[0].records]
        assert len(starts) == 4
        for a, b in zip(starts, starts[1:]):
            assert b - a >= 0.2

    def test_zero_gap_keeps_closed_loop_behaviour(self):
        cluster = build_cluster(self.write_steps(4, gap=0.0))
        cluster.run(max_time=10.0)
        assert cluster.clients[0].finished_at < 0.1

    def test_gap_taken_before_first_step_too(self):
        cluster = build_cluster(self.write_steps(1, gap=0.3))
        cluster.run(max_time=10.0)
        record = cluster.clients[0].records[0]
        assert record.started_at >= 0.3
