"""Unit tests for the closed-loop queueing model."""

from __future__ import annotations

import pytest

from repro.analysis.queueing import ClosedSystem, sysnet_model


class TestBounds:
    def test_linear_region(self):
        system = ClosedSystem(think=1.0, service=0.01)
        assert system.throughput_upper_bound(5) == pytest.approx(5 / 1.01)

    def test_saturation_region(self):
        system = ClosedSystem(think=1.0, service=0.01)
        assert system.throughput_upper_bound(1000) == pytest.approx(100.0)

    def test_saturation_point(self):
        system = ClosedSystem(think=1.0, service=0.01)
        assert system.saturation_clients() == pytest.approx(101.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClosedSystem(think=-1.0, service=0.01)
        with pytest.raises(ValueError):
            ClosedSystem(think=1.0, service=0.0)


class TestMVA:
    def test_zero_clients(self):
        system = ClosedSystem(think=1.0, service=0.01)
        assert system.mva(0) == (0.0, 0.0)

    def test_single_client_no_queueing(self):
        system = ClosedSystem(think=1.0, service=0.01)
        throughput, at_server = system.mva(1)
        assert at_server == pytest.approx(0.01)
        assert throughput == pytest.approx(1 / 1.01)

    def test_mva_below_upper_bound(self):
        system = ClosedSystem(think=0.5, service=0.02)
        for clients in (1, 5, 20, 100):
            assert system.throughput(clients) <= system.throughput_upper_bound(clients) + 1e-9

    def test_mva_monotone_in_clients(self):
        system = ClosedSystem(think=0.5, service=0.02)
        values = [system.throughput(c) for c in range(1, 60)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_mva_approaches_saturation(self):
        system = ClosedSystem(think=0.5, service=0.02)
        assert system.throughput(500) == pytest.approx(50.0, rel=0.01)

    def test_response_time_grows_past_saturation(self):
        system = ClosedSystem(think=0.5, service=0.02)
        assert system.response_time(100) > system.response_time(1) * 2

    def test_negative_clients_rejected(self):
        with pytest.raises(ValueError):
            ClosedSystem(1.0, 0.01).mva(-1)


class TestSysnetMapping:
    def test_original_single_client_rrt_matches_paper(self):
        model = sysnet_model("original")
        assert model.response_time(1) == pytest.approx(0.181e-3, rel=0.05)

    def test_kind_ordering_of_demands(self):
        demands = {k: sysnet_model(k).service for k in ("original", "read", "write")}
        assert demands["original"] < demands["read"] <= demands["write"]

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            sysnet_model("bogus")
