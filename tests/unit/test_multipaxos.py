"""Unit tests for the Multi-Paxos SMR baseline module."""

from __future__ import annotations

import pytest

from repro.core.config import ReplicaConfig
from repro.core.multipaxos import MultiPaxosReplica, multipaxos_config
from repro.election.static import StaticElector
from repro.services.kvstore import KVStoreService
from repro.types import StateTransferMode


class TestConfig:
    def test_config_uses_smr_mode(self):
        config = multipaxos_config(("r0", "r1", "r2"))
        assert config.state_mode is StateTransferMode.SMR

    def test_transactions_disabled_by_default(self):
        config = multipaxos_config(("r0", "r1", "r2"))
        assert config.tpaxos is False

    def test_overrides_pass_through(self):
        config = multipaxos_config(("r0",), xpaxos_reads=False, max_batch=4)
        assert config.xpaxos_reads is False
        assert config.max_batch == 4

    def test_replica_constructor(self):
        replica = MultiPaxosReplica(
            "r0", ("r0", "r1", "r2"), KVStoreService, StaticElector("r0")
        )
        assert replica.config.state_mode is StateTransferMode.SMR
        assert replica.pid == "r0"


class TestEndToEnd:
    def test_smr_replicates_deterministic_service(self):
        from repro.sim.kernel import Kernel
        from repro.sim.process import Process
        from repro.sim.world import World
        from repro.core.requests import ClientRequest, RequestId
        from repro.types import RequestKind

        kernel = Kernel()
        world = World(kernel)
        peers = ("r0", "r1", "r2")
        replicas = [
            MultiPaxosReplica(pid, peers, KVStoreService, StaticElector("r0"))
            for pid in peers
        ]
        for replica in replicas:
            world.add(replica)
        world.add(Process("c0"))
        world.start()
        kernel.run(until=0.1)
        for i in range(5):
            replicas[0].on_message(
                "c0",
                ClientRequest(RequestId("c0", i), RequestKind.WRITE, op=("put", i, i)),
            )
        kernel.run(until=1.0)
        prints = {r.service.state_fingerprint() for r in replicas}
        assert len(prints) == 1
        assert replicas[1].service.data == {i: i for i in range(5)}
