"""Unit tests for the semi-passive replication study harness (§5)."""

from __future__ import annotations

import pytest

from repro.core.semipassive import SemiPassiveGroup
from repro.errors import ProtocolError
from repro.services.counter import CounterService
from repro.services.kvstore import KVStoreService

PEERS = ("p0", "p1", "p2")


def counter_group(seed=0):
    return SemiPassiveGroup(PEERS, CounterService, seed=seed)


class TestHappyPath:
    def test_request_replicates_everywhere(self):
        group = counter_group()
        assert group.submit(("add", 5)) == 5
        assert set(group.fingerprints().values()) == {5}

    def test_sequence_of_requests(self):
        group = counter_group()
        for i in range(1, 6):
            group.submit(("add", 1))
        assert set(group.fingerprints().values()) == {5}
        assert len(group.decisions) == 5

    def test_nondeterministic_request_single_outcome(self):
        # Only ONE execution's outcome replicates, even though execution is
        # nondeterministic — the semi-passive analogue of the paper's claim.
        group = counter_group(seed=9)
        reply = group.submit(("add_random", 1, 1000))
        prints = set(group.fingerprints().values())
        assert prints == {reply}

    def test_kvstore_group(self):
        group = SemiPassiveGroup(PEERS, KVStoreService)
        group.submit(("put", "k", 1))
        group.submit(("put", "j", 2))
        expected = tuple(sorted({"k": 1, "j": 2}.items()))
        assert set(group.fingerprints().values()) == {expected}

    def test_lazy_execution_happens_once_in_failure_free_case(self):
        group = counter_group()
        group.submit(("add", 1))
        assert group.stats.executions == 1

    def test_four_delays_per_failure_free_request(self):
        group = counter_group()
        group.submit(("add", 1))
        group.submit(("add", 1))
        assert group.stats.delays_per_request == [4, 4]


class TestCoordinatorFailure:
    def test_crashed_round0_coordinator_rotates(self):
        group = counter_group()
        group.crash("p0")
        assert group.submit(("add", 3)) == 3
        alive_prints = set(group.fingerprints().values())
        assert alive_prints == {3}
        # The instance cost more than the failure-free 4 delays.
        assert group.stats.delays_per_request[0] > 4

    def test_two_consecutive_crashed_coordinators_block_majority(self):
        group = counter_group()
        group.crash("p0")
        group.crash("p1")
        with pytest.raises(ProtocolError):
            group.submit(("add", 1))

    def test_recovered_process_resyncs(self):
        group = counter_group()
        group.submit(("add", 2))
        group.crash("p2")
        group.submit(("add", 3))
        group.recover("p2")
        assert group.services["p2"].value == 5
        group.submit(("add", 1))
        assert set(group.fingerprints().values()) == {6}

    def test_crash_then_requests_keep_flowing(self):
        group = counter_group()
        group.crash("p1")
        for _ in range(4):
            group.submit(("add", 1))
        assert set(group.fingerprints().values()) == {4}


class TestStats:
    def test_message_count_grows_per_request(self):
        group = counter_group()
        group.submit(("add", 1))
        first = group.stats.messages
        group.submit(("add", 1))
        assert group.stats.messages > first
        assert group.stats.rounds >= 2
