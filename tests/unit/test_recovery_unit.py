"""Unit tests for new-leader recovery, reproducing the paper's §3.3 example
at the message level: the new leader knows requests 1-87 and 90; replicas
hold accepted values for 88, 89 and 91."""

from __future__ import annotations

import pytest

from repro.core.ballot import Ballot
from repro.core.config import ReplicaConfig
from repro.core.messages import (
    AcceptBatch,
    ChosenBatch,
    Prepare,
    Proposal,
)
from repro.core.replica import Replica, ReplicaRole
from repro.core.requests import ClientRequest, RequestId
from repro.core.state import StatePayload
from repro.election.static import ManualElector
from repro.services.counter import CounterService
from repro.sim.kernel import Kernel
from repro.sim.trace import TraceRecorder
from repro.sim.world import World
from repro.types import RequestKind, StateTransferMode

PEERS = ("r0", "r1", "r2")


def proposal(instance: int) -> Proposal:
    """Deterministic value for an instance: counter += instance."""
    request = ClientRequest(
        RequestId(f"c{instance}", 0), RequestKind.WRITE, op=("add", instance)
    )
    return Proposal(
        requests=(request,),
        payload=StatePayload(StateTransferMode.DELTA, (instance,)),
        reply=instance,
    )


def make_world(seed=0, checkpoint_interval=1000):
    kernel = Kernel(seed=seed)
    trace = TraceRecorder()
    world = World(kernel, trace=trace)
    config = ReplicaConfig(
        peers=PEERS, checkpoint_interval=checkpoint_interval, prepare_retry=0.05
    )
    electors = {}
    replicas = {}
    for pid in PEERS:
        elector = ManualElector(None)
        electors[pid] = elector
        replica = Replica(pid, config, CounterService, elector)
        world.add(replica)
        replicas[pid] = replica
    from repro.sim.process import Process

    for instance in range(1, 95):
        world.add(Process(f"c{instance}"))  # reply sinks
    world.start()
    return kernel, world, trace, replicas, electors


def seed_paper_example(kernel, replicas):
    """Install the §3.3 scenario: r1 (future leader) knows chosen 1-87 and
    90; r2 has accepted 88, 89, 91 from the old leader r0."""
    old = Ballot(0, "r0")
    items = tuple((i, proposal(i)) for i in range(1, 88))
    replicas["r1"].on_message("r0", ChosenBatch(items=items, ballot=old))
    # r2 knows everything chosen 1..87 too, plus accepted 88, 89, 91.
    replicas["r2"].on_message("r0", ChosenBatch(items=items, ballot=old))
    replicas["r2"].on_message(
        "r0",
        AcceptBatch(
            ballot=old,
            entries=((88, proposal(88)), (89, proposal(89)), (90, proposal(90)),
                     (91, proposal(91))),
        ),
    )
    # 90 was chosen and r1 learned it (this is what creates r1's gap).
    replicas["r1"].on_message("r0", ChosenBatch(items=((90, proposal(90)),), ballot=old))
    kernel.run(until=0.01)


class TestPaperExample:
    def test_new_leader_prepare_covers_gaps_and_tail(self):
        kernel, world, trace, replicas, electors = make_world()
        seed_paper_example(kernel, replicas)
        world.crash("r0")
        electors["r1"].set_leader("r1")
        kernel.run(until=0.02)
        prepares = [
            e.detail for e in trace.of_kind("send")
            if isinstance(e.detail, Prepare) and e.src == "r1"
        ]
        assert prepares, "no Prepare sent"
        prepare = prepares[0]
        # "the leader executes the prepare phase of instances 88, 89, and of
        # all instances greater than 90"
        assert prepare.gaps == (88, 89)
        assert prepare.from_instance == 91

    def test_recovery_completes_with_all_values(self):
        kernel, world, _trace, replicas, electors = make_world()
        seed_paper_example(kernel, replicas)
        world.crash("r0")
        electors["r1"].set_leader("r1")
        electors["r2"].set_leader("r1")
        kernel.run(until=0.5)
        r1 = replicas["r1"]
        assert r1.role is ReplicaRole.LEADING
        # 88, 89, 91 were learned from r2 and re-decided.
        assert r1.applied == 91
        assert r1.service.value == sum(range(1, 92))
        # The next fresh instance continues after everything recovered.
        assert r1.proposer.next_instance == 92

    def test_backup_catches_up_through_recovery(self):
        kernel, world, _trace, replicas, electors = make_world()
        seed_paper_example(kernel, replicas)
        world.crash("r0")
        electors["r1"].set_leader("r1")
        electors["r2"].set_leader("r1")
        kernel.run(until=0.5)
        r2 = replicas["r2"]
        assert r2.applied == 91
        assert r2.service.value == sum(range(1, 92))

    def test_recovery_with_empty_logs_is_trivial(self):
        kernel, _world, _trace, replicas, electors = make_world()
        electors["r0"].set_leader("r0")
        kernel.run(until=0.5)
        r0 = replicas["r0"]
        assert r0.role is ReplicaRole.LEADING
        assert r0.proposer.next_instance == 1

    def test_preempted_recovery_steps_down(self):
        kernel, _world, _trace, replicas, electors = make_world()
        # r2 first becomes leader with a higher round.
        replicas["r2"].observe_round(5)
        electors["r2"].set_leader("r2")
        kernel.run(until=0.2)
        # Now r1 (max_round_seen=5 by gossip? no — keep it naive) tries with
        # a smaller ballot; acceptors are promised to r2's round-6 ballot.
        electors["r1"].set_leader("r1")  # r1 mints round max_round_seen+1
        # r1's first ballot may be lower than r2's round-6 promise: it gets
        # preempted (Nack, or r2's next Prepare), steps down, and retries
        # with a higher round while its elector still says it leads. With
        # both electors each backing their own replica the two duel
        # forever, so sample over time: r1 must reach leadership with a
        # ballot above r2's original round at some point.
        led_rounds = []
        for tick in range(1, 41):
            kernel.run(until=0.2 + tick * 0.05)
            r1 = replicas["r1"]
            if r1.role is ReplicaRole.LEADING:
                led_rounds.append(r1.ballot.round)
        assert led_rounds, "r1 never regained leadership after preemption"
        assert max(led_rounds) > 6 or replicas["r1"].stats["preempted"] == 0

    def test_recovery_retransmits_prepare_to_silent_majority(self):
        kernel, world, trace, replicas, electors = make_world()
        world.crash("r0")
        world.crash("r2")
        electors["r1"].set_leader("r1")
        kernel.run(until=0.3)
        assert replicas["r1"].role is ReplicaRole.RECOVERING  # stuck, no quorum
        prepares = [
            e for e in trace.of_kind("send") if isinstance(e.detail, Prepare)
        ]
        assert len(prepares) > 4  # retried
        world.recover("r2")
        kernel.run(until=1.0)
        assert replicas["r1"].role is ReplicaRole.LEADING
