"""Unit tests for latency models."""

from __future__ import annotations

import random

import pytest

from repro.net.latency import (
    ConstantLatency,
    EmpiricalLatency,
    LogNormalLatency,
    UniformLatency,
)


def rng():
    return random.Random(42)


class TestConstant:
    def test_sample_is_constant(self):
        m = ConstantLatency(0.05)
        r = rng()
        assert {m.sample(r) for _ in range(10)} == {0.05}

    def test_mean(self):
        assert ConstantLatency(0.25).mean == 0.25

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)


class TestUniform:
    def test_samples_in_range(self):
        m = UniformLatency(0.01, 0.02)
        r = rng()
        for _ in range(100):
            assert 0.01 <= m.sample(r) <= 0.02

    def test_mean(self):
        assert UniformLatency(0.0, 1.0).mean == pytest.approx(0.5)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            UniformLatency(0.02, 0.01)
        with pytest.raises(ValueError):
            UniformLatency(-0.1, 0.1)


class TestLogNormal:
    def test_samples_positive(self):
        m = LogNormalLatency(0.05, sigma=0.3)
        r = rng()
        assert all(m.sample(r) > 0 for _ in range(200))

    def test_zero_sigma_is_constant(self):
        m = LogNormalLatency(0.05, sigma=0.0)
        assert m.sample(rng()) == 0.05
        assert m.mean == 0.05

    def test_median_roughly_respected(self):
        m = LogNormalLatency(0.1, sigma=0.2)
        r = rng()
        samples = sorted(m.sample(r) for _ in range(4001))
        assert samples[2000] == pytest.approx(0.1, rel=0.05)

    def test_mean_exceeds_median(self):
        m = LogNormalLatency(0.1, sigma=0.5)
        assert m.mean > 0.1

    def test_unbounded_right_tail(self):
        # The asynchronous-system property: no finite bound on delay.
        m = LogNormalLatency(0.01, sigma=1.0)
        r = rng()
        assert max(m.sample(r) for _ in range(5000)) > 0.05

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            LogNormalLatency(0.0)
        with pytest.raises(ValueError):
            LogNormalLatency(0.1, sigma=-1)


class TestEmpirical:
    def test_samples_from_trace(self):
        m = EmpiricalLatency([0.01, 0.02, 0.03])
        r = rng()
        assert {m.sample(r) for _ in range(100)} <= {0.01, 0.02, 0.03}

    def test_mean(self):
        assert EmpiricalLatency([0.01, 0.03]).mean == pytest.approx(0.02)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalLatency([])

    def test_negative_samples_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalLatency([0.01, -0.01])
