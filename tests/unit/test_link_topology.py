"""Unit tests for links, topology and the simulated network."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigError
from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.link import Link, LinkSpec
from repro.net.network import SimNetwork
from repro.net.partition import PartitionController
from repro.net.topology import Topology


class TestLinkSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(loss=1.0)
        with pytest.raises(ValueError):
            LinkSpec(loss=-0.1)
        with pytest.raises(ValueError):
            LinkSpec(duplicate=1.5)


class TestLink:
    def test_default_delivers_once(self):
        link = Link(LinkSpec(latency=ConstantLatency(0.1)), random.Random(1))
        assert link.delays(0.0) == (0.1,)

    def test_loss_drops(self):
        link = Link(LinkSpec(loss=0.999999), random.Random(1))
        assert link.delays(0.0) == ()

    def test_duplicate_delivers_twice(self):
        link = Link(LinkSpec(duplicate=1.0), random.Random(1))
        assert len(link.delays(0.0)) == 2

    def test_fifo_prevents_overtaking(self):
        spec = LinkSpec(latency=UniformLatency(0.0, 1.0), jitter_reorder=False)
        link = Link(spec, random.Random(3))
        depart = 0.0
        last_arrival = -1.0
        for _ in range(200):
            (delay,) = link.delays(depart)
            arrival = depart + delay
            assert arrival >= last_arrival
            last_arrival = arrival
            depart += 0.001

    def test_reordering_possible_with_jitter(self):
        spec = LinkSpec(latency=UniformLatency(0.0, 1.0), jitter_reorder=True)
        link = Link(spec, random.Random(3))
        arrivals = []
        depart = 0.0
        for _ in range(100):
            (delay,) = link.delays(depart)
            arrivals.append(depart + delay)
            depart += 0.001
        assert arrivals != sorted(arrivals)


class TestTopology:
    def make(self):
        topo = Topology()
        topo.place("r0", "princeton").place("r1", "princeton").place("c0", "berkeley")
        topo.set_intra("princeton", LinkSpec(latency=ConstantLatency(0.001)))
        topo.set_link("berkeley", "princeton", LinkSpec(latency=ConstantLatency(0.04)))
        return topo

    def test_site_of(self):
        topo = self.make()
        assert topo.site_of("r0") == "princeton"
        with pytest.raises(ConfigError):
            topo.site_of("ghost")

    def test_intra_site_spec(self):
        topo = self.make()
        assert topo.link_spec("r0", "r1").latency.mean == 0.001

    def test_cross_site_spec_symmetric(self):
        topo = self.make()
        assert topo.link_spec("c0", "r0").latency.mean == 0.04
        assert topo.link_spec("r0", "c0").latency.mean == 0.04

    def test_loopback(self):
        topo = self.make()
        assert topo.link_spec("r0", "r0").latency.mean == 0.0

    def test_missing_link_raises_without_default(self):
        topo = Topology()
        topo.place("a", "s1").place("b", "s2")
        with pytest.raises(ConfigError):
            topo.link_spec("a", "b")

    def test_default_link_fallback(self):
        topo = Topology(default=LinkSpec(latency=ConstantLatency(0.5)))
        topo.place("a", "s1").place("b", "s2")
        assert topo.link_spec("a", "b").latency.mean == 0.5

    def test_processes_at_and_sites(self):
        topo = self.make()
        assert sorted(topo.processes_at("princeton")) == ["r0", "r1"]
        assert topo.sites == {"princeton", "berkeley"}

    def test_mean_latency(self):
        topo = self.make()
        assert topo.mean_latency("c0", "r1") == 0.04


class TestPartitionController:
    def test_blocked_across_groups(self):
        pc = PartitionController()
        pc.partition([["a", "b"], ["c"]])
        assert pc.blocked("a", "c")
        assert pc.blocked("c", "b")
        assert not pc.blocked("a", "b")

    def test_unlisted_processes_unrestricted(self):
        pc = PartitionController()
        pc.partition([["a"], ["b"]])
        assert not pc.blocked("a", "client")
        assert not pc.blocked("client", "b")

    def test_heal(self):
        pc = PartitionController()
        pc.partition([["a"], ["b"]])
        pc.heal()
        assert not pc.blocked("a", "b")
        assert not pc.active

    def test_isolate(self):
        pc = PartitionController()
        pc.isolate("a", ["b", "c"])
        assert pc.blocked("a", "b") and pc.blocked("a", "c")
        assert not pc.blocked("b", "c")

    def test_duplicate_membership_rejected(self):
        pc = PartitionController()
        with pytest.raises(ConfigError):
            pc.partition([["a"], ["a", "b"]])


class TestSimNetwork:
    def make(self):
        topo = Topology(default=LinkSpec(latency=ConstantLatency(0.01)))
        topo.place("a", "s1").place("b", "s2")
        return SimNetwork(topo, seed=0)

    def test_delays_and_counters(self):
        net = self.make()
        assert net.delays("a", "b", 0.0) == (0.01,)
        assert net.total_messages() == 1
        assert net.messages_sent[("s1", "s2")] == 1

    def test_partition_drops(self):
        net = self.make()
        net.partitions.partition([["a"], ["b"]])
        assert net.delays("a", "b", 0.0) == ()
        assert net.messages_dropped == 1

    def test_per_pair_links_independent_streams(self):
        topo = Topology(default=LinkSpec(latency=UniformLatency(0.0, 1.0)))
        topo.place("a", "s").place("b", "s").place("c", "s")
        net = SimNetwork(topo, seed=1)
        ab = [net.delays("a", "b", 0.0)[0] for _ in range(5)]
        # A different pair must not perturb a->b's stream.
        net2 = SimNetwork(topo, seed=1)
        for _ in range(5):
            net2.delays("a", "c", 0.0)
        ab2 = [net2.delays("a", "b", 0.0)[0] for _ in range(5)]
        assert ab == ab2
