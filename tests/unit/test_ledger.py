"""Unit tests for the perf-regression ledger: ingest, trends, detection.

The regression detector is exercised on synthetic histories — flat,
noisy-flat, step regression, gradual drift — because those are the shapes
CI actually sees; the thresholds asserted here are the ones the CI gate
(`repro perf check`) runs with.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.ledger import (
    LedgerRecord,
    append_records,
    bench_records,
    collect_meta,
    infer_direction,
    load_ledger,
    mad,
    median,
    trends,
)


def series(values, metric="wall_s", direction="lower", bench="bench"):
    return [
        LedgerRecord(bench=bench, metric=metric, value=v, direction=direction)
        for v in values
    ]


def one_trend(records, **kwargs):
    rows = trends(records, **kwargs)
    assert len(rows) == 1
    return rows[0]


class TestDirectionInference:
    @pytest.mark.parametrize("name", [
        "throughput", "read_throughput_16c", "txn_per_s", "speedup",
        "ok_rate", "optimized_txn_s_16c",
    ])
    def test_higher_is_better_names(self, name):
        assert infer_direction(name) == "higher"

    @pytest.mark.parametrize("name", [
        "wall_s", "rrt_write_s", "p99_latency_ms", "payload_bytes",
    ])
    def test_lower_is_better_names(self, name):
        assert infer_direction(name) == "lower"


class TestStatistics:
    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_mad(self):
        assert mad([1.0, 1.0, 1.0]) == 0.0
        assert mad([1.0, 2.0, 3.0, 4.0, 5.0]) == 1.0


class TestRegressionDetection:
    def test_flat_history_is_ok(self):
        t = one_trend(series([10.0] * 8))
        assert t.status == "ok"
        assert t.center == 10.0

    def test_noisy_flat_history_is_ok(self):
        values = [10.0, 10.3, 9.8, 10.1, 9.9, 10.2, 10.05]
        assert one_trend(series(values)).status == "ok"

    def test_step_regression_caught(self):
        # A 30% throughput drop on an otherwise flat series must fail.
        values = [100.0, 101.0, 99.5, 100.5, 100.2, 70.0]
        t = one_trend(series(values, metric="throughput", direction="higher"))
        assert t.status == "regression"
        assert t.delta_pct < -25

    def test_step_regression_lower_is_better(self):
        # Wall time jumping 30% is a regression too (direction-aware).
        values = [10.0, 10.1, 9.9, 10.0, 13.0]
        assert one_trend(series(values)).status == "regression"

    def test_improvement_not_flagged(self):
        values = [10.0, 10.1, 9.9, 10.0, 6.0]
        assert one_trend(series(values)).status == "improved"

    def test_gentle_drift_within_band_passes(self):
        # 1% per observation stays inside the 10% relative floor.
        values = [10.0 * (1.01 ** i) for i in range(6)]
        assert one_trend(series(values)).status == "ok"

    def test_drift_off_flat_baseline_caught(self):
        # A creeping slowdown after a long flat stretch: the median stays
        # anchored at the baseline, so the cumulative drift crosses the
        # band even though each single step is small.
        values = [10.0] * 6 + [10.8, 11.7, 12.6]
        assert one_trend(series(values)).status == "regression"

    def test_insufficient_history_never_fails(self):
        for n in (1, 2, 3):
            t = one_trend(series([100.0] * (n - 1) + [1.0]))
            assert t.status == "insufficient"

    def test_min_history_boundary(self):
        # min_history=3 -> the 4th observation is the first one judged.
        t = one_trend(series([10.0, 10.0, 10.0, 20.0]))
        assert t.status == "regression"

    def test_noise_widens_the_band(self):
        # The same absolute step passes when the history itself is noisy.
        noisy = [10.0, 14.0, 7.0, 13.0, 8.0, 12.0, 14.5]
        assert one_trend(series(noisy)).status == "ok"

    def test_series_keyed_by_bench_and_metric(self):
        records = series([10.0] * 5, bench="a") + series([9.0] * 2, bench="b")
        rows = trends(records)
        by_bench = {t.bench: t for t in rows}
        assert by_bench["a"].status == "ok"
        assert by_bench["b"].status == "insufficient"

    def test_zero_spread_uses_relative_floor(self):
        # Perfectly flat history: band = rel_floor * median, not zero.
        t = one_trend(series([10.0, 10.0, 10.0, 10.9]))
        assert t.status == "ok"  # +9% < 10% floor
        t = one_trend(series([10.0, 10.0, 10.0, 11.2]))
        assert t.status == "regression"


class TestLedgerIO:
    def test_append_load_round_trip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        records = series([1.0, 2.0]) + [
            LedgerRecord(bench="b", metric="throughput", value=100.0,
                         unit="req/s", direction="higher",
                         meta={"commit": "abc123"}),
        ]
        assert append_records(path, records) == 3
        loaded, skipped = load_ledger(path)
        assert skipped == 0
        assert [r.value for r in loaded] == [1.0, 2.0, 100.0]
        assert loaded[2].meta["commit"] == "abc123"
        assert loaded[2].direction == "higher"

    def test_missing_ledger_is_empty(self, tmp_path):
        records, skipped = load_ledger(tmp_path / "absent.jsonl")
        assert records == [] and skipped == 0

    def test_malformed_lines_warn_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_records(path, series([1.0]))
        with path.open("a") as fh:
            fh.write("{not json\n")
            fh.write(json.dumps({"schema": 99, "bench": "x"}) + "\n")
            fh.write(json.dumps({"schema": 1, "bench": "x"}) + "\n")
        with pytest.warns(RuntimeWarning, match="skipped 3 ledger line"):
            records, skipped = load_ledger(path)
        assert len(records) == 1 and skipped == 3

    def test_appends_accumulate(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_records(path, series([1.0]))
        append_records(path, series([2.0]))
        records, _ = load_ledger(path)
        assert [r.value for r in records] == [1.0, 2.0]

    def test_lines_are_sorted_json(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_records(path, series([1.0]))
        line = path.read_text().strip()
        keys = list(json.loads(line))
        assert keys == sorted(keys)


class TestBenchIngest:
    def doc(self, **overrides):
        base = {
            "schema": 2,
            "name": "rrt_sysnet",
            "text": "...",
            "data": None,
            "metrics": {
                "rrt_write_s": {"value": 3.4e-4, "unit": "s",
                                "direction": "lower"},
                "total_wall_s": 1.5,
            },
            "meta": {"commit": "abc123", "profile": "sysnet"},
        }
        base.update(overrides)
        return base

    def test_schema2_metrics_flattened(self):
        records, warnings = bench_records(self.doc(), source="x.json")
        assert warnings == []
        by_metric = {r.metric: r for r in records}
        assert by_metric["rrt_write_s"].value == pytest.approx(3.4e-4)
        assert by_metric["rrt_write_s"].unit == "s"
        assert by_metric["total_wall_s"].direction == "lower"  # inferred
        assert all(r.bench == "rrt_sysnet" for r in records)
        assert all(r.meta["commit"] == "abc123" for r in records)

    def test_legacy_document_warn_skipped(self):
        legacy = {"name": "old", "text": "...", "data": None}
        records, warnings = bench_records(legacy, source="old.json")
        assert records == []
        assert len(warnings) == 1 and "legacy" in warnings[0]

    def test_non_numeric_metric_skipped(self):
        doc = self.doc(metrics={"bad": "fast", "good": 1.0})
        records, warnings = bench_records(doc)
        assert [r.metric for r in records] == ["good"]
        assert len(warnings) == 1

    def test_missing_metrics_section(self):
        records, warnings = bench_records(self.doc(metrics={}))
        assert records == [] and len(warnings) == 1


class TestCollectMeta:
    def test_env_commit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMMIT", "deadbeef")
        meta = collect_meta(profile="sysnet", protocol="basic", workers=4)
        assert meta["commit"] == "deadbeef"
        assert meta["profile"] == "sysnet"
        assert meta["protocol"] == "basic"
        assert meta["workers"] == 4
        assert "python" in meta["host"]
        assert meta["recorded_at"]
