"""Unit tests for the T-Paxos transaction manager (§3.5) at message level."""

from __future__ import annotations

import pytest

from repro.core.config import ReplicaConfig
from repro.core.messages import Reply
from repro.core.replica import Replica
from repro.core.requests import ClientRequest, RequestId
from repro.election.static import ManualElector, StaticElector
from repro.services.bank import BankService
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.sim.trace import TraceRecorder
from repro.sim.world import World
from repro.types import ReplyStatus, RequestKind

PEERS = ("r0", "r1", "r2")


def bank_factory():
    service = BankService()
    service.accounts = {"alice": 100, "bob": 100}
    return service


def make_leader(seed=0, **config_kw):
    kernel = Kernel(seed=seed)
    trace = TraceRecorder()
    world = World(kernel, trace=trace)
    config = ReplicaConfig(peers=PEERS, **config_kw)
    elector = ManualElector(None)
    leader = Replica("r0", config, bank_factory, elector)
    world.add(leader)
    for pid in PEERS[1:]:
        world.add(Replica(pid, config, bank_factory, StaticElector("r0")))
    world.add(Process("c0"))
    world.add(Process("c1"))
    world.start()
    elector.set_leader("r0")
    kernel.run(until=0.1)
    assert leader.is_leading
    return kernel, trace, leader


def txn_op(seq, op, txn="t1", txn_seq=None, client="c0"):
    return ClientRequest(
        RequestId(client, seq), RequestKind.TXN_OP, op=op, txn=txn,
        txn_seq=txn_seq if txn_seq is not None else 0,
    )


def commit(seq, txn="t1", n_ops=1, client="c0"):
    return ClientRequest(
        RequestId(client, seq), RequestKind.TXN_COMMIT, txn=txn, txn_seq=n_ops
    )


def abort(seq, txn="t1", client="c0"):
    return ClientRequest(RequestId(client, seq), RequestKind.TXN_ABORT, txn=txn)


def replies_to(trace, client):
    return [e.detail for e in trace.of_kind("send")
            if e.dst == client and isinstance(e.detail, Reply)]


class TestOps:
    def test_op_executed_and_answered_immediately(self):
        kernel, trace, leader = make_leader()
        leader.on_message("c0", txn_op(0, ("withdraw", "alice", 10)))
        kernel.run(until=kernel.now + 0.05)
        (reply,) = replies_to(trace, "c0")
        assert reply.status is ReplyStatus.OK and reply.value == 90
        # Executed on the leader, but nothing replicated yet.
        assert leader.service.accounts["alice"] == 90
        assert leader.log.frontier == 0

    def test_op_holds_locks(self):
        kernel, _trace, leader = make_leader()
        leader.on_message("c0", txn_op(0, ("withdraw", "alice", 10)))
        kernel.run(until=kernel.now + 0.01)
        assert "alice" in leader.locks.holds("t1")

    def test_retransmitted_op_replies_cached_value(self):
        kernel, trace, leader = make_leader()
        request = txn_op(0, ("withdraw", "alice", 10))
        leader.on_message("c0", request)
        leader.on_message("c0", request)
        kernel.run(until=kernel.now + 0.05)
        values = [r.value for r in replies_to(trace, "c0")]
        assert values == [90, 90]
        assert leader.service.accounts["alice"] == 90  # executed once

    def test_conflicting_txn_aborted_no_wait(self):
        kernel, trace, leader = make_leader()
        leader.on_message("c0", txn_op(0, ("withdraw", "alice", 10), txn="t1"))
        leader.on_message("c1", txn_op(0, ("deposit", "alice", 5), txn="t2", client="c1"))
        kernel.run(until=kernel.now + 0.05)
        (t2_reply,) = replies_to(trace, "c1")
        assert t2_reply.status is ReplyStatus.ABORTED
        assert leader.service.accounts["alice"] == 90  # only t1's effect

    def test_failed_op_keeps_txn_alive(self):
        kernel, trace, leader = make_leader()
        leader.on_message("c0", txn_op(0, ("withdraw", "ghost", 1)))
        kernel.run(until=kernel.now + 0.05)
        (reply,) = replies_to(trace, "c0")
        assert reply.status is ReplyStatus.ERROR
        # Next op with txn_seq 0 still starts cleanly in the same txn.
        leader.on_message("c0", txn_op(1, ("withdraw", "alice", 10), txn_seq=0))
        kernel.run(until=kernel.now + 0.05)
        assert replies_to(trace, "c0")[-1].status is ReplyStatus.OK


class TestCommitAbort:
    def test_commit_replicates_and_releases_locks(self):
        kernel, trace, leader = make_leader()
        leader.on_message("c0", txn_op(0, ("withdraw", "alice", 10)))
        leader.on_message("c0", commit(1, n_ops=1))
        kernel.run(until=kernel.now + 0.2)
        assert replies_to(trace, "c0")[-1].value == "committed"
        assert leader.log.frontier == 1
        assert leader.locks.holds("t1") == frozenset()
        assert "t1" not in leader.txns.active

    def test_commit_retransmit_after_decision_replies_cached(self):
        kernel, trace, leader = make_leader()
        leader.on_message("c0", txn_op(0, ("withdraw", "alice", 10)))
        leader.on_message("c0", commit(1, n_ops=1))
        kernel.run(until=kernel.now + 0.2)
        leader.on_message("c0", commit(1, n_ops=1))
        kernel.run(until=kernel.now + 0.2)
        assert replies_to(trace, "c0")[-1].value == "committed"
        assert leader.log.frontier == 1  # no second instance

    def test_commit_for_unknown_txn_aborted(self):
        kernel, trace, leader = make_leader()
        leader.on_message("c0", commit(0, txn="nope", n_ops=2))
        kernel.run(until=kernel.now + 0.05)
        assert replies_to(trace, "c0")[-1].status is ReplyStatus.ABORTED

    def test_commit_with_missing_prefix_aborts(self):
        kernel, trace, leader = make_leader()
        leader.on_message("c0", txn_op(0, ("withdraw", "alice", 10)))
        # Commit claims 2 ops but the leader saw only 1.
        leader.on_message("c0", commit(1, n_ops=2))
        kernel.run(until=kernel.now + 0.1)
        assert replies_to(trace, "c0")[-1].status is ReplyStatus.ABORTED
        # The seen op was rolled back.
        assert leader.service.accounts["alice"] == 100

    def test_op_with_wrong_seq_aborts(self):
        kernel, trace, leader = make_leader()
        leader.on_message("c0", txn_op(0, ("withdraw", "alice", 10), txn_seq=1))
        kernel.run(until=kernel.now + 0.05)
        assert replies_to(trace, "c0")[-1].status is ReplyStatus.ABORTED

    def test_abort_rolls_back_in_reverse(self):
        kernel, trace, leader = make_leader()
        leader.on_message("c0", txn_op(0, ("withdraw", "alice", 30)))
        leader.on_message("c0", txn_op(1, ("deposit", "bob", 30), txn_seq=1))
        leader.on_message("c0", abort(2))
        kernel.run(until=kernel.now + 0.05)
        assert leader.service.accounts == {"alice": 100, "bob": 100}
        assert replies_to(trace, "c0")[-1].value == "aborted"
        assert leader.locks.owners() == frozenset()

    def test_abort_of_unknown_txn_is_ok(self):
        kernel, trace, leader = make_leader()
        leader.on_message("c0", abort(0, txn="nope"))
        kernel.run(until=kernel.now + 0.05)
        assert replies_to(trace, "c0")[-1].status is ReplyStatus.OK

    def test_op_after_commit_in_flight_rejected(self):
        kernel, trace, leader = make_leader()
        leader.on_message("c0", txn_op(0, ("withdraw", "alice", 10)))
        leader.on_message("c0", commit(1, n_ops=1))
        leader.on_message("c0", txn_op(2, ("deposit", "bob", 1), txn_seq=1))
        kernel.run(until=kernel.now + 0.2)
        errors = [r for r in replies_to(trace, "c0") if r.status is ReplyStatus.ERROR]
        assert errors and "committing" in str(errors[0].value)

    def test_drop_all_counts_aborts_without_undo(self):
        kernel, _trace, leader = make_leader()
        leader.on_message("c0", txn_op(0, ("withdraw", "alice", 30)))
        kernel.run(until=kernel.now + 0.01)
        before = leader.txns.aborts
        leader.txns.drop_all()
        assert leader.txns.aborts == before + 1
        assert leader.txns.active == {}
        # No undo ran (drop_all relies on the caller rebuilding state).
        assert leader.service.accounts["alice"] == 70


class TestIdleExpiry:
    """Zombie transactions: a client that abandons a transaction (e.g. a
    stale leader aborted it mid-stream during a partial view change, so it
    retried under a fresh txn id) never sends TXN_ABORT — the idle-expiry
    sweep must roll the orphan back and release its locks."""

    def test_idle_txn_expires_and_rolls_back(self):
        kernel, _trace, leader = make_leader(txn_timeout=0.3)
        leader.on_message("c0", txn_op(0, ("withdraw", "alice", 30)))
        kernel.run(until=kernel.now + 0.05)
        assert leader.service.accounts["alice"] == 70
        kernel.run(until=kernel.now + 0.6)  # idle well past the timeout
        assert leader.txns.active == {}
        assert leader.service.accounts["alice"] == 100  # undone
        assert leader.locks.owners() == frozenset()

    def test_activity_refreshes_the_clock(self):
        kernel, _trace, leader = make_leader(txn_timeout=0.3)
        leader.on_message("c0", txn_op(0, ("withdraw", "alice", 10)))
        kernel.run(until=kernel.now + 0.2)
        # A second op arrives before the timeout: the transaction is live.
        leader.on_message("c0", txn_op(1, ("deposit", "bob", 10), txn_seq=1))
        kernel.run(until=kernel.now + 0.2)
        assert "t1" in leader.txns.active  # idle only 0.2s < 0.3s
        kernel.run(until=kernel.now + 0.4)
        assert leader.txns.active == {}  # now it expired

    def test_zero_timeout_disables_expiry(self):
        kernel, _trace, leader = make_leader(txn_timeout=0.0)
        leader.on_message("c0", txn_op(0, ("withdraw", "alice", 30)))
        kernel.run(until=kernel.now + 2.0)
        assert "t1" in leader.txns.active

    def test_expiry_unblocks_later_transactions(self):
        kernel, trace, leader = make_leader(txn_timeout=0.3)
        leader.on_message("c0", txn_op(0, ("withdraw", "alice", 30)))
        kernel.run(until=kernel.now + 0.05)
        # While the zombie holds the lock, c1's conflicting txn aborts.
        leader.on_message("c1", txn_op(0, ("withdraw", "alice", 5), txn="t2", client="c1"))
        kernel.run(until=kernel.now + 0.05)
        assert replies_to(trace, "c1")[-1].status is ReplyStatus.ABORTED
        kernel.run(until=kernel.now + 0.6)  # zombie expires
        leader.on_message("c1", txn_op(1, ("withdraw", "alice", 5), txn="t3", client="c1"))
        kernel.run(until=kernel.now + 0.05)
        assert replies_to(trace, "c1")[-1].status is ReplyStatus.OK
