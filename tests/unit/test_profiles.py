"""Unit tests for the calibrated deployment profiles."""

from __future__ import annotations

import pytest

from repro.net.profiles import (
    PROFILES,
    NetworkProfile,
    WAN_LATENCY,
    berkeley_princeton,
    get_profile,
    sysnet,
    wan,
)


class TestRegistry:
    def test_all_profiles_buildable(self):
        for name in PROFILES:
            profile = get_profile(name)
            assert isinstance(profile, NetworkProfile)
            topo = profile.build_topology(("r0", "r1", "r2"), ("c0", "c1"))
            # Every replica/client pair must have a link.
            for a in ("r0", "r1", "r2", "c0", "c1"):
                for b in ("r0", "r1", "r2", "c0", "c1"):
                    assert topo.link_spec(a, b) is not None

    def test_unknown_name_raises_with_hint(self):
        with pytest.raises(KeyError, match="sysnet"):
            get_profile("bogus")


class TestSysnet:
    def test_servers_share_a_site(self):
        topo = sysnet().build_topology(("r0", "r1", "r2"), ("c0",))
        assert topo.site_of("r0") == topo.site_of("r2") == "servers"
        assert topo.site_of("c0") == "clients"

    def test_server_link_faster_than_client_link(self):
        topo = sysnet().build_topology(("r0", "r1"), ("c0",))
        assert topo.mean_latency("r0", "r1") < topo.mean_latency("c0", "r0")

    def test_paper_numbers_recorded(self):
        assert sysnet().paper_rrt["write"] == pytest.approx(0.338e-3)


class TestWan:
    def test_leader_at_uiuc(self):
        topo = wan().build_topology(("r0", "r1", "r2"), ("c0", "c1"))
        assert topo.site_of("r0") == "uiuc"
        assert topo.site_of("r1") == "utah"
        assert topo.site_of("r2") == "texas"

    def test_clients_alternate_sites(self):
        topo = wan().build_topology(("r0", "r1", "r2"), ("c0", "c1", "c2"))
        assert topo.site_of("c0") == "berkeley"
        assert topo.site_of("c1") == "oregon"
        assert topo.site_of("c2") == "berkeley"

    def test_extra_replicas_wrap_sites(self):
        topo = wan().build_topology(tuple(f"r{i}" for i in range(5)), ("c0",))
        assert topo.site_of("r3") == "uiuc"
        assert topo.site_of("r4") == "utah"

    def test_latency_matrix_symmetric_lookup(self):
        topo = wan().build_topology(("r0", "r1", "r2"), ("c0",))
        assert topo.mean_latency("r0", "r1") == pytest.approx(
            topo.mean_latency("r1", "r0")
        )

    def test_calibration_identities(self):
        """The pinned latencies reproduce the paper's RRTs analytically."""
        m_client_leader = WAN_LATENCY[("berkeley", "uiuc")]
        m_fast_backup = WAN_LATENCY[("uiuc", "texas")]
        confirm_path = WAN_LATENCY[("berkeley", "utah")] + WAN_LATENCY[("uiuc", "utah")]
        assert 2 * m_client_leader == pytest.approx(70.82e-3, rel=0.01)
        assert 2 * m_client_leader + 2 * m_fast_backup == pytest.approx(106.73e-3, rel=0.01)
        assert confirm_path + m_client_leader == pytest.approx(75.49e-3, rel=0.01)


class TestBerkeleyPrinceton:
    def test_replicas_colocated(self):
        topo = berkeley_princeton().build_topology(("r0", "r1", "r2"), ("c0",))
        assert {topo.site_of(f"r{i}") for i in range(3)} == {"princeton"}

    def test_m_much_smaller_than_M(self):
        topo = berkeley_princeton().build_topology(("r0", "r1"), ("c0",))
        assert topo.mean_latency("r0", "r1") < topo.mean_latency("c0", "r0") / 50


class TestCpuScaling:
    def test_replica_cpu_for_adds_per_connection_overhead(self):
        profile = sysnet()
        base = profile.replica_cpu
        scaled = profile.replica_cpu_for(64)
        assert scaled.extra_per_message == pytest.approx(
            profile.per_connection_overhead * 64
        )
        assert scaled.send_cost == base.send_cost
