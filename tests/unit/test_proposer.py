"""Unit tests for the leader's sequential proposal pipeline.

These drive a real Replica inside a minimal world (constant latency, no
CPU cost) and inspect the pipeline directly.
"""

from __future__ import annotations

import pytest

from repro.core.config import ReplicaConfig
from repro.core.messages import AcceptBatch, Proposal
from repro.core.proposer import DEFER, SKIP, ProposalItem
from repro.core.replica import Replica
from repro.core.requests import ClientRequest, RequestId
from repro.core.state import StatePayload
from repro.election.static import StaticElector
from repro.services.noop import NoopService
from repro.sim.kernel import Kernel
from repro.sim.trace import TraceRecorder
from repro.sim.world import World
from repro.types import RequestKind, StateTransferMode

PEERS = ("r0", "r1", "r2")


def make_cluster(seed=0, **config_overrides):
    kernel = Kernel(seed=seed)
    trace = TraceRecorder()
    world = World(kernel, trace=trace)
    config = ReplicaConfig(peers=PEERS, **config_overrides)
    replicas = {}
    for pid in PEERS:
        replica = Replica(pid, config, NoopService, StaticElector("r0"))
        world.add(replica)
        replicas[pid] = replica
    world.start()
    kernel.run(until=0.5)  # let the initial (empty) recovery finish
    return kernel, world, trace, replicas


def make_item(tag: str, outcomes: list):
    """An item whose prepare() yields from ``outcomes`` and records commits."""
    committed = []

    def prepare():
        outcome = outcomes.pop(0)
        if outcome == "proposal":
            request = ClientRequest(RequestId(f"c-{tag}", 0), RequestKind.WRITE)
            return Proposal(
                requests=(request,),
                # A valid NoopService snapshot, so backups can apply it.
                payload=StatePayload(StateTransferMode.FULL, (1, b"")),
                reply=tag,
            )
        return outcome

    item = ProposalItem(label=tag, prepare=prepare, on_committed=lambda p, i: committed.append(i))
    return item, committed


class TestPipeline:
    def test_single_item_commits(self):
        kernel, _world, _trace, replicas = make_cluster()
        leader = replicas["r0"]
        item, committed = make_item("a", ["proposal"])
        leader.proposer.submit(item)
        kernel.run(until=kernel.now + 1.0)
        assert committed == [1]
        assert leader.log.frontier == 1

    def test_items_get_consecutive_instances(self):
        kernel, _world, _trace, replicas = make_cluster()
        leader = replicas["r0"]
        records = []
        for tag in ("a", "b", "c"):
            item, committed = make_item(tag, ["proposal"])
            records.append(committed)
            leader.proposer.submit(item)
        kernel.run(until=kernel.now + 1.0)
        assert [c[0] for c in records] == [1, 2, 3]

    def test_skip_items_consume_no_instance(self):
        kernel, _world, _trace, replicas = make_cluster()
        leader = replicas["r0"]
        skip_item, skip_committed = make_item("skip", [SKIP])
        real_item, real_committed = make_item("real", ["proposal"])
        leader.proposer.submit(skip_item)
        leader.proposer.submit(real_item)
        kernel.run(until=kernel.now + 1.0)
        assert skip_committed == []
        assert real_committed == [1]

    def test_defer_moves_on(self):
        kernel, _world, _trace, replicas = make_cluster()
        leader = replicas["r0"]
        deferred, deferred_committed = make_item("deferred", [DEFER, "proposal"])
        ready, ready_committed = make_item("ready", ["proposal"])
        leader.proposer.submit(deferred)
        leader.proposer.submit(ready)
        kernel.run(until=kernel.now + 1.0)
        # The deferred item yielded its slot; it re-enters later.
        assert ready_committed == [1]
        leader.proposer.resubmit_front(deferred)
        kernel.run(until=kernel.now + 1.0)
        assert deferred_committed == [2]

    def test_batching_under_load(self):
        kernel, _world, _trace, replicas = make_cluster()
        leader = replicas["r0"]
        for tag in range(10):
            item, _ = make_item(str(tag), ["proposal"])
            leader.proposer.submit(item)
        kernel.run(until=kernel.now + 1.0)
        # First round has 1 item (pumped immediately), the rest batch.
        assert leader.proposer.committed == 10
        assert leader.proposer.rounds < 10

    def test_max_batch_respected(self):
        kernel, _world, trace, replicas = make_cluster(max_batch=3)
        leader = replicas["r0"]
        # Stall the pipeline so a queue builds up, then release.
        leader.proposer.pause()
        for tag in range(9):
            item, _ = make_item(str(tag), ["proposal"])
            leader.proposer.submit(item)
        leader.proposer.resume()
        kernel.run(until=kernel.now + 1.0)
        batches = [
            len(e.detail.entries)
            for e in trace.of_kind("send")
            if isinstance(e.detail, AcceptBatch) and e.dst == "r1"
        ]
        assert max(batches) <= 3
        assert sum(batches) == 9

    def test_pause_blocks_pumping(self):
        kernel, _world, _trace, replicas = make_cluster()
        leader = replicas["r0"]
        leader.proposer.pause()
        item, committed = make_item("a", ["proposal"])
        leader.proposer.submit(item)
        kernel.run(until=kernel.now + 1.0)
        assert committed == []
        leader.proposer.resume()
        kernel.run(until=kernel.now + 1.0)
        assert committed == [1]

    def test_stop_drops_queue_and_inflight(self):
        kernel, _world, _trace, replicas = make_cluster()
        leader = replicas["r0"]
        item, committed = make_item("a", ["proposal"])
        leader.proposer.submit(item)  # in flight now (accepts sent)
        leader.proposer.stop()
        kernel.run(until=kernel.now + 1.0)
        assert committed == []
        assert leader.proposer.depth == 0

    def test_retransmit_on_silent_backup(self):
        kernel, world, trace, replicas = make_cluster(accept_retry=0.01)
        leader = replicas["r0"]
        # Both backups down: no majority, so the leader keeps retransmitting.
        world.crash("r1")
        world.crash("r2")
        item, committed = make_item("a", ["proposal"])
        leader.proposer.submit(item)
        kernel.run(until=kernel.now + 0.1)
        assert committed == []
        sends = [e for e in trace.of_kind("send") if isinstance(e.detail, AcceptBatch)]
        assert len(sends) > 4  # original + retries
        # Recover one backup: commit completes.
        world.recover("r1")
        kernel.run(until=kernel.now + 0.2)
        assert committed == [1]

    def test_commit_needs_majority_not_all(self):
        kernel, world, _trace, replicas = make_cluster()
        world.crash("r2")
        leader = replicas["r0"]
        item, committed = make_item("a", ["proposal"])
        leader.proposer.submit(item)
        kernel.run(until=kernel.now + 1.0)
        assert committed == [1]


class TestExecuteTime:
    def test_execute_time_stalls_pipeline(self):
        from repro.sim.process import Process

        kernel, world, _trace, replicas = make_cluster(execute_time=0.05)
        world.add(Process("c0"))  # reply sink
        leader = replicas["r0"]
        request = ClientRequest(RequestId("c0", 0), RequestKind.WRITE, op=("write",))
        leader.on_message("c0", request)
        # Can't commit before E has elapsed.
        kernel.run(until=kernel.now + 0.04)
        assert leader.log.frontier == 0
        kernel.run(until=kernel.now + 0.2)
        assert leader.log.frontier == 1
