"""Unit tests for the leader electors."""

from __future__ import annotations

from repro.election.omega import Heartbeat, OmegaElector
from repro.election.static import ManualElector, ManualElectorGroup, StaticElector
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.sim.world import World

import pytest


class Host(Process):
    """A minimal elector host that records leader changes."""

    def __init__(self, pid, elector):
        super().__init__(pid)
        self.elector = elector
        self.changes: list[object] = []

    def on_start(self):
        self.elector.on_start()

    def on_message(self, src, msg):
        self.elector.on_message(src, msg)

    def on_crash(self):
        self.elector.on_crash()

    def on_recover(self):
        self.elector.on_recover()

    def leader_changed(self, new_leader):
        self.changes.append(new_leader)


def omega_cluster(n=3, seed=0, hb=0.05, timeout=0.25):
    kernel = Kernel(seed=seed)
    world = World(kernel)
    pids = tuple(f"r{i}" for i in range(n))
    hosts = []
    for pid in pids:
        elector = OmegaElector(heartbeat_interval=hb, suspect_timeout=timeout)
        host = Host(pid, elector)
        elector.attach(host, pids)
        world.add(host)
        hosts.append(host)
    return kernel, world, hosts


class TestStaticElector:
    def test_fixed_leader_announced_at_start(self):
        elector = StaticElector("r0")
        host = Host("r1", elector)
        elector.attach(host, ("r0", "r1"))
        host.env = None  # not needed
        host.on_start()
        assert host.changes == ["r0"]
        assert elector.current_leader() == "r0"
        assert not elector.is_leader()


class TestManualElector:
    def test_set_leader_notifies(self):
        elector = ManualElector("r0")
        host = Host("r0", elector)
        elector.attach(host, ("r0", "r1"))
        host.on_start()
        elector.set_leader("r1")
        assert host.changes == ["r0", "r1"]

    def test_set_same_leader_no_duplicate_notification(self):
        elector = ManualElector("r0")
        host = Host("r0", elector)
        elector.attach(host, ("r0",))
        host.on_start()
        elector.set_leader("r0")
        assert host.changes == ["r0"]

    def test_group_switches_all(self):
        group = ManualElectorGroup("r0")
        hosts = []
        for pid in ("r0", "r1"):
            elector = group.elector_for(pid)
            host = Host(pid, elector)
            elector.attach(host, ("r0", "r1"))
            host.on_start()
            hosts.append(host)
        group.set_leader("r1")
        assert all(h.changes[-1] == "r1" for h in hosts)


class TestOmegaElector:
    def test_converges_to_lowest_pid(self):
        kernel, _world, hosts = omega_cluster()
        for host in hosts:
            pass
        _world.start()
        kernel.run(until=1.0)
        assert all(h.elector.current_leader() == "r0" for h in hosts)

    def test_leader_crash_triggers_reelection(self):
        kernel, world, hosts = omega_cluster()
        world.start()
        kernel.run(until=1.0)
        world.crash("r0")
        kernel.run(until=2.0)
        survivors = [h for h in hosts if h.pid != "r0"]
        assert all(h.elector.current_leader() == "r1" for h in survivors)

    def test_stability_recovered_lower_pid_does_not_depose(self):
        # §3.6 / [22]: a working leader stays leader even when a
        # smaller-id process comes back.
        kernel, world, hosts = omega_cluster()
        world.start()
        kernel.run(until=1.0)
        world.crash("r0")
        kernel.run(until=2.0)
        world.recover("r0")
        kernel.run(until=4.0)
        survivors = [h for h in hosts if h.pid != "r0"]
        assert all(h.elector.current_leader() == "r1" for h in survivors)

    def test_recovered_process_adopts_current_leader(self):
        kernel, world, hosts = omega_cluster()
        world.start()
        kernel.run(until=1.0)
        world.crash("r0")
        kernel.run(until=2.0)
        world.recover("r0")
        kernel.run(until=4.0)
        r0 = hosts[0]
        assert r0.elector.current_leader() == "r1"

    def test_validation(self):
        with pytest.raises(ValueError):
            OmegaElector(heartbeat_interval=0.5, suspect_timeout=0.25)

    def test_switch_counter(self):
        kernel, world, hosts = omega_cluster()
        world.start()
        kernel.run(until=1.0)
        world.crash("r0")
        kernel.run(until=2.0)
        assert hosts[1].elector.switches >= 2  # initial election + failover

    def test_heartbeats_are_consumed(self):
        elector = OmegaElector()
        host = Host("r0", elector)
        elector.attach(host, ("r0", "r1"))
        assert elector.on_message("r1", Heartbeat(sender="r1")) is True
        assert elector.on_message("r1", "not-a-heartbeat") is False
