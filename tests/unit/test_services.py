"""Unit tests for the application services."""

from __future__ import annotations

import random

import pytest

from repro.errors import ServiceError
from repro.services.bank import BankService
from repro.services.base import ExecutionContext
from repro.services.broker import ResourceBrokerService
from repro.services.counter import CounterService
from repro.services.gridsched import GridSchedulerService
from repro.services.kvstore import KVStoreService
from repro.services.noop import NoopService


def ctx(seed=0, now=0.0):
    return ExecutionContext(rng=random.Random(seed), now=now)


class TestNoop:
    def test_read_returns_version(self):
        s = NoopService()
        assert s.execute(("read",), ctx()).reply == 0

    def test_write_bumps_version(self):
        s = NoopService()
        assert s.execute(("write",), ctx()).reply == 1
        assert s.execute(("write",), ctx()).reply == 2

    def test_undo(self):
        s = NoopService()
        result = s.execute(("write",), ctx())
        result.undo()
        assert s.version == 0

    def test_snapshot_restore(self):
        s = NoopService(state_size=64)
        s.execute(("write",), ctx())
        snap = s.snapshot()
        t = NoopService()
        t.restore(snap)
        assert t.version == 1

    def test_no_locks(self):
        s = NoopService()
        assert s.locks_for(("write",)) == (frozenset(), frozenset())

    def test_padding_size(self):
        s = NoopService(state_size=1000)
        assert len(s.snapshot()[1]) == 1000

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            NoopService().execute(("bogus",), ctx())


class TestKVStore:
    def test_put_get(self):
        s = KVStoreService()
        assert s.execute(("put", "k", 1), ctx()).reply is None
        assert s.execute(("get", "k"), ctx()).reply == 1

    def test_put_returns_previous(self):
        s = KVStoreService()
        s.execute(("put", "k", 1), ctx())
        assert s.execute(("put", "k", 2), ctx()).reply == 1

    def test_delete(self):
        s = KVStoreService()
        s.execute(("put", "k", 1), ctx())
        assert s.execute(("delete", "k"), ctx()).reply == 1
        assert s.execute(("get", "k"), ctx()).reply is None

    def test_cas_success_and_failure(self):
        s = KVStoreService()
        s.execute(("put", "k", 1), ctx())
        assert s.execute(("cas", "k", 1, 2), ctx()).reply is True
        assert s.execute(("cas", "k", 1, 3), ctx()).reply is False
        assert s.data["k"] == 2

    def test_keys(self):
        s = KVStoreService()
        s.execute(("put", "b", 1), ctx())
        s.execute(("put", "a", 1), ctx())
        assert s.execute(("keys",), ctx()).reply == ["a", "b"]

    def test_undo_put_restores_missing(self):
        s = KVStoreService()
        result = s.execute(("put", "k", 1), ctx())
        result.undo()
        assert "k" not in s.data

    def test_undo_put_restores_previous(self):
        s = KVStoreService()
        s.execute(("put", "k", 1), ctx())
        result = s.execute(("put", "k", 2), ctx())
        result.undo()
        assert s.data["k"] == 1

    def test_undo_delete(self):
        s = KVStoreService()
        s.execute(("put", "k", 1), ctx())
        result = s.execute(("delete", "k"), ctx())
        result.undo()
        assert s.data["k"] == 1

    def test_delta_roundtrip(self):
        a, b = KVStoreService(), KVStoreService()
        r = a.execute(("put", "k", 5), ctx())
        b.apply_delta(r.delta)
        assert b.data == a.data

    def test_locks(self):
        s = KVStoreService()
        assert s.locks_for(("get", "k")) == (frozenset({"k"}), frozenset())
        assert s.locks_for(("put", "k", 1)) == (frozenset(), frozenset({"k"}))

    def test_fingerprint_order_insensitive(self):
        a, b = KVStoreService(), KVStoreService()
        a.execute(("put", "x", 1), ctx())
        a.execute(("put", "y", 2), ctx())
        b.execute(("put", "y", 2), ctx())
        b.execute(("put", "x", 1), ctx())
        assert a.state_fingerprint() == b.state_fingerprint()


class TestCounter:
    def test_add(self):
        s = CounterService()
        assert s.execute(("add", 5), ctx()).reply == 5

    def test_add_random_uses_rng(self):
        a, b = CounterService(), CounterService()
        ra = a.execute(("add_random", 1, 1000), ctx(seed=1))
        rb = b.execute(("add_random", 1, 1000), ctx(seed=2))
        assert ra.reply != rb.reply  # different streams -> divergence

    def test_add_random_repro_replay(self):
        a, b = CounterService(), CounterService()
        result = a.execute(("add_random", 1, 1000), ctx(seed=1))
        b.replay(("add_random", 1, 1000), result.repro)
        assert b.value == a.value

    def test_undo(self):
        s = CounterService()
        result = s.execute(("add", 5), ctx())
        result.undo()
        assert s.value == 0

    def test_delta(self):
        a, b = CounterService(), CounterService()
        r = a.execute(("add", 3), ctx())
        b.apply_delta(r.delta)
        assert b.value == 3


class TestBroker:
    def loaded(self):
        s = ResourceBrokerService()
        for name in ("n1", "n2", "n3"):
            s.execute(("add_resource", name, 100), ctx())
        return s

    def test_request_places_task(self):
        s = self.loaded()
        result = s.execute(("request", "t1", 10), ctx())
        assert result.reply in ("n1", "n2", "n3")
        assert s.placements["t1"][0] == result.reply
        assert s.resources[result.reply][1] == 10

    def test_request_is_nondeterministic_across_rngs(self):
        outcomes = set()
        for seed in range(20):
            s = self.loaded()
            outcomes.add(s.execute(("request", "t", 10), ctx(seed=seed)).reply)
        assert len(outcomes) > 1

    def test_repro_replay_matches_leader(self):
        leader, backup = self.loaded(), self.loaded()
        result = leader.execute(("request", "t1", 10), ctx(seed=3))
        backup.replay(("request", "t1", 10), result.repro)
        assert backup.state_fingerprint() == leader.state_fingerprint()

    def test_no_capacity_returns_none(self):
        s = ResourceBrokerService()
        s.execute(("add_resource", "n1", 5), ctx())
        assert s.execute(("request", "t1", 10), ctx()).reply is None

    def test_release(self):
        s = self.loaded()
        placed = s.execute(("request", "t1", 10), ctx()).reply
        assert s.execute(("release", "t1"), ctx()).reply is True
        assert s.resources[placed][1] == 0
        assert s.execute(("release", "t1"), ctx()).reply is False

    def test_duplicate_resource_rejected(self):
        s = self.loaded()
        with pytest.raises(ServiceError):
            s.execute(("add_resource", "n1", 10), ctx())

    def test_duplicate_task_rejected(self):
        s = self.loaded()
        s.execute(("request", "t1", 10), ctx())
        with pytest.raises(ServiceError):
            s.execute(("request", "t1", 10), ctx())

    def test_power_of_two_prefers_less_loaded(self):
        s = ResourceBrokerService()
        s.execute(("add_resource", "busy", 1000), ctx())
        s.execute(("add_resource", "idle", 1000), ctx())
        s.resources["busy"][1] = 900
        # With both candidates sampled, the less loaded one must win.
        picks = {s._pick(10, ctx(seed=i)) for i in range(10)}
        assert picks == {"idle"}

    def test_undo_request(self):
        s = self.loaded()
        result = s.execute(("request", "t1", 10), ctx())
        result.undo()
        assert "t1" not in s.placements
        assert all(load == 0 for _cap, load in s.resources.values())

    def test_snapshot_restore(self):
        s = self.loaded()
        s.execute(("request", "t1", 10), ctx())
        t = ResourceBrokerService()
        t.restore(s.snapshot())
        assert t.state_fingerprint() == s.state_fingerprint()

    def test_delta_roundtrip(self):
        leader, backup = self.loaded(), self.loaded()
        result = leader.execute(("request", "t1", 10), ctx())
        backup.apply_delta(result.delta)
        assert backup.state_fingerprint() == leader.state_fingerprint()


class TestGridScheduler:
    def test_fcfs_order(self):
        s = GridSchedulerService()
        s.execute(("submit", "j1", 0), ctx(now=1.0))
        s.execute(("submit", "j2", 0), ctx(now=2.0))
        assert s.execute(("dispatch",), ctx(now=3.0)).reply == "j1"

    def test_priority_overrides_fcfs(self):
        # The paper's §2 example: B arrives later with higher priority.
        s = GridSchedulerService()
        s.execute(("submit", "A", 0), ctx(now=1.0))
        s.execute(("submit", "B", 5), ctx(now=2.0))
        assert s.execute(("dispatch",), ctx(now=3.0)).reply == "B"

    def test_dispatch_depends_on_examination_time(self):
        # Examining between t1 and t2 picks A; after t2 picks B. Same
        # request sequence, different outcome — the §2 nondeterminism.
        def build():
            s = GridSchedulerService()
            s.execute(("submit", "A", 0), ctx(now=1.0))
            s.pending["B"] = type(s.pending["A"])("B", 5, 2.0, 1)  # arrives at 2.0
            return s

        early = build().execute(("dispatch",), ctx(now=1.5)).reply
        late = build().execute(("dispatch",), ctx(now=3.0)).reply
        assert early == "A" and late == "B"

    def test_dispatch_empty_returns_none(self):
        s = GridSchedulerService()
        assert s.execute(("dispatch",), ctx()).reply is None

    def test_repro_replay_matches_leader(self):
        leader, backup = GridSchedulerService(), GridSchedulerService()
        for op, now in ((("submit", "A", 0), 1.0), (("submit", "B", 5), 2.0)):
            result = leader.execute(op, ctx(now=now))
            backup.replay(op, result.repro)
        result = leader.execute(("dispatch",), ctx(now=9.0))
        backup.replay(("dispatch",), result.repro)
        assert backup.state_fingerprint() == leader.state_fingerprint()

    def test_duplicate_submit_rejected(self):
        s = GridSchedulerService()
        s.execute(("submit", "j1", 0), ctx())
        with pytest.raises(ServiceError):
            s.execute(("submit", "j1", 0), ctx())

    def test_queue_and_done_reads(self):
        s = GridSchedulerService()
        s.execute(("submit", "j1", 0), ctx(now=1.0))
        s.execute(("submit", "j2", 9), ctx(now=2.0))
        assert s.execute(("queue",), ctx()).reply == ["j2", "j1"]
        s.execute(("dispatch",), ctx(now=3.0))
        assert s.execute(("done",), ctx()).reply == ["j2"]

    def test_undo_dispatch(self):
        s = GridSchedulerService()
        s.execute(("submit", "j1", 0), ctx(now=1.0))
        result = s.execute(("dispatch",), ctx(now=2.0))
        result.undo()
        assert "j1" in s.pending and s.dispatched == []

    def test_delta_roundtrip(self):
        leader, backup = GridSchedulerService(), GridSchedulerService()
        for op, now in ((("submit", "A", 0), 1.0), (("submit", "B", 5), 2.0)):
            result = leader.execute(op, ctx(now=now))
            backup.apply_delta(result.delta)
        result = leader.execute(("dispatch",), ctx(now=3.0))
        backup.apply_delta(result.delta)
        assert backup.state_fingerprint() == leader.state_fingerprint()


class TestBank:
    def funded(self):
        s = BankService()
        s.execute(("open", "alice", 100), ctx())
        s.execute(("open", "bob", 50), ctx())
        return s

    def test_deposit_withdraw(self):
        s = self.funded()
        assert s.execute(("deposit", "alice", 10), ctx()).reply == 110
        assert s.execute(("withdraw", "alice", 60), ctx()).reply == 50

    def test_insufficient_funds_returns_none_without_change(self):
        s = self.funded()
        assert s.execute(("withdraw", "bob", 500), ctx()).reply is None
        assert s.accounts["bob"] == 50

    def test_unknown_account_raises(self):
        s = self.funded()
        with pytest.raises(ServiceError):
            s.execute(("deposit", "ghost", 1), ctx())

    def test_duplicate_open_raises(self):
        s = self.funded()
        with pytest.raises(ServiceError):
            s.execute(("open", "alice", 1), ctx())

    def test_total(self):
        s = self.funded()
        assert s.execute(("total",), ctx()).reply == 150

    def test_undo_chain(self):
        s = self.funded()
        r1 = s.execute(("withdraw", "alice", 30), ctx())
        r2 = s.execute(("deposit", "bob", 30), ctx())
        r2.undo()
        r1.undo()
        assert s.accounts == {"alice": 100, "bob": 50}

    def test_locks(self):
        s = self.funded()
        assert s.locks_for(("balance", "alice")) == (frozenset({"alice"}), frozenset())
        assert s.locks_for(("deposit", "alice", 1)) == (frozenset(), frozenset({"alice"}))
