"""Sharding units: dispatch registry, schedule group assignment, the
cross-group invariant, and two groups recovering from one shared disk."""

from __future__ import annotations

import pytest

from repro.chaos.invariants import check_cross_group_at_most_once
from repro.chaos.schedule import NemesisEvent, NemesisSchedule, assign_groups
from repro.core.ballot import Ballot, ProposalNumber
from repro.core.config import ReplicaConfig
from repro.core.group import ReplicationGroup
from repro.core.messages import GroupEnvelope, Prepare, Proposal
from repro.core.replica import Replica
from repro.core.requests import ClientRequest, RequestId
from repro.election import StaticElector
from repro.errors import ConfigError
from repro.shard.host import GroupHost
from repro.storage import StableStore, StoragePump
from repro.types import RequestKind


def proposal(client: str = "c0", seq: int = 1) -> Proposal:
    request = ClientRequest(
        rid=RequestId(client, seq), kind=RequestKind.WRITE, op=("put", "x", seq)
    )
    return Proposal(requests=(request,), payload=None)


def pn(instance: int, round_: int = 1, leader: str = "r0") -> ProposalNumber:
    return ProposalNumber(Ballot(round_, leader), instance)


class _Service:
    def snapshot(self):
        return "empty"


def make_replica(**config) -> Replica:
    cfg = ReplicaConfig(peers=("r0", "r1", "r2"), **config)
    return Replica("r0", cfg, _Service, StaticElector("r0"))


# ---------------------------------------------------------- dispatch registry
class TestDispatchRegistry:
    def test_every_entry_resolves_to_a_method(self):
        replica = make_replica()
        for msg_type, name in ReplicationGroup.DISPATCH.items():
            assert callable(getattr(replica, name)), (msg_type, name)
            assert replica._dispatch[msg_type] == getattr(replica, name)

    def test_registry_covers_the_protocol_surface(self):
        names = {t.__name__ for t in ReplicationGroup.DISPATCH}
        assert names == {
            "ClientRequest", "AcceptBatch", "AcceptedBatch", "Nack",
            "ChosenBatch", "Confirm", "Prepare", "Promise", "FrontierProbe",
            "CatchUpQuery", "CatchUpInfo", "Reply",
        }

    def test_unknown_message_is_counted_not_raised(self):
        replica = make_replica()
        replica.on_message("c9", object())
        assert replica.stats["unknown_messages"] == 1

    def test_dispatch_is_exact_type_match(self):
        """Subclasses do not inherit a handler (the wire carries concrete
        message types; a lookup by exact type keeps dispatch O(1))."""

        class FancyPrepare(Prepare):
            pass

        replica = make_replica()
        replica.on_message(
            "r1", FancyPrepare(ballot=Ballot(1, "r1"), gaps=(), from_instance=0)
        )
        assert replica.stats["unknown_messages"] == 1


# ------------------------------------------------------------- assign_groups
def _leader(at: float, pid: str = "r1") -> NemesisEvent:
    return NemesisEvent(at=at, kind="leader", pids=(pid,))


class TestAssignGroups:
    def test_single_group_is_identity(self):
        schedule = NemesisSchedule(
            seed=1, horizon=1.0, events=(_leader(0.1), _leader(1.01))
        )
        assert assign_groups(schedule, 1) is schedule

    def test_round_robin_and_final_fanout(self):
        schedule = NemesisSchedule(
            seed=1,
            horizon=1.0,
            events=(
                _leader(0.1),
                NemesisEvent(at=0.2, kind="crash", pids=("r0",)),
                _leader(0.3),
                _leader(0.5),
                NemesisEvent(at=1.0, kind="heal"),
                _leader(1.01, "r2"),
            ),
        )
        out = assign_groups(schedule, 3).events
        leaders = [e for e in out if e.kind == "leader"]
        # Mid-run switches rotate through the groups...
        assert [e.rgroup for e in leaders[:3]] == [0, 1, 2]
        # ...and the final stabilization switch covers every group.
        assert [(e.at, e.pids[0], e.rgroup) for e in leaders[3:]] == [
            (1.01, "r2", 0), (1.01, "r2", 1), (1.01, "r2", 2),
        ]
        # Non-leader events are untouched.
        assert [e.kind for e in out] == [
            "leader", "crash", "leader", "leader", "heal",
            "leader", "leader", "leader",
        ]

    def test_rgroup_round_trips_through_dicts(self):
        event = _leader(0.5)
        tagged = assign_groups(
            NemesisSchedule(seed=0, horizon=1.0, events=(event, _leader(1.0))), 2
        ).events[0]
        assert tagged.rgroup == 0
        assert NemesisEvent.from_dict(tagged.to_dict()) == tagged
        assert "rgroup" not in event.to_dict()
        assert NemesisEvent.from_dict(event.to_dict()) == event


# ------------------------------------------------- cross-group at-most-once
class TestCrossGroupAtMostOnce:
    def test_clean_when_groups_are_disjoint(self):
        by_group = {
            0: [{"chosen": [(1, proposal("c0", 1))]}],
            1: [{"chosen": [(1, proposal("c0", 2))]}],
        }
        assert check_cross_group_at_most_once(by_group) == []

    def test_same_rid_in_two_groups_is_flagged(self):
        by_group = {
            0: [{"chosen": [(1, proposal("c0", 7))]}],
            1: [{"chosen": [(4, proposal("c0", 7))]}],
        }
        violations = check_cross_group_at_most_once(by_group)
        assert len(violations) == 1
        assert violations[0].invariant == "cross_group_at_most_once"
        assert violations[0].data["groups"] == [0, 1]
        assert "c0#7" in violations[0].detail


# ------------------------------------------------------------ GroupHost unit
class TestGroupHost:
    def _host(self, n_groups: int = 2) -> GroupHost:
        cfg = ReplicaConfig(peers=("r0", "r1", "r2"))
        electors = [StaticElector("r0") for _ in range(n_groups)]
        return GroupHost("r0", cfg, _Service, electors)

    def test_electors_must_cover_every_group(self):
        cfg = ReplicaConfig(peers=("r0", "r1", "r2"))
        with pytest.raises(ConfigError):
            GroupHost("r0", cfg, _Service, {0: StaticElector("r0")}, n_groups=2)
        with pytest.raises(ConfigError):
            GroupHost("r0", cfg, _Service, [])

    def test_groups_share_one_pump(self):
        host = self._host()
        stores = [g.store for g in host.groups.values()]
        assert len({id(s.pump) for s in stores}) == 1
        assert stores[0].pump is host.pump
        assert host.store is host.pump  # fault-schedule compatibility alias

    def test_envelope_for_dead_group_is_dropped(self):
        host = self._host()
        host.groups[1].alive = False
        prepare = Prepare(ballot=Ballot(1, "r1"), gaps=(), from_instance=0)
        host.on_message("r1", GroupEnvelope(1, prepare))
        host.on_message("r1", GroupEnvelope(9, prepare))
        assert host.stats["dropped_group_messages"] == 2

    def test_bare_non_request_message_is_counted(self):
        host = self._host()
        host.on_message("c0", object())
        assert host.stats["unknown_messages"] == 1


# ------------------------------------------- two groups, one shared platter
class _Handle:
    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled


class _Off:
    enabled = False


class _Tracer:
    enabled = False
    current = None

    def activate(self, ctx):
        return None

    def activate_for(self, ctx):
        return None

    def restore(self, token):
        pass


class _FakeHost:
    """Just enough of a ReplicationGroup for StableStore: config + clock."""

    def __init__(self, **config) -> None:
        self.config = ReplicaConfig(peers=("r0", "r1", "r2"), **config)
        self.pid = "r0"
        self.now = 0.0
        self.metrics = _Off()
        self.profiler = _Off()
        self.tracer = _Tracer()
        self.service_factory = _Service
        self.timers: list[tuple[float, object, _Handle]] = []

    def set_timer(self, delay, fn, *args):
        handle = _Handle()
        self.timers.append((self.now + delay, lambda: fn(*args), handle))
        return handle

    def advance(self, to: float) -> None:
        while True:
            due = [t for t in self.timers if t[0] <= to and t[2].active]
            if not due:
                break
            due.sort(key=lambda t: t[0])
            at, fn, handle = due[0]
            self.timers.remove((at, fn, handle))
            self.now = max(self.now, at)
            fn()
        self.now = max(self.now, to)


class TestTwoGroupsOneDisk:
    def _stores(self, **config) -> tuple[_FakeHost, StableStore, StableStore]:
        host = _FakeHost(fsync_mode="group", fsync_latency=1e-3, **config)
        pump = StoragePump(host)
        return host, StableStore(host, pump=pump, group=0), StableStore(
            host, pump=pump, group=1
        )

    def test_crash_restart_recovers_each_group_separately(self):
        host, s0, s1 = self._stores()
        s0.accept(pn(1), proposal("c0", 1))
        s0.choose(1, proposal("c0", 1))
        s1.accept(pn(1, leader="r1"), proposal("c1", 1))
        s1.accept(pn(2, leader="r1"), proposal("c1", 2))
        s1.record_round(5)
        fired = []
        s0.flush(lambda: fired.append("g0"))
        s1.flush(lambda: fired.append("g1"))
        host.advance(0.1)
        assert fired == ["g0", "g1"]  # one shared fsync clock serves both

        s0.crash()  # one power cut; the pump is shared, so both halt
        state0 = s0.recover()
        state1 = s1.recover()
        assert state0 is not None and state1 is not None
        # Group 0 sees exactly its own records...
        assert state0.replayed_records == 2
        assert s0.log.is_chosen(1)
        assert state0.max_round == -1
        # ...and group 1 exactly its own.
        assert state1.replayed_records == 3
        assert not s1.log.is_chosen(1)
        assert state1.max_round == 5

    def test_unsynced_tail_lost_for_both_groups(self):
        host, s0, s1 = self._stores()
        s0.choose(1, proposal("c0", 1))
        s1.choose(1, proposal("c1", 1))
        fired = []
        s0.flush(lambda: fired.append("g0"))
        host.advance(0.1)
        # Durable: both groups' first records. Now append without syncing.
        s0.choose(2, proposal("c0", 2))
        s1.choose(2, proposal("c1", 2))
        s0.crash()
        state0 = s0.recover()
        state1 = s1.recover()
        assert state0.replayed_records == 1 and state1.replayed_records == 1
        assert s0.log.is_chosen(1) and not s0.log.is_chosen(2)
        assert s1.log.is_chosen(1) and not s1.log.is_chosen(2)

    def test_per_group_checkpoints_on_one_device(self):
        host, s0, s1 = self._stores()
        s0.choose(1, proposal("c0", 1))
        s1.choose(1, proposal("c1", 1))
        s1.choose(2, proposal("c1", 2))
        s0.install_state(1, "snap-g0", {})
        s1.install_state(2, "snap-g1", {})
        s0.flush(lambda: None)
        host.advance(0.1)
        s0.crash()
        state0 = s0.recover()
        state1 = s1.recover()
        assert state0.checkpoint[0] == 1
        assert state0.checkpoint[1] == "snap-g0"
        assert state1.checkpoint[0] == 2
        assert state1.checkpoint[1] == "snap-g1"
        # Checkpointed prefixes replay nothing; each group starts there.
        assert s0.log.frontier == 1
        assert s1.log.frontier == 2
