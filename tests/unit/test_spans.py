"""Unit tests for the causal-span data model, the tracer, the critical-path
analyzer, and the Chrome trace-event exporter."""

from __future__ import annotations

import json

import pytest

from repro.obs.chrome import chrome_events, export_chrome, validate_chrome_trace
from repro.obs.spans import Span, SpanStore, SpanTree
from repro.obs.tracing import (
    Tracer,
    analyze_requests,
    classify_span,
    critical_path,
    summarize_paths,
)


def make_tracer():
    clock = [0.0]
    tracer = Tracer(clock=lambda: clock[0])
    return tracer, clock


# ---------------------------------------------------------------- span model
class TestSpanRecords:
    def test_round_trip(self):
        span = Span(span_id=3, trace_id=1, parent_id=2, name="x", kind="message",
                    pid="r0", start=0.5, end=0.75, status="dropped",
                    attrs={"src": "c0", "dst": "r0"})
        again = Span.from_record(span.to_record())
        assert again == span

    def test_open_span_round_trip(self):
        span = Span(span_id=1, trace_id=1, parent_id=None, name="req",
                    kind="request", pid="c0", start=0.0)
        record = span.to_record()
        assert record["end"] is None
        again = Span.from_record(record)
        assert not again.finished and again.duration == 0.0

    def test_store_round_trip_preserves_order(self):
        tracer, clock = make_tracer()
        root = tracer.start_trace("req", pid="c0")
        tracer.start_span("child", pid="r0", parent=root)
        clock[0] = 1.0
        tracer.end(root)
        store = SpanStore.from_records(list(tracer.store.to_records()))
        assert [s.span_id for s in store] == [s.span_id for s in tracer.store]
        assert store.roots()[0].name == "req"


class TestTracer:
    def test_ambient_parenting(self):
        tracer, _ = make_tracer()
        root = tracer.start_trace("req")
        token = tracer.activate(root)
        child = tracer.start_span("inner")
        tracer.restore(token)
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id
        assert tracer.current is None

    def test_end_is_idempotent(self):
        tracer, clock = make_tracer()
        span = tracer.start_trace("req")
        clock[0] = 1.0
        tracer.end(span)
        clock[0] = 2.0
        tracer.end(span, status="dropped")  # duplicate delivery: no-op
        assert span.end == 1.0 and span.status == "ok"
        tracer.end(None)  # None-safe

    def test_activate_for_keeps_deeper_same_trace_span(self):
        tracer, _ = make_tracer()
        root = tracer.start_trace("req")
        deep = tracer.start_span("deep", parent=root)
        tracer.activate(deep)
        tracer.activate_for(root)  # same trace: ambient stays the deeper span
        assert tracer.current is deep
        other = tracer.start_trace("other")
        tracer.activate_for(other)  # different trace: switches
        assert tracer.current is other

    def test_instant_is_zero_duration(self):
        tracer, clock = make_tracer()
        clock[0] = 0.25
        mark = tracer.instant("apply", pid="r0")
        assert mark.start == mark.end == 0.25


# ----------------------------------------------------------------- span trees
class TestSpanTree:
    def test_orphans_retained_and_flagged(self):
        spans = [
            Span(span_id=1, trace_id=1, parent_id=None, name="root",
                 kind="request", pid="c0", start=0.0, end=1.0),
            Span(span_id=5, trace_id=1, parent_id=99, name="lost-parent",
                 kind="round", pid="r1", start=0.4, end=0.6),
            Span(span_id=6, trace_id=1, parent_id=5, name="under-orphan",
                 kind="message", pid="r0", start=0.45, end=0.5),
        ]
        tree = SpanTree.build(spans, trace_id=1)
        assert [s.span_id for s in tree.roots] == [1]
        assert [s.span_id for s in tree.orphans] == [5]
        assert tree.is_orphan(spans[1]) and not tree.is_orphan(spans[0])
        walked = [s.span_id for s, _d in tree.walk()]
        assert walked == [1, 5, 6]  # orphan subtree still visited
        text = tree.render_waterfall()
        assert "orphaned spans (parent missing)" in text
        assert "lost-parent" in text and "under-orphan" in text

    def test_waterfall_marks_status_and_open_spans(self):
        spans = [
            Span(span_id=1, trace_id=1, parent_id=None, name="root",
                 kind="request", pid="c0", start=0.0, end=1.0),
            Span(span_id=2, trace_id=1, parent_id=1, name="msg.Accept",
                 kind="message", pid="r1", start=0.1, end=0.2, status="dropped"),
            Span(span_id=3, trace_id=1, parent_id=1, name="stuck",
                 kind="round", pid="r0", start=0.3),
        ]
        text = SpanTree.build(spans, 1).render_waterfall()
        assert "[dropped]" in text and "(open)" in text


# -------------------------------------------------------------- critical path
def build_write_chain(tracer, clock, M=0.4, E=0.3, m=0.3):
    """Craft the canonical basic-protocol chain: total = 2M + E + 2m."""
    t = 0.0
    clock[0] = t
    root = tracer.start_trace("request:c0#0", pid="c0", kind="request",
                              attrs={"rid": "c0#0", "kind": "write"})
    cr = tracer.start_span("msg.ClientRequest", pid="r0", kind="message",
                           parent=root, attrs={"src": "c0", "dst": "r0"})
    clock[0] = t = M
    tracer.end(cr)
    execute = tracer.start_span("execute", pid="r0", kind="execute", parent=cr)
    clock[0] = t = M + E
    tracer.end(execute)
    round_ = tracer.start_span("accept_round", pid="r0", kind="round", parent=execute)
    accept = tracer.start_span("msg.AcceptBatch", pid="r1", kind="message",
                               parent=round_, attrs={"src": "r0", "dst": "r1"})
    clock[0] = t = M + E + m
    tracer.end(accept)
    accepted = tracer.start_span("msg.AcceptedBatch", pid="r0", kind="message",
                                 parent=accept, attrs={"src": "r1", "dst": "r0"})
    clock[0] = t = M + E + 2 * m
    tracer.end(accepted)
    tracer.end(round_)
    reply = tracer.start_span("msg.Reply", pid="c0", kind="message",
                              parent=accepted, attrs={"src": "r0", "dst": "c0"})
    clock[0] = t = 2 * M + E + 2 * m
    tracer.end(reply)
    tracer.end(root)
    return root


class TestCriticalPath:
    def test_write_chain_attribution(self):
        tracer, clock = make_tracer()
        M, E, m = 0.4, 0.3, 0.3
        root = build_write_chain(tracer, clock, M, E, m)
        path = critical_path(tracer.store, root)
        assert path is not None and path.complete
        assert path.total == pytest.approx(2 * M + E + 2 * m)
        assert path.component("M") == pytest.approx(2 * M)
        assert path.component("E") == pytest.approx(E)
        assert path.component("m") == pytest.approx(2 * m)
        assert path.component("other") == pytest.approx(0.0)

    def test_classify(self):
        msg = Span(span_id=1, trace_id=1, parent_id=None, name="msg", kind="message",
                   pid="r0", start=0.0, attrs={"src": "c0", "dst": "r0"})
        assert classify_span(msg, client="c0") == "M"
        assert classify_span(msg, client="c9") == "m"
        ex = Span(span_id=2, trace_id=1, parent_id=None, name="execute",
                  kind="execute", pid="r0", start=0.0)
        assert classify_span(ex, client="c0") == "E"

    def test_no_descendants_means_incomplete(self):
        tracer, clock = make_tracer()
        root = tracer.start_trace("request:c0#0", pid="c0", kind="request")
        clock[0] = 1.0
        tracer.end(root)
        path = critical_path(tracer.store, root)
        assert path is not None and not path.complete
        assert path.component("other") == pytest.approx(1.0)

    def test_unfinished_roots_are_skipped(self):
        tracer, _ = make_tracer()
        tracer.start_trace("request:c0#0", pid="c0", kind="request")
        assert analyze_requests(tracer.store) == []

    def test_summaries_group_by_kind(self):
        tracer, clock = make_tracer()
        root = build_write_chain(tracer, clock)
        paths = analyze_requests(tracer.store)
        summary = summarize_paths(paths)["write"]
        assert summary.n == 1 and summary.incomplete == 0
        assert summary.mean_total == pytest.approx(root.end - root.start)


# ------------------------------------------------------------- chrome export
class TestChromeExport:
    def test_export_validates(self, tmp_path):
        tracer, clock = make_tracer()
        build_write_chain(tracer, clock)
        path = export_chrome(tracer.store, tmp_path / "trace.json")
        counts = validate_chrome_trace(path)
        assert counts["events"] > 0
        assert counts["async_spans"] == 4  # the four message hops
        assert counts["duration_spans"] >= 3  # request, execute, round

    def test_open_spans_closed_at_horizon(self):
        tracer, clock = make_tracer()
        root = tracer.start_trace("req", pid="c0", kind="request")
        tracer.start_span("stuck", pid="r0", kind="round", parent=root)
        clock[0] = 1.0
        tracer.end(root)
        events = chrome_events(tracer.store, horizon=2.0)
        validate_chrome_trace({"traceEvents": events})
        opens = [e for e in events if e.get("args", {}).get("open")]
        assert len(opens) == 1 and opens[0]["name"] == "stuck"

    def test_partial_overlap_demoted_to_async(self):
        # Two same-track spans that partially overlap cannot nest as B/E.
        spans = [
            Span(span_id=1, trace_id=1, parent_id=None, name="a", kind="round",
                 pid="r0", start=0.0, end=0.5),
            Span(span_id=2, trace_id=1, parent_id=1, name="b", kind="round",
                 pid="r0", start=0.3, end=0.8),
        ]
        store = SpanStore()
        for span in spans:
            store.add(span)
        events = chrome_events(store)
        validate_chrome_trace({"traceEvents": events})
        assert any(e["ph"] == "b" and e["name"] == "b" for e in events)

    def test_rejects_unbalanced_duration_events(self):
        bad = {"traceEvents": [
            {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 0.0},
        ]}
        with pytest.raises(ValueError, match="unmatched 'B'"):
            validate_chrome_trace(bad)

    def test_rejects_mismatched_end_name(self):
        bad = {"traceEvents": [
            {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 0.0},
            {"name": "z", "ph": "E", "pid": 1, "tid": 1, "ts": 1.0},
        ]}
        with pytest.raises(ValueError, match="is open on"):
            validate_chrome_trace(bad)

    def test_rejects_decreasing_timestamps(self):
        bad = {"traceEvents": [
            {"name": "a", "ph": "b", "cat": "k", "id": "0x1", "pid": 1, "ts": 5.0},
            {"name": "a", "ph": "e", "cat": "k", "id": "0x1", "pid": 1, "ts": 1.0},
        ]}
        with pytest.raises(ValueError, match="decreases"):
            validate_chrome_trace(bad)

    def test_rejects_dangling_async(self):
        bad = {"traceEvents": [
            {"name": "a", "ph": "b", "cat": "k", "id": "0x1", "pid": 1, "ts": 0.0},
        ]}
        with pytest.raises(ValueError, match="unmatched async"):
            validate_chrome_trace(bad)

    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            validate_chrome_trace(path)
