"""Unit tests for the cluster harness, metrics and scenario runners."""

from __future__ import annotations

import pytest

from repro.client.workload import single_kind_steps
from repro.cluster.harness import Cluster, ClusterSpec
from repro.cluster.metrics import collect
from repro.cluster.scenarios import rrt_scenario, throughput_scenario
from repro.errors import ConfigError, SimulationError
from repro.types import RequestKind
from tests.conftest import make_test_profile


def small_cluster(**overrides):
    overrides.setdefault("client_timeout", 0.2)
    spec = ClusterSpec(profile=make_test_profile(), **overrides)
    return Cluster(spec, [single_kind_steps(RequestKind.WRITE, 5)])


class TestClusterSpec:
    def test_invalid_elector_rejected(self):
        with pytest.raises(ConfigError):
            ClusterSpec(profile=make_test_profile(), elector="bogus")

    def test_invalid_replica_count_rejected(self):
        with pytest.raises(ConfigError):
            ClusterSpec(profile=make_test_profile(), n_replicas=0)

    def test_no_clients_rejected(self):
        spec = ClusterSpec(profile=make_test_profile())
        with pytest.raises(ConfigError):
            Cluster(spec, [])


class TestCluster:
    def test_leader_is_first_replica(self):
        cluster = small_cluster()
        assert cluster.leader_pid == "r0"
        assert cluster.leader() is cluster.replicas["r0"]

    def test_run_completes_all_clients(self):
        cluster = small_cluster().run()
        assert cluster.all_done

    def test_run_times_out_when_stuck(self):
        cluster = small_cluster()
        # Crash everything before start: nothing can complete.
        for pid in cluster.replica_pids:
            cluster.world.schedule_crash(pid, 0.0)
        with pytest.raises(SimulationError):
            cluster.run(max_time=0.5)

    def test_start_signal_starts_clients_roughly_together(self):
        spec = ClusterSpec(profile=make_test_profile(), client_timeout=0.2)
        cluster = Cluster(
            spec, [single_kind_steps(RequestKind.WRITE, 2) for _ in range(4)]
        ).run()
        starts = [c.started_at for c in cluster.clients]
        assert max(starts) - min(starts) < 0.01

    def test_replica_count_configurable(self):
        spec = ClusterSpec(profile=make_test_profile(), n_replicas=5, client_timeout=0.2)
        cluster = Cluster(spec, [single_kind_steps(RequestKind.WRITE, 3)]).run()
        assert len(cluster.replicas) == 5
        assert cluster.all_done

    def test_connection_scaling_applies_extra_cpu(self):
        from repro.net.profiles import sysnet

        spec = ClusterSpec(profile=sysnet(), connection_scaling=True)
        cluster = Cluster(spec, [single_kind_steps(RequestKind.WRITE, 1) for _ in range(8)])
        cpu = cluster.world.cpu("r0")
        assert cpu.profile.extra_per_message == pytest.approx(
            sysnet().per_connection_overhead * 8
        )

    def test_trace_enabled(self):
        cluster = small_cluster(trace=True).run()
        assert cluster.trace is not None and len(cluster.trace) > 0


class TestMetrics:
    def test_collect_counts(self):
        cluster = small_cluster().run()
        result = collect(cluster)
        assert result.total_requests == 5
        assert result.n_clients == 1
        assert result.rrt is not None and result.rrt.n == 5
        assert result.throughput > 0
        assert result.aborted_steps == 0

    def test_describe_is_readable(self):
        cluster = small_cluster().run()
        text = collect(cluster).describe()
        assert "RRT" in text and "throughput" in text

    def test_zero_duration_throughput(self):
        from repro.cluster.metrics import RunResult

        result = RunResult(
            n_clients=0, duration=0.0, total_requests=0, total_steps=0,
            aborted_steps=0, total_retransmits=0, rrt=None, trt=None,
        )
        assert result.throughput == 0.0
        assert result.step_throughput == 0.0


class TestScenarios:
    def test_rrt_scenario_accepts_profile_object(self):
        result = rrt_scenario(make_test_profile(), RequestKind.WRITE, samples=5)
        assert result.rrt.n == 5

    def test_rrt_scenario_accepts_kind_string(self):
        result = rrt_scenario(make_test_profile(), "read", samples=5)
        assert result.rrt.n == 5

    def test_throughput_scenario_splits_requests(self):
        result = throughput_scenario(
            make_test_profile(), "write", n_clients=4, total_requests=100
        )
        assert result.total_requests == 100
        assert result.n_clients == 4

    def test_unknown_profile_name(self):
        with pytest.raises(KeyError):
            rrt_scenario("atlantis", "read", samples=1)

    def test_deterministic_given_seed(self):
        a = rrt_scenario(make_test_profile(), "write", samples=10, seed=5)
        b = rrt_scenario(make_test_profile(), "write", samples=10, seed=5)
        assert a.rrt.mean == b.rrt.mean
        c = rrt_scenario("sysnet", "write", samples=10, seed=6)
        d = rrt_scenario("sysnet", "write", samples=10, seed=7)
        assert c.rrt.mean != d.rrt.mean  # different jitter draws
