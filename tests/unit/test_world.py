"""Unit tests for the simulation world: delivery, timers, crash/recover."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.cpu import CpuProfile
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.sim.trace import TraceRecorder
from repro.sim.world import World, ZeroLatencyNetwork


class Recorder(Process):
    """Remembers everything it receives, with timestamps."""

    def __init__(self, pid):
        super().__init__(pid)
        self.inbox: list[tuple[float, str, object]] = []
        self.started = 0
        self.crashed = 0
        self.recovered = 0

    def on_start(self):
        self.started += 1

    def on_message(self, src, msg):
        self.inbox.append((self.now, src, msg))

    def on_crash(self):
        self.crashed += 1

    def on_recover(self):
        self.recovered += 1


class FixedDelayNetwork:
    def __init__(self, delay):
        self.delay = delay

    def delays(self, src, dst, depart):
        return (self.delay,)


def make_world(network=None, seed=0):
    kernel = Kernel(seed=seed)
    return kernel, World(kernel, network)


class TestDelivery:
    def test_message_delivered(self):
        kernel, world = make_world()
        a, b = Recorder("a"), Recorder("b")
        world.add(a)
        world.add(b)
        world.start()
        a.send("b", "hello")
        kernel.run()
        assert [(src, msg) for _t, src, msg in b.inbox] == [("a", "hello")]

    def test_latency_applied(self):
        kernel, world = make_world(FixedDelayNetwork(0.25))
        a, b = world.add(Recorder("a")), world.add(Recorder("b"))
        world.start()
        a.send("b", "x")
        kernel.run()
        assert b.inbox[0][0] == pytest.approx(0.25)

    def test_send_to_unknown_raises(self):
        kernel, world = make_world()
        a = world.add(Recorder("a"))
        world.start()
        with pytest.raises(SimulationError):
            a.send("ghost", "x")

    def test_duplicate_pid_rejected(self):
        _kernel, world = make_world()
        world.add(Recorder("a"))
        with pytest.raises(SimulationError):
            world.add(Recorder("a"))

    def test_broadcast(self):
        kernel, world = make_world()
        a = world.add(Recorder("a"))
        b, c = world.add(Recorder("b")), world.add(Recorder("c"))
        world.start()
        a.broadcast(["b", "c"], "hi")
        kernel.run()
        assert len(b.inbox) == 1 and len(c.inbox) == 1

    def test_sender_cpu_serializes_departures(self):
        kernel, world = make_world(FixedDelayNetwork(0.0))
        a = world.add(Recorder("a"), cpu=CpuProfile(send_cost=0.010))
        b = world.add(Recorder("b"))
        world.start()
        a.send("b", 1)
        a.send("b", 2)
        kernel.run()
        times = [t for t, _s, _m in b.inbox]
        assert times[0] == pytest.approx(0.010)
        assert times[1] == pytest.approx(0.020)

    def test_receiver_cpu_queues_handling(self):
        kernel, world = make_world(FixedDelayNetwork(0.0))
        a = world.add(Recorder("a"))
        b = world.add(Recorder("b"), cpu=CpuProfile(recv_cost=0.010))
        world.start()
        a.send("b", 1)
        a.send("b", 2)
        kernel.run()
        times = [t for t, _s, _m in b.inbox]
        assert times == [pytest.approx(0.010), pytest.approx(0.020)]


class TestTimers:
    def test_timer_fires(self):
        kernel, world = make_world()
        a = world.add(Recorder("a"))
        world.start()
        seen = []
        a.set_timer(0.5, seen.append, "tick")
        kernel.run()
        assert seen == ["tick"]

    def test_timer_cancel(self):
        kernel, world = make_world()
        a = world.add(Recorder("a"))
        world.start()
        seen = []
        handle = a.set_timer(0.5, seen.append, "tick")
        handle.cancel()
        kernel.run()
        assert seen == []
        assert not handle.active

    def test_timer_dies_with_crash(self):
        kernel, world = make_world()
        a = world.add(Recorder("a"))
        world.start()
        seen = []
        a.set_timer(1.0, seen.append, "tick")
        world.schedule_crash("a", 0.5)
        kernel.run()
        assert seen == []

    def test_timer_from_before_crash_not_revived_by_recover(self):
        kernel, world = make_world()
        a = world.add(Recorder("a"))
        world.start()
        seen = []
        a.set_timer(1.0, seen.append, "tick")
        world.schedule_crash("a", 0.2)
        world.schedule_recover("a", 0.4)
        kernel.run()
        assert seen == []  # epoch changed; stale timer is dead


class TestCrashRecover:
    def test_crashed_process_drops_messages(self):
        kernel, world = make_world(FixedDelayNetwork(0.1))
        a, b = world.add(Recorder("a")), world.add(Recorder("b"))
        world.start()
        world.schedule_crash("b", 0.05)
        a.send("b", "lost")  # in flight when b crashes
        kernel.run()
        assert b.inbox == []
        assert b.crashed == 1

    def test_recovered_process_receives_again(self):
        kernel, world = make_world()
        a, b = world.add(Recorder("a")), world.add(Recorder("b"))
        world.start()
        world.crash("b")
        world.recover("b")
        a.send("b", "back")
        kernel.run()
        assert [m for _t, _s, m in b.inbox] == ["back"]
        assert b.recovered == 1

    def test_crash_idempotent(self):
        _kernel, world = make_world()
        b = world.add(Recorder("b"))
        world.start()
        world.crash("b")
        world.crash("b")
        assert b.crashed == 1

    def test_recover_idempotent(self):
        _kernel, world = make_world()
        b = world.add(Recorder("b"))
        world.start()
        world.crash("b")
        world.recover("b")
        world.recover("b")
        assert b.recovered == 1

    def test_crashed_process_cannot_send(self):
        kernel, world = make_world()
        a, b = world.add(Recorder("a")), world.add(Recorder("b"))
        world.start()
        world.crash("a")
        a.send("b", "nope")  # silently dropped: crashed processes take no steps
        kernel.run()
        assert b.inbox == []

    def test_stable_storage_survives_crash(self):
        _kernel, world = make_world()
        b = world.add(Recorder("b"))
        world.start()
        b.stable["promised"] = 42
        world.crash("b")
        world.recover("b")
        assert b.stable["promised"] == 42

    def test_alive_pids(self):
        _kernel, world = make_world()
        world.add(Recorder("a"))
        world.add(Recorder("b"))
        world.start()
        world.crash("a")
        assert world.alive_pids() == ["b"]


class TestTrace:
    def test_trace_records_send_and_deliver(self):
        kernel = Kernel()
        trace = TraceRecorder()
        world = World(kernel, ZeroLatencyNetwork(), trace=trace)
        a, b = world.add(Recorder("a")), world.add(Recorder("b"))
        world.start()
        a.send("b", "x")
        kernel.run()
        assert len(trace.of_kind("send")) == 1
        assert len(trace.of_kind("deliver")) == 1

    def test_trace_records_drop_on_crash(self):
        kernel = Kernel()
        trace = TraceRecorder()
        world = World(kernel, FixedDelayNetwork(0.1), trace=trace)
        a, b = world.add(Recorder("a")), world.add(Recorder("b"))
        world.start()
        a.send("b", "x")
        world.schedule_crash("b", 0.05)
        kernel.run()
        assert len(trace.of_kind("drop")) == 1

    def test_trace_predicate_filters(self):
        kernel = Kernel()
        trace = TraceRecorder(predicate=lambda e: e.kind == "crash")
        world = World(kernel, trace=trace)
        a, b = world.add(Recorder("a")), world.add(Recorder("b"))
        world.start()
        a.send("b", "x")
        world.crash("b")
        kernel.run()
        assert {e.kind for e in trace} == {"crash"}

    def test_late_registration_starts(self):
        kernel, world = make_world()
        world.add(Recorder("a"))
        world.start()
        late = world.add(Recorder("late"))
        kernel.run()
        assert late.started == 1
