"""Per-rule tests for the whole-program rules: DET101, MSG101, MSG102,
PROTO101 — positive, negative, and suppression cases for each, driven
through the real engine over small on-disk trees."""

from __future__ import annotations

from pathlib import Path

from repro.lint import LintEngine, render_text

MESSAGES = """\
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Ping:
    seq: int


@dataclass(frozen=True, slots=True)
class Promise:
    ballot: int
"""

STORE = """\
class Store:
    def __init__(self) -> None:
        self.needs_barrier = True

    def record_promise(self, ballot: int) -> None:
        del ballot

    def flush(self, callback) -> None:
        callback()
"""


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


def scan(tmp_path: Path, files: dict[str, str], select: list[str]):
    tree = write_tree(tmp_path / "tree", files)
    engine = LintEngine(select=select)
    return engine.check_paths([tree])


class TestDET101:
    LEAKY_HELPER = (
        "import time\n\n\n"
        "def stamp(x):\n"
        "    return _now(x)\n\n\n"
        "def _now(x):\n"
        "    return (x, time.time())\n"
    )

    def test_two_hop_taint_fires_with_full_witness(self, tmp_path):
        result = scan(
            tmp_path,
            {
                "repro/core/replica.py": (
                    "from repro.util.helper import stamp\n\n\n"
                    "def choose(x):\n"
                    "    return stamp(x)\n"
                ),
                "repro/util/helper.py": self.LEAKY_HELPER,
            },
            select=["DET101"],
        )
        assert [f.rule for f in result.findings] == ["DET101"]
        finding = result.findings[0]
        assert finding.path == "repro/core/replica.py"
        assert finding.line == 5
        assert "time.time" in finding.message
        witness = "\n".join(finding.witness)
        assert "repro.core.replica.choose" in witness
        assert "repro.util.helper.stamp" in witness
        assert "repro.util.helper._now" in witness
        assert "time.time" in witness

    def test_witness_rendered_in_text_report(self, tmp_path):
        result = scan(
            tmp_path,
            {
                "repro/core/replica.py": (
                    "from repro.util.helper import stamp\n\n\n"
                    "def choose(x):\n"
                    "    return stamp(x)\n"
                ),
                "repro/util/helper.py": self.LEAKY_HELPER,
            },
            select=["DET101"],
        )
        text = render_text(result)
        assert "witness:" in text
        assert "->" in text

    def test_clean_helper_chain_is_negative(self, tmp_path):
        result = scan(
            tmp_path,
            {
                "repro/core/replica.py": (
                    "from repro.util.helper import stamp\n\n\n"
                    "def choose(x):\n"
                    "    return stamp(x)\n"
                ),
                "repro/util/helper.py": "def stamp(x):\n    return (x, 0)\n",
            },
            select=["DET101"],
        )
        assert result.ok

    def test_direct_ambient_left_to_det001(self, tmp_path):
        # A det-layer function calling time.time() directly is DET001's
        # finding; DET101 must not double-report it.
        result = scan(
            tmp_path,
            {
                "repro/core/replica.py": (
                    "import time\n\n\n"
                    "def choose(x):\n"
                    "    return (x, time.time())\n"
                ),
            },
            select=["DET101"],
        )
        assert result.ok

    def test_nondet_layer_caller_is_negative(self, tmp_path):
        # The frontier only matters inside deterministic layers.
        result = scan(
            tmp_path,
            {
                "repro/parallel/runner.py": (
                    "from repro.util.helper import stamp\n\n\n"
                    "def drive(x):\n"
                    "    return stamp(x)\n"
                ),
                "repro/util/helper.py": self.LEAKY_HELPER,
            },
            select=["DET101"],
        )
        assert result.ok

    def test_suppression_with_reason(self, tmp_path):
        result = scan(
            tmp_path,
            {
                "repro/core/replica.py": (
                    "from repro.util.helper import stamp\n\n\n"
                    "def choose(x):\n"
                    "    return stamp(x)  # lint: ignore[DET101] -- fixture\n"
                ),
                "repro/util/helper.py": self.LEAKY_HELPER,
            },
            select=["DET101"],
        )
        assert result.ok
        assert result.suppressed == 1


class TestMSG101:
    def test_typo_field_fires_with_file_and_line(self, tmp_path):
        result = scan(
            tmp_path,
            {
                "repro/core/messages.py": MESSAGES,
                "repro/core/node.py": (
                    "from repro.core.messages import Promise\n\n\n"
                    "class Node:\n"
                    "    def on_promise(self, src: int, msg: Promise) -> int:\n"
                    "        return msg.balot\n"
                ),
            },
            select=["MSG101"],
        )
        assert [f.rule for f in result.findings] == ["MSG101"]
        finding = result.findings[0]
        assert finding.path == "repro/core/node.py"
        assert finding.line == 6
        assert "balot" in finding.message
        assert "ballot" in finding.message  # the real schema is named

    def test_valid_field_is_negative(self, tmp_path):
        result = scan(
            tmp_path,
            {
                "repro/core/messages.py": MESSAGES,
                "repro/core/node.py": (
                    "from repro.core.messages import Promise\n\n\n"
                    "class Node:\n"
                    "    def on_promise(self, src: int, msg: Promise) -> int:\n"
                    "        return msg.ballot\n"
                ),
            },
            select=["MSG101"],
        )
        assert result.ok

    def test_rebound_param_is_negative(self, tmp_path):
        # Once the parameter is reassigned its static type is unknown.
        result = scan(
            tmp_path,
            {
                "repro/core/messages.py": MESSAGES,
                "repro/core/node.py": (
                    "from repro.core.messages import Promise\n\n\n"
                    "class Node:\n"
                    "    def on_promise(self, src: int, msg: Promise) -> int:\n"
                    "        msg = object()\n"
                    "        return msg.balot\n"
                ),
            },
            select=["MSG101"],
        )
        assert result.ok

    def test_suppression_with_reason(self, tmp_path):
        result = scan(
            tmp_path,
            {
                "repro/core/messages.py": MESSAGES,
                "repro/core/node.py": (
                    "from repro.core.messages import Promise\n\n\n"
                    "class Node:\n"
                    "    def on_promise(self, src: int, msg: Promise) -> int:\n"
                    "        return msg.balot  # lint: ignore[MSG101] -- fixture\n"
                ),
            },
            select=["MSG101"],
        )
        assert result.ok
        assert result.suppressed == 1


class TestMSG102:
    def test_orphan_send_fires(self, tmp_path):
        result = scan(
            tmp_path,
            {
                "repro/core/messages.py": MESSAGES,
                "repro/core/node.py": (
                    "from repro.core.messages import Ping\n\n\n"
                    "class Node:\n"
                    "    def send(self, dst, msg):\n"
                    "        del dst, msg\n\n"
                    "    def start(self):\n"
                    "        self.send(0, Ping(seq=1))\n"
                ),
            },
            select=["MSG102"],
        )
        assert [f.rule for f in result.findings] == ["MSG102"]
        finding = result.findings[0]
        assert "Ping" in finding.message
        assert "no handler" in finding.message
        assert finding.line == 9

    def test_dead_handler_fires(self, tmp_path):
        result = scan(
            tmp_path,
            {
                "repro/core/messages.py": MESSAGES,
                "repro/core/node.py": (
                    "from repro.core.messages import Ping\n\n\n"
                    "class Node:\n"
                    "    def on_message(self, src, msg):\n"
                    "        if isinstance(msg, Ping):\n"
                    "            pass\n"
                ),
            },
            select=["MSG102"],
        )
        assert [f.rule for f in result.findings] == ["MSG102"]
        assert "nothing in the project constructs" in result.findings[0].message

    def test_paired_send_and_handler_is_negative(self, tmp_path):
        result = scan(
            tmp_path,
            {
                "repro/core/messages.py": MESSAGES,
                "repro/core/node.py": (
                    "from repro.core.messages import Ping\n\n\n"
                    "class Node:\n"
                    "    def send(self, dst, msg):\n"
                    "        del dst, msg\n\n"
                    "    def start(self):\n"
                    "        self.send(0, Ping(seq=1))\n\n"
                    "    def on_message(self, src, msg):\n"
                    "        if isinstance(msg, Ping):\n"
                    "            pass\n"
                ),
            },
            select=["MSG102"],
        )
        assert result.ok

    def test_payload_classes_not_flagged(self, tmp_path):
        # A message constructed and *nested inside* another send (payload
        # style, like PromiseEntry) is not an orphan send.
        result = scan(
            tmp_path,
            {
                "repro/core/messages.py": MESSAGES,
                "repro/core/node.py": (
                    "from repro.core.messages import Ping\n\n\n"
                    "def build():\n"
                    "    return Ping(seq=1)\n"
                ),
            },
            select=["MSG102"],
        )
        assert result.ok

    def test_suppression_with_reason(self, tmp_path):
        result = scan(
            tmp_path,
            {
                "repro/core/messages.py": MESSAGES,
                "repro/core/node.py": (
                    "from repro.core.messages import Ping\n\n\n"
                    "class Node:\n"
                    "    def on_message(self, src, msg):  # lint: ignore[MSG102] -- fixture\n"
                    "        if isinstance(msg, Ping):\n"
                    "            pass\n"
                ),
            },
            select=["MSG102"],
        )
        assert result.ok
        assert result.suppressed == 1


class TestPROTO101:
    def test_unbarriered_ack_fires_with_witness(self, tmp_path):
        result = scan(
            tmp_path,
            {
                "repro/core/messages.py": MESSAGES,
                "repro/core/store.py": STORE,
                "repro/core/node.py": (
                    "from repro.core.messages import Promise\n"
                    "from repro.core.store import Store\n\n\n"
                    "class Node:\n"
                    "    def __init__(self):\n"
                    "        self.store = Store()\n\n"
                    "    def send(self, dst, msg):\n"
                    "        del dst, msg\n\n"
                    "    def on_prepare(self, src, msg):\n"
                    "        self._promise(src)\n\n"
                    "    def _promise(self, src):\n"
                    "        self.store.record_promise(1)\n"
                    "        self.send(src, Promise(ballot=1))\n"
                ),
            },
            select=["PROTO101"],
        )
        assert [f.rule for f in result.findings] == ["PROTO101"]
        finding = result.findings[0]
        assert finding.path == "repro/core/node.py"
        assert finding.line == 17  # the unbarriered ack-send site
        assert "Promise" in finding.message
        assert "record_promise" in finding.message
        witness = "\n".join(finding.witness)
        assert "on_prepare" in witness
        assert "store.record_promise" in witness
        assert "send Promise" in witness

    def test_barriered_ack_is_negative(self, tmp_path):
        result = scan(
            tmp_path,
            {
                "repro/core/messages.py": MESSAGES,
                "repro/core/store.py": STORE,
                "repro/core/node.py": (
                    "from repro.core.messages import Promise\n"
                    "from repro.core.store import Store\n\n\n"
                    "class Node:\n"
                    "    def __init__(self):\n"
                    "        self.store = Store()\n\n"
                    "    def send(self, dst, msg):\n"
                    "        del dst, msg\n\n"
                    "    def on_prepare(self, src, msg):\n"
                    "        self._promise(src)\n\n"
                    "    def _promise(self, src):\n"
                    "        self.store.record_promise(1)\n"
                    "        reply = Promise(ballot=1)\n"
                    "        if self.store.needs_barrier:\n"
                    "            self.store.flush(lambda: self.send(src, reply))\n"
                    "        else:\n"
                    "            self.send(src, reply)\n"
                ),
            },
            select=["PROTO101"],
        )
        assert result.ok

    def test_write_unreachable_from_handlers_is_negative(self, tmp_path):
        result = scan(
            tmp_path,
            {
                "repro/core/messages.py": MESSAGES,
                "repro/core/store.py": STORE,
                "repro/core/node.py": (
                    "from repro.core.messages import Promise\n"
                    "from repro.core.store import Store\n\n\n"
                    "class Node:\n"
                    "    def __init__(self):\n"
                    "        self.store = Store()\n\n"
                    "    def send(self, dst, msg):\n"
                    "        del dst, msg\n\n"
                    "    def bootstrap(self, src):\n"
                    "        self.store.record_promise(1)\n"
                    "        self.send(src, Promise(ballot=1))\n"
                ),
            },
            select=["PROTO101"],
        )
        assert result.ok

    def test_non_ack_send_is_negative(self, tmp_path):
        result = scan(
            tmp_path,
            {
                "repro/core/messages.py": MESSAGES,
                "repro/core/store.py": STORE,
                "repro/core/node.py": (
                    "from repro.core.messages import Ping\n"
                    "from repro.core.store import Store\n\n\n"
                    "class Node:\n"
                    "    def __init__(self):\n"
                    "        self.store = Store()\n\n"
                    "    def send(self, dst, msg):\n"
                    "        del dst, msg\n\n"
                    "    def on_prepare(self, src, msg):\n"
                    "        self.store.record_promise(1)\n"
                    "        self.send(src, Ping(seq=1))\n"
                ),
            },
            select=["PROTO101"],
        )
        assert result.ok

    def test_suppression_with_reason(self, tmp_path):
        result = scan(
            tmp_path,
            {
                "repro/core/messages.py": MESSAGES,
                "repro/core/store.py": STORE,
                "repro/core/node.py": (
                    "from repro.core.messages import Promise\n"
                    "from repro.core.store import Store\n\n\n"
                    "class Node:\n"
                    "    def __init__(self):\n"
                    "        self.store = Store()\n\n"
                    "    def send(self, dst, msg):\n"
                    "        del dst, msg\n\n"
                    "    def on_prepare(self, src, msg):\n"
                    "        self._promise(src)\n\n"
                    "    def _promise(self, src):\n"
                    "        self.store.record_promise(1)\n"
                    "        self.send(src, Promise(ballot=1))  # lint: ignore[PROTO101] -- fixture\n"
                ),
            },
            select=["PROTO101"],
        )
        assert result.ok
        assert result.suppressed == 1


class TestGoldenSnapshots:
    """The fixture package under tests/fixtures/lintpkg pins the analyzer's
    call-graph and message-flow exports byte-for-byte.  If these fail after
    an intentional analyzer change, regenerate the goldens with the scan
    below and review the diff."""

    FIXTURES = Path(__file__).resolve().parents[1] / "fixtures"

    def _project(self):
        engine = LintEngine()
        result = engine.check_paths([self.FIXTURES / "lintpkg"])
        assert result.ok, "\n".join(f.render() for f in result.findings)
        assert engine.project is not None
        return engine.project

    def test_call_graph_matches_golden(self):
        import json

        project = self._project()
        got = {
            "version": 1,
            "edges": {
                caller: [[callee, line] for callee, line in callees]
                for caller, callees in sorted(project.graph.edges.items())
            },
        }
        golden = json.loads(
            (self.FIXTURES / "lintpkg-callgraph.golden.json").read_text(
                encoding="utf-8"
            )
        )
        assert got == golden

    def test_message_flow_matches_golden(self):
        import json

        from repro.lint.graph import message_flow

        project = self._project()
        golden = json.loads(
            (self.FIXTURES / "lintpkg-msgflow.golden.json").read_text(
                encoding="utf-8"
            )
        )
        assert message_flow(project) == golden


class TestProjectRuleCatalogue:
    def test_project_rules_document_themselves(self):
        from repro.lint import all_project_rules

        rules = all_project_rules()
        assert [rule.rule_id for rule in rules] == [
            "DET101",
            "MSG101",
            "MSG102",
            "PROTO101",
        ]
        for rule in rules:
            assert rule.summary
            assert rule.rationale
