"""Unit tests for the DES kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Kernel


class TestScheduling:
    def test_events_fire_in_time_order(self):
        k = Kernel()
        fired = []
        k.schedule(0.3, fired.append, "c")
        k.schedule(0.1, fired.append, "a")
        k.schedule(0.2, fired.append, "b")
        k.run()
        assert fired == ["a", "b", "c"]

    def test_fifo_tie_breaking_at_same_time(self):
        k = Kernel()
        fired = []
        for tag in range(10):
            k.schedule(0.5, fired.append, tag)
        k.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self):
        k = Kernel()
        seen = []
        k.schedule(1.5, lambda: seen.append(k.now))
        k.run()
        assert seen == [1.5]
        assert k.now == 1.5

    def test_schedule_at_absolute(self):
        k = Kernel()
        seen = []
        k.schedule_at(2.0, lambda: seen.append(k.now))
        k.run()
        assert seen == [2.0]

    def test_negative_delay_rejected(self):
        k = Kernel()
        with pytest.raises(SimulationError):
            k.schedule(-0.1, lambda: None)

    def test_schedule_into_past_rejected(self):
        k = Kernel()
        k.schedule(1.0, lambda: None)
        k.run()
        with pytest.raises(SimulationError):
            k.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run(self):
        k = Kernel()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                k.schedule(0.1, chain, n + 1)

        k.schedule(0.0, chain, 0)
        k.run()
        assert fired == [0, 1, 2, 3]
        assert k.now == pytest.approx(0.3)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        k = Kernel()
        fired = []
        handle = k.schedule(0.1, fired.append, "x")
        handle.cancel()
        k.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        k = Kernel()
        handle = k.schedule(0.1, lambda: None)
        handle.cancel()
        handle.cancel()
        assert k.pending == 0

    def test_pending_counts_only_live_events(self):
        k = Kernel()
        a = k.schedule(0.1, lambda: None)
        k.schedule(0.2, lambda: None)
        assert k.pending == 2
        a.cancel()
        assert k.pending == 1


class TestRun:
    def test_run_until_stops_before_later_events(self):
        k = Kernel()
        fired = []
        k.schedule(1.0, fired.append, "early")
        k.schedule(3.0, fired.append, "late")
        k.run(until=2.0)
        assert fired == ["early"]
        assert k.now == 2.0
        k.run()
        assert fired == ["early", "late"]

    def test_run_until_advances_clock_when_idle(self):
        k = Kernel()
        k.run(until=5.0)
        assert k.now == 5.0

    def test_max_events(self):
        k = Kernel()
        fired = []
        for i in range(5):
            k.schedule(0.1 * (i + 1), fired.append, i)
        k.run(max_events=2)
        assert fired == [0, 1]

    def test_run_returns_processed_count(self):
        k = Kernel()
        for i in range(4):
            k.schedule(0.1, lambda: None)
        assert k.run() == 4

    def test_not_reentrant(self):
        k = Kernel()
        errors = []

        def nested():
            try:
                k.run()
            except SimulationError as exc:
                errors.append(exc)

        k.schedule(0.1, nested)
        k.run()
        assert len(errors) == 1


class TestDeterminism:
    def test_rng_streams_reproducible(self):
        a = Kernel(seed=7).rng("x")
        b = Kernel(seed=7).rng("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_rng_streams_independent_by_name(self):
        k = Kernel(seed=7)
        assert k.rng("x").random() != k.rng("y").random()

    def test_rng_streams_differ_by_seed(self):
        assert Kernel(seed=1).rng("x").random() != Kernel(seed=2).rng("x").random()

    def test_identical_schedules_identical_execution(self):
        def run_once():
            k = Kernel(seed=3)
            order = []
            rng = k.rng("jitter")
            for i in range(50):
                k.schedule(rng.random(), order.append, i)
            k.run()
            return order

        assert run_once() == run_once()
