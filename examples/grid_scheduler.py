#!/usr/bin/env python3
"""The grid scheduling service (§2, second example — the NILE planner).

An FCFS-with-priority scheduler is nondeterministic even though it uses no
randomness: whether a late high-priority job overtakes an earlier job
depends on *when* the scheduler examines its queue. This script:

1. shows the raw nondeterminism on two standalone service copies examining
   the queue at different times (the paper's Job A / Job B scenario);
2. replicates the scheduler with the paper's protocol (REPRO mode: the
   chosen job id is the reproduction info) and shows that all replicas
   agree on every scheduling decision — the prerequisite for policies like
   load balancing that need to know previous assignments.

Run:  python examples/grid_scheduler.py
"""

from __future__ import annotations

import random

from repro import Cluster, ClusterSpec, RequestKind, StateTransferMode, Step, sysnet
from repro.services.base import ExecutionContext
from repro.services.gridsched import GridSchedulerService


def standalone_demo() -> None:
    print("--- the §2 scenario on unsynchronized copies ---")

    def build() -> GridSchedulerService:
        service = GridSchedulerService()
        ctx1 = ExecutionContext(rng=random.Random(0), now=1.0)
        service.execute(("submit", "JobA", 0), ctx1)      # arrives at t=1
        ctx2 = ExecutionContext(rng=random.Random(0), now=2.0)
        service.execute(("submit", "JobB", 5), ctx2)      # t=2, higher prio
        return service

    fast = build()
    picked_fast = fast.execute(
        ("dispatch",), ExecutionContext(rng=random.Random(0), now=1.5)
    ).reply
    slow = build()
    picked_slow = slow.execute(
        ("dispatch",), ExecutionContext(rng=random.Random(0), now=3.0)
    ).reply
    print(f"  scheduler examining at t=1.5 picks: {picked_fast}")
    print(f"  scheduler examining at t=3.0 picks: {picked_slow}")
    print("  same requests, different outcomes -> nondeterministic\n")
    assert picked_fast == "JobA" and picked_slow == "JobB"


def replicated_demo() -> None:
    print("--- replicated with the paper's protocol (REPRO mode) ---")
    steps: list[Step] = []
    for i in range(12):
        steps.append(
            Step(requests=((RequestKind.WRITE, ("submit", f"job{i:02d}", i % 4)),))
        )
    for _ in range(8):
        steps.append(Step(requests=((RequestKind.WRITE, ("dispatch",)),)))
    steps.append(Step(requests=((RequestKind.READ, ("done",)),)))

    spec = ClusterSpec(
        profile=sysnet(), seed=3, state_mode=StateTransferMode.REPRO
    )
    cluster = Cluster(spec, [steps], service_factory=GridSchedulerService)
    cluster.run()
    cluster.drain(1.0)

    dispatch_order = cluster.clients[0].request_records()[-1].value
    print(f"  dispatch order decided by the leader: {dispatch_order}")

    orders = {
        pid: tuple(replica.service.dispatched)
        for pid, replica in cluster.replicas.items()
    }
    assert len(set(orders.values())) == 1
    print(f"  all replicas agree on the schedule: {sorted(orders)}  [ok]")
    # Priorities were honored among jobs visible at each dispatch.
    print("  (priority 3 jobs drained before priority 0 stragglers)")


def main() -> None:
    standalone_demo()
    replicated_demo()


if __name__ == "__main__":
    main()
