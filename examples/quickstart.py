#!/usr/bin/env python3
"""Quickstart: replicate a key-value store and survive a leader crash.

Builds a three-replica cluster on the simulated Sysnet profile with the
Ω heartbeat elector, runs a closed-loop client issuing writes and X-Paxos
reads, crashes the leader mid-run, and shows that:

* every acknowledged request executed exactly once,
* a new leader took over automatically,
* all surviving replicas converged to the same store contents.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Cluster, ClusterSpec, RequestKind, Step, sysnet
from repro.cluster.faults import FaultSchedule
from repro.cluster.metrics import collect
from repro.services.kvstore import KVStoreService


def main() -> None:
    # A workload of alternating writes and reads against one key space.
    steps: list[Step] = []
    for i in range(40):
        steps.append(Step(requests=((RequestKind.WRITE, ("put", f"key{i % 8}", i)),)))
        steps.append(Step(requests=((RequestKind.READ, ("get", f"key{i % 8}")),)))

    spec = ClusterSpec(
        profile=sysnet(),
        seed=42,
        elector="omega",            # automatic failover via heartbeats
        omega_heartbeat=0.01,
        omega_timeout=0.05,
        client_timeout=0.08,
    )
    cluster = Cluster(spec, [steps], service_factory=KVStoreService)

    # Crash the initial leader a few milliseconds into the run.
    FaultSchedule(cluster).crash_leader(at=0.004)

    cluster.run(max_time=60.0)
    cluster.drain(1.0)
    result = collect(cluster)

    print("=== quickstart: replicated KV store with leader crash ===")
    print(result.describe())
    print(f"retransmits while failing over: {result.total_retransmits}")

    # Reads always reflect the latest acknowledged write.
    records = cluster.clients[0].request_records()
    for i in range(40):
        write, read = records[2 * i], records[2 * i + 1]
        assert read.value == i, f"stale read: wrote {i}, read {read.value}"
    print("every read returned the latest committed write  [ok]")

    survivors = {
        pid: replica
        for pid, replica in cluster.replicas.items()
        if replica.alive
    }
    leader = [pid for pid, r in survivors.items() if r.is_leading]
    print(f"new leader after crash: {leader[0]} (was {cluster.leader_pid})")

    fingerprints = {pid: r.service.state_fingerprint() for pid, r in survivors.items()}
    assert len(set(fingerprints.values())) == 1
    print(f"surviving replicas converged: {sorted(fingerprints)}  [ok]")
    store = survivors[leader[0]].service.data
    print(f"final store (8 keys): { {k: store[k] for k in sorted(store)} }")


if __name__ == "__main__":
    main()
