#!/usr/bin/env python3
"""When does X-Paxos help? The paper's three deployments side by side.

Reproduces the §4.1 story in one table: on a LAN, X-Paxos cuts read latency
~22%; with co-located replicas and remote clients it buys nothing (m << M);
with replicas spread across a WAN it avoids the expensive inter-site accept
round and wins big. Also prints the §3.4 analytic predictions next to the
simulated measurements.

Run:  python examples/wan_comparison.py
"""

from __future__ import annotations

from repro.analysis.model import LatencyModelInputs, basic_rrt, original_rrt, xpaxos_rrt
from repro.cluster.scenarios import rrt_scenario
from repro.net.profiles import (
    BP_CLIENT_SERVER,
    BP_SERVER_SERVER,
    SYSNET_CLIENT_SERVER,
    SYSNET_SERVER_SERVER,
    get_profile,
)
from repro.util.tables import format_table

MODEL_INPUTS = {
    "sysnet": LatencyModelInputs(SYSNET_CLIENT_SERVER, SYSNET_SERVER_SERVER),
    "berkeley_princeton": LatencyModelInputs(BP_CLIENT_SERVER, BP_SERVER_SERVER),
    "wan": LatencyModelInputs(35.3e-3, 17.85e-3),
}


def main() -> None:
    rows = []
    for name in ("sysnet", "berkeley_princeton", "wan"):
        profile = get_profile(name)
        measured = {}
        for kind in ("original", "read", "write"):
            result = rrt_scenario(name, kind, samples=100, seed=1)
            measured[kind] = result.rrt.mean
        inputs = MODEL_INPUTS[name]
        model = {
            "original": original_rrt(inputs),
            "read": xpaxos_rrt(inputs),
            "write": basic_rrt(inputs),
        }
        gain = (measured["write"] - measured["read"]) / measured["write"] * 100
        for kind in ("original", "read", "write"):
            rows.append(
                [
                    name,
                    kind,
                    f"{model[kind] * 1e3:.3f}",
                    f"{measured[kind] * 1e3:.3f}",
                    f"{profile.paper_rrt[kind] * 1e3:.3f}",
                ]
            )
        rows.append([name, "-> X-Paxos gain over basic", "", f"{gain:.0f}%", ""])
    print(
        format_table(
            ["deployment", "request", "model (ms)", "simulated (ms)", "paper (ms)"],
            rows,
        )
    )
    print(
        "\ntakeaway: X-Paxos pays off exactly when replica-to-replica latency"
        "\nis not negligible next to client latency (LAN: ~22%, WAN: ~29%,"
        "\nco-located replicas: ~0%)."
    )


if __name__ == "__main__":
    main()
