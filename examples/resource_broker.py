#!/usr/bin/env python3
"""The distributed grid resource broker (§2, first example).

A broker that places tasks with a *randomized* load-balancing algorithm
(power-of-two-choices). This script demonstrates the paper's motivating
problem and its solution side by side:

1. replicate the broker with classic Multi-Paxos (ship the request,
   re-execute everywhere) — the replicas draw from independent random
   streams and **diverge**;
2. replicate it with the paper's protocol in REPRO mode (ship the leader's
   placement decision) — the replicas stay **identical**, while the leader
   still balances load randomly.

Run:  python examples/resource_broker.py
"""

from __future__ import annotations

from collections import Counter

from repro import Cluster, ClusterSpec, RequestKind, StateTransferMode, sysnet
from repro.client.workload import single_kind_steps
from repro.services.broker import ResourceBrokerService

N_NODES = 6
N_TASKS = 48


def broker_factory() -> ResourceBrokerService:
    service = ResourceBrokerService()
    for i in range(N_NODES):
        service.resources[f"node{i}"] = [1000.0, 0.0]
    return service


def run(mode: StateTransferMode) -> Cluster:
    steps = single_kind_steps(
        RequestKind.WRITE, N_TASKS, op=lambda i: ("request", f"task{i}", 10)
    )
    spec = ClusterSpec(profile=sysnet(), seed=7, state_mode=mode)
    cluster = Cluster(spec, [steps], service_factory=broker_factory)
    cluster.run()
    cluster.drain(1.0)
    return cluster


def describe(cluster: Cluster) -> None:
    for pid, replica in sorted(cluster.replicas.items()):
        placements = replica.service.placements
        load = Counter(resource for resource, _demand in placements.values())
        row = "  ".join(f"{node}:{load.get(node, 0):2d}" for node in sorted(
            cluster.leader().service.resources
        ))
        print(f"  {pid}: {row}")


def main() -> None:
    print(f"placing {N_TASKS} tasks on {N_NODES} nodes, randomized broker\n")

    print("--- Multi-Paxos baseline (SMR: replicas re-execute the request) ---")
    smr = run(StateTransferMode.SMR)
    describe(smr)
    fingerprints = set(smr.replica_fingerprints().values())
    print(f"  distinct replica states: {len(fingerprints)}  (diverged!)\n")
    assert len(fingerprints) > 1

    print("--- the paper's protocol (REPRO: ship the leader's decision) ---")
    nd = run(StateTransferMode.REPRO)
    describe(nd)
    fingerprints = set(nd.replica_fingerprints().values())
    print(f"  distinct replica states: {len(fingerprints)}  (consistent)")
    assert len(fingerprints) == 1

    # The randomized balancing still happened: load is spread.
    load = Counter(
        resource for resource, _d in nd.leader().service.placements.values()
    )
    print(f"  nodes used by the leader's random placement: {len(load)}/{N_NODES}")
    assert len(load) > 1


if __name__ == "__main__":
    main()
