#!/usr/bin/env python3
"""The protocol stack over real TCP sockets on localhost.

The paper's prototype used TCP between all processes (§4). This script
runs the *same* replica and client objects used in the simulator on the
:class:`repro.transport.tcp.TcpRuntime` — every message is pickled,
length-prefixed and shipped over a real localhost socket — and reports
wall-clock latencies.

Run:  python examples/real_tcp.py
"""

from __future__ import annotations

import statistics
import time

from repro.client.client import Client
from repro.client.workload import single_kind_steps, txn_steps
from repro.core.config import ReplicaConfig
from repro.core.replica import Replica
from repro.election.static import StaticElector
from repro.services.kvstore import KVStoreService
from repro.transport.tcp import TcpRuntime
from repro.types import RequestKind

PEERS = ("r0", "r1", "r2")
N_WRITES = 50


def main() -> None:
    config = ReplicaConfig(peers=PEERS, accept_retry=0.2, prepare_retry=0.1)
    runtime = TcpRuntime()
    replicas = []
    for pid in PEERS:
        replica = Replica(pid, config, KVStoreService, StaticElector("r0"))
        runtime.add(replica)
        replicas.append(replica)

    steps = (
        single_kind_steps(RequestKind.WRITE, N_WRITES, op=lambda i: ("put", i, i))
        + single_kind_steps(RequestKind.READ, N_WRITES, op=lambda i: ("get", i))
        + txn_steps(10, lambda t: [("put", f"txn{t}", j) for j in range(3)], optimized=True)
    )
    client = Client("c0", replicas=PEERS, steps=steps, timeout=1.0, wait_for_start=False)
    runtime.add(client)

    print("starting 3 replicas + 1 client over localhost TCP ...")
    runtime.start()
    t0 = time.monotonic()
    try:
        ok = runtime.run_until(lambda: client.done, timeout=60.0)
        assert ok, "run did not finish"
        elapsed = time.monotonic() - t0
        time.sleep(0.2)  # let the final Chosen broadcasts land
    finally:
        runtime.shutdown()

    rrts = client.rrts()
    print(f"completed {client.completed_requests} requests in {elapsed:.2f}s wall clock")
    print(
        f"RRT over real sockets: median {statistics.median(rrts) * 1e3:.2f} ms, "
        f"p95 {sorted(rrts)[int(len(rrts) * 0.95)] * 1e3:.2f} ms"
    )
    print(
        f"transport: {runtime.messages_sent} messages, "
        f"{runtime.bytes_sent / 1024:.1f} KiB shipped"
    )

    fingerprints = {r.pid: r.service.state_fingerprint() for r in replicas}
    assert len(set(fingerprints.values())) == 1
    print(f"replica stores identical across {sorted(fingerprints)}  [ok]")


if __name__ == "__main__":
    main()
