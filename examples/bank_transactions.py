#!/usr/bin/env python3
"""T-Paxos transactions (§3.5): concurrent bank transfers.

Four clients run transfer transactions against replicated accounts.
Conflicting transactions (same accounts) are aborted by the no-wait strict
2PL lock manager and retried with fresh transaction ids; committed
transfers replicate as a single consensus instance each. The invariant
checked at the end: money is conserved, every replica agrees, and the
number of applied transfers equals the number of commit acknowledgements.

The script also measures the T-Paxos speedup on this workload by running
the same transfers as unoptimized write sequences.

Run:  python examples/bank_transactions.py
"""

from __future__ import annotations

from repro import Cluster, ClusterSpec, sysnet
from repro.client.workload import txn_steps
from repro.cluster.metrics import collect
from repro.services.bank import BankService

ACCOUNTS = ("alice", "bob", "carol", "dave")
OPENING_BALANCE = 1_000
TRANSFERS_PER_CLIENT = 25
AMOUNT = 7


def bank_factory() -> BankService:
    service = BankService()
    service.accounts = {name: OPENING_BALANCE for name in ACCOUNTS}
    return service


def transfer_ops(client_index: int):
    def ops(i: int):
        src = ACCOUNTS[(client_index + i) % len(ACCOUNTS)]
        dst = ACCOUNTS[(client_index + i + 1) % len(ACCOUNTS)]
        return [("withdraw", src, AMOUNT), ("deposit", dst, AMOUNT)]

    return ops


def run(optimized: bool) -> tuple[Cluster, float]:
    client_steps = [
        txn_steps(
            TRANSFERS_PER_CLIENT,
            transfer_ops(c),
            optimized=optimized,
            commit_op=("deposit", ACCOUNTS[c], 0),  # a no-effect write
        )
        for c in range(4)
    ]
    spec = ClusterSpec(profile=sysnet(), seed=11, retry_aborted=True, max_abort_retries=200)
    cluster = Cluster(spec, client_steps, service_factory=bank_factory)
    cluster.run()
    cluster.drain(1.0)
    result = collect(cluster)
    return cluster, result.trt.mean


def main() -> None:
    cluster, trt_opt = run(optimized=True)
    committed = sum(c.completed_steps for c in cluster.clients)
    aborted = sum(1 for c in cluster.clients for s in c.records if s.aborted)
    print("=== T-Paxos concurrent transfers ===")
    print(f"committed transfers: {committed}  (aborted+retried: {aborted})")

    leader_accounts = cluster.leader().service.accounts
    total = sum(leader_accounts.values())
    print(f"balances: {leader_accounts}")
    print(f"conservation: total = {total} (expected {OPENING_BALANCE * len(ACCOUNTS)})")
    assert total == OPENING_BALANCE * len(ACCOUNTS)
    assert committed == 4 * TRANSFERS_PER_CLIENT

    fingerprints = set(cluster.replica_fingerprints().values())
    assert len(fingerprints) == 1
    print("all replicas agree on every balance  [ok]")

    _cluster2, trt_base = run(optimized=False)
    print(
        f"\ntransaction response time: optimized {trt_opt * 1e3:.3f} ms vs "
        f"unoptimized {trt_base * 1e3:.3f} ms "
        f"(-{(1 - trt_opt / trt_base) * 100:.0f}%, paper Table 1: -28..39%)"
    )


if __name__ == "__main__":
    main()
