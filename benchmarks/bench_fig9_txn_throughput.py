"""Figure 9 — transaction throughput on Sysnet, 3- and 5-request
transactions, 1-16 clients.

Paper: T-Paxos increases throughput by 42-57% over read/write transactions
and 52-97% over write-only (3-req); 53-90% and 69-138% (5-req) — the
advantage grows with the client count.
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit, grid_map
from repro.analysis.report import series_comparison
from repro.util.tables import format_table

CLIENTS = (1, 2, 4, 8, 16)
MODES = ("read_write", "write_only", "optimized")
TOTAL_TXNS = 400


def compute(k: int):
    params = [
        {"mode": mode, "requests_per_txn": k, "n_clients": c,
         "total_txns": TOTAL_TXNS, "seed": 5}
        for c in CLIENTS
        for mode in MODES
    ]
    results = iter(grid_map("txn_throughput", params))
    series = {mode: [] for mode in MODES}
    for _c in CLIENTS:
        for mode in MODES:
            series[mode].append(next(results)["step_throughput"])
    text = series_comparison(
        f"Fig. 9{'a' if k == 3 else 'b'} — {k}-request transaction throughput (txn/s)",
        "clients",
        CLIENTS,
        series,
    )
    gain_rows = []
    for i, c in enumerate(CLIENTS):
        opt = series["optimized"][i]
        gain_rows.append(
            [
                c,
                f"+{(opt / series['read_write'][i] - 1) * 100:.0f}%",
                f"+{(opt / series['write_only'][i] - 1) * 100:.0f}%",
            ]
        )
    text += "\n\nT-Paxos gain (paper 3-req: +42..57% / +52..97%; 5-req: +53..90% / +69..138%)\n"
    text += format_table(["clients", "vs read_write", "vs write_only"], gain_rows)
    return text, series


@pytest.mark.benchmark(group="fig9")
@pytest.mark.parametrize("k", [3, 5])
def test_fig9_txn_throughput(once, k):
    text, series = once(compute, k)
    emit(f"fig9_txn_throughput_{k}req", text,
         data={"clients": list(CLIENTS), "step_throughput": series},
         metrics={f"{mode}_txn_throughput_16c": {"value": series[mode][-1],
                                                 "unit": "txn/s",
                                                 "direction": "higher"}
                  for mode in MODES},
         profile="sysnet", protocol="tpaxos")
    for i, _c in enumerate(CLIENTS):
        assert series["optimized"][i] > series["read_write"][i] > series["write_only"][i]
    # The improvement grows with the client count (paper's trend).
    first_gain = series["optimized"][0] / series["write_only"][0]
    last_gain = series["optimized"][-1] / series["write_only"][-1]
    assert last_gain > first_gain
