"""Figure 7 + §4.1 — Berkeley clients, co-located Princeton replicas.

Paper: original 91.85 ms, read 92.79 ms, write 93.13 ms; throughput curves
for the three request kinds nearly coincide — "the basic protocol achieves
performance roughly the same as a non-replicated service and the X-Paxos
optimization does not improve RRT and throughput much" because m << M.
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit, grid_map
from repro.analysis.report import comparison_table, series_comparison
from repro.net.profiles import berkeley_princeton

PAPER = berkeley_princeton().paper_rrt
CLIENTS = (1, 2, 4, 8, 16)
KINDS = ("read", "write", "original")


def compute():
    rrt_results = grid_map(
        "rrt",
        [{"profile": "berkeley_princeton", "kind": kind, "samples": 80, "seed": 1}
         for kind in KINDS],
    )
    rows = []
    rrts = {}
    for kind, result in zip(KINDS, rrt_results, strict=True):
        rrts[kind] = result["rrt"]["mean"]
        rows.append((kind, PAPER[kind], rrts[kind]))
    params = [
        {"profile": "berkeley_princeton", "kind": kind, "n_clients": c,
         "total_requests": 480, "seed": 3}
        for c in CLIENTS
        for kind in KINDS
    ]
    results = iter(grid_map("throughput", params))
    series = {kind: [] for kind in KINDS}
    for _c in CLIENTS:
        for kind in KINDS:
            series[kind].append(next(results)["throughput"])
    text = comparison_table("RRT Berkeley->Princeton (paper §4.1)", rows)
    text += "\n\n" + series_comparison(
        "Fig. 7 — throughput Berkeley->Princeton (req/s); paper: curves coincide",
        "clients",
        CLIENTS,
        series,
        fmt="{:.1f}",
    )
    return text, rrts, series


@pytest.mark.benchmark(group="fig7")
def test_fig7_berkeley_princeton(once):
    text, rrts, series = once(compute)
    emit("fig7_berkeley_princeton", text,
         data={"rrt_s": rrts, "clients": list(CLIENTS), "throughput": series},
         metrics={f"rrt_{kind}_s": {"value": rrts[kind], "unit": "s",
                                    "direction": "lower"}
                  for kind in KINDS},
         profile="berkeley_princeton", protocol="all")
    for kind in KINDS:
        assert rrts[kind] == pytest.approx(PAPER[kind], rel=0.03)
    # Curves coincide: all three kinds within 5% of one another everywhere.
    for i, _c in enumerate(CLIENTS):
        values = [series[kind][i] for kind in KINDS]
        assert max(values) / min(values) < 1.05
