"""Message complexity per request — the protocol analysis behind §3.4.

Counts the messages each protocol variant exchanges per request (and per
transaction) in the failure-free common case, on a quiet cluster (one
closed-loop client, so pipeline batching does not amortize anything and
the counts are the per-request protocol cost):

* original: request to all replicas + 1 reply.
* X-Paxos read: request to all + (n-1) confirms + 1 reply.
* basic write: request to all + accept round to (n-1) + (n-1) acks +
  chosen to (n-1) + 1 reply.
* T-Paxos: per-op cost of original, one write-like commit per txn.

Also reports the Fast Paxos §5 comparison analytically: message *delays*
on the client's critical path (3 for classic, 2 for fast).
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit
from repro.client.workload import paper_txn_steps, single_kind_steps
from repro.cluster.harness import Cluster, ClusterSpec
from repro.types import RequestKind
from repro.util.tables import format_table
from tests.conftest import make_test_profile

N = 3


def messages_per_request(kind: str, count: int = 40) -> float:
    spec = ClusterSpec(profile=make_test_profile(), seed=2, client_timeout=0.5)
    if kind == "txn":
        steps = paper_txn_steps("optimized", 3, count)
    else:
        steps = single_kind_steps(RequestKind(kind), count)
    cluster = Cluster(spec, [steps])
    cluster.run()
    cluster.drain(0.5)
    total = cluster.network.total_messages()
    # Subtract the protocol's ambient traffic (startup recovery, frontier
    # probes, start signals) by measuring a zero-request baseline run.
    baseline_cluster = Cluster(spec, [[]])
    baseline_cluster.run()
    baseline_cluster.drain(0.5)
    baseline = baseline_cluster.network.total_messages()
    return (total - baseline) / count


EXPECTED = {
    # kind: (formula, expected message count for n=3)
    "original": ("n + 1", N + 1),
    "read": ("n + (n-1) + 1", N + (N - 1) + 1),
    "write": ("n + 3(n-1) + 1", N + 3 * (N - 1) + 1),
}


def compute():
    rows = []
    measured = {}
    for kind, (formula, expected) in EXPECTED.items():
        value = messages_per_request(kind)
        measured[kind] = value
        rows.append([kind, formula, expected, f"{value:.2f}"])
    txn = messages_per_request("txn")
    expected_txn = 3 * (N + 1) + (N + 3 * (N - 1) + 1)
    measured["txn"] = txn
    rows.append(["T-Paxos 3-op txn", "3(n+1) + write", expected_txn, f"{txn:.2f}"])
    text = (
        "Message complexity per request (n = 3, failure-free, quiet pipeline)\n"
        + format_table(["request", "formula", "expected", "measured"], rows)
        + "\n\nCritical-path message delays (§5): classic Paxos write = 3 "
        "(client->leader->acceptors->leader->client counts 4 hops but 3 "
        "delays before commit knowledge), Fast Paxos = 2 "
        "(client->acceptors->learner) — at the cost of n >= 3f+1 replicas "
        "and collision recovery (see repro.core.fastpaxos)."
    )
    return text, measured


@pytest.mark.benchmark(group="messages")
def test_message_complexity(once):
    text, measured = once(compute)
    emit("message_complexity", text,
         data={"messages_per_request": measured},
         metrics={f"{kind}_msgs_per_req": {"value": measured[kind],
                                           "unit": "msg", "direction": "lower"}
                  for kind in measured},
         profile="test", protocol="all")
    for kind, (_formula, expected) in EXPECTED.items():
        assert measured[kind] == pytest.approx(expected, abs=0.6)
    assert measured["txn"] == pytest.approx(3 * (N + 1) + (N + 3 * (N - 1) + 1), abs=1.5)
