"""§4.1 text numbers — request response time on the Sysnet cluster.

Paper: original 0.181 ms (±0.002), read 0.263 ms (±0.02), write 0.338 ms
(±0.003); X-Paxos reduces the RRT 22% relative to the basic protocol.
"""

from __future__ import annotations

import time

import pytest

from benchmarks._util import emit
from repro.analysis.report import comparison_table, percent_change
from repro.cluster.scenarios import rrt_scenario
from repro.net.profiles import sysnet

PAPER = sysnet().paper_rrt
SAMPLES = 400


def compute():
    rows = []
    measured = {}
    wall = {}
    for kind in ("original", "read", "write"):
        start = time.perf_counter()
        result = rrt_scenario("sysnet", kind, samples=SAMPLES, seed=1)
        wall[kind] = time.perf_counter() - start
        measured[kind] = result.rrt
        rows.append((kind, PAPER[kind], result.rrt.mean))
    reduction = percent_change(measured["write"].mean, measured["read"].mean)
    text = comparison_table("RRT on Sysnet (paper §4.1)", rows)
    text += (
        f"\nX-Paxos read vs basic write: {reduction:+.1f}% "
        f"(paper: -22%)\n"
        + "\n".join(
            f"{kind}: ±{summary.ci99 * 1e3:.4f} ms (99% CI, n={summary.n})"
            for kind, summary in measured.items()
        )
    )
    data = {
        kind: {
            "paper_ms": PAPER[kind] * 1e3,
            "measured_ms": summary.mean * 1e3,
            "ci99_ms": summary.ci99 * 1e3,
            "n": summary.n,
        }
        for kind, summary in measured.items()
    }
    # Host-side wall-clock per scenario run — the serial hot-path perf
    # record (never compared against simulated results; see tests/perf/).
    data["host"] = {
        "wall_s": {kind: round(value, 4) for kind, value in wall.items()},
        "total_wall_s": round(sum(wall.values()), 4),
    }
    return text, measured, data


@pytest.mark.benchmark(group="rrt")
def test_rrt_sysnet(once):
    text, measured, data = once(compute)
    metrics = {
        f"rrt_{kind}_s": {"value": summary.mean, "unit": "s", "direction": "lower"}
        for kind, summary in measured.items()
    }
    metrics["total_wall_s"] = {
        "value": data["host"]["total_wall_s"], "unit": "s", "direction": "lower",
    }
    emit("rrt_sysnet", text, data=data, metrics=metrics,
         profile="sysnet", protocol="all")
    # Reproduction guardrails: within 5% of the paper's means.
    for kind in PAPER:
        assert measured[kind].mean == pytest.approx(PAPER[kind], rel=0.05)
