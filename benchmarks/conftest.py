"""Benchmark-suite configuration.

Every benchmark runs the deterministic simulator, so a single round is
meaningful (re-running yields the identical virtual-time result; the
wall-clock number pytest-benchmark reports measures the simulator itself).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benched function exactly once and return its result."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
