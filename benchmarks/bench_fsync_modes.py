"""Stable-storage ablation — the price of durability barriers.

The simulator models three fsync disciplines (:mod:`repro.storage`):
``async`` (the legacy zero-latency semantics: appends are durable at
once), ``sync`` (every durability barrier waits one modeled device
fsync) and ``group`` (barriers ride a shared group-commit fsync).

We run the same write workload under each mode and measure completion
time, request throughput and how many device fsyncs the run cost.
Expected: ``async`` fastest with zero fsyncs; ``sync`` and ``group``
both pay for durability. The measured fine print is a classic group
commit result: the consensus pipeline already coalesces one batch of
requests per round into a single barrier, so at closed-loop
concurrency the group window finds nothing extra to merge — it matches
``sync``'s fsync count and only adds its waiting time. Group commit
pays off when the log device is contended (fsync slower than the round
time), not as a free default.
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit
from repro.client.workload import single_kind_steps
from repro.cluster.harness import Cluster, ClusterSpec
from repro.cluster.metrics import collect
from repro.services.counter import CounterService
from repro.storage import FSYNC_MODES
from repro.types import RequestKind
from repro.util.tables import format_table
from tests.conftest import make_test_profile

N_CLIENTS = 8          # group commit amortizes across *concurrent* barriers
STEPS_PER_CLIENT = 25
CLIENT_TIMEOUT = 0.2


def run(fsync: str):
    workloads = [
        single_kind_steps(RequestKind.WRITE, STEPS_PER_CLIENT, op=("add", 1))
        for _ in range(N_CLIENTS)
    ]
    spec = ClusterSpec(
        profile=make_test_profile(latency=1e-3),
        seed=11,
        client_timeout=CLIENT_TIMEOUT,
        fsync=fsync,
    )
    cluster = Cluster(spec, workloads, service_factory=CounterService)
    cluster.run(max_time=300.0)
    result = collect(cluster)
    counters = cluster.metrics.counters()
    fsyncs = sum(v for k, v in counters.items() if k.endswith("storage.fsyncs"))
    appends = sum(v for k, v in counters.items() if k.endswith("storage.appends"))
    assert result.total_requests == N_CLIENTS * STEPS_PER_CLIENT
    return result.duration, result.throughput, fsyncs, appends


def compute():
    rows = []
    series = {}
    for fsync in FSYNC_MODES:
        duration, throughput, fsyncs, appends = run(fsync)
        series[fsync] = {
            "duration_s": duration,
            "throughput_rps": throughput,
            "fsyncs": fsyncs,
            "appends": appends,
        }
        rows.append(
            [fsync, f"{duration * 1e3:.1f}", f"{throughput:.0f}",
             fsyncs, appends]
        )
    text = (
        "stable storage — one write workload under each fsync discipline\n"
        "expected: async fastest (no barriers); sync and group both pay for\n"
        "durability; the pipeline already batches one barrier per consensus\n"
        "round, so group matches sync's fsync count and adds window latency\n"
        + format_table(
            ["fsync", "duration (ms)", "req/s", "fsyncs", "appends"], rows
        )
    )
    return text, series


@pytest.mark.benchmark(group="fsync_modes")
def test_fsync_mode_cost(once):
    text, series = once(compute)
    emit("fsync_modes", text,
         data={"series": series},
         metrics={
             f"{fsync}_throughput": {
                 "value": series[fsync]["throughput_rps"],
                 "unit": "req/s", "direction": "higher",
             }
             for fsync in series
         },
         profile="test", protocol="basic")
    # Durability barriers cost modeled time...
    assert series["async"]["duration_s"] < series["sync"]["duration_s"]
    assert series["async"]["duration_s"] < series["group"]["duration_s"]
    # ...the group window adds latency on top of the fsync itself...
    assert series["group"]["duration_s"] >= series["sync"]["duration_s"]
    # ...and async never touches the fsync machinery.
    assert series["async"]["fsyncs"] == 0
    assert series["sync"]["fsyncs"] > 0
    # The pipeline batches one barrier per round: group cannot need *more*
    # fsyncs than sync, and both amortize far below one per append.
    assert series["group"]["fsyncs"] <= series["sync"]["fsyncs"]
    assert series["sync"]["fsyncs"] < series["sync"]["appends"]
