"""§3.3 ablation — state-transfer cost vs service-state size.

The paper keeps its benchmark state small ("a few bytes") and notes that
"the overhead of transferring larger size of state was analysed in [30]",
sketching two remedies: reproduction info and deltas. This bench sweeps
the service-state size and compares write RRT and shipped payload bytes
under FULL, DELTA and REPRO transfer — showing exactly why the remedies
matter.

Payload bytes are measured on the wire (AcceptBatch traffic); the RRT
model charges serialization at ~1 GB/s on top of the base per-message CPU
cost, so FULL-mode writes slow down visibly once the state reaches
hundreds of kilobytes.
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit
from repro.client.workload import single_kind_steps
from repro.cluster.harness import Cluster, ClusterSpec
from repro.cluster.metrics import collect
from repro.core.messages import AcceptBatch
from repro.net.profiles import sysnet
from repro.services.noop import NoopService
from repro.sim.cpu import CpuProfile
from repro.types import RequestKind, StateTransferMode
from repro.util.tables import format_table

SIZES = (100, 10_000, 1_000_000)
MODES = (StateTransferMode.FULL, StateTransferMode.DELTA, StateTransferMode.REPRO)
#: Serialization throughput used to convert payload bytes into CPU time.
BYTES_PER_SECOND = 1e9


def run(mode: StateTransferMode, state_size: int):
    profile = sysnet()
    # Charge serialization of the state into the per-message cost so the
    # latency effect of big FULL payloads is modeled, not just counted.
    extra = (state_size / BYTES_PER_SECOND) if mode is StateTransferMode.FULL else 0.0
    profile = type(profile)(
        name=profile.name,
        description=profile.description,
        replica_cpu=CpuProfile(
            send_cost=profile.replica_cpu.send_cost + extra,
            recv_cost=profile.replica_cpu.recv_cost,
        ),
        client_cpu=profile.client_cpu,
        paper_rrt=profile.paper_rrt,
        _builder=profile._builder,
        per_connection_overhead=0.0,
    )
    spec = ClusterSpec(
        profile=profile,
        seed=4,
        state_mode=mode,
        connection_scaling=False,
        checkpoint_interval=10_000,  # keep the log around to measure payloads
    )
    steps = single_kind_steps(RequestKind.WRITE, 100)
    cluster = Cluster(
        spec, [steps], service_factory=lambda: NoopService(state_size=state_size)
    )
    cluster.spec.trace  # noqa: B018 - trace not needed; bytes from log
    cluster.run()
    result = collect(cluster)
    # Average shipped payload size, from the leader's log.
    leader = cluster.leader()
    sizes = [
        leader.log.chosen_value(i).payload.size_hint()
        for i in range(leader.log.compacted_to + 1, leader.log.frontier + 1)
    ]
    mean_payload = sum(sizes) / len(sizes) if sizes else 0.0
    return result.rrt.mean, mean_payload


def compute():
    rows = []
    data = {}
    for size in SIZES:
        for mode in MODES:
            rrt, payload = run(mode, size)
            data[(mode, size)] = (rrt, payload)
            rows.append(
                [f"{size:>9,}", mode.value, f"{rrt * 1e3:.3f}", f"{payload:,.0f}"]
            )
    text = (
        "§3.3 — write RRT and shipped payload vs state size\n"
        "expected: FULL grows with state; DELTA/REPRO stay flat\n"
        + format_table(["state (bytes)", "mode", "write RRT (ms)", "payload (B)"], rows)
    )
    return text, data


@pytest.mark.benchmark(group="state_transfer")
def test_state_transfer_ablation(once):
    text, data = once(compute)
    big = SIZES[-1]
    emit("state_transfer", text,
         data={f"{mode.value}_{size}": {"rrt_s": data[(mode, size)][0],
                                        "payload_bytes": data[(mode, size)][1]}
               for size in SIZES for mode in MODES},
         metrics={
             "full_1mb_write_rrt_s": {
                 "value": data[(StateTransferMode.FULL, big)][0],
                 "unit": "s", "direction": "lower"},
             "delta_1mb_payload_bytes": {
                 "value": data[(StateTransferMode.DELTA, big)][1],
                 "unit": "B", "direction": "lower"},
         },
         profile="sysnet", protocol="basic")
    big, small = SIZES[-1], SIZES[0]
    # FULL payload scales with state; DELTA/REPRO do not.
    assert data[(StateTransferMode.FULL, big)][1] > 100 * data[(StateTransferMode.FULL, small)][1]
    for mode in (StateTransferMode.DELTA, StateTransferMode.REPRO):
        ratio = data[(mode, big)][1] / data[(mode, small)][1]
        assert 0.5 < ratio < 2.0
    # And the latency penalty of FULL at 1 MB is visible.
    assert data[(StateTransferMode.FULL, big)][0] > 1.5 * data[(StateTransferMode.DELTA, big)][0]
