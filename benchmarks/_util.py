"""Shared plumbing for the benchmark suite.

Each benchmark regenerates one table or figure from the paper's §4. The
measured rows/series are printed *and* written to ``benchmarks/results/``
so the reproduction record survives pytest's output capture; EXPERIMENTS.md
is assembled from those files. Alongside each ``<name>.txt`` block,
:func:`emit` writes a machine-readable ``BENCH_<name>.json`` summary so
dashboards and regression tooling don't have to re-parse the text tables —
benchmarks pass their structured rows/series via ``data``.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_workers() -> int:
    """Worker processes for grid benchmarks (``REPRO_BENCH_WORKERS``).

    Defaults to 1 (serial, in-process) so plain ``pytest benchmarks/``
    stays deterministic and dependency-free. Grid results are identical
    for any worker count — every run's seed is part of its spec.
    """
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))


def grid_map(task: str, param_list: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Map one sweep task over a parameter grid, honoring ``bench_workers``."""
    from repro.parallel import pmap

    return pmap(task, param_list, workers=bench_workers())


def emit(name: str, text: str, data: Any = None) -> str:
    """Print a result block and persist it under benchmarks/results/.

    Writes ``<name>.txt`` (the human-readable block) and
    ``BENCH_<name>.json`` (``{"name", "text", "data"}`` — ``data`` is the
    benchmark's structured summary, or ``None`` for text-only benchmarks).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    summary = {"name": name, "text": text, "data": data}
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True, default=str) + "\n"
    )
    return text
