"""Shared plumbing for the benchmark suite.

Each benchmark regenerates one table or figure from the paper's §4. The
measured rows/series are printed *and* written to ``benchmarks/results/``
so the reproduction record survives pytest's output capture; EXPERIMENTS.md
is assembled from those files.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> str:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text
