"""Shared plumbing for the benchmark suite.

Each benchmark regenerates one table or figure from the paper's §4. The
measured rows/series are printed *and* written to ``benchmarks/results/``
so the reproduction record survives pytest's output capture; EXPERIMENTS.md
is assembled from those files. Alongside each ``<name>.txt`` block,
:func:`emit` writes a machine-readable ``BENCH_<name>.json`` summary so
dashboards and regression tooling don't have to re-parse the text tables —
benchmarks pass their structured rows/series via ``data`` and their named
scalar measurements via ``metrics``.

BENCH documents are **schema 2**: ``{"schema": 2, "name", "text", "data",
"metrics", "meta"}``. ``metrics`` maps metric names to
``{"value", "unit", "direction"}`` entries (scalars are normalized, with
the direction inferred from the name); ``meta`` stamps provenance — commit
hash, network profile, protocol, worker count, host — via
:func:`repro.obs.ledger.collect_meta`. The perf ledger
(``repro perf record`` / ``check``) ingests exactly this shape; when the
``REPRO_PERF_LEDGER`` environment variable names a ledger path, emit
appends the metrics there directly so benchmark runs self-record.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_workers() -> int:
    """Worker processes for grid benchmarks (``REPRO_BENCH_WORKERS``).

    Defaults to 1 (serial, in-process) so plain ``pytest benchmarks/``
    stays deterministic and dependency-free. Grid results are identical
    for any worker count — every run's seed is part of its spec.
    """
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))


def grid_map(task: str, param_list: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Map one sweep task over a parameter grid, honoring ``bench_workers``."""
    from repro.parallel import pmap

    return pmap(task, param_list, workers=bench_workers())


def _normalize_metrics(metrics: dict[str, Any] | None) -> dict[str, Any]:
    from repro.obs.ledger import infer_direction

    normalized: dict[str, Any] = {}
    for name in sorted(metrics or {}):
        entry = metrics[name]
        if isinstance(entry, dict):
            normalized[name] = {
                "value": entry.get("value"),
                "unit": str(entry.get("unit") or ""),
                "direction": entry.get("direction") or infer_direction(name),
            }
        else:
            normalized[name] = {
                "value": entry,
                "unit": "",
                "direction": infer_direction(name),
            }
    return normalized


def emit(
    name: str,
    text: str,
    data: Any = None,
    *,
    metrics: dict[str, Any] | None = None,
    profile: str | None = None,
    protocol: str | None = None,
    workers: int | None = None,
) -> str:
    """Print a result block and persist it under benchmarks/results/.

    Writes ``<name>.txt`` (the human-readable block) and a schema-2
    ``BENCH_<name>.json`` (see module docstring). ``metrics`` names the
    scalar measurements the perf ledger should track; ``profile`` /
    ``protocol`` / ``workers`` feed the provenance stamp. When
    ``REPRO_PERF_LEDGER`` is set and metrics are present, the observations
    are appended to that ledger immediately.
    """
    from repro.obs.ledger import append_records, bench_records, collect_meta

    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    summary = {
        "schema": 2,
        "name": name,
        "text": text,
        "data": data,
        "metrics": _normalize_metrics(metrics),
        "meta": collect_meta(
            profile=profile,
            protocol=protocol,
            workers=workers if workers is not None else bench_workers(),
        ),
    }
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True, default=str) + "\n"
    )
    ledger = os.environ.get("REPRO_PERF_LEDGER")
    if ledger and summary["metrics"]:
        records, _problems = bench_records(summary, source=name)
        append_records(ledger, records)
    return text
