"""Figure 6 — throughput with 8-128 clients (log scale in the paper).

Paper shape: "The basic protocol and X-Paxos achieve the highest throughput
when the number of clients was between 32 and 64" — i.e. both peak in the
middle of the range and decline at 128, while the original service keeps
scaling longer. The decline comes from per-connection scanning overhead at
the leader (modeled as CPU cost growing with the client count).
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit, grid_map
from repro.analysis.report import series_comparison

CLIENTS = (8, 16, 32, 64, 128)
KINDS = ("read", "write", "original")


def compute():
    params = [
        {"profile": "sysnet", "kind": kind, "n_clients": c,
         "total_requests": 1000, "seed": 3}
        for c in CLIENTS
        for kind in KINDS
    ]
    results = iter(grid_map("throughput", params))
    series = {kind: [] for kind in KINDS}
    for _c in CLIENTS:
        for kind in KINDS:
            series[kind].append(next(results)["throughput"])
    text = series_comparison(
        "Fig. 6 — throughput, 8-128 clients; paper: read/write peak at 32-64",
        "clients",
        CLIENTS,
        series,
    )
    return text, series


@pytest.mark.benchmark(group="fig6")
def test_fig6_many_clients(once):
    text, series = once(compute)
    emit("fig6_many_clients", text,
         data={"clients": list(CLIENTS), "throughput": series},
         metrics={f"{kind}_peak_throughput": {"value": max(series[kind]),
                                              "unit": "req/s",
                                              "direction": "higher"}
                  for kind in KINDS},
         profile="sysnet", protocol="all")
    for kind in ("read", "write"):
        curve = dict(zip(CLIENTS, series[kind]))
        peak_clients = max(curve, key=curve.get)
        assert 16 <= peak_clients <= 64, f"{kind} peaked at {peak_clients}"
        assert curve[128] < max(curve.values())
