"""Figure 8 + §4.1 — wide-area deployment (leader UIUC, replicas Utah and
Texas, clients Berkeley and Oregon).

Paper: original 70.82 ms, read 75.49 ms, write 106.73 ms; "when service
processes are located on different sites, X-Paxos achieves better
performance than the basic protocol" — the read curve sits clearly above
the write curve in throughput.
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit
from repro.analysis.report import comparison_table, series_comparison
from repro.cluster.scenarios import rrt_scenario, throughput_scenario
from repro.net.profiles import wan

PAPER = wan().paper_rrt
CLIENTS = (1, 2, 4, 8, 16)
KINDS = ("read", "write", "original")


def compute():
    rows = []
    rrts = {}
    for kind in KINDS:
        result = rrt_scenario("wan", kind, samples=80, seed=1)
        rrts[kind] = result.rrt.mean
        rows.append((kind, PAPER[kind], result.rrt.mean))
    series = {kind: [] for kind in KINDS}
    for c in CLIENTS:
        for kind in KINDS:
            result = throughput_scenario("wan", kind, c, total_requests=480, seed=3)
            series[kind].append(result.throughput)
    text = comparison_table("RRT on WAN (paper §4.1)", rows)
    text += "\n\n" + series_comparison(
        "Fig. 8 — throughput on WAN (req/s); paper: read (X-Paxos) beats write",
        "clients",
        CLIENTS,
        series,
        fmt="{:.1f}",
    )
    return text, rrts, series


@pytest.mark.benchmark(group="fig8")
def test_fig8_wan(once):
    text, rrts, series = once(compute)
    emit("fig8_wan", text)
    for kind in KINDS:
        assert rrts[kind] == pytest.approx(PAPER[kind], rel=0.03)
    # X-Paxos clearly beats the basic protocol on the WAN.
    for i, _c in enumerate(CLIENTS):
        assert series["read"][i] > 1.2 * series["write"][i]
        assert series["original"][i] >= series["read"][i]
