"""Figure 8 + §4.1 — wide-area deployment (leader UIUC, replicas Utah and
Texas, clients Berkeley and Oregon).

Paper: original 70.82 ms, read 75.49 ms, write 106.73 ms; "when service
processes are located on different sites, X-Paxos achieves better
performance than the basic protocol" — the read curve sits clearly above
the write curve in throughput.
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit, grid_map
from repro.analysis.report import comparison_table, series_comparison
from repro.net.profiles import wan

PAPER = wan().paper_rrt
CLIENTS = (1, 2, 4, 8, 16)
KINDS = ("read", "write", "original")


def compute():
    rrt_results = grid_map(
        "rrt",
        [{"profile": "wan", "kind": kind, "samples": 80, "seed": 1}
         for kind in KINDS],
    )
    rows = []
    rrts = {}
    for kind, result in zip(KINDS, rrt_results, strict=True):
        rrts[kind] = result["rrt"]["mean"]
        rows.append((kind, PAPER[kind], rrts[kind]))
    params = [
        {"profile": "wan", "kind": kind, "n_clients": c,
         "total_requests": 480, "seed": 3}
        for c in CLIENTS
        for kind in KINDS
    ]
    results = iter(grid_map("throughput", params))
    series = {kind: [] for kind in KINDS}
    for _c in CLIENTS:
        for kind in KINDS:
            series[kind].append(next(results)["throughput"])
    text = comparison_table("RRT on WAN (paper §4.1)", rows)
    text += "\n\n" + series_comparison(
        "Fig. 8 — throughput on WAN (req/s); paper: read (X-Paxos) beats write",
        "clients",
        CLIENTS,
        series,
        fmt="{:.1f}",
    )
    return text, rrts, series


@pytest.mark.benchmark(group="fig8")
def test_fig8_wan(once):
    text, rrts, series = once(compute)
    emit("fig8_wan", text,
         data={"rrt_s": rrts, "clients": list(CLIENTS), "throughput": series},
         metrics={f"rrt_{kind}_s": {"value": rrts[kind], "unit": "s",
                                    "direction": "lower"}
                  for kind in KINDS},
         profile="wan", protocol="all")
    for kind in KINDS:
        assert rrts[kind] == pytest.approx(PAPER[kind], rel=0.03)
    # X-Paxos clearly beats the basic protocol on the WAN.
    for i, _c in enumerate(CLIENTS):
        assert series["read"][i] > 1.2 * series["write"][i]
        assert series["original"][i] >= series["read"][i]
