"""§4.3 ablation — tolerating multiple failures (t > 1).

The paper argues (without a full study): with replicas on a low-latency
network and clients far away, increasing t barely affects the basic
protocol's client latency (the client talks only to the leader), while
X-Paxos sends each read across the wide area to *more* replicas and waits
for a larger confirm quorum, so wide-area variance makes reads degrade as
t grows.

We reproduce that intuition: replicas co-located (Princeton-style, m << M)
with high-variance client links, n in {3, 5, 7} (t in {1, 2, 3}).
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit
from repro.cluster.scenarios import rrt_scenario
from repro.net.latency import LogNormalLatency
from repro.net.link import LinkSpec
from repro.net.profiles import NetworkProfile
from repro.net.topology import Topology
from repro.sim.cpu import CpuProfile
from repro.util.tables import format_table

#: High jitter on the client <-> replica wide-area path (§4.3's premise).
WIDE_AREA_SIGMA = 0.35


def variance_profile() -> NetworkProfile:
    def builder(replicas, clients):
        topo = Topology()
        topo.place_all(list(replicas), "servers")
        topo.place_all(list(clients), "clients")
        topo.set_intra("servers", LinkSpec(latency=LogNormalLatency(0.5e-3, 0.05)))
        topo.set_intra("clients", LinkSpec(latency=LogNormalLatency(0.5e-3, 0.05)))
        topo.set_link(
            "clients",
            "servers",
            LinkSpec(latency=LogNormalLatency(40e-3, WIDE_AREA_SIGMA)),
        )
        return topo

    return NetworkProfile(
        name="t_sweep",
        description="co-located replicas, high-variance wide-area clients",
        replica_cpu=CpuProfile(send_cost=5e-6, recv_cost=5e-6),
        client_cpu=CpuProfile(send_cost=1e-6, recv_cost=1e-6),
        paper_rrt={},
        _builder=builder,
        per_connection_overhead=0.0,
    )


def compute():
    profile = variance_profile()
    rows = []
    data = {}
    for n in (3, 5, 7):
        read = rrt_scenario(profile, "read", samples=300, seed=9, n_replicas=n)
        write = rrt_scenario(profile, "write", samples=300, seed=9, n_replicas=n)
        data[n] = (read.rrt.mean, write.rrt.mean)
        rows.append(
            [
                n,
                (n - 1) // 2,
                f"{read.rrt.mean * 1e3:.2f}",
                f"{write.rrt.mean * 1e3:.2f}",
            ]
        )
    text = (
        "§4.3 — RRT vs replication degree (high-variance client links)\n"
        "expected: X-Paxos reads degrade with t; basic-protocol writes stay flat\n"
        + format_table(["n", "t", "read RRT (ms)", "write RRT (ms)"], rows)
    )
    return text, data


@pytest.mark.benchmark(group="t_sweep")
def test_t_sweep(once):
    text, data = once(compute)
    emit("t_sweep", text,
         data={str(n): {"read_rrt_s": v[0], "write_rrt_s": v[1]}
               for n, v in data.items()},
         metrics={
             "read_rrt_n7_s": {"value": data[7][0], "unit": "s",
                               "direction": "lower"},
             "write_rrt_n7_s": {"value": data[7][1], "unit": "s",
                                "direction": "lower"},
         },
         profile="t_sweep", protocol="all")
    # Reads degrade monotonically as t grows (larger confirm quorum over a
    # jittery WAN). The effect is mild — the client<->leader leg dominates —
    # matching the paper's hedged phrasing ("could result in performance
    # degrading").
    assert data[3][0] < data[5][0] < data[7][0]
    assert data[7][0] > data[3][0] * 1.005
    # Writes are insensitive: the client path still only involves the leader.
    assert abs(data[7][1] - data[3][1]) / data[3][1] < 0.02
