"""Table 1 — transaction response time on Sysnet.

Paper (ms): read/write 3-req 1.17, 5-req 1.79; write-only 3-req 1.29,
5-req 2.01; optimized (T-Paxos) 3-req 0.85, 5-req 1.23. T-Paxos reduces
TRT by 28%/34% (3-req) and 31%/39% (5-req).
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit, grid_map
from repro.analysis.report import comparison_table
from repro.util.tables import format_table

PAPER_MS = {
    ("read_write", 3): 1.17,
    ("read_write", 5): 1.79,
    ("write_only", 3): 1.29,
    ("write_only", 5): 2.01,
    ("optimized", 3): 0.85,
    ("optimized", 5): 1.23,
}
SAMPLES = 200


def compute():
    cells = list(PAPER_MS.items())
    results = grid_map(
        "txn_rrt",
        [{"mode": mode, "requests_per_txn": k, "samples": SAMPLES, "seed": 2}
         for (mode, k), _ in cells],
    )
    measured = {}
    rows = []
    for ((mode, k), paper_ms), result in zip(cells, results, strict=True):
        measured[(mode, k)] = result["trt"]
        rows.append((f"{mode} {k}-req", paper_ms * 1e-3, result["trt"]["mean"]))
    text = comparison_table("Table 1 — transaction response time", rows)

    reduction_rows = []
    for k in (3, 5):
        for base in ("read_write", "write_only"):
            baseline = measured[(base, k)]["mean"]
            optimized = measured[("optimized", k)]["mean"]
            reduction_rows.append(
                [f"vs {base} {k}-req", f"{(baseline - optimized) / baseline * 100:.0f}%"]
            )
    text += "\n\nT-Paxos TRT reduction (paper: 28%/34% at 3-req, 31%/39% at 5-req)\n"
    text += format_table(["baseline", "reduction"], reduction_rows)
    text += "\n\n99% CIs: " + ", ".join(
        f"{mode}-{k}: ±{s['ci99'] * 1e3:.3f} ms" for (mode, k), s in measured.items()
    )
    return text, measured


@pytest.mark.benchmark(group="table1")
def test_table1_trt(once):
    text, measured = once(compute)
    emit("table1_trt", text,
         data={f"{mode}_{k}req": s for (mode, k), s in measured.items()},
         metrics={f"trt_{mode}_{k}req_s": {"value": s["mean"], "unit": "s",
                                           "direction": "lower"}
                  for (mode, k), s in measured.items()},
         profile="sysnet", protocol="tpaxos")
    for key, paper_ms in PAPER_MS.items():
        assert measured[key]["mean"] * 1e3 == pytest.approx(paper_ms, rel=0.08)
