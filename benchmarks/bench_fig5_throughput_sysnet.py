"""Figure 5 — service throughput on Sysnet, 1-16 clients.

Paper shape: original highest; read throughput at least 13% above write;
all three still rising at 16 clients. (Absolute values depend on testbed
constants; the shape is the reproduction target.)
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit, grid_map
from repro.analysis.report import series_comparison

CLIENTS = (1, 2, 4, 8, 16)
KINDS = ("read", "write", "original")
TOTAL_REQUESTS = 1000  # §4: "each client sends exactly 1000/c requests"


def compute():
    params = [
        {"profile": "sysnet", "kind": kind, "n_clients": c,
         "total_requests": TOTAL_REQUESTS, "seed": 3}
        for c in CLIENTS
        for kind in KINDS
    ]
    results = iter(grid_map("throughput", params))
    series = {kind: [] for kind in KINDS}
    for _c in CLIENTS:
        for kind in KINDS:
            series[kind].append(next(results)["throughput"])
    text = series_comparison(
        "Fig. 5 — throughput on Sysnet (req/s); paper: original > read >= 1.13*write",
        "clients",
        CLIENTS,
        series,
    )
    return text, series


@pytest.mark.benchmark(group="fig5")
def test_fig5_throughput_sysnet(once):
    text, series = once(compute)
    emit("fig5_throughput_sysnet", text,
         data={"clients": list(CLIENTS), "throughput": series},
         metrics={f"{kind}_throughput_16c": {"value": series[kind][-1],
                                             "unit": "req/s",
                                             "direction": "higher"}
                  for kind in KINDS},
         profile="sysnet", protocol="all")
    for i, _c in enumerate(CLIENTS):
        assert series["original"][i] > series["read"][i] > series["write"][i]
    # "the throughput of reads was at least 13% higher than that of writes"
    assert all(r >= 1.13 * w for r, w in zip(series["read"], series["write"]))
