"""§5 comparator — semi-passive replication vs the paper's protocol.

The paper notes that semi-passive replication (Défago et al. [7]) shares
the <command, state-update> consensus idea "but its practical
implementation and performance remains uninvestigated". This bench
investigates it:

* runs the semi-passive group driver (Chandra-Toueg ♦S per request, lazy
  execution) and counts per-request coordination delays and messages;
* compares against the basic protocol's measured message count and the
  §3.4 analytic latency on each deployment profile.

Expected outcome: with a *stable leader*, the paper's protocol needs 2
replica-to-replica delays per write; semi-passive pays 4 every time (the
estimate round cannot be elided because no agreed primary exists). On the
WAN profile that's the difference between ~106 ms and ~177 ms writes —
the quantitative justification for building on Paxos with leader election
rather than ♦S consensus per request.
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit
from repro.core.semipassive import SemiPassiveGroup
from repro.net.profiles import (
    BP_CLIENT_SERVER,
    BP_SERVER_SERVER,
    SYSNET_CLIENT_SERVER,
    SYSNET_SERVER_SERVER,
    WAN_LATENCY,
)
from repro.services.counter import CounterService
from repro.util.tables import format_table

PROFILE_LATENCIES = {
    "sysnet": (SYSNET_CLIENT_SERVER, SYSNET_SERVER_SERVER),
    "berkeley_princeton": (BP_CLIENT_SERVER, BP_SERVER_SERVER),
    "wan": (WAN_LATENCY[("berkeley", "uiuc")], WAN_LATENCY[("uiuc", "texas")]),
}
N_REQUESTS = 200


def compute():
    group = SemiPassiveGroup(("p0", "p1", "p2"), CounterService, seed=1)
    for _ in range(N_REQUESTS):
        group.submit(("add", 1))
    sp_delays = sum(group.stats.delays_per_request) / N_REQUESTS
    sp_messages = group.stats.messages / N_REQUESTS

    rows = []
    projections = {}
    for name, (m_client, m_replica) in PROFILE_LATENCIES.items():
        basic = 2 * m_client + 2 * m_replica
        semi = 2 * m_client + sp_delays * m_replica
        projections[name] = (basic, semi)
        rows.append(
            [
                name,
                f"{basic * 1e3:.3f}",
                f"{semi * 1e3:.3f}",
                f"+{(semi / basic - 1) * 100:.0f}%",
            ]
        )
    text = (
        "§5 — semi-passive replication vs the basic protocol\n"
        f"semi-passive measured: {sp_delays:.1f} replica delays and "
        f"{sp_messages:.1f} messages per request (failure-free);\n"
        "basic protocol: 2 replica delays (stable leader, AcceptBatch round).\n\n"
        "Projected write RRT (analytic, per §3.4 with each profile's M, m):\n"
        + format_table(
            ["deployment", "basic (ms)", "semi-passive (ms)", "overhead"], rows
        )
        + "\n\nFailover trade: semi-passive needs no leader election (the next"
        "\ncoordinator takes over within the same instance); the basic protocol"
        "\npays a prepare round only at leader changes. The paper's bet — a"
        "\nstable leader is the common case — wins everywhere the replica"
        "\nnetwork is not free."
    )
    return text, sp_delays, projections


@pytest.mark.benchmark(group="semipassive")
def test_semipassive_comparison(once):
    text, sp_delays, projections = once(compute)
    emit("semipassive", text,
         data={"delays_per_request": sp_delays,
               "projection_s": {k: list(v) for k, v in projections.items()}},
         metrics={"semipassive_delays_per_req": {"value": sp_delays,
                                                 "unit": "delays",
                                                 "direction": "lower"}},
         protocol="semipassive")
    assert sp_delays == pytest.approx(4.0)
    for name, (basic, semi) in projections.items():
        assert semi > basic
    # On the WAN the gap is dramatic (2 extra 17.85 ms legs).
    wan_basic, wan_semi = projections["wan"]
    assert wan_semi - wan_basic > 0.03
