"""Ablation — open-loop latency vs offered load (the hockey stick).

The paper only measures closed-loop throughput (clients gate on replies).
An open-loop Poisson client decouples offered load from the client count
and exposes the latency curve as load approaches the leader's capacity:
flat at low load, then a sharp knee near saturation. The knee should land
where the queueing model (`repro.analysis.queueing`) predicts ~1/S.
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit
from repro.analysis.queueing import sysnet_model
from repro.client.openloop import OpenLoopClient
from repro.core.config import ReplicaConfig
from repro.core.replica import Replica
from repro.election.static import StaticElector
from repro.net.network import SimNetwork
from repro.net.profiles import sysnet
from repro.services.noop import NoopService
from repro.sim.kernel import Kernel
from repro.sim.world import World
from repro.types import RequestKind
from repro.util.tables import format_table

PEERS = ("r0", "r1", "r2")
REQUESTS = 3000


def run_open_loop(kind: RequestKind, rate: float, seed: int = 3):
    profile = sysnet()
    topology = profile.build_topology(PEERS, ("c0",))
    network = SimNetwork(topology, seed=seed)
    kernel = Kernel(seed=seed)
    world = World(kernel, network)
    config = ReplicaConfig(peers=PEERS)
    for pid in PEERS:
        world.add(
            Replica(pid, config, NoopService, StaticElector("r0")),
            cpu=profile.replica_cpu,
        )
    client = OpenLoopClient(
        "c0", PEERS, kind, op=(kind.value,), rate=rate, total=REQUESTS,
        wait_for_start=False, warmup=0.01,
    )
    world.add(client, cpu=profile.client_cpu)
    world.start()
    deadline = REQUESTS / rate * 3 + 1.0
    while not client.done and kernel.now < deadline:
        kernel.run(until=kernel.now + 0.05)
    return client.stats


def compute():
    model = sysnet_model("original")
    capacity = 1.0 / model.service  # ~100 kreq/s for the original service
    fractions = (0.2, 0.5, 0.8, 0.95, 1.1)
    rows = []
    latencies = {}
    for fraction in fractions:
        rate = capacity * fraction
        stats = run_open_loop(RequestKind.ORIGINAL, rate)
        rrts = sorted(stats.rrts)
        mean = sum(rrts) / len(rrts)
        p99 = rrts[int(len(rrts) * 0.99)]
        latencies[fraction] = mean
        rows.append(
            [
                f"{fraction:.2f}",
                f"{rate:,.0f}",
                stats.completed,
                f"{mean * 1e3:.3f}",
                f"{p99 * 1e3:.3f}",
            ]
        )
    text = (
        "Open-loop latency vs offered load (original requests, Sysnet)\n"
        f"modeled leader capacity 1/S = {capacity:,.0f} req/s\n"
        + format_table(
            ["load/capacity", "rate (req/s)", "completed", "mean RRT (ms)",
             "p99 RRT (ms)"],
            rows,
        )
        + "\nexpected: flat latency at low load, sharp knee approaching 1.0"
    )
    return text, latencies


@pytest.mark.benchmark(group="latency_throughput")
def test_latency_throughput_knee(once):
    text, latencies = once(compute)
    emit("latency_throughput", text,
         data={"mean_rrt_s_by_load": {str(f): v for f, v in latencies.items()}},
         metrics={
             "rrt_mean_s_50pct_load": {"value": latencies[0.5], "unit": "s",
                                       "direction": "lower"},
             "rrt_mean_s_95pct_load": {"value": latencies[0.95], "unit": "s",
                                       "direction": "lower"},
         },
         profile="sysnet", protocol="original")
    # Flat region: 50% load costs < 1.5x the 20% latency.
    assert latencies[0.5] < 1.5 * latencies[0.2]
    # The knee: beyond capacity, latency blows past 3x the idle latency.
    assert latencies[1.1] > 3 * latencies[0.2]
    # And 95% load is already visibly worse than 50%.
    assert latencies[0.95] > 1.2 * latencies[0.5]
