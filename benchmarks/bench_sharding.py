"""Sharding scale-up — closed-loop write throughput, 1 vs 4 groups.

The single-log stack executes requests on one leader pipeline: with a
modeled execution time E per request (§3.4's E component), the leader
serializes every write and throughput is capped near ``1/E`` whatever
the client count. Sharding the keyspace into replication groups gives
each shard its own leader pipeline; with the workload spread evenly
over 4 groups (keys pre-picked onto distinct shards), the four
execution pipelines run concurrently and closed-loop throughput should
approach 4x the single-log ceiling. The measured target is >= 2.5x —
protocol latency (M, m) and the shared per-process fsync clock eat some
of the ideal speedup.

Same keys, same clients, same seed in both runs; only ``groups``
changes.
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit
from repro.client.workload import single_kind_steps
from repro.cluster.harness import Cluster, ClusterSpec
from repro.cluster.metrics import collect
from repro.net.profiles import get_profile
from repro.services.kvstore import KVStoreService
from repro.types import RequestKind
from repro.util.tables import format_table

#: crc32 % 4 = 0, 1, 2, 3 — one key per shard (test_shard_router pins the
#: router to exactly this arithmetic, so the placement cannot drift).
SHARD_KEYS = ("a4", "a0", "a5", "a1")
N_CLIENTS = 8          # two closed-loop writers per shard key
STEPS_PER_CLIENT = 25
EXECUTE_TIME = 1e-3    # E dominates: the leader pipeline is the bottleneck
GROUP_COUNTS = (1, 4)


def run(groups: int):
    workloads = []
    for c in range(N_CLIENTS):
        key = SHARD_KEYS[c % len(SHARD_KEYS)]
        workloads.append(
            single_kind_steps(
                RequestKind.WRITE,
                STEPS_PER_CLIENT,
                op=lambda i, key=key: ("put", key, i),
            )
        )
    spec = ClusterSpec(
        profile=get_profile("sysnet"),
        n_replicas=4,  # groups=4 puts one shard leader on each replica
        seed=5,
        groups=groups,
        execute_time=EXECUTE_TIME,
        client_timeout=2.0,
    )
    cluster = Cluster(spec, workloads, service_factory=KVStoreService)
    cluster.run(max_time=600.0)
    result = collect(cluster)
    assert result.total_requests == N_CLIENTS * STEPS_PER_CLIENT
    return result


def compute():
    series = {}
    rows = []
    for groups in GROUP_COUNTS:
        result = run(groups)
        series[groups] = {
            "duration_s": result.duration,
            "throughput_rps": result.throughput,
            "mean_rrt_s": result.rrt.mean if result.rrt else 0.0,
        }
        rows.append(
            [groups, f"{result.duration * 1e3:.1f}",
             f"{result.throughput:.0f}",
             f"{series[groups]['mean_rrt_s'] * 1e3:.2f}"]
        )
    speedup = (
        series[4]["throughput_rps"] / series[1]["throughput_rps"]
    )
    text = (
        "sharded replication — same keyed write workload, 1 vs 4 groups\n"
        f"E = {EXECUTE_TIME * 1e3:.0f} ms per request; one leader pipeline per group\n"
        f"measured speedup at 4 groups: {speedup:.2f}x (target >= 2.5x)\n"
        + format_table(
            ["groups", "duration (ms)", "req/s", "mean rrt (ms)"], rows
        )
    )
    return text, series, speedup


@pytest.mark.benchmark(group="sharding")
def test_sharding_write_scaleup(once):
    text, series, speedup = once(compute)
    emit("sharding", text,
         data={"series": {str(g): series[g] for g in series}},
         metrics={
             "groups1_throughput": {
                 "value": series[1]["throughput_rps"],
                 "unit": "req/s", "direction": "higher",
             },
             "groups4_throughput": {
                 "value": series[4]["throughput_rps"],
                 "unit": "req/s", "direction": "higher",
             },
             "sharding_speedup": {
                 "value": speedup, "unit": "x", "direction": "higher",
             },
         },
         profile="sysnet", protocol="basic")
    # Four concurrent leader pipelines must beat one by a wide margin.
    assert speedup >= 2.5, f"sharding speedup {speedup:.2f}x below 2.5x"
    # Latency under load drops too: each closed-loop writer queues behind
    # 1/4 as much execution.
    assert series[4]["mean_rrt_s"] < series[1]["mean_rrt_s"]
