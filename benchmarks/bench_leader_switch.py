"""§3.6 ablation — sensitivity to leader switches.

The paper: "'Long enough' is longer for X-Paxos than for Paxos ... and even
longer for T-Paxos; if the leader switches during the transaction ... the
transaction has to be aborted. Thus, X-Paxos and T-Paxos are more
sensitive to leader switching than Paxos."

We force periodic instant leader switches (manual elector) and measure the
completion-time inflation of each workload relative to its switch-free
run, plus the transaction abort count.
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit
from repro.client.workload import paper_txn_steps, single_kind_steps
from repro.cluster.faults import FaultSchedule
from repro.cluster.harness import Cluster, ClusterSpec
from repro.cluster.metrics import collect
from repro.types import RequestKind
from repro.util.tables import format_table
from tests.conftest import make_test_profile

SWITCH_PERIOD = 0.05   # a switch every 50 ms
CLIENT_TIMEOUT = 0.02
RUN_STEPS = 120


def run(workload: str, switches: bool):
    profile = make_test_profile(latency=1e-3)
    if workload == "write":
        steps = single_kind_steps(RequestKind.WRITE, RUN_STEPS)
    elif workload == "read":
        steps = single_kind_steps(RequestKind.READ, RUN_STEPS)
    else:
        steps = paper_txn_steps("optimized", 3, RUN_STEPS // 4)
    spec = ClusterSpec(
        profile=profile,
        seed=7,
        elector="manual",
        client_timeout=CLIENT_TIMEOUT,
        retry_aborted=True,
    )
    cluster = Cluster(spec, [steps])
    if switches:
        schedule = FaultSchedule(cluster)
        order = ["r1", "r2", "r0"]
        for i in range(12):
            schedule.switch_leader(order[i % 3], at=SWITCH_PERIOD * (i + 1))
    cluster.run(max_time=120.0)
    result = collect(cluster)
    aborts = sum(1 for c in cluster.clients for s in c.records if s.aborted)
    return result.duration, aborts


def compute():
    rows = []
    inflation = {}
    aborts = {}
    for workload in ("write", "read", "txn"):
        base, _ = run(workload, switches=False)
        switched, aborted = run(workload, switches=True)
        inflation[workload] = switched / base
        aborts[workload] = aborted
        rows.append(
            [workload, f"{base * 1e3:.1f}", f"{switched * 1e3:.1f}",
             f"{switched / base:.2f}x", aborted]
        )
    text = (
        "§3.6 — completion time under forced leader switches (every 50 ms)\n"
        "expected: X-Paxos and T-Paxos more sensitive than the basic protocol;\n"
        "transactions additionally abort\n"
        + format_table(
            ["workload", "stable (ms)", "switching (ms)", "inflation", "txn aborts"],
            rows,
        )
    )
    return text, inflation, aborts


@pytest.mark.benchmark(group="leader_switch")
def test_leader_switch_sensitivity(once):
    text, inflation, aborts = once(compute)
    emit("leader_switch", text,
         data={"inflation": inflation, "aborts": aborts},
         metrics={f"{workload}_inflation": {"value": inflation[workload],
                                            "unit": "x", "direction": "lower"}
                  for workload in inflation},
         profile="test", protocol="all")
    # §3.6 ordering: X-Paxos reads and T-Paxos transactions suffer more
    # from switches than basic-protocol writes (queued writes survive a
    # recovery; pending reads and open transactions do not).
    assert inflation["read"] > inflation["write"] + 0.1
    assert inflation["txn"] > inflation["write"] + 0.1
    # And only transactions abort (T-Paxos's extra sensitivity).
    assert aborts["txn"] > 0
    assert aborts["write"] == 0 and aborts["read"] == 0
