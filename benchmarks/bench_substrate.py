"""Micro-benchmarks of the substrate itself (real pytest-benchmark use:
these measure host wall-clock performance, not simulated time).

They guard against performance regressions in the hot paths every
experiment exercises: the event heap, the CPU model, the lock manager and
the end-to-end simulated request loop.
"""

from __future__ import annotations

import pytest

from repro.cluster.scenarios import throughput_scenario
from repro.core.locks import LockManager
from repro.sim.cpu import CpuModel, CpuProfile
from repro.sim.kernel import Kernel


@pytest.mark.benchmark(group="substrate")
def test_kernel_event_throughput(benchmark):
    def run():
        kernel = Kernel()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 20_000:
                kernel.schedule(1e-6, tick)

        kernel.schedule(0.0, tick)
        kernel.run()
        return count

    assert benchmark(run) == 20_000


@pytest.mark.benchmark(group="substrate")
def test_kernel_heap_with_cancellations(benchmark):
    def run():
        kernel = Kernel()
        handles = [kernel.schedule(i * 1e-6, lambda: None) for i in range(10_000)]
        for handle in handles[::2]:
            handle.cancel()
        return kernel.run()

    assert benchmark(run) == 5_000


@pytest.mark.benchmark(group="substrate")
def test_cpu_model_acquire(benchmark):
    cpu = CpuModel(CpuProfile(recv_cost=1e-6))

    def run():
        now = 0.0
        for _ in range(10_000):
            now = cpu.recv_completion(now)
        return now

    benchmark(run)


@pytest.mark.benchmark(group="substrate")
def test_lock_manager_churn(benchmark):
    def run():
        lm = LockManager()
        for i in range(2_000):
            owner = f"t{i % 7}"
            lm.try_acquire(owner, frozenset({i % 13}), frozenset({(i + 1) % 13}))
            if i % 3 == 0:
                lm.release_all(owner)
        for i in range(7):
            lm.release_all(f"t{i}")
        return lm.owners()

    assert benchmark(run) == frozenset()


@pytest.mark.benchmark(group="substrate")
def test_end_to_end_simulated_write_rate(benchmark):
    """Host cost of simulating 1000 replicated writes (the workhorse of the
    whole benchmark suite)."""

    def run():
        return throughput_scenario("sysnet", "write", 4, total_requests=1000, seed=3)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.total_requests == 1000
