"""The replica's command log (§3.3).

"After accepting a proposal, a replica keeps the proposal in its log. Each
replica needs to remember all the requests in the accepted proposals, while
it only needs to keep the state of the latest proposal."

The log tracks, per consensus instance: the highest-numbered accepted
proposal, and the chosen (committed) value once known. The *frontier* is
the highest instance such that every instance up to it is chosen — the
prefix a replica may apply to its service copy. ``compact`` implements the
paper's retention rule by dropping applied prefixes once checkpointed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ballot import ProposalNumber
from repro.core.messages import Proposal, PromiseEntry
from repro.errors import ProtocolError
from repro.types import InstanceId


@dataclass(frozen=True, slots=True)
class AcceptedEntry:
    """The highest-numbered proposal this replica accepted for one instance."""

    pn: ProposalNumber
    value: Proposal


class ReplicaLog:
    """Per-replica log of accepted and chosen proposals."""

    def __init__(self) -> None:
        self._accepted: dict[InstanceId, AcceptedEntry] = {}
        self._chosen: dict[InstanceId, Proposal] = {}
        self._frontier: InstanceId = 0   # all instances <= frontier are chosen
        self._compacted_to: InstanceId = 0

    # --------------------------------------------------------------- accepts
    def accept(self, pn: ProposalNumber, value: Proposal) -> None:
        """Record an accepted proposal; keeps only the highest pn per instance."""
        instance = pn.instance
        if instance <= 0:
            raise ProtocolError(f"instance numbers are 1-based, got {instance}")
        current = self._accepted.get(instance)
        if current is None or pn > current.pn:
            self._accepted[instance] = AcceptedEntry(pn, value)

    def accepted_entry(self, instance: InstanceId) -> AcceptedEntry | None:
        return self._accepted.get(instance)

    # ---------------------------------------------------------------- chosen
    def choose(self, instance: InstanceId, value: Proposal) -> None:
        """Record that ``instance`` decided ``value``. Idempotent; a
        conflicting second value for the same instance is a safety violation
        and raises."""
        existing = self._chosen.get(instance)
        if existing is not None:
            if existing.primary_rid != value.primary_rid:
                raise ProtocolError(
                    f"instance {instance} chosen twice with different values: "
                    f"{existing.primary_rid} vs {value.primary_rid}"
                )
            return
        self._chosen[instance] = value
        while (self._frontier + 1) in self._chosen:
            self._frontier += 1

    def is_chosen(self, instance: InstanceId) -> bool:
        return instance in self._chosen or instance <= self._compacted_to

    def chosen_value(self, instance: InstanceId) -> Proposal | None:
        return self._chosen.get(instance)

    @property
    def frontier(self) -> InstanceId:
        """Highest instance with a fully chosen prefix."""
        return self._frontier

    def chosen_above(self, instance: InstanceId) -> list[tuple[InstanceId, Proposal]]:
        """Chosen entries with instance > ``instance``, ordered (for catch-up)."""
        return sorted(
            (i, v) for i, v in self._chosen.items() if i > instance
        )

    def chosen_items(self) -> tuple[tuple[InstanceId, Proposal], ...]:
        """Read-only snapshot of every retained chosen entry, ordered.

        Used by the chaos invariant layer to cross-check logs between
        replicas; entries below ``compacted_to`` have been dropped and are
        not reported."""
        return tuple(sorted(self._chosen.items()))

    # -------------------------------------------------------------- recovery
    def max_instance(self) -> InstanceId:
        """Highest instance this replica has any information about."""
        candidates = [self._frontier, self._compacted_to]
        if self._accepted:
            candidates.append(max(self._accepted))
        if self._chosen:
            candidates.append(max(self._chosen))
        return max(candidates)

    def max_instance_chosen(self) -> InstanceId:
        """Highest instance known to be chosen (the "90" of the paper's
        recovery example)."""
        if self._chosen:
            return max(max(self._chosen), self._compacted_to)
        return self._compacted_to

    def gaps(self) -> tuple[InstanceId, ...]:
        """Instances below the highest *chosen* one that are not chosen —
        the "88, 89" of the paper's recovery example."""
        if not self._chosen:
            return ()
        top = max(self._chosen)
        return tuple(
            i for i in range(self._compacted_to + 1, top) if i not in self._chosen
        )

    def promise_entries(
        self, gaps: tuple[InstanceId, ...], from_instance: InstanceId
    ) -> tuple[PromiseEntry, ...]:
        """Accepted entries a Promise should report for a Prepare's range."""
        wanted = set(gaps)
        entries = []
        for instance, entry in sorted(self._accepted.items()):
            if instance in wanted or instance >= from_instance:
                entries.append(PromiseEntry(pn=entry.pn, value=entry.value))
        return tuple(entries)

    def install_prefix(self, upto: InstanceId) -> None:
        """Record that every instance <= ``upto`` is decided and its effects
        are covered by an installed snapshot (recovery/catch-up path).

        Entries at or below ``upto`` are dropped; the frontier jumps forward
        and then re-extends over any already-known chosen instances above.
        """
        if upto <= self._frontier and upto <= self._compacted_to:
            return
        for instance in [i for i in self._chosen if i <= upto]:
            del self._chosen[instance]
        for instance in [i for i in self._accepted if i <= upto]:
            del self._accepted[instance]
        self._compacted_to = max(self._compacted_to, upto)
        self._frontier = max(self._frontier, upto)
        while (self._frontier + 1) in self._chosen:
            self._frontier += 1

    # ------------------------------------------------------------ compaction
    def compact(self, upto: InstanceId) -> int:
        """Forget chosen and accepted entries with instance <= ``upto``.

        Only a fully chosen prefix may be compacted (the caller must have
        checkpointed the corresponding state). Returns the number of
        entries dropped.
        """
        if upto > self._frontier:
            raise ProtocolError(
                f"cannot compact to {upto}: frontier is {self._frontier}"
            )
        dropped = 0
        for instance in [i for i in self._chosen if i <= upto]:
            del self._chosen[instance]
            dropped += 1
        for instance in [i for i in self._accepted if i <= upto]:
            del self._accepted[instance]
            dropped += 1
        self._compacted_to = max(self._compacted_to, upto)
        return dropped

    @property
    def compacted_to(self) -> InstanceId:
        return self._compacted_to

    def __len__(self) -> int:
        return len(self._chosen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReplicaLog frontier={self._frontier} chosen={len(self._chosen)} "
            f"accepted={len(self._accepted)} compacted_to={self._compacted_to}>"
        )
