"""One replication group: acceptor + (potential) leader for a
nondeterministic service, composing the basic protocol (§3.3), X-Paxos
reads (§3.4), T-Paxos transactions (§3.5) and new-leader recovery.

A :class:`ReplicationGroup` is the unit the paper calls a replica —
proposer, log, service copy, txn/read coordinators, and elector — keyed
by a :class:`~repro.types.GroupId`. A classic unsharded process *is* one
group standing alone (:class:`repro.core.replica.Replica`); a sharded
process hosts several groups behind one
:class:`repro.shard.host.GroupHost`, each electing its own leader and
running its own log, all sharing the process's stable-storage pump.

Request routing (the §4 experiment semantics):

* ``ORIGINAL`` — the unreplicated baseline: the leader executes and replies
  immediately, with **no** coordination. Backups ignore it.
* ``READ`` — X-Paxos when enabled: the leader executes while collecting a
  confirming majority; backups send a Confirm to the holder of the highest
  ballot they accepted. With ``xpaxos_reads=False`` reads flow through the
  basic protocol like writes.
* ``WRITE`` — the basic protocol: the leader executes the request when its
  turn in the sequential pipeline comes, proposes ``<req, state>`` for the
  next instance, commits on a majority of Accepteds, replies, then
  broadcasts ChosenBatch.
* ``TXN_*`` — T-Paxos (when enabled): see :mod:`repro.core.tpaxos`.

Message dispatch is declarative: the class-level :data:`DISPATCH` table
maps each wire message type to its handler method. The table is shared by
every group (it is protocol shape, not per-group state) and is what the
whole-program analyzer reads to pair senders with handlers.

Stable storage (survives crashes, per the Paxos requirement): the promised
ballot, the accepted/chosen log, the highest ballot round observed, and the
latest checkpoint ``(instance, service snapshot, executed-table snapshot)``
— all routed through :class:`repro.storage.store.StableStore`, which owns
the group's WAL view; durability itself (fsync latency, crash/replay) is
the per-process :class:`repro.storage.store.StoragePump`. On recovery the
group replays checkpoint + WAL tail (``on_recover``); if the device is
untrustworthy (lost acked writes, rotted record) it fail-stops instead of
rejoining. Everything else is volatile and rebuilt in ``on_recover``.
"""

from __future__ import annotations

import enum
from collections import Counter
from collections.abc import Callable
from typing import Any

from repro.core.ballot import Ballot, ProposalNumber
from repro.core.config import ReplicaConfig
from repro.core.locks import LockManager
from repro.core.messages import (
    AcceptBatch,
    AcceptedBatch,
    CatchUpInfo,
    CatchUpQuery,
    ChosenBatch,
    Confirm,
    FrontierProbe,
    Nack,
    Prepare,
    Promise,
    Proposal,
    Reply,
)
from repro.core.proposer import DEFER, SKIP, ProposalItem, SequentialProposer
from repro.core.recovery import RecoveryCoordinator
from repro.core.requests import ClientRequest, ExecutedTable, RequestId
from repro.core.state import apply_payload, build_payload
from repro.core.tpaxos import TxnManager
from repro.core.xpaxos import ReadCoordinator
from repro.election.base import LeaderElector
from repro.errors import ServiceError
from repro.obs.prof.profiler import NULL_PROFILER, NullProfiler, SimProfiler
from repro.obs.registry import NULL_REGISTRY, Scope
from repro.obs.spans import Span
from repro.obs.tracing import NULL_TRACER, NullTracer, Tracer
from repro.services.base import ExecutionContext, Service
from repro.sim.process import Process
from repro.storage.store import StableStore, StoragePump
from repro.types import (
    GroupId,
    InstanceId,
    ProcessId,
    ReplyStatus,
    RequestKind,
    StateTransferMode,
)


class ReplicaRole(enum.Enum):
    """Local view of this group's role on this process."""

    FOLLOWER = "follower"
    RECOVERING = "recovering"   # elected, running the prepare/accept rounds
    LEADING = "leading"         # recovery done, serving requests


class ReplicationGroup(Process):
    """One replica of one replication group (§3.1)."""

    #: Declarative handler registry: message type -> handler method name.
    #: Exact types only — wire messages are final frozen dataclasses. The
    #: elector sees every message first (it filters its own traffic);
    #: anything not in the table counts as unknown.
    DISPATCH: dict[type, str] = {
        ClientRequest: "_on_client_request",
        AcceptBatch: "_on_accept_batch",
        AcceptedBatch: "_on_accepted_batch",
        Nack: "_on_nack",
        ChosenBatch: "_on_chosen_batch",
        Confirm: "_on_confirm",
        Prepare: "_on_prepare",
        Promise: "_on_promise",
        FrontierProbe: "_on_frontier_probe",
        CatchUpQuery: "_on_catch_up_query",
        CatchUpInfo: "_on_catch_up_info",
        Reply: "_on_reply",
    }

    def __init__(
        self,
        pid: ProcessId,
        config: ReplicaConfig,
        service_factory: Callable[[], Service],
        elector: LeaderElector,
        group: GroupId = 0,
        pump: StoragePump | None = None,
    ) -> None:
        super().__init__(pid)
        if pid not in config.peers:
            raise ValueError(f"{pid!r} is not in the peer list {config.peers}")
        self.config = config
        self.group = group
        self.others = config.others(pid)
        self.service_factory = service_factory
        self.service: Service = service_factory()
        self.elector = elector
        elector.attach(self, config.peers)

        # ----- stable state (survives crashes via repro.storage) -----
        self.store = StableStore(self, pump=pump, group=group)
        self.store.initialize(self.service.snapshot())
        self.log = self.store.log
        self.promised: Ballot = Ballot.ZERO
        self.max_round_seen = -1

        # ----- volatile state -----
        self.executed = ExecutedTable()
        self.applied: InstanceId = 0
        self.role = ReplicaRole.FOLLOWER
        self.ballot: Ballot | None = None       # my ballot while elected
        self.view_leader: ProcessId | None = None
        self._locally_executed: set[InstanceId] = set()
        self._pending_write_rids: set[RequestId] = set()
        self._catching_up = False

        self.locks = LockManager()
        self.proposer = SequentialProposer(self, max_batch=config.max_batch)
        self.reads = ReadCoordinator(self)
        self.txns = TxnManager(self)
        self.recovery = RecoveryCoordinator(self)

        #: Bound handlers resolved once from :data:`DISPATCH` (the table
        #: stays declarative for the analyzer; dispatch stays one dict hit).
        self._dispatch: dict[type, Callable[[ProcessId, Any], None]] = {
            msg_type: getattr(self, name) for msg_type, name in self.DISPATCH.items()
        }

        #: Request counters by kind plus protocol events, for reports.
        self.stats: Counter[str] = Counter()

        #: Observability scope (``proc.<pid>.*``; sharded hosts scope each
        #: group as ``proc.<pid>.g<group>.*``); the harness swaps in the
        #: run's registry. Phase-latency bookkeeping below is only populated
        #: while metrics are enabled, so disabled runs allocate nothing.
        self.metrics: Scope = NULL_REGISTRY.scope(pid)
        self._accepted_at: dict[InstanceId, float] = {}
        self._chosen_at: dict[InstanceId, float] = {}
        self._takeover_started: float | None = None

        #: Causal tracer (the harness swaps in the run's tracer). Protocol
        #: code opens spans at semantic points (execute, accept rounds,
        #: recovery); the world's envelope layer handles propagation.
        self.tracer: Tracer | NullTracer = NULL_TRACER
        #: Open leader-takeover span (its own trace; recovery nests under it).
        self.takeover_span: Span | None = None

        #: Sim-profiler (the harness swaps in the run's profiler). Protocol
        #: code opens literal-label scopes at semantic points (execute,
        #: apply, propose, read, txn); the world's envelope layer owns the
        #: per-message frames. Labels must be literals — OBS002.
        self.profiler: SimProfiler | NullProfiler = NULL_PROFILER

    # ======================================================== process events
    def on_start(self) -> None:
        self.elector.on_start()

    def on_crash(self) -> None:
        self.tracer.end(self.takeover_span, status="crashed")
        self.takeover_span = None
        self.store.crash()
        self.elector.on_crash()

    def on_recover(self) -> None:
        """Rebuild volatile state by replaying stable storage (§3.1:
        recovered processes execute the protocol correctly). Fail-stops
        when replay refuses the device: rejoining after forgetting a
        promise or acceptance would be Byzantine, not crash-faulty."""
        tracer = self.tracer
        span: Span | None = None
        if tracer.enabled:
            span = tracer.start_trace(
                f"restart:{self.pid}", pid=self.pid, kind="restart",
                attrs={"crashes": self.store.device.crashes},
            )
        state = self.store.recover()
        if state is None:
            self.stats["storage_failstops"] += 1
            if tracer.enabled:
                tracer.end(span, status="failstop")
            self.alive = False
            return
        self.log = self.store.log
        self.promised = state.promised
        self.max_round_seen = state.max_round
        checkpoint_instance, service_snap, executed_snap = state.checkpoint
        self.service = self.service_factory()
        self.service.restore(service_snap)
        self.executed = ExecutedTable()
        self.executed.restore(executed_snap)
        self.applied = checkpoint_instance
        self.role = ReplicaRole.FOLLOWER
        self.ballot = None
        self.view_leader = None
        self._locally_executed = set()
        self._pending_write_rids = set()
        self._catching_up = False
        self.locks = LockManager()
        self.proposer.reset()
        self.reads.reset()
        self.txns.reset()
        self.recovery.reset()
        self._accepted_at.clear()
        self._chosen_at.clear()
        self._takeover_started = None
        self.stats["recovers"] += 1
        self.metrics.counter("recovers").inc()
        # Log entries above the checkpoint may be re-appliable already.
        self._apply_ready()
        if tracer.enabled:
            tracer.end(span)
        self.elector.on_recover()

    # ============================================================ message bus
    def on_message(self, src: ProcessId, msg: Any) -> None:
        if self.elector.on_message(src, msg):
            return
        handler = self._dispatch.get(type(msg))
        if handler is None:
            self.stats["unknown_messages"] += 1
            return
        handler(src, msg)

    def _on_confirm(self, src: ProcessId, msg: Confirm) -> None:
        self.reads.on_confirm(src, msg)

    def _on_promise(self, src: ProcessId, msg: Promise) -> None:
        self.recovery.on_promise(src, msg)

    def _on_reply(self, src: ProcessId, msg: Reply) -> None:
        """Replicas never act on replies (clients broadcast requests)."""

    # ====================================================== client-side entry
    def _on_client_request(self, src: ProcessId, request: ClientRequest) -> None:
        self.stats[f"req_{request.kind.value}"] += 1
        self.metrics.counter(f"req.{request.kind.value}").inc()
        kind = request.kind
        if kind is RequestKind.ORIGINAL:
            if self.role is ReplicaRole.LEADING:
                self._serve_original(src, request)
            return
        if kind is RequestKind.READ and self.config.xpaxos_reads:
            if self.role is ReplicaRole.LEADING:
                self.reads.begin(src, request)
            elif self.role is ReplicaRole.FOLLOWER:
                self.reads.confirm_for_backup(request)
            # While RECOVERING we hold reads implicitly: the client will
            # retransmit; we must not answer before learning all committed
            # writes (§3.4 consistency requirement).
            return
        if kind in (RequestKind.WRITE, RequestKind.READ):
            # READ lands here only with xpaxos_reads=False: totally ordered.
            if self.role in (ReplicaRole.LEADING, ReplicaRole.RECOVERING):
                self._submit_write(src, request)
            return
        if kind.is_transactional:
            if not self.config.tpaxos:
                self.reply(src, request.rid, ReplyStatus.ERROR, "transactions disabled")
                return
            if self.role is ReplicaRole.LEADING:
                self.txns.on_request(src, request)
            return
        raise AssertionError(f"unhandled request kind {kind}")

    def _serve_original(self, src: ProcessId, request: ClientRequest) -> None:
        """The unreplicated baseline: execute + reply, no coordination."""
        profiler = self.profiler
        if profiler.enabled:
            profiler.enter("execute")
        try:
            result = self.service.execute(request.op, self.execution_context())
        except ServiceError as exc:
            self.reply(src, request.rid, ReplyStatus.ERROR, str(exc))
            return
        except Exception as exc:  # malformed op: reject, never crash the replica
            self.reply(src, request.rid, ReplyStatus.ERROR, f"bad request: {exc}")
            return
        finally:
            if profiler.enabled:
                profiler.exit()
        self.reply(src, request.rid, ReplyStatus.OK, result.reply)

    def _submit_write(self, src: ProcessId, request: ClientRequest) -> None:
        rid = request.rid
        executed, cached = self.executed.lookup(rid)
        if executed:
            self.reply(src, rid, ReplyStatus.OK, cached)
            return
        if rid in self._pending_write_rids:
            return  # retransmit of an in-flight write
        self._pending_write_rids.add(rid)
        self.proposer.submit(self._make_write_item(src, request))

    def _make_write_item(self, src: ProcessId, request: ClientRequest) -> ProposalItem:
        """A pipeline item for a plain (non-transactional) write."""
        owner = f"w:{request.rid}"
        item_box: list[ProposalItem] = []
        waited = [False]
        tracer = self.tracer
        origin = tracer.current  # the ClientRequest delivery span (or None)

        def prepare() -> Any:
            if self.role not in (ReplicaRole.LEADING, ReplicaRole.RECOVERING):
                self._pending_write_rids.discard(request.rid)
                return SKIP
            executed, cached = self.executed.lookup(request.rid)
            if executed:  # committed meanwhile (e.g. via recovery)
                self._pending_write_rids.discard(request.rid)
                self.reply(src, request.rid, ReplyStatus.OK, cached)
                return SKIP
            if self.config.execute_time > 0 and not waited[0]:
                # Model the service's execution time E: the pipeline stalls
                # (a single-threaded leader executes requests in order) and
                # this item re-enters once E has elapsed.
                waited[0] = True
                self.proposer.pause()
                if self.profiler.enabled:
                    # The modeled E is leader CPU occupancy in sim time;
                    # account it to the replica's execute frame.
                    self.profiler.stat((str(self.pid), "execute")).add_cpu(
                        self.config.execute_time
                    )
                span: Span | None = None
                if tracer.enabled:
                    span = tracer.start_span(
                        "execute", pid=self.pid, kind="execute",
                        parent=origin, attrs={"rid": str(request.rid)},
                    )
                    item_box[0].ctx = span

                def _execution_done() -> None:
                    tracer.end(span)
                    self.proposer.resubmit_front(item_box[0])
                    self.proposer.resume()

                token = tracer.activate(span)
                try:
                    self.set_timer(self.config.execute_time, _execution_done)
                finally:
                    tracer.restore(token)
                return DEFER
            read_keys, write_keys = self.service.locks_for(request.op)
            granted = self.locks.acquire_or_wait(
                owner, read_keys, write_keys,
                grant=lambda: self.proposer.resubmit_front(item_box[0]),
            )
            if not granted:
                return DEFER
            profiler = self.profiler
            if profiler.enabled:
                profiler.enter("execute")
            try:
                result = self.service.execute(request.op, self.execution_context())
            except Exception as exc:  # ServiceError or malformed op
                self.locks.release_all(owner)
                self._pending_write_rids.discard(request.rid)
                self.reply(src, request.rid, ReplyStatus.ERROR, str(exc))
                return SKIP
            finally:
                if profiler.enabled:
                    profiler.exit()
            if tracer.enabled and self.config.execute_time == 0:
                # E is not modeled: record a zero-length execute marker so
                # the waterfall still shows where execution happened.
                tracer.instant("execute", pid=self.pid, kind="execute", parent=origin,
                               attrs={"rid": str(request.rid)})
            payload = build_payload(self.config.state_mode, self.service, (result,))
            # Plain writes cannot abort, so their locks are only needed for
            # the execution itself (they guard against interleaving with
            # uncommitted *transaction* state). Releasing here lets multiple
            # writes to the same keys share one pipeline batch.
            self.locks.release_all(owner)
            return Proposal(requests=(request,), payload=payload, reply=result.reply)

        def on_committed(proposal: Proposal, instance: InstanceId) -> None:
            self._pending_write_rids.discard(request.rid)
            self.reply(src, request.rid, ReplyStatus.OK, proposal.reply)

        item = ProposalItem(
            label=str(request.rid), prepare=prepare, on_committed=on_committed,
            ctx=origin,
        )
        item_box.append(item)
        return item

    # ================================================= acceptor role (§3.2/3)
    def _on_prepare(self, src: ProcessId, msg: Prepare) -> None:
        self.observe_round(msg.ballot.round)
        if msg.ballot < self.promised:
            self.send(src, Nack(rejected=None, promised=self.promised))
            return
        self._set_promised(msg.ballot)
        if self.role is not ReplicaRole.FOLLOWER and (
            self.ballot is None or msg.ballot > self.ballot
        ):
            # Promising a higher ballot supersedes our own leadership.
            # Keeping the proposer running would self-accept values at the
            # old ballot *after* promising them away — the new leader's
            # prepare quorum then misses them and may choose differently.
            self.on_preempted(msg.ballot)
        reply = Promise(
            ballot=msg.ballot,
            entries=self.log.promise_entries(msg.gaps, msg.from_instance),
            chosen_frontier=self.log.frontier,
            latest=self.latest_state_for_promise(),
        )
        if self.store.needs_barrier:
            # The promise must be on stable storage before it is visible:
            # a crash after sending but before syncing would let us later
            # accept a lower ballot we promised away.
            self.store.flush(lambda: self.send(src, reply))
        else:
            self.send(src, reply)

    def _on_accept_batch(self, src: ProcessId, msg: AcceptBatch) -> None:
        """Accept a batch of consecutive instances atomically (steady-state
        pipeline rounds and recovery's closing message look the same)."""
        self.observe_round(msg.ballot.round)
        if msg.ballot < self.promised:
            self.send(src, Nack(rejected=None, promised=self.promised))
            return
        self._set_promised(msg.ballot)
        if msg.snapshot is not None and msg.snapshot_instance > self.applied:
            self.install_snapshot(msg.snapshot_instance, msg.snapshot)
        record_phases = self.metrics.enabled
        for instance, value in msg.entries:
            self.store.accept(ProposalNumber(msg.ballot, instance), value)
            if record_phases:
                self._accepted_at.setdefault(instance, self.now)
        ack = AcceptedBatch(
            ballot=msg.ballot, instances=tuple(i for i, _ in msg.entries)
        )
        if self.store.needs_barrier:
            # The leader counts this ack toward its quorum: the accepted
            # proposals must survive our crash before we send it.
            self.store.flush(lambda: self.send(src, ack))
        else:
            self.send(src, ack)

    def _on_accepted_batch(self, src: ProcessId, msg: AcceptedBatch) -> None:
        if self.role is ReplicaRole.RECOVERING:
            self.recovery.on_accepted_batch(src, msg)
        elif self.role is ReplicaRole.LEADING:
            self.proposer.on_accepted(src, msg)

    def _on_chosen_batch(self, src: ProcessId, msg: ChosenBatch) -> None:
        self.observe_round(msg.ballot.round)
        for instance, value in msg.items:
            self.choose(instance, value, msg.ballot)
        self._maybe_catch_up(src)

    def _on_nack(self, src: ProcessId, msg: Nack) -> None:
        self.observe_round(msg.promised.round)
        if self.role is ReplicaRole.FOLLOWER or self.ballot is None:
            return
        if msg.promised > self.ballot:
            self.on_preempted(msg.promised)

    def _set_promised(self, ballot: Ballot) -> None:
        if ballot > self.promised:
            self.promised = ballot
            self.store.record_promise(ballot)

    def promise_locally(self, ballot: Ballot) -> None:
        """The leader promises to its own ballot (it is its own acceptor)."""
        self.observe_round(ballot.round)
        self._set_promised(ballot)

    def accept_locally(self, pn: ProposalNumber, value: Proposal) -> None:
        self._set_promised(pn.ballot)
        self.store.accept(pn, value)

    def observe_round(self, round_: int) -> None:
        """Track the highest ballot round ever seen (stable), so a future
        leadership of ours always picks a fresh, higher ballot."""
        if round_ > self.max_round_seen:
            self.max_round_seen = round_
            self.store.record_round(round_)

    # =============================================== choosing & applying state
    def choose(self, instance: InstanceId, value: Proposal, ballot: Ballot) -> None:
        """Record a decision and apply any newly contiguous prefix."""
        if self.log.is_chosen(instance):
            self._apply_ready()
            return
        # A chosen value is also reported as accepted in future Promises
        # (any replica that knows a decision must make new leaders adopt it).
        self.store.accept(ProposalNumber(ballot, instance), value)
        self.store.choose(instance, value)
        if self.metrics.enabled:
            now = self.now
            accepted_at = self._accepted_at.pop(instance, None)
            if accepted_at is not None:
                self.metrics.histogram("phase.accept_chosen").observe(now - accepted_at)
            self._chosen_at[instance] = now
        self._apply_ready()

    def commit_batch_as_leader(
        self,
        ballot: Ballot,
        batch: list[tuple[ProposalNumber, Proposal, ProposalItem]],
    ) -> None:
        """Majority reached for a pipeline round: commit every instance in
        order, answer the clients, then inform backups."""
        record_phases = self.metrics.enabled
        for pn, proposal, _item in batch:
            self._locally_executed.add(pn.instance)
            self.store.choose(pn.instance, proposal)
            if record_phases:
                self._chosen_at[pn.instance] = self.now
        self._apply_ready()
        # Reply before the Chosen broadcast: the client's RRT is
        # 2M + E + 2m; informing the backups happens off the critical path.
        # Each reply re-enters its request's own trace context so batched
        # requests don't all land in the first request's trace.
        tracer = self.tracer
        for pn, proposal, item in batch:
            token = tracer.activate_for(item.ctx)
            try:
                item.on_committed(proposal, pn.instance)
            finally:
                tracer.restore(token)
        if self.others:
            items = tuple((pn.instance, proposal) for pn, proposal, _item in batch)
            self.broadcast(self.others, ChosenBatch(items=items, ballot=ballot))
        self.stats["commits"] += len(batch)
        self.metrics.counter("commits").inc(len(batch))

    def _apply_ready(self) -> None:
        """Apply chosen proposals in instance order up to the frontier."""
        profiler = self.profiler
        if profiler.enabled:
            profiler.enter("apply")
        try:
            self._apply_ready_inner()
        finally:
            if profiler.enabled:
                profiler.exit()

    def _apply_ready_inner(self) -> None:
        applied_before = self.applied
        while self.applied < self.log.frontier:
            next_instance = self.applied + 1
            value = self.log.chosen_value(next_instance)
            if value is None:
                break  # compacted under us (snapshot already covered it)
            if next_instance in self._locally_executed:
                # The leader executed this request already; its service copy
                # is ahead, not behind.
                self._locally_executed.discard(next_instance)
            else:
                self._apply_proposal(value)
            self.executed.record(value.primary_rid, value.reply)
            self.applied = next_instance
            if self.metrics.enabled:
                chosen_at = self._chosen_at.pop(next_instance, None)
                if chosen_at is not None:
                    self.metrics.histogram("phase.chosen_applied").observe(
                        self.now - chosen_at
                    )
        if self.tracer.enabled and self.applied > applied_before:
            self.tracer.instant(
                "apply", pid=self.pid, kind="apply",
                attrs={"through": self.applied,
                       "count": self.applied - applied_before},
            )
        self._maybe_checkpoint()

    def _apply_proposal(self, value: Proposal) -> None:
        """Apply one chosen proposal's effects to this replica's service."""
        if value.payload.mode is StateTransferMode.SMR:
            # Multi-Paxos baseline: re-execute the request locally. Each
            # replica draws from its *own* nondeterminism sources — for a
            # deterministic service this is classic SMR; for a
            # nondeterministic one the replicas diverge (the paper's
            # motivating failure).
            for op in value.ops():
                if op is None:
                    continue
                self.stats["smr_reexecutions"] += 1
                self.metrics.counter("smr.reexecutions").inc()
                try:
                    self.service.execute(op, self.execution_context())
                except ServiceError:
                    pass  # the leader's reply already reported the failure
        else:
            apply_payload(value.payload, self.service, value.ops())

    def _maybe_checkpoint(self) -> None:
        checkpoint_instance = self.store.checkpoint[0]
        if self.applied - checkpoint_instance < self.config.checkpoint_interval:
            return
        self.store.write_checkpoint(self.applied)
        self.stats["checkpoints"] += 1

    def install_snapshot(self, instance: InstanceId, snapshot: tuple[Any, ...]) -> None:
        """Adopt a (service, executed-table[, rid-fold]) snapshot at
        ``instance`` (catch-up / recovery state transfer)."""
        service_snap, executed_snap = snapshot[0], snapshot[1]
        rids = snapshot[2] if len(snapshot) > 2 else frozenset()
        self.service.restore(service_snap)
        self.executed.restore(executed_snap)
        self.applied = instance
        self._locally_executed = {i for i in self._locally_executed if i > instance}
        if self._accepted_at:
            self._accepted_at = {i: t for i, t in self._accepted_at.items() if i > instance}
        if self._chosen_at:
            self._chosen_at = {i: t for i, t in self._chosen_at.items() if i > instance}
        self.store.install_state(
            instance, self.service.snapshot(), dict(executed_snap), rids
        )
        self._apply_ready()

    def latest_state_for_promise(self) -> tuple[InstanceId, Any] | None:
        """What a Promise reports as "the state of the latest proposal it
        knows": our materialized state at our applied frontier."""
        if self.applied == 0:
            return None
        return (self.applied, self.latest_state_payload())

    def latest_state_payload(self) -> tuple[Any, ...]:
        if self.config.track_commits:
            # Ship the cumulative chosen-rid fold with the state so the
            # receiver's durable checkpoint keeps attributing survival of
            # acked requests (acked-durability invariant).
            return (
                self.service.snapshot(),
                self.executed.snapshot(),
                self.store.rid_fold(self.applied),
            )
        return (self.service.snapshot(), self.executed.snapshot())

    # =========================================================== catch-up path
    def _broadcast_frontier(self) -> None:
        """Leader anti-entropy: periodically advertise the applied frontier
        so replicas that recover or heal after traffic stopped still learn
        what they missed."""
        if self.role is not ReplicaRole.LEADING or self.ballot is None:
            return
        # Detach from whatever span armed this timer: anti-entropy is
        # background traffic, not part of any request's causal chain.
        token = self.tracer.activate(None)
        try:
            if self.others:
                self.broadcast(
                    self.others, FrontierProbe(instance=self.applied, ballot=self.ballot)
                )
            self.set_timer(self.config.sync_interval, self._broadcast_frontier)
        finally:
            self.tracer.restore(token)

    def _on_frontier_probe(self, src: ProcessId, msg: FrontierProbe) -> None:
        self.observe_round(msg.ballot.round)
        if msg.instance > self.applied and not self._catching_up:
            self._catching_up = True
            self.send(src, CatchUpQuery(from_instance=self.applied))
            self.set_timer(self.config.accept_retry, self._clear_catch_up)

    def _maybe_catch_up(self, src: ProcessId) -> None:
        """If decisions arrived beyond a gap we cannot fill (we missed the
        Accepts), ask the sender for the missing prefix."""
        if self._catching_up:
            return
        if self.log.max_instance_chosen() > self.log.frontier:
            self._catching_up = True
            self.send(src, CatchUpQuery(from_instance=self.applied))
            self.set_timer(self.config.accept_retry, self._clear_catch_up)

    def _clear_catch_up(self) -> None:
        self._catching_up = False
        if self.log.max_instance_chosen() > self.log.frontier and self.view_leader:
            target = self.view_leader
            if target != self.pid:
                self._catching_up = True
                self.send(target, CatchUpQuery(from_instance=self.applied))
                self.set_timer(self.config.accept_retry, self._clear_catch_up)

    def _on_catch_up_query(self, src: ProcessId, msg: CatchUpQuery) -> None:
        if msg.from_instance < self.log.compacted_to:
            # The asked-for prefix is gone; ship our checkpoint instead.
            checkpoint_instance, service_snap, executed_snap = self.store.checkpoint
            if self.config.track_commits:
                snapshot: tuple[Any, ...] = (
                    service_snap, executed_snap, self.store.checkpoint_rids
                )
            else:
                snapshot = (service_snap, executed_snap)
            self.send(
                src,
                CatchUpInfo(
                    items=tuple(self.log.chosen_above(checkpoint_instance)),
                    snapshot_instance=checkpoint_instance,
                    snapshot=snapshot,
                ),
            )
            return
        self.send(src, CatchUpInfo(items=tuple(self.log.chosen_above(msg.from_instance))))

    def _on_catch_up_info(self, src: ProcessId, msg: CatchUpInfo) -> None:
        self._catching_up = False
        if msg.snapshot is not None and msg.snapshot_instance > self.applied:
            self.install_snapshot(msg.snapshot_instance, msg.snapshot)
        for instance, value in msg.items:
            if not self.log.is_chosen(instance):
                self.log.choose(instance, value)
        self._apply_ready()

    # ======================================================= leadership events
    def leader_changed(self, new_leader: ProcessId | None) -> None:
        """Elector callback: this replica's view of the leader changed."""
        self.view_leader = new_leader
        if new_leader == self.pid:
            if self.role is ReplicaRole.FOLLOWER:
                self._become_leader()
        else:
            if self.role is not ReplicaRole.FOLLOWER:
                self._step_down()

    def _become_leader(self) -> None:
        self.stats["elected"] += 1
        self.metrics.counter("leader.elected").inc()
        self._takeover_started = self.now
        round_ = self.max_round_seen + 1
        self.observe_round(round_)
        self.ballot = Ballot(round_, self.pid)
        self.role = ReplicaRole.RECOVERING
        if self.tracer.enabled:
            self.takeover_span = self.tracer.start_trace(
                f"takeover:{self.pid}", pid=self.pid, kind="takeover",
                attrs={"round": round_},
            )
        self.recovery.start(self.ballot)

    def _step_down(self) -> None:
        self.stats["stepped_down"] += 1
        self.metrics.counter("leader.stepdowns").inc()
        self._takeover_started = None
        self.tracer.end(self.takeover_span, status="stepped_down")
        self.takeover_span = None
        self.role = ReplicaRole.FOLLOWER
        self.ballot = None
        self.recovery.cancel()
        self.proposer.stop()
        self.txns.drop_all()
        self.reads.clear()
        self.locks.clear()
        self._pending_write_rids.clear()
        # Our service copy may contain executed-but-uncommitted effects
        # (speculative writes whose batch never committed, dropped
        # transactions). Rebuild it from the committed prefix so follower
        # state stays exactly the replicated state.
        self._rebuild_service_to_applied()

    def _rebuild_service_to_applied(self) -> None:
        """Reset the service (and dedup table) to the state at ``applied``
        by replaying the chosen log from the latest stable checkpoint."""
        checkpoint_instance, service_snap, executed_snap = self.store.checkpoint
        self.service = self.service_factory()
        self.service.restore(service_snap)
        self.executed = ExecutedTable()
        self.executed.restore(executed_snap)
        current = checkpoint_instance
        while current < self.applied:
            current += 1
            value = self.log.chosen_value(current)
            assert value is not None, f"chosen log missing instance {current}"
            self._apply_proposal(value)
            self.executed.record(value.primary_rid, value.reply)
        self._locally_executed.clear()

    def on_preempted(self, higher: Ballot) -> None:
        """A Nack told us someone runs a higher ballot. If the elector still
        believes in us, retry with a fresh ballot; otherwise step down."""
        self.observe_round(higher.round)
        if self.role is ReplicaRole.FOLLOWER:
            return
        self.stats["preempted"] += 1
        self._step_down()
        if self.elector.current_leader() == self.pid:
            # Back off one retry interval before contending again.
            self.set_timer(self.config.prepare_retry, self._retry_leadership)

    def _retry_leadership(self) -> None:
        if self.role is ReplicaRole.FOLLOWER and self.elector.current_leader() == self.pid:
            self._become_leader()

    def recovery_complete(self, next_instance: InstanceId) -> None:
        """Recovery finished: start serving."""
        if self.role is not ReplicaRole.RECOVERING:
            return
        self.role = ReplicaRole.LEADING
        self.stats["recovery_complete"] += 1
        if self._takeover_started is not None:
            # Downtime this replica imposed on the cluster while taking over:
            # election callback -> ready to serve (§3.6's switch cost).
            self.metrics.histogram("leader.switch_downtime").observe(
                self.now - self._takeover_started
            )
            self._takeover_started = None
        self.tracer.end(self.takeover_span)
        self.takeover_span = None
        self.proposer.begin(next_instance)
        # Arm anti-entropy outside any request/recovery context.
        token = self.tracer.activate(None)
        try:
            self.set_timer(self.config.sync_interval, self._broadcast_frontier)
        finally:
            self.tracer.restore(token)

    @property
    def is_active_or_recovering_leader(self) -> bool:
        return self.role in (ReplicaRole.LEADING, ReplicaRole.RECOVERING)

    @property
    def is_leading(self) -> bool:
        return self.role is ReplicaRole.LEADING

    # ================================================================ helpers
    def invariant_snapshot(self) -> dict[str, Any]:
        """Read-only view of this replica's decided/applied state for the
        chaos invariant layer (:mod:`repro.chaos.invariants`). Never mutates
        anything; safe to call on crashed replicas (their stable log and the
        last materialized service state survive the crash)."""
        return {
            "pid": self.pid,
            "group": self.group,
            "alive": self.alive,
            "role": self.role.value,
            "applied": self.applied,
            "frontier": self.log.frontier,
            "compacted_to": self.log.compacted_to,
            "checkpoint_instance": self.store.checkpoint[0],
            "chosen": self.log.chosen_items(),
            "fingerprint": self.service.state_fingerprint(),
            "storage_intact": self.store.intact,
            "durable_rids": self.store.durable_rids(),
        }

    def execution_context(self, txn: str | None = None) -> ExecutionContext:
        return ExecutionContext(rng=self.rng, now=self.now, txn=txn)

    def execute_read(self, request: ClientRequest) -> Any:
        """Execute a read-only request against the current state."""
        result = self.service.execute(request.op, self.execution_context())
        return result.reply

    def reply(self, dst: ProcessId, rid: RequestId, status: ReplyStatus, value: Any) -> None:
        self.send(dst, Reply(rid=rid, status=status, value=value, leader=self.pid))

    def reply_for_recovered(self, proposal: Proposal) -> None:
        """Answer the client of a proposal finished during recovery (it is
        most likely retransmitting to us right now)."""
        rid = proposal.primary_rid
        self.reply(rid.client, rid, ReplyStatus.OK, proposal.reply)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f"{self.pid}" if self.group == 0 else f"{self.pid}/g{self.group}"
        return (
            f"<{type(self).__name__} {tag} {self.role.value} "
            f"applied={self.applied} frontier={self.log.frontier}>"
        )
