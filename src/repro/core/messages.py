"""Wire messages of the replication protocols.

All messages are immutable dataclasses. The simulation passes them by
reference (processes must not mutate them); the threaded transport pickles
them, so everything here must stay picklable.

Message flow in the common case (no failures, stable leader — Fig. 2):

* client --``ClientRequest``--> all replicas
* leader --``Accept``--> backups; backups --``Accepted``--> leader
* leader --``ChosenBatch``--> backups; leader --``Reply``--> client

X-Paxos read (Fig. 3): backups --``Confirm``--> leader (no Accept round).
T-Paxos (Fig. 4): only the commit triggers an Accept round.
New-leader recovery (§3.3): one ``Prepare`` covering gaps + the open tail;
``Promise`` answers carry accepted entries and the responder's latest
state; one ``RecoveryAccept`` closes everything learned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.ballot import Ballot, ProposalNumber
from repro.core.requests import ClientRequest, RequestId
from repro.core.state import StatePayload
from repro.util.fastpickle import fast_pickle
from repro.types import GroupId, InstanceId, ProcessId, ReplyStatus


# ------------------------------------------------------------------ proposals
@fast_pickle
@dataclass(frozen=True, slots=True)
class Proposal:
    """The value decided by one consensus instance: ``<req, state>`` (§3.3).

    ``requests`` has one element for an ordinary write and one element per
    operation (plus the commit) for a T-Paxos transaction. ``reply`` is the
    client-visible result, carried so any replica that learns the proposal
    can answer a retransmitted request after a leader switch.
    """

    requests: tuple[ClientRequest, ...]
    payload: StatePayload
    reply: Any = None

    @property
    def primary_rid(self) -> RequestId:
        """The request id the client is waiting on (the last in the bundle)."""
        return self.requests[-1].rid

    def ops(self) -> tuple[Any, ...]:
        """The service-level operation payloads, in execution order."""
        return tuple(r.op for r in self.requests)


# --------------------------------------------------------------- accept phase
@fast_pickle
@dataclass(frozen=True, slots=True)
class Accept:
    """Leader -> all replicas: accept ``value`` for instance ``pn.instance``."""

    pn: ProposalNumber
    value: Proposal


@fast_pickle
@dataclass(frozen=True, slots=True)
class Accepted:
    """Replica -> leader: I accepted ``pn``."""

    pn: ProposalNumber


@fast_pickle
@dataclass(frozen=True, slots=True)
class Nack:
    """Replica -> leader: your ballot is stale; I am promised to ``promised``."""

    rejected: ProposalNumber | None
    promised: Ballot


# -------------------------------------------------------------- prepare phase
@fast_pickle
@dataclass(frozen=True, slots=True)
class Prepare:
    """New leader -> all replicas (§3.3 recovery).

    One message covers the explicit ``gaps`` (instances the new leader does
    not know) **and** every instance >= ``from_instance``. Replicas answer
    with what they have accepted in that range.
    """

    ballot: Ballot
    gaps: tuple[InstanceId, ...]
    from_instance: InstanceId


@fast_pickle
@dataclass(frozen=True, slots=True)
class PromiseEntry:
    """One accepted proposal reported in a Promise."""

    pn: ProposalNumber
    value: Proposal


@fast_pickle
@dataclass(frozen=True, slots=True)
class Promise:
    """Replica -> new leader: promise + everything requested that I know.

    ``entries`` contains the responder's accepted proposals for the
    requested instances. Per §3.3 the responder ships the service state
    only once — ``latest`` is its materialized state at its chosen
    frontier (instance number + snapshot), or None if it has nothing the
    leader doesn't.
    """

    ballot: Ballot
    entries: tuple[PromiseEntry, ...]
    chosen_frontier: InstanceId
    latest: tuple[InstanceId, Any] | None


@fast_pickle
@dataclass(frozen=True, slots=True)
class AcceptBatch:
    """Leader -> all replicas: accept several *consecutive* instances in one
    message.

    This is the paper's recovery pattern ("executes the accept phases of
    instances 88, 89, and 91 by sending one single message") applied
    uniformly: the steady-state pipeline also proposes all requests that
    queued during the previous round as one batch of consecutive instances.
    Because each acceptor handles the batch atomically and every
    retransmission carries the same content, a majority that accepts
    instance *i* of a batch also accepted *i-1* — so batching preserves the
    no-gaps invariant that §3.3's one-at-a-time rule exists to protect,
    while letting throughput exceed 1/(2m).

    ``snapshot`` (recovery only) is the latest state chosen and learned, so
    lagging replicas catch up in one step; None in steady state.
    """

    ballot: Ballot
    entries: tuple[tuple[InstanceId, Proposal], ...]
    snapshot_instance: InstanceId = 0
    snapshot: Any = None


@fast_pickle
@dataclass(frozen=True, slots=True)
class AcceptedBatch:
    """Replica -> leader: acknowledges an AcceptBatch."""

    ballot: Ballot
    instances: tuple[InstanceId, ...]


@fast_pickle
@dataclass(frozen=True, slots=True)
class ChosenBatch:
    """Leader -> all replicas: several instances decided at once."""

    items: tuple[tuple[InstanceId, Proposal], ...]
    ballot: Ballot


# -------------------------------------------------------------------- X-Paxos
@fast_pickle
@dataclass(frozen=True, slots=True)
class Confirm:
    """Backup -> leader (X-Paxos, §3.4): you hold the highest ballot I have
    accepted; this confirms it for read ``rid``."""

    ballot: Ballot
    rid: RequestId


# -------------------------------------------------------------------- clients
@fast_pickle
@dataclass(frozen=True, slots=True)
class Reply:
    """Leader -> client."""

    rid: RequestId
    status: ReplyStatus
    value: Any = None
    leader: ProcessId | None = None


@fast_pickle
@dataclass(frozen=True, slots=True)
class StartSignal:
    """Leader -> clients: experiment start marker (§4: the leader sends a
    start signal to all clients simultaneously)."""

    run_id: str = ""


# --------------------------------------------------------------------- groups
@fast_pickle
@dataclass(frozen=True, slots=True)
class GroupEnvelope:
    """Wire wrapper tagging a protocol message with its replication group.

    Only used between processes of a sharded (``groups > 1``) cluster: each
    hosted :class:`repro.core.group.ReplicationGroup` wraps its peer-bound
    traffic so the receiving host can dispatch to the right group. Replies
    to clients travel unwrapped, and single-group clusters never construct
    envelopes at all — their wire traffic is byte-identical to the
    pre-sharding stack.
    """

    group: GroupId
    msg: Any


# ------------------------------------------------------------------- catch-up
@fast_pickle
@dataclass(frozen=True, slots=True)
class FrontierProbe:
    """Leader -> all replicas, periodically: my applied frontier is
    ``instance``. Anti-entropy trigger: a replica that is behind asks for
    the missing prefix (covers replicas that recover or heal from a
    partition after client traffic has stopped)."""

    instance: InstanceId
    ballot: Ballot


@fast_pickle
@dataclass(frozen=True, slots=True)
class CatchUpQuery:
    """Lagging replica -> peer: what was chosen from ``from_instance`` on?"""

    from_instance: InstanceId


@fast_pickle
@dataclass(frozen=True, slots=True)
class CatchUpInfo:
    """Peer -> lagging replica: chosen values it asked for."""

    items: tuple[tuple[InstanceId, Proposal], ...] = field(default_factory=tuple)
    snapshot_instance: InstanceId = 0
    snapshot: Any = None
