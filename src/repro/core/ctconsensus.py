"""Chandra-Toueg ♦S consensus — the engine under semi-passive replication.

§5: "Semi-passive replication ... uses the Chandra-Toueg ♦S consensus
algorithm to implement the primary-backup approach. It uses the same idea
of running consensus on both the command and the state update, but its
practical implementation and performance remains uninvestigated." This
module (plus :mod:`repro.core.semipassive`) investigates it.

The algorithm (Chandra & Toueg, JACM 1996), crash-stop, majority-correct,
with an eventually-strong failure detector ♦S supplied by the driver:

round ``r`` has coordinator ``peers[r mod n]``:

1. every process sends its *estimate* ``(value, stamp)`` to the coordinator;
2. the coordinator adopts the estimate with the highest stamp from a
   majority and broadcasts it as the round's *proposal*;
3. a process that receives the proposal adopts it (stamp = r) and ACKs;
   a process whose failure detector suspects the coordinator NACKs and
   moves to the next round;
4. on a majority of ACKs the coordinator *decides* and (reliably)
   broadcasts the decision; on any NACK it abandons the round.

Sans-IO like :mod:`repro.core.paxos`: methods consume a message and return
the messages to send; the caller owns delivery, suspicion and retries. The
adversarial property tests drive thousands of schedules with arbitrary
suspicion patterns and assert agreement.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

from repro.errors import ProtocolError
from repro.types import ProcessId


# ------------------------------------------------------------------ messages
@dataclass(frozen=True, slots=True)
class CTEstimate:
    """Process -> round coordinator: my current estimate."""

    round: int
    value: Any
    stamp: int   # the round in which this estimate was last adopted


@dataclass(frozen=True, slots=True)
class CTPropose:
    """Coordinator -> all: the round's proposal."""

    round: int
    value: Any


@dataclass(frozen=True, slots=True)
class CTAck:
    round: int


@dataclass(frozen=True, slots=True)
class CTNack:
    """I suspected the coordinator of ``round`` and moved on."""

    round: int


@dataclass(frozen=True, slots=True)
class CTDecide:
    value: Any


class CTProcess:
    """One ♦S consensus participant (all roles; coordinates when its turn).

    Drive it with ``start()``, feed messages via the ``on_*`` methods, and
    inject suspicion with ``suspect_coordinator()``. Outgoing messages are
    returned as ``(dst, msg)`` pairs (``dst`` of None = broadcast to all).
    """

    def __init__(
        self,
        pid: ProcessId,
        peers: Iterable[ProcessId],
        value: Any,
        propose_hook: Any = None,
    ) -> None:
        self.pid = pid
        self.peers = tuple(peers)
        if self.pid not in self.peers:
            raise ProtocolError(f"{pid} not in peer list")
        self.estimate: Any = value
        self.stamp = -1
        #: Optional transform applied to the adopted estimate right before
        #: proposing — semi-passive replication's *lazy execution* hook: it
        #: may replace a never-locked placeholder with a freshly computed
        #: value, but must pass locked (non-placeholder) values through.
        self.propose_hook = propose_hook
        self.round = 0
        self.decided = False
        self.decision: Any = None
        # Coordinator-side state for rounds this process coordinates.
        self._estimates: dict[int, dict[ProcessId, tuple[Any, int]]] = {}
        self._acks: dict[int, set[ProcessId]] = {}
        self._proposed: dict[int, Any] = {}

    @property
    def n(self) -> int:
        return len(self.peers)

    @property
    def majority(self) -> int:
        return self.n // 2 + 1

    def coordinator_of(self, round_: int) -> ProcessId:
        return self.peers[round_ % self.n]

    # --------------------------------------------------------------- driving
    def start(self) -> list[tuple[ProcessId | None, Any]]:
        """Enter round 0 (idempotent): send the estimate to its coordinator."""
        return self._enter_round(self.round)

    def _enter_round(self, round_: int) -> list[tuple[ProcessId | None, Any]]:
        self.round = round_
        return [
            (
                self.coordinator_of(round_),
                CTEstimate(round=round_, value=self.estimate, stamp=self.stamp),
            )
        ]

    def suspect_coordinator(self) -> list[tuple[ProcessId | None, Any]]:
        """♦S fired: abandon the current round."""
        if self.decided:
            return []
        out: list[tuple[ProcessId | None, Any]] = [
            (self.coordinator_of(self.round), CTNack(round=self.round))
        ]
        out.extend(self._enter_round(self.round + 1))
        return out

    # ------------------------------------------------------- message handling
    def on_estimate(self, src: ProcessId, msg: CTEstimate) -> list[tuple[ProcessId | None, Any]]:
        if self.decided or self.coordinator_of(msg.round) != self.pid:
            return []
        if msg.round in self._proposed:
            # Late estimate: re-send the proposal so the sender can ACK.
            return [(src, CTPropose(round=msg.round, value=self._proposed[msg.round]))]
        bucket = self._estimates.setdefault(msg.round, {})
        bucket[src] = (msg.value, msg.stamp)
        if len(bucket) < self.majority:
            return []
        # Adopt the estimate with the highest stamp (the ♦S locking rule).
        value = max(bucket.values(), key=lambda vs: vs[1])[0]
        if self.propose_hook is not None:
            value = self.propose_hook(value)
        self._proposed[msg.round] = value
        return [(None, CTPropose(round=msg.round, value=value))]

    def on_propose(self, src: ProcessId, msg: CTPropose) -> list[tuple[ProcessId | None, Any]]:
        if self.decided or msg.round < self.round:
            return []
        # Adopt the proposal: this is the locking step that makes any
        # decided value stick across rounds.
        self.round = max(self.round, msg.round)
        self.estimate = msg.value
        self.stamp = msg.round
        return [(src, CTAck(round=msg.round))]

    def on_ack(self, src: ProcessId, msg: CTAck) -> list[tuple[ProcessId | None, Any]]:
        if self.decided or self.coordinator_of(msg.round) != self.pid:
            return []
        if msg.round not in self._proposed:
            return []
        acks = self._acks.setdefault(msg.round, set())
        acks.add(src)
        if len(acks) < self.majority:
            return []
        value = self._proposed[msg.round]
        self._decide(value)
        return [(None, CTDecide(value=value))]

    def on_nack(self, src: ProcessId, msg: CTNack) -> list[tuple[ProcessId | None, Any]]:
        # The round is poisoned for us as coordinator; nothing to send —
        # the nacker has already moved on and will drive the next round.
        return []

    def on_decide(self, src: ProcessId, msg: CTDecide) -> list[tuple[ProcessId | None, Any]]:
        self._decide(msg.value)
        return []

    def _decide(self, value: Any) -> None:
        if self.decided:
            if self.decision != value:
                raise ProtocolError(
                    f"{self.pid} decided twice: {self.decision!r} vs {value!r}"
                )
            return
        self.decided = True
        self.decision = value
