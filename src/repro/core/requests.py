"""Client requests and at-most-once execution bookkeeping.

A request is identified by ``(client, seq)`` — clients number their
requests, so retransmissions (clients resend on timeout, §3.3: "if the
leader fails to receive the expected response ... it retransmits") are
recognizable and the service executes each request at most once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.types import ProcessId, RequestKind
from repro.util.fastpickle import fast_pickle


@fast_pickle
@dataclass(frozen=True, slots=True)
class RequestId:
    """Globally unique, client-assigned request identifier."""

    client: ProcessId
    seq: int

    def __str__(self) -> str:
        return f"{self.client}#{self.seq}"


@fast_pickle
@dataclass(frozen=True, slots=True)
class ClientRequest:
    """One client request as broadcast to all service replicas (§3.3).

    * ``rid`` — unique id for dedup and reply matching.
    * ``kind`` — read / write / original / transaction op (see
      :class:`repro.types.RequestKind`); determines which protocol path
      coordinates it.
    * ``op`` — the service-level operation payload (opaque to the protocol).
    * ``txn`` — transaction id for T-Paxos requests, else None.
    * ``txn_seq`` — for a ``TXN_OP``: its 0-based position within the
      transaction; for a ``TXN_COMMIT``: the number of ops the transaction
      contains. This lets a leader detect that it is being handed the
      *middle* of a transaction it never saw the start of (which happens
      when a client's retransmissions land on a new leader after a switch,
      §3.6) and abort instead of committing a torn suffix.
    """

    rid: RequestId
    kind: RequestKind
    op: Any = None
    txn: str | None = None
    txn_seq: int = 0

    def __str__(self) -> str:
        txn = f" txn={self.txn}" if self.txn else ""
        return f"req({self.rid}, {self.kind.value}{txn})"


@dataclass(slots=True)
class ExecutedTable:
    """At-most-once table: remembers the reply for each executed request.

    Bounded per client: only the *latest* executed request per client is
    retained, which is sufficient because each client is closed-loop (it
    never issues request ``n+1`` before request ``n`` was answered), as in
    the paper's experiments. ``seen`` answers "was this exact request
    already executed?" and returns the cached reply value for retransmits.
    """

    _latest: dict[ProcessId, tuple[int, Any]] = field(default_factory=dict)

    def record(self, rid: RequestId, reply_value: Any) -> None:
        prev = self._latest.get(rid.client)
        if prev is not None and prev[0] > rid.seq:
            # An older request finishing after a newer one would mean the
            # client pipelined — not supported by the closed-loop contract.
            return
        self._latest[rid.client] = (rid.seq, reply_value)

    def lookup(self, rid: RequestId) -> tuple[bool, Any]:
        """Return ``(executed, cached_reply)`` for ``rid``."""
        entry = self._latest.get(rid.client)
        if entry is not None and entry[0] == rid.seq:
            return True, entry[1]
        return False, None

    def is_stale(self, rid: RequestId) -> bool:
        """True when a *newer* request from the same client already executed."""
        entry = self._latest.get(rid.client)
        return entry is not None and entry[0] > rid.seq

    def snapshot(self) -> dict[ProcessId, tuple[int, Any]]:
        """Copy of the table, for checkpointing."""
        return dict(self._latest)

    def restore(self, data: dict[ProcessId, tuple[int, Any]]) -> None:
        self._latest = dict(data)
