"""One service process of an unsharded cluster (§3.1).

The protocol machinery — acceptor, proposer, log, service copy, read and
transaction coordinators, recovery — lives in
:class:`repro.core.group.ReplicationGroup`, the per-shard unit. A classic
process of the paper's experiments *is* exactly one such group standing
alone, which is what :class:`Replica` says: group 0, private storage pump,
nothing else. Sharded deployments host several groups behind
:class:`repro.shard.host.GroupHost` instead.

Kept as its own module so the public surface (``repro.Replica``,
``repro.ReplicaRole``) and every existing import path stay put.
"""

from __future__ import annotations

from repro.core.group import ReplicaRole, ReplicationGroup

__all__ = ["Replica", "ReplicaRole"]


class Replica(ReplicationGroup):
    """A standalone replica: one replication group owning its process."""
