"""Single-decree Fast Paxos — the §5 related-work comparator.

"Fast Paxos [18] saves one message delay compared with Paxos by having
clients send commands directly to the acceptors, bypassing the leader. ...
Fast Paxos works well if all acceptors assign the same command ... .
Otherwise, the processes may not choose any command, forcing the leader to
intercede. Fast Paxos requires more replicas than Paxos to mask the same
number of failures."

This is a compact, sans-IO educational implementation mirroring
:mod:`repro.core.paxos`: the coordinator opens a *fast round* with an Any
message; acceptors then accept the first client value they see; a value is
chosen once a **fast quorum** accepts it. On a collision (no value reaches
a fast quorum) the coordinator intercedes with a classic round, picking the
value most reported at the highest ballot among a classic quorum — safe
under the quorum sizing below.

Quorum sizing: to tolerate ``f`` failures Fast Paxos needs ``n >= 3f + 1``
(vs Paxos's ``2f + 1`` — the "more replicas" cost). We use classic quorums
of ``ceil((n+1)/2)`` and fast quorums of ``n - f``; any classic quorum
intersects any *two* fast quorums, which is what makes collision recovery
safe.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

from repro.core.ballot import Ballot
from repro.errors import ProtocolError
from repro.types import ProcessId


# ------------------------------------------------------------------ messages
@dataclass(frozen=True, slots=True)
class FAny:
    """Coordinator -> acceptors: round ``ballot`` is fast — accept the first
    client value you receive."""

    ballot: Ballot


@dataclass(frozen=True, slots=True)
class FClientValue:
    """Client -> acceptors, directly (the saved message delay)."""

    value: Any


@dataclass(frozen=True, slots=True)
class FAccepted:
    """Acceptor -> coordinator/learners."""

    ballot: Ballot
    value: Any


@dataclass(frozen=True, slots=True)
class FPrepare:
    """Coordinator -> acceptors: classic round (collision recovery)."""

    ballot: Ballot


@dataclass(frozen=True, slots=True)
class FPromise:
    ballot: Ballot
    accepted: tuple[Ballot, Any] | None


@dataclass(frozen=True, slots=True)
class FAccept:
    """Classic phase-2 accept (collision recovery)."""

    ballot: Ballot
    value: Any


def fast_quorum(n: int) -> int:
    """Fast-quorum size for ``n`` acceptors tolerating ``floor((n-1)/3)``."""
    return n - (n - 1) // 3


def classic_quorum(n: int) -> int:
    return n // 2 + 1


# --------------------------------------------------------------------- roles
class FastAcceptor:
    """One acceptor; stable state is ``promised`` and ``accepted``."""

    def __init__(self, pid: ProcessId) -> None:
        self.pid = pid
        self.promised: Ballot = Ballot.ZERO
        self.accepted: tuple[Ballot, Any] | None = None
        self._fast_open: Ballot | None = None

    def on_any(self, msg: FAny) -> bool:
        """Open the fast round; returns False if promised higher."""
        if msg.ballot < self.promised:
            return False
        self.promised = msg.ballot
        self._fast_open = msg.ballot
        return True

    def on_client_value(self, msg: FClientValue) -> FAccepted | None:  # lint: ignore[MSG102] -- FClientValue is the model's external input port: clients outside src/ construct it (see tests/unit/test_fastpaxos.py)
        """Accept the first client value of the open fast round."""
        if self._fast_open is None or self._fast_open < self.promised:
            return None
        if self.accepted is not None and self.accepted[0] >= self._fast_open:
            return None  # already accepted a value in this (or a later) round
        self.accepted = (self._fast_open, msg.value)
        return FAccepted(ballot=self._fast_open, value=msg.value)

    def on_prepare(self, msg: FPrepare) -> FPromise | None:
        if msg.ballot < self.promised:
            return None
        self.promised = msg.ballot
        self._fast_open = None  # classic round closes the fast window
        return FPromise(ballot=msg.ballot, accepted=self.accepted)

    def on_accept(self, msg: FAccept) -> FAccepted | None:
        if msg.ballot < self.promised:
            return None
        self.promised = msg.ballot
        self.accepted = (msg.ballot, msg.value)
        return FAccepted(ballot=msg.ballot, value=msg.value)


class FastCoordinator:
    """Opens the fast round, watches for a fast-quorum decision, and
    intercedes with a classic round on collision."""

    def __init__(self, pid: ProcessId, peers: Iterable[ProcessId]) -> None:
        self.pid = pid
        self.peers = tuple(peers)
        if len(self.peers) < 4:
            raise ProtocolError(
                "Fast Paxos needs n >= 4 acceptors to tolerate one failure "
                f"(n >= 3f+1); got {len(self.peers)}"
            )
        self.round: Ballot | None = None
        self.chosen: Any = None
        self._fast_votes: dict[ProcessId, tuple[Ballot, Any]] = {}
        self._promises: dict[ProcessId, FPromise] = {}
        self._classic_votes: set[ProcessId] = set()
        self._classic_value: Any = None
        self.phase = "idle"    # idle -> fast -> recovering -> classic -> done
        self.interceded = False

    @property
    def n(self) -> int:
        return len(self.peers)

    # ------------------------------------------------------------ fast round
    def open_fast_round(self, ballot: Ballot) -> FAny:
        if ballot.leader != self.pid:
            raise ProtocolError(f"ballot {ballot} does not belong to {self.pid}")
        self.round = ballot
        self.phase = "fast"
        return FAny(ballot=ballot)

    def on_fast_accepted(self, src: ProcessId, msg: FAccepted) -> bool:
        """Returns True when a value becomes chosen."""
        if self.phase not in ("fast", "done") or msg.ballot != self.round:
            return self.phase == "done"
        self._fast_votes[src] = (msg.ballot, msg.value)
        counts: dict[Any, int] = {}
        for _b, value in self._fast_votes.values():
            counts[value] = counts.get(value, 0) + 1
        for value, count in counts.items():
            if count >= fast_quorum(self.n):
                self._decide(value)
                return True
        return False

    @property
    def collided(self) -> bool:
        """True when no value can reach a fast quorum any more."""
        if self.phase != "fast":
            return False
        counts: dict[Any, int] = {}
        for _b, value in self._fast_votes.values():
            counts[value] = counts.get(value, 0) + 1
        if not counts:
            return False
        outstanding = self.n - len(self._fast_votes)
        best = max(counts.values())
        return best + outstanding < fast_quorum(self.n)

    # ------------------------------------------------------------- recovery
    def intercede(self) -> FPrepare:
        """Collision: start a classic round with the next ballot."""
        assert self.round is not None
        self.interceded = True
        self.round = self.round.next_for(self.pid)
        self.phase = "recovering"
        self._promises.clear()
        return FPrepare(ballot=self.round)

    def on_promise(self, src: ProcessId, msg: FPromise) -> FAccept | None:
        if self.phase != "recovering" or msg.ballot != self.round:
            return None
        self._promises[src] = msg
        if len(self._promises) < classic_quorum(self.n):
            return None
        # Pick the value most reported at the highest ballot — with our
        # quorum sizes, a value chosen in the fast round is reported by a
        # strict plurality of any classic quorum.
        highest = Ballot.ZERO
        for promise in self._promises.values():
            if promise.accepted is not None and promise.accepted[0] > highest:
                highest = promise.accepted[0]
        counts: dict[Any, int] = {}
        for promise in self._promises.values():
            if promise.accepted is not None and promise.accepted[0] == highest:
                value = promise.accepted[1]
                counts[value] = counts.get(value, 0) + 1
        if not counts:
            raise ProtocolError("collision recovery found no accepted values")
        self._classic_value = max(counts.items(), key=lambda kv: kv[1])[0]
        self.phase = "classic"
        return FAccept(ballot=self.round, value=self._classic_value)

    def on_classic_accepted(self, src: ProcessId, msg: FAccepted) -> bool:
        if self.phase not in ("classic", "done") or msg.ballot != self.round:
            return self.phase == "done"
        self._classic_votes.add(src)
        if len(self._classic_votes) >= classic_quorum(self.n):
            self._decide(self._classic_value)
            return True
        return False

    def _decide(self, value: Any) -> None:
        if self.phase == "done" and self.chosen != value:
            raise ProtocolError(
                f"coordinator decided twice: {self.chosen!r} then {value!r}"
            )
        self.chosen = value
        self.phase = "done"
