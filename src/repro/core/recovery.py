"""New-leader recovery (§3.3).

When a new leader emerges it "executes the prepare phase of instances 88,
89, and of all instances greater than 90" — i.e. the gaps in its chosen
sequence plus the whole open tail — "by sending a single message to all the
other replicas". Replicas answer with the accepted proposals they hold for
that range, shipping the service state only once ("the replicas are only
interested in the latest state"). The leader then "executes the accept
phases ... by sending one single message" carrying every re-proposed
request plus the latest state chosen and learned.

This module implements that exchange, plus the retransmission and
preemption (higher-ballot Nack) handling around it. The merge step relies
on a structural invariant of the basic protocol: because every leader
proposes instances strictly sequentially, any instance that has been
*accepted* anywhere implies all lower instances are *chosen* somewhere in
every majority — so the merged range can contain no unseeded holes. A hole
would mean state was lost; we raise :class:`repro.errors.ProtocolError`
rather than guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.ballot import Ballot, ProposalNumber
from repro.core.messages import (
    AcceptBatch,
    AcceptedBatch,
    ChosenBatch,
    Nack,
    Prepare,
    Promise,
    PromiseEntry,
    Proposal,
)
from repro.errors import ProtocolError
from repro.types import InstanceId, ProcessId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.replica import Replica


@dataclass(slots=True)
class _PrepareRound:
    ballot: Ballot
    gaps: tuple[InstanceId, ...]
    from_instance: InstanceId
    promises: dict[ProcessId, Promise] = field(default_factory=dict)
    timer: Any = None


@dataclass(slots=True)
class _AcceptRound:
    ballot: Ballot
    entries: tuple[tuple[InstanceId, Proposal], ...]
    snapshot_instance: InstanceId
    snapshot: Any
    acks: set[ProcessId] = field(default_factory=set)
    timer: Any = None


class RecoveryCoordinator:
    """Drives the prepare + accept rounds a new leader runs before serving."""

    def __init__(self, replica: "Replica") -> None:
        self.replica = replica
        self._prepare: _PrepareRound | None = None
        self._accept: _AcceptRound | None = None
        #: Completed recoveries (stats).
        self.recoveries = 0
        self._started_at: float | None = None
        #: Causal-tracing span covering prepare -> merge -> closing accept.
        self._span: Any = None

    @property
    def in_progress(self) -> bool:
        return self._prepare is not None or self._accept is not None

    # --------------------------------------------------------------- prepare
    def start(self, ballot: Ballot) -> None:
        """Run the prepare phase for the log's gaps plus the open tail."""
        replica = self.replica
        self.cancel()
        self._started_at = replica.now
        tracer = replica.tracer
        if tracer.enabled:
            self._span = tracer.start_span(
                "recovery", pid=replica.pid, kind="recovery",
                parent=replica.takeover_span,
                attrs={"round": ballot.round, "leader": ballot.leader},
            )
        # Promise to ourselves first: the leader is also an acceptor.
        replica.promise_locally(ballot)
        log = replica.log
        gaps = log.gaps()
        from_instance = max(log.frontier, log.max_instance_chosen()) + 1
        round_ = _PrepareRound(ballot=ballot, gaps=gaps, from_instance=from_instance)
        self._prepare = round_

        def _promises_durable() -> None:
            # The self-promise (and the round record that makes a future
            # restart pick a *fresh* ballot) must be stable before the
            # Prepare becomes visible: replaying a truncated tail and
            # re-running round ``b`` could otherwise issue two different
            # accept rounds under one ballot.
            if self._prepare is not round_:
                return  # cancelled or superseded while the fsync ran
            # Our own answer to our own Prepare.
            round_.promises[replica.pid] = Promise(
                ballot=ballot,
                entries=replica.log.promise_entries(gaps, from_instance),
                chosen_frontier=replica.log.frontier,
                latest=replica.latest_state_for_promise(),
            )
            others = replica.others
            if others:
                message = Prepare(ballot=ballot, gaps=gaps, from_instance=from_instance)
                token = tracer.activate_for(self._span)
                try:
                    replica.broadcast(others, message)
                    round_.timer = replica.set_timer(
                        replica.config.prepare_retry, self._retransmit_prepare
                    )
                finally:
                    tracer.restore(token)
            self._check_prepare_majority()

        if replica.store.needs_barrier:
            replica.store.flush(_promises_durable)
        else:
            _promises_durable()

    def on_promise(self, src: ProcessId, msg: Promise) -> None:
        round_ = self._prepare
        if round_ is None or msg.ballot != round_.ballot:
            return
        round_.promises[src] = msg
        self._check_prepare_majority()

    def on_nack(self, src: ProcessId, msg: Nack) -> None:
        if self._prepare is None and self._accept is None:
            return
        self.replica.on_preempted(msg.promised)

    def _retransmit_prepare(self) -> None:
        round_ = self._prepare
        if round_ is None:
            return
        replica = self.replica
        laggards = tuple(p for p in replica.others if p not in round_.promises)
        if laggards:
            replica.broadcast(
                laggards,
                Prepare(
                    ballot=round_.ballot,
                    gaps=round_.gaps,
                    from_instance=round_.from_instance,
                ),
            )
        round_.timer = replica.set_timer(
            replica.config.prepare_retry, self._retransmit_prepare
        )

    def _check_prepare_majority(self) -> None:
        round_ = self._prepare
        if round_ is None or len(round_.promises) < self.replica.config.majority:
            return
        if round_.timer is not None:
            round_.timer.cancel()
        self._prepare = None
        self._merge_and_accept(round_)

    # ----------------------------------------------------------------- merge
    def _merge_and_accept(self, round_: _PrepareRound) -> None:
        replica = self.replica

        # 1. Adopt the most advanced snapshot among the quorum (and self).
        best: tuple[InstanceId, Any] | None = None
        for promise in round_.promises.values():
            if promise.latest is not None:
                if best is None or promise.latest[0] > best[0]:
                    best = promise.latest
        if best is not None and best[0] > replica.applied:
            replica.install_snapshot(best[0], best[1])
        base = replica.applied

        # 2. Merge accepted entries: highest proposal number wins per instance.
        merged: dict[InstanceId, PromiseEntry] = {}
        for promise in round_.promises.values():
            for entry in promise.entries:
                instance = entry.pn.instance
                if instance <= base:
                    continue  # already covered by the adopted snapshot
                current = merged.get(instance)
                if current is None or entry.pn > current.pn:
                    merged[instance] = entry

        # 3. Instances the new leader already knows to be *chosen* are not
        #    re-reported by Promises (the Prepare only asked about gaps and
        #    the tail — the paper's example: 90 is known, 88/89/91 are not),
        #    yet they must be in the re-proposed batch so backups missing
        #    them catch up in the same single message. Re-proposing a
        #    decided value at a higher ballot is always safe.
        if merged:
            top = max(merged)
            for instance in range(base + 1, top + 1):
                if instance not in merged:
                    known = replica.log.chosen_value(instance)
                    if known is not None:
                        merged[instance] = PromiseEntry(
                            pn=ProposalNumber(round_.ballot, instance), value=known
                        )

        # 4. The merged range must be contiguous above the adopted base
        #    (sequential proposing guarantees it — see module docstring).
        instances = sorted(merged)
        for offset, instance in enumerate(instances, start=1):
            if instance != base + offset:
                raise ProtocolError(
                    f"recovery found a hole: adopted base {base}, "
                    f"but learned instances {instances}"
                )

        if not instances:
            self._finish(round_.ballot, next_instance=base + 1)
            return

        # 5. Accept phase: one message with every re-proposed value plus the
        #    latest state, so lagging replicas catch up in one step.
        entries = tuple((i, merged[i].value) for i in instances)
        barrier = replica.store.needs_barrier
        accept = _AcceptRound(
            ballot=round_.ballot,
            entries=entries,
            snapshot_instance=base,
            snapshot=replica.latest_state_payload(),
            acks=set() if barrier else {replica.pid},
        )
        self._accept = accept
        for instance, value in entries:
            replica.accept_locally(ProposalNumber(round_.ballot, instance), value)
        others = replica.others
        if others:
            # Promises arrive inside *their own* message spans; re-enter the
            # recovery span so the closing accept round hangs under it.
            tracer = replica.tracer
            token = tracer.activate_for(self._span)
            try:
                replica.broadcast(others, self._accept_message(accept))
                accept.timer = replica.set_timer(
                    replica.config.prepare_retry, self._retransmit_accept
                )
            finally:
                tracer.restore(token)
        if barrier:
            replica.store.flush(lambda: self._ack_accept_durable(accept))
        self._check_accept_majority()

    def _ack_accept_durable(self, accept: _AcceptRound) -> None:
        """The recovering leader's own re-accepted batch is now stable."""
        if self._accept is not accept:
            return  # committed on backup acks, or cancelled meanwhile
        accept.acks.add(self.replica.pid)
        self._check_accept_majority()

    def _accept_message(self, accept: _AcceptRound) -> AcceptBatch:
        return AcceptBatch(
            ballot=accept.ballot,
            entries=accept.entries,
            snapshot_instance=accept.snapshot_instance,
            snapshot=accept.snapshot,
        )

    # ---------------------------------------------------------- accept phase
    def on_accepted_batch(self, src: ProcessId, msg: AcceptedBatch) -> None:
        accept = self._accept
        if accept is None or msg.ballot != accept.ballot:
            return
        wanted = {instance for instance, _v in accept.entries}
        if not wanted.issubset(msg.instances):
            return
        accept.acks.add(src)
        self._check_accept_majority()

    def _retransmit_accept(self) -> None:
        accept = self._accept
        if accept is None:
            return
        replica = self.replica
        laggards = tuple(p for p in replica.others if p not in accept.acks)
        if laggards:
            replica.broadcast(laggards, self._accept_message(accept))
        accept.timer = replica.set_timer(
            replica.config.prepare_retry, self._retransmit_accept
        )

    def _check_accept_majority(self) -> None:
        accept = self._accept
        if accept is None or len(accept.acks) < self.replica.config.majority:
            return
        if accept.timer is not None:
            accept.timer.cancel()
        self._accept = None
        replica = self.replica
        for instance, value in accept.entries:
            replica.choose(instance, value, accept.ballot)
        tracer = replica.tracer
        token = tracer.activate_for(self._span)
        try:
            others = replica.others
            if others:
                replica.broadcast(others, ChosenBatch(items=accept.entries, ballot=accept.ballot))
            # Proactively answer the clients whose requests we just finished
            # for the old leader (they are probably retransmitting by now).
            for _instance, value in accept.entries:
                replica.reply_for_recovered(value)
        finally:
            tracer.restore(token)
        top = accept.entries[-1][0]
        self._finish(accept.ballot, next_instance=top + 1)

    def _finish(self, ballot: Ballot, next_instance: InstanceId) -> None:
        self.recoveries += 1
        metrics = self.replica.metrics
        if metrics.enabled:
            metrics.counter("recovery.completed").inc()
            if self._started_at is not None:
                # Prepare round + merge + closing accept round, end to end.
                metrics.histogram("recovery.duration").observe(
                    self.replica.now - self._started_at
                )
        self._started_at = None
        self.replica.tracer.end(self._span)
        self._span = None
        self.replica.recovery_complete(next_instance)

    # -------------------------------------------------------------- lifecycle
    def cancel(self) -> None:
        if self._prepare is not None and self._prepare.timer is not None:
            self._prepare.timer.cancel()
        if self._accept is not None and self._accept.timer is not None:
            self._accept.timer.cancel()
        self._prepare = None
        self._accept = None
        if self._span is not None:
            self.replica.tracer.end(self._span, status="cancelled")
            self._span = None

    def reset(self) -> None:
        self.cancel()
