"""Multi-Paxos deterministic state-machine replication — the baseline.

§3.3 opens with it: "To synchronize the replicas of deterministic
services, one can implement a series of separate instances of the Paxos
consensus algorithm and the proposal chosen by the ith instance is the ith
executed request." No state is shipped; every replica re-executes.

Rather than duplicating the replica machinery, Multi-Paxos is expressed as
the :data:`repro.types.StateTransferMode.SMR` mode of the same
:class:`repro.core.replica.Replica`: proposals carry only the request, and
:meth:`Replica._apply_proposal` re-executes it at each backup. This module
provides the convenience constructors (and the documentation anchor) for
that configuration.

The crucial caveat — and the paper's whole point — is that this baseline
is **only correct for deterministic services**. The test
``tests/integration/test_nondeterminism.py`` demonstrates replicas
diverging when Multi-Paxos replicates the randomized resource broker,
while the nondeterministic protocol keeps them identical.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.core.config import ReplicaConfig
from repro.core.replica import Replica
from repro.election.base import LeaderElector
from repro.services.base import Service
from repro.types import ProcessId, StateTransferMode


def multipaxos_config(peers: tuple[ProcessId, ...], **overrides: Any) -> ReplicaConfig:
    """A :class:`ReplicaConfig` for classic Multi-Paxos SMR.

    X-Paxos reads remain available (the read optimization is orthogonal to
    how writes replicate); pass ``xpaxos_reads=False`` to disable.
    """
    overrides.setdefault("tpaxos", False)  # SMR has no transaction path
    return ReplicaConfig(peers=peers, state_mode=StateTransferMode.SMR, **overrides)


class MultiPaxosReplica(Replica):
    """A replica speaking classic Multi-Paxos (requests only, re-execution).

    Thin sugar over ``Replica(config=multipaxos_config(...))``.
    """

    def __init__(
        self,
        pid: ProcessId,
        peers: tuple[ProcessId, ...],
        service_factory: Callable[[], Service],
        elector: LeaderElector,
        **overrides: Any,
    ) -> None:
        super().__init__(pid, multipaxos_config(peers, **overrides), service_factory, elector)

    @property
    def reexecutions(self) -> int:
        """How many chosen requests this backup re-executed locally — SMR's
        whole cost model, and the count the observability layer also reports
        as the ``smr.reexecutions`` counter."""
        return self.stats["smr_reexecutions"]
