"""The leader's sequential proposal pipeline (§3.3), with batching.

"The leader never tries to propose more than one proposal simultaneously.
Although it can start executing the ith request, it will not propose the
ith request and the corresponding state until the (i−1)th commits.
Otherwise ... the leader generates a gap in the sequence of chosen
proposals" — which would make the shipped states inconsistent.

The pipeline therefore holds at most **one in-flight accept round** at a
time. Within a round, every request that queued up while the previous
round was in flight is executed in order and proposed as a batch of
consecutive instances carried by a single
:class:`repro.core.messages.AcceptBatch` — the paper's own recovery
pattern ("one single message" for instances 88, 89 and 91) applied to the
steady state. Per-acceptor atomic handling of the batch preserves the
no-gaps invariant; see the AcceptBatch docstring.

Queue items produce their proposal lazily (``prepare``): the leader
executes a request only when its turn comes, so the state attached to
instance *i* really is the state after executing requests 1..i.
``prepare`` may also:

* return :data:`SKIP` — the request was answered without consensus
  (service error, duplicate);
* return :data:`DEFER` — the item cannot run yet (waiting on locks, or on
  its modeled execution time): the pipeline moves on and the item re-enters
  via ``resubmit_front`` when ready. Reordering deferred items is safe —
  the sequence order *is* whatever order the leader proposes;
* call :meth:`SequentialProposer.pause` — the leader is busy executing
  (models E > 0); batch gathering stops to preserve execution order.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from repro.core.ballot import Ballot, ProposalNumber
from repro.core.messages import AcceptBatch, AcceptedBatch, Proposal
from repro.types import InstanceId, ProcessId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.replica import Replica

#: Sentinel: the item resolved without needing a consensus instance.
SKIP = object()
#: Sentinel: the item is not ready; it will resubmit itself.
DEFER = object()


@dataclass(slots=True)
class ProposalItem:
    """One unit of work for the pipeline.

    * ``prepare()`` — execute/build; returns a :class:`Proposal`, ``SKIP``
      or ``DEFER``.
    * ``on_committed(proposal, instance)`` — called once the proposal is
      chosen; replies to the client and releases resources.
    """

    label: str
    prepare: Callable[[], Any]
    on_committed: Callable[[Proposal, InstanceId], None]
    #: Causal-tracing context: the span this item's request originated in
    #: (its ClientRequest delivery, or its execute span once E has been
    #: modeled). Committed replies re-enter this context so a batched
    #: request's reply joins *its own* trace, not its batch-mates'.
    ctx: Any = None


@dataclass(slots=True)
class _InFlight:
    ballot: Ballot
    batch: list[tuple[ProposalNumber, Proposal, ProposalItem]]
    instances: tuple[InstanceId, ...]
    acks: set[ProcessId] = field(default_factory=set)
    timer: Any = None
    #: Virtual time the accept round left the leader (phase-latency metric).
    proposed_at: float = 0.0
    #: Causal-tracing span covering propose -> majority of Accepteds.
    span: Any = None

    def message(self) -> AcceptBatch:
        return AcceptBatch(
            ballot=self.ballot,
            entries=tuple((pn.instance, proposal) for pn, proposal, _item in self.batch),
        )


class SequentialProposer:
    """At most one accept round in flight; strictly increasing instances."""

    def __init__(self, replica: "Replica", max_batch: int = 8) -> None:
        self.replica = replica
        self.max_batch = max_batch
        self.queue: deque[ProposalItem] = deque()
        self.inflight: _InFlight | None = None
        self.next_instance: InstanceId = 1
        self.active = False
        self._paused = False
        #: Instances committed through this proposer (stats).
        self.committed = 0
        #: Accept rounds sent (stats; committed/rounds = mean batch size).
        self.rounds = 0

    # ------------------------------------------------------------- lifecycle
    def begin(self, next_instance: InstanceId) -> None:
        """Activate the pipeline (leadership established, recovery done)."""
        self.active = True
        self.next_instance = next_instance
        self._pump()

    def stop(self) -> None:
        """Deactivate (step-down or crash). Queued and in-flight items are
        dropped — clients retransmit and the new leader's recovery decides
        the fate of anything already accepted somewhere."""
        self.active = False
        self._paused = False
        if self.inflight is not None:
            if self.inflight.timer is not None:
                self.inflight.timer.cancel()
            self.replica.tracer.end(self.inflight.span, status="abandoned")
        self.inflight = None
        self.queue.clear()

    def reset(self) -> None:
        self.stop()
        self.next_instance = 1

    # -------------------------------------------------------------- queueing
    def submit(self, item: ProposalItem) -> None:
        self.queue.append(item)
        self._pump()

    def resubmit_front(self, item: ProposalItem) -> None:
        """Re-enter a previously deferred item at the head of the queue."""
        self.queue.appendleft(item)
        self._pump()

    def pause(self) -> None:
        """Stop gathering (leader busy executing a request, E > 0). Must be
        matched by :meth:`resume`."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False
        self._pump()

    @property
    def depth(self) -> int:
        inflight = len(self.inflight.batch) if self.inflight is not None else 0
        return len(self.queue) + inflight

    # --------------------------------------------------------------- pumping
    def _pump(self) -> None:
        profiler = self.replica.profiler
        if profiler.enabled:
            profiler.enter("propose")
        try:
            self._pump_inner()
        finally:
            if profiler.enabled:
                profiler.exit()

    def _pump_inner(self) -> None:
        replica = self.replica
        if not self.active or self._paused or self.inflight is not None:
            return
        batch: list[tuple[ProposalNumber, Proposal, ProposalItem]] = []
        while self.queue and len(batch) < self.max_batch and not self._paused:
            item = self.queue.popleft()
            outcome = item.prepare()
            if outcome is SKIP or outcome is DEFER:
                continue
            assert isinstance(outcome, Proposal), f"prepare returned {outcome!r}"
            assert replica.ballot is not None
            instance = self.next_instance
            self.next_instance += 1
            pn = ProposalNumber(replica.ballot, instance)
            # The leader is its own acceptor: accept locally, count itself.
            replica.accept_locally(pn, outcome)
            batch.append((pn, outcome, item))
        if not batch:
            return
        assert replica.ballot is not None
        barrier = replica.store.needs_barrier
        flight = _InFlight(
            ballot=replica.ballot,
            batch=batch,
            instances=tuple(pn.instance for pn, _p, _i in batch),
            # The leader is an acceptor too: with a real fsync model its
            # own acceptance only counts toward the quorum once durable.
            acks=set() if barrier else {replica.pid},
            proposed_at=replica.now,
        )
        self.inflight = flight
        self.rounds += 1
        metrics = replica.metrics
        if metrics.enabled:
            metrics.counter("proposer.rounds").inc()
            metrics.counter("proposer.batched_instances").inc(len(batch))
        tracer = replica.tracer
        if tracer.enabled:
            # The round rides the first batched request's trace: that request
            # has waited longest, so the round is on *its* critical path.
            flight.span = tracer.start_span(
                "accept_round",
                pid=replica.pid,
                kind="round",
                parent=batch[0][2].ctx if batch[0][2].ctx is not None else tracer.current,
                attrs={"instances": list(flight.instances), "batch": len(batch)},
            )
        others = replica.others
        if others:
            token = tracer.activate(flight.span)
            try:
                replica.broadcast(others, flight.message())
                flight.timer = replica.set_timer(
                    replica.config.accept_retry, self._retransmit, flight.instances
                )
            finally:
                tracer.restore(token)
        if barrier:
            replica.store.flush(lambda: self._ack_durable(flight))
        self._check_majority()

    def _ack_durable(self, flight: _InFlight) -> None:
        """The leader's own accepted batch hit stable storage."""
        if self.inflight is not flight:
            return  # already committed on backup acks, or abandoned
        flight.acks.add(self.replica.pid)
        self._check_majority()

    # ------------------------------------------------------------- responses
    def on_accepted(self, src: ProcessId, msg: AcceptedBatch) -> None:
        flight = self.inflight
        if flight is None or msg.ballot != flight.ballot:
            return  # stale ack from an earlier round or previous leadership
        if not set(flight.instances).issubset(msg.instances):
            return  # ack for a previous batch
        flight.acks.add(src)
        self._check_majority()

    def _check_majority(self) -> None:
        flight = self.inflight
        if flight is None or len(flight.acks) < self.replica.config.majority:
            return
        if flight.timer is not None:
            flight.timer.cancel()
        self.inflight = None
        self.committed += len(flight.batch)
        self.replica.tracer.end(flight.span)  # quorum reached
        metrics = self.replica.metrics
        if metrics.enabled:
            # Majority of Accepteds in hand: the propose->accepted phase of
            # every instance in the round ends here (2m on a quiet LAN).
            metrics.histogram("phase.propose_accepted").observe(
                self.replica.now - flight.proposed_at
            )
        self.replica.commit_batch_as_leader(flight.ballot, flight.batch)
        self._pump()

    def _retransmit(self, instances: tuple[InstanceId, ...]) -> None:
        """Resend the in-flight batch to laggards ("if the leader fails to
        receive the expected response ... it retransmits")."""
        flight = self.inflight
        if flight is None or flight.instances != instances or not self.active:
            return
        replica = self.replica
        laggards = tuple(p for p in replica.others if p not in flight.acks)
        if laggards:
            replica.broadcast(laggards, flight.message())
        flight.timer = replica.set_timer(
            replica.config.accept_retry, self._retransmit, instances
        )
