"""Strict two-phase locking for concurrent transactions (§3.5).

"If the service handles more than one transaction at a time, the service
may have an inconsistent state when some transactions commit and others
abort. ... any service that supports transactions needs to deal with
concurrency of this type using locks or other mechanisms."

Policy implemented here:

* shared (read) / exclusive (write) locks per service-defined key;
* **transactions** use *no-wait*: a conflicting request aborts the
  requesting transaction immediately (simple, deadlock-free);
* **non-transactional writes** (single-op "transactions" in locking terms)
  may *wait*: they request all their locks atomically and are queued until
  the keys free up. They never hold-and-wait, so they cannot deadlock.

Locks are held until the owning transaction's commit is *chosen* (strict
2PL through replication), so no other transaction can observe state that
might still be rolled back.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import LockConflict


@dataclass(slots=True)
class _KeyLock:
    """Lock state for one key."""

    readers: set[str] = field(default_factory=set)
    writer: str | None = None

    @property
    def free(self) -> bool:
        return not self.readers and self.writer is None


@dataclass(slots=True)
class _Waiter:
    owner: str
    read_keys: frozenset
    write_keys: frozenset
    grant: Callable[[], None]


class LockManager:
    """Per-leader lock table. Volatile: dies with leadership (all active
    transactions are aborted on a leader switch anyway, §3.6)."""

    def __init__(self) -> None:
        self._locks: dict[object, _KeyLock] = {}
        self._held_by: dict[str, set[object]] = {}
        self._waiters: list[_Waiter] = []

    # ------------------------------------------------------------- acquiring
    def try_acquire(self, owner: str, read_keys: frozenset, write_keys: frozenset) -> bool:
        """No-wait acquisition for transactions: all keys or nothing.

        Returns True and records ownership on success; returns False on any
        conflict with a different owner (the caller then aborts the txn).
        Re-acquiring keys the owner already holds is fine (upgrades too,
        when no other owner shares the key).
        """
        if self._conflicts(owner, read_keys, write_keys):
            return False
        self._grant(owner, read_keys, write_keys)
        return True

    def acquire_or_wait(
        self,
        owner: str,
        read_keys: frozenset,
        write_keys: frozenset,
        grant: Callable[[], None],
    ) -> bool:
        """All-or-wait acquisition for non-transactional writes.

        If every key is available the locks are granted and True is
        returned; otherwise the request is queued and ``grant`` will be
        called (with the locks held) once the keys free up.
        """
        if not self._conflicts(owner, read_keys, write_keys):
            self._grant(owner, read_keys, write_keys)
            return True
        self._waiters.append(_Waiter(owner, read_keys, write_keys, grant))
        return False

    def _conflicts(self, owner: str, read_keys: frozenset, write_keys: frozenset) -> bool:
        for key in write_keys:
            lock = self._locks.get(key)
            if lock is None:
                continue
            if lock.writer not in (None, owner):
                return True
            if lock.readers - {owner}:
                return True
        for key in read_keys:
            lock = self._locks.get(key)
            if lock is None:
                continue
            if lock.writer not in (None, owner):
                return True
        return False

    def _grant(self, owner: str, read_keys: frozenset, write_keys: frozenset) -> None:
        held = self._held_by.setdefault(owner, set())
        for key in write_keys:
            lock = self._locks.setdefault(key, _KeyLock())
            lock.readers.discard(owner)
            lock.writer = owner
            held.add(key)
        for key in read_keys:
            if key in write_keys:
                continue
            lock = self._locks.setdefault(key, _KeyLock())
            if lock.writer != owner:
                lock.readers.add(owner)
            held.add(key)

    # -------------------------------------------------------------- releasing
    def release_all(self, owner: str) -> None:
        """Drop every lock ``owner`` holds, then wake eligible waiters (FIFO)."""
        held = self._held_by.pop(owner, None)
        if held:
            for key in held:
                lock = self._locks.get(key)
                if lock is None:
                    continue
                lock.readers.discard(owner)
                if lock.writer == owner:
                    lock.writer = None
                if lock.free:
                    del self._locks[key]
        self._wake()

    def _wake(self) -> None:
        # FIFO scan: grant waiters whose full key set is now available.
        # Granting one waiter may block a later one — that is the fairness
        # tradeoff of all-or-nothing acquisition.
        progressed = True
        while progressed:
            progressed = False
            for index, waiter in enumerate(self._waiters):
                if not self._conflicts(waiter.owner, waiter.read_keys, waiter.write_keys):
                    del self._waiters[index]
                    self._grant(waiter.owner, waiter.read_keys, waiter.write_keys)
                    waiter.grant()
                    progressed = True
                    break

    def drop_waiters(self, owner: str) -> None:
        """Remove queued (not yet granted) requests from ``owner``."""
        self._waiters = [w for w in self._waiters if w.owner != owner]

    def clear(self) -> None:
        """Forget everything (leader step-down)."""
        self._locks.clear()
        self._held_by.clear()
        self._waiters.clear()

    # ---------------------------------------------------------------- queries
    def holds(self, owner: str) -> frozenset:
        return frozenset(self._held_by.get(owner, ()))

    def owners(self) -> frozenset:
        return frozenset(self._held_by)

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def assert_consistent(self) -> None:
        """Internal invariant check used by property tests."""
        for key, lock in self._locks.items():
            if lock.writer is not None and lock.readers:
                raise LockConflict(f"key {key!r} has both writer and readers")
            if lock.free:
                raise LockConflict(f"key {key!r} is free but still in the table")
            for owner in sorted(lock.readers | ({lock.writer} if lock.writer else set())):
                if key not in self._held_by.get(owner, ()):
                    raise LockConflict(f"lock on {key!r} not tracked for {owner!r}")
