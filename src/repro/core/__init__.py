"""The paper's contribution: Paxos-based replication of nondeterministic
services, with the X-Paxos read and T-Paxos transaction optimizations.

Module map (paper section in parentheses):

* :mod:`repro.core.ballot` — ballot and proposal numbers (§3.2/§3.3).
* :mod:`repro.core.requests` — client requests and at-most-once dedup.
* :mod:`repro.core.messages` — the wire protocol.
* :mod:`repro.core.state` — FULL / DELTA / REPRO state transfer (§3.3).
* :mod:`repro.core.log` — the replica's command log (§3.3).
* :mod:`repro.core.paxos` — single-decree classic Paxos (§3.2).
* :mod:`repro.core.fastpaxos` — single-decree Fast Paxos (§5 comparator).
* :mod:`repro.core.multipaxos` — deterministic-SMR baseline (§3.3 ¶1).
* :mod:`repro.core.acceptor` — the acceptor role shared by all variants.
* :mod:`repro.core.proposer` — the leader's sequential proposal pipeline.
* :mod:`repro.core.xpaxos` — the read path (§3.4).
* :mod:`repro.core.locks`, :mod:`repro.core.tpaxos` — transactions (§3.5).
* :mod:`repro.core.recovery` — new-leader recovery (§3.3).
* :mod:`repro.core.replica` — the full service replica.
"""

from repro.core.ballot import Ballot, ProposalNumber
from repro.core.config import ReplicaConfig
from repro.core.log import AcceptedEntry, ReplicaLog
from repro.core.replica import Replica
from repro.core.requests import ClientRequest, ExecutedTable, RequestId
from repro.core.state import StatePayload

__all__ = [
    "AcceptedEntry",
    "Ballot",
    "ClientRequest",
    "ExecutedTable",
    "ProposalNumber",
    "Replica",
    "ReplicaConfig",
    "ReplicaLog",
    "RequestId",
    "StatePayload",
]
