"""Replica configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.types import ProcessId, StateTransferMode


@dataclass(frozen=True, slots=True)
class ReplicaConfig:
    """Static configuration shared by all replicas of one service group.

    * ``peers`` — all replica ids, including the local one.
    * ``state_mode`` — how proposal state is shipped (§3.3).
    * ``xpaxos_reads`` — serve reads via X-Paxos (§3.4); when False, reads
      are totally ordered through the basic protocol like writes.
    * ``tpaxos`` — accept T-Paxos transaction requests (§3.5).
    * ``accept_retry`` / ``prepare_retry`` — retransmission intervals for
      the leader's in-flight Accept and Prepare rounds ("if the leader
      fails to receive the expected response ... it retransmits").
    * ``checkpoint_interval`` — take a stable checkpoint (and compact the
      log) every this many applied instances.
    * ``max_batch`` — upper bound on instances per pipeline accept round
      (real implementations are bounded by message size / socket buffers).
    """

    peers: tuple[ProcessId, ...]
    state_mode: StateTransferMode = StateTransferMode.FULL
    xpaxos_reads: bool = True
    tpaxos: bool = True
    accept_retry: float = 1.0
    prepare_retry: float = 1.0
    checkpoint_interval: int = 100
    max_batch: int = 8
    #: Period of the leader's anti-entropy FrontierProbe broadcast.
    sync_interval: float = 0.25
    #: Abort (with undo) an ACTIVE transaction idle this long, in seconds
    #: (0 disables). A client that abandons a transaction mid-stream —
    #: e.g. a stale leader answered one of its ops with ABORTED during a
    #: partial view change, so it retried under a fresh txn id — would
    #: otherwise leave the real leader holding the old locks and
    #: speculative effects forever.
    txn_timeout: float = 2.0
    #: Service execution time E per request, in seconds (0 for the paper's
    #: empty-method benchmark service). Modeled, not burned: the leader
    #: finishes executing E seconds after it starts.
    execute_time: float = 0.0
    #: Stable-storage durability mode (:mod:`repro.storage`): ``async``
    #: keeps the legacy zero-latency semantics (appends durable at once,
    #: byte-identical to the pre-storage simulator); ``sync`` fsyncs at
    #: every durability barrier; ``group`` batches barriers onto the
    #: group-commit timer.
    fsync_mode: str = "async"
    #: Modeled device latency of one fsync, in seconds.
    fsync_latency: float = 5e-4
    #: Group-commit window: background appends and (in ``group`` mode)
    #: barriers wait at most this long for a shared fsync.
    group_commit_interval: float = 2e-3
    #: Maintain the cumulative chosen-request-id fold in checkpoints so
    #: the acked-durability invariant can attribute survival. Off by
    #: default: the fold grows with the run and is only read by chaos.
    track_commits: bool = False

    def __post_init__(self) -> None:
        if len(self.peers) < 1:
            raise ConfigError("need at least one replica")
        if len(set(self.peers)) != len(self.peers):
            raise ConfigError(f"duplicate peer ids: {self.peers}")
        if self.checkpoint_interval < 1:
            raise ConfigError("checkpoint_interval must be >= 1")
        if self.fsync_mode not in ("sync", "group", "async"):
            raise ConfigError(
                f"fsync_mode must be sync, group or async, got {self.fsync_mode!r}"
            )
        if self.fsync_latency <= 0:
            raise ConfigError("fsync_latency must be > 0")
        if self.group_commit_interval <= 0:
            raise ConfigError("group_commit_interval must be > 0")

    @property
    def n(self) -> int:
        return len(self.peers)

    @property
    def majority(self) -> int:
        """Quorum size: ceil((n+1)/2) processes, as required in §3.1."""
        return self.n // 2 + 1

    @property
    def max_faults(self) -> int:
        """t = floor((n-1)/2): how many replica crashes are tolerated."""
        return (self.n - 1) // 2

    def others(self, pid: ProcessId) -> tuple[ProcessId, ...]:
        return tuple(p for p in self.peers if p != pid)
