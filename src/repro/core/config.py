"""Replica configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.types import ProcessId, StateTransferMode


@dataclass(frozen=True, slots=True)
class ReplicaConfig:
    """Static configuration shared by all replicas of one service group.

    * ``peers`` — all replica ids, including the local one.
    * ``state_mode`` — how proposal state is shipped (§3.3).
    * ``xpaxos_reads`` — serve reads via X-Paxos (§3.4); when False, reads
      are totally ordered through the basic protocol like writes.
    * ``tpaxos`` — accept T-Paxos transaction requests (§3.5).
    * ``accept_retry`` / ``prepare_retry`` — retransmission intervals for
      the leader's in-flight Accept and Prepare rounds ("if the leader
      fails to receive the expected response ... it retransmits").
    * ``checkpoint_interval`` — take a stable checkpoint (and compact the
      log) every this many applied instances.
    * ``max_batch`` — upper bound on instances per pipeline accept round
      (real implementations are bounded by message size / socket buffers).
    """

    peers: tuple[ProcessId, ...]
    state_mode: StateTransferMode = StateTransferMode.FULL
    xpaxos_reads: bool = True
    tpaxos: bool = True
    accept_retry: float = 1.0
    prepare_retry: float = 1.0
    checkpoint_interval: int = 100
    max_batch: int = 8
    #: Period of the leader's anti-entropy FrontierProbe broadcast.
    sync_interval: float = 0.25
    #: Abort (with undo) an ACTIVE transaction idle this long, in seconds
    #: (0 disables). A client that abandons a transaction mid-stream —
    #: e.g. a stale leader answered one of its ops with ABORTED during a
    #: partial view change, so it retried under a fresh txn id — would
    #: otherwise leave the real leader holding the old locks and
    #: speculative effects forever.
    txn_timeout: float = 2.0
    #: Service execution time E per request, in seconds (0 for the paper's
    #: empty-method benchmark service). Modeled, not burned: the leader
    #: finishes executing E seconds after it starts.
    execute_time: float = 0.0

    def __post_init__(self) -> None:
        if len(self.peers) < 1:
            raise ConfigError("need at least one replica")
        if len(set(self.peers)) != len(self.peers):
            raise ConfigError(f"duplicate peer ids: {self.peers}")
        if self.checkpoint_interval < 1:
            raise ConfigError("checkpoint_interval must be >= 1")

    @property
    def n(self) -> int:
        return len(self.peers)

    @property
    def majority(self) -> int:
        """Quorum size: ceil((n+1)/2) processes, as required in §3.1."""
        return self.n // 2 + 1

    @property
    def max_faults(self) -> int:
        """t = floor((n-1)/2): how many replica crashes are tolerated."""
        return (self.n - 1) // 2

    def others(self, pid: ProcessId) -> tuple[ProcessId, ...]:
        return tuple(p for p in self.peers if p != pid)
