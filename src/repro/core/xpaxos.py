"""X-Paxos: the read-request optimization (§3.4).

Reads are not totally ordered — only their position relative to writes
matters: "the value that the service returns as a response to a read must
reflect the latest update". X-Paxos is a majority-voting protocol, not a
consensus protocol: the leader executes the read *while concurrently*
collecting Confirm messages from a majority (each replica confirms the
highest ballot it has accepted). Because a process becomes leader only
after a majority accepted its ballot, only the latest leader can assemble
a confirming majority — a deposed leader that missed a write can never
answer a read, which is exactly the §3.4 consistency requirement.

Latency: ``2M + max(E, m)`` versus the basic protocol's ``2M + E + 2m``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.messages import Confirm, Reply
from repro.core.requests import ClientRequest, RequestId
from repro.types import ProcessId, ReplyStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.replica import Replica


@dataclass(slots=True)
class _PendingRead:
    request: ClientRequest
    src: ProcessId
    ready: bool = False          # execution finished (E elapsed)
    reply_value: Any = None
    started_at: float = 0.0      # leader receipt time (confirm-round metric)
    ctx: Any = None              # tracing: the ClientRequest delivery span
    span: Any = None             # tracing: the read's execute span (E > 0)


class ReadCoordinator:
    """Leader-side X-Paxos machinery.

    Confirms may overtake the read's arrival at the leader (they travel
    client->backup->leader while the leader may still be executing), so
    confirms are accumulated independently of pending reads and joined on
    either arrival order.
    """

    def __init__(self, replica: "Replica") -> None:
        self.replica = replica
        self._pending: dict[RequestId, _PendingRead] = {}
        #: rid -> confirming replica ids (for the *current* ballot only).
        self._confirms: dict[RequestId, set[ProcessId]] = {}
        #: highest finished read seq per client, to GC late confirms.
        self._finished: dict[ProcessId, int] = {}
        #: Served reads (stats).
        self.served = 0

    # ------------------------------------------------------------ leader side
    def begin(self, src: ProcessId, request: ClientRequest) -> None:
        """Start serving a read at the leader."""
        profiler = self.replica.profiler
        if profiler.enabled:
            profiler.enter("read")
        try:
            self._begin_inner(src, request)
        finally:
            if profiler.enabled:
                profiler.exit()

    def _begin_inner(self, src: ProcessId, request: ClientRequest) -> None:
        rid = request.rid
        if rid in self._pending:
            return  # client retransmit; the original is still being served
        if self._finished.get(rid.client, -1) >= rid.seq:
            # Retransmit of an already-answered read: re-execute fresh (reads
            # are idempotent), don't wait for stale confirms.
            self._finished[rid.client] = rid.seq - 1
        pending = _PendingRead(request=request, src=src, started_at=self.replica.now)
        self._pending[rid] = pending
        tracer = self.replica.tracer
        pending.ctx = tracer.current
        execute_time = self.replica.config.execute_time
        if execute_time > 0:
            # Execution and confirm-collection proceed in parallel (§3.4):
            # the read completes at max(E, confirm latency).
            if tracer.enabled:
                pending.span = tracer.start_span(
                    "execute", pid=self.replica.pid, kind="execute",
                    attrs={"rid": str(rid)},
                )
            token = tracer.activate(pending.span)
            try:
                self.replica.set_timer(execute_time, self._executed, rid)
            finally:
                tracer.restore(token)
        else:
            self._executed(rid)

    def _executed(self, rid: RequestId) -> None:
        pending = self._pending.get(rid)
        if pending is None:
            return
        self.replica.tracer.end(pending.span)
        try:
            pending.reply_value = self.replica.execute_read(pending.request)
        except Exception as exc:  # malformed read: reject, don't crash
            del self._pending[rid]
            self._confirms.pop(rid, None)
            self.replica.send(
                pending.src,
                Reply(rid=rid, status=ReplyStatus.ERROR, value=f"bad request: {exc}",
                      leader=self.replica.pid),
            )
            return
        pending.ready = True
        self._maybe_finish(rid)

    def on_confirm(self, src: ProcessId, msg: Confirm) -> None:
        replica = self.replica
        replica.observe_round(msg.ballot.round)
        if not replica.is_active_or_recovering_leader or msg.ballot != replica.ballot:
            return  # confirm for someone else's (or a stale) ballot
        if self._finished.get(msg.rid.client, -1) >= msg.rid.seq:
            return  # late confirm for an answered read
        self._confirms.setdefault(msg.rid, set()).add(src)
        self._maybe_finish(msg.rid)

    def _maybe_finish(self, rid: RequestId) -> None:
        pending = self._pending.get(rid)
        if pending is None or not pending.ready:
            return
        replica = self.replica
        # The leader's own acceptance of its ballot counts as one confirm.
        confirms = self._confirms.get(rid, set()) | {replica.pid}
        if len(confirms) < replica.config.majority:
            return
        del self._pending[rid]
        self._finished[rid.client] = max(self._finished.get(rid.client, -1), rid.seq)
        stale = [r for r in self._confirms if r.client == rid.client and r.seq <= rid.seq]
        for r in stale:
            del self._confirms[r]
        self.served += 1
        metrics = replica.metrics
        if metrics.enabled:
            metrics.counter("xpaxos.reads_served").inc()
            # §3.4: the read completes at max(E, confirm latency); this is
            # that whole span, measured from the read's arrival at the leader.
            metrics.histogram("xpaxos.confirm_round").observe(
                replica.now - pending.started_at
            )
        # Reply inside the read's own trace: triggered by the deciding
        # event (execution done, or the majority-completing Confirm).
        token = replica.tracer.activate_for(pending.ctx)
        try:
            replica.send(
                pending.src,
                Reply(rid=rid, status=ReplyStatus.OK, value=pending.reply_value,
                      leader=replica.pid),
            )
        finally:
            replica.tracer.restore(token)

    # ------------------------------------------------------------ backup side
    def confirm_for_backup(self, request: ClientRequest) -> None:
        """Backup behaviour (§3.4): send a Confirm to the process holding the
        highest ballot this replica has accepted."""
        replica = self.replica
        promised = replica.promised
        if not promised.leader or promised.leader == replica.pid:
            return  # nothing promised yet, or the ballot is our own
        replica.send(promised.leader, Confirm(ballot=promised, rid=request.rid))

    # -------------------------------------------------------------- lifecycle
    def clear(self) -> None:
        """Leadership lost: drop pending reads (clients retransmit to the
        new leader) and accumulated confirms (they were for our ballot)."""
        tracer = self.replica.tracer
        if tracer.enabled:
            for pending in self._pending.values():
                tracer.end(pending.span, status="abandoned")
        self._pending.clear()
        self._confirms.clear()

    def reset(self) -> None:
        self.clear()
        self._finished.clear()

    @property
    def pending_count(self) -> int:
        return len(self._pending)
