"""Ballot and proposal numbers (§3.2, §3.3).

A *ballot number* identifies one leader's term: a pair ``(round, leader)``
totally ordered first by round, then by the leader's process id — two
distinct leaders can therefore never produce equal ballots.

A *proposal number* is the pair ``(ballot, instance)`` the paper attaches
to each accepted proposal: "proposal numbers are ordered lexicographically,
first by the ballot number and then by the instance number". The ordering
gives new-leader recovery a total order over everything any replica has
accepted.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import ClassVar

from repro.types import InstanceId, ProcessId
from repro.util.fastpickle import fast_pickle


@total_ordering
@fast_pickle
@dataclass(frozen=True, slots=True)
class Ballot:
    """One leader term: ``(round, leader)``, totally ordered."""

    round: int
    leader: ProcessId

    #: Smaller than every real ballot; what acceptors start out promised to.
    ZERO: ClassVar["Ballot"]

    def _key(self) -> tuple[int, str]:
        return (self.round, self.leader)

    def __lt__(self, other: "Ballot") -> bool:
        if not isinstance(other, Ballot):
            return NotImplemented
        return self._key() < other._key()

    def next_for(self, leader: ProcessId) -> "Ballot":
        """The smallest ballot for ``leader`` strictly greater than self."""
        return Ballot(self.round + 1, leader)

    def __str__(self) -> str:
        return f"b({self.round},{self.leader})"


# A sentinel that compares below every ballot with round >= 0. (Assigned on
# the class, not an instance, so plain setattr on the type works despite the
# dataclass being frozen — frozen only constrains instances.)
Ballot.ZERO = Ballot(-1, "")


@total_ordering
@fast_pickle
@dataclass(frozen=True, slots=True)
class ProposalNumber:
    """``(ballot, instance)``, ordered lexicographically (§3.3)."""

    ballot: Ballot
    instance: InstanceId

    def _key(self) -> tuple[int, str, int]:
        return (self.ballot.round, self.ballot.leader, self.instance)

    def __lt__(self, other: "ProposalNumber") -> bool:
        if not isinstance(other, ProposalNumber):
            return NotImplemented
        return self._key() < other._key()

    def __str__(self) -> str:
        return f"pn({self.ballot.round},{self.ballot.leader},#{self.instance})"
