"""Single-decree classic Paxos (§3.2) — the consensus building block.

A deliberately self-contained, sans-IO implementation of one consensus
instance: roles expose ``on_*`` methods that consume a message and return
the messages to send. No timers, no transport — the caller (a replica, a
test harness, or a property-based adversarial scheduler) owns delivery,
ordering, duplication and retries. This is the reference against which the
replication protocol's safety is checked: the property tests drive
thousands of adversarial schedules and assert that at most one value is
ever chosen.

The phases follow §3.2: a proposer elected leader runs *prepare* with a
ballot, learns existing proposals from a majority, then runs *accept* with
a value consistent with the highest-ballot proposal it learned (or its own
value if none).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

from repro.core.ballot import Ballot
from repro.errors import ProtocolError
from repro.types import ProcessId


# ------------------------------------------------------------------ messages
@dataclass(frozen=True, slots=True)
class P1a:
    """Prepare: leader -> acceptors."""

    ballot: Ballot


@dataclass(frozen=True, slots=True)
class P1b:
    """Promise: acceptor -> leader. ``accepted`` is the acceptor's
    highest-ballot accepted proposal, or None."""

    ballot: Ballot
    accepted: tuple[Ballot, Any] | None


@dataclass(frozen=True, slots=True)
class P2a:
    """Accept request: leader -> acceptors."""

    ballot: Ballot
    value: Any


@dataclass(frozen=True, slots=True)
class P2b:
    """Accepted: acceptor -> leader (and learners)."""

    ballot: Ballot


@dataclass(frozen=True, slots=True)
class PNack:
    """Rejection: the acceptor is promised to a higher ballot."""

    promised: Ballot


# --------------------------------------------------------------------- roles
class PaxosAcceptor:
    """One acceptor. ``promised`` and ``accepted`` are its stable state."""

    def __init__(self, pid: ProcessId) -> None:
        self.pid = pid
        self.promised: Ballot = Ballot.ZERO
        self.accepted: tuple[Ballot, Any] | None = None

    def on_prepare(self, msg: P1a) -> P1b | PNack:
        if msg.ballot < self.promised:
            return PNack(promised=self.promised)
        self.promised = msg.ballot
        return P1b(ballot=msg.ballot, accepted=self.accepted)

    def on_accept(self, msg: P2a) -> P2b | PNack:
        # "A process accepts any proposal with a ballot number no smaller
        # than the ones it has already accepted" (§3.6 phrasing of the
        # standard rule: ballot >= promised).
        if msg.ballot < self.promised:
            return PNack(promised=self.promised)
        self.promised = msg.ballot
        self.accepted = (msg.ballot, msg.value)
        return P2b(ballot=msg.ballot)


class PaxosProposer:
    """One proposer attempt at one ballot.

    Single-shot: to retry with a higher ballot, create a new proposer (the
    stable ``promised``/``accepted`` state lives in the acceptors).
    """

    def __init__(self, pid: ProcessId, peers: Iterable[ProcessId], value: Any) -> None:
        self.pid = pid
        self.peers = tuple(peers)
        if not self.peers:
            raise ProtocolError("proposer needs at least one acceptor")
        self.own_value = value
        self.ballot: Ballot | None = None
        self._promises: dict[ProcessId, P1b] = {}
        self._accepts: set[ProcessId] = set()
        self.proposing: Any = None
        self.phase = "idle"   # idle -> prepare -> accept -> done
        self.chosen: Any = None
        self.preempted_by: Ballot | None = None

    @property
    def majority(self) -> int:
        return len(self.peers) // 2 + 1

    # --------------------------------------------------------------- driving
    def start(self, ballot: Ballot) -> P1a:
        if ballot.leader != self.pid:
            raise ProtocolError(f"ballot {ballot} does not belong to {self.pid}")
        self.ballot = ballot
        self.phase = "prepare"
        return P1a(ballot=ballot)

    def on_promise(self, src: ProcessId, msg: P1b) -> P2a | None:
        if self.phase != "prepare" or msg.ballot != self.ballot:
            return None
        self._promises[src] = msg
        if len(self._promises) < self.majority:
            return None
        # Prepare phase complete: propose consistently with the existing
        # proposal of highest ballot, if any (§3.2).
        best: tuple[Ballot, Any] | None = None
        for promise in self._promises.values():
            if promise.accepted is not None:
                if best is None or promise.accepted[0] > best[0]:
                    best = promise.accepted
        self.proposing = best[1] if best is not None else self.own_value
        self.phase = "accept"
        assert self.ballot is not None
        return P2a(ballot=self.ballot, value=self.proposing)

    def on_accepted(self, src: ProcessId, msg: P2b) -> bool:
        """Returns True when the proposal is chosen."""
        if self.phase != "accept" or msg.ballot != self.ballot:
            return False
        self._accepts.add(src)
        if len(self._accepts) >= self.majority:
            self.phase = "done"
            self.chosen = self.proposing
            return True
        return False

    def on_nack(self, src: ProcessId, msg: PNack) -> None:
        if self.phase in ("prepare", "accept") and self.ballot is not None:
            if msg.promised > self.ballot:
                self.preempted_by = msg.promised
                self.phase = "idle"


class PaxosLearner:
    """Learns the chosen value from acceptor P2b traffic.

    A value is chosen once a majority of acceptors accepted the *same*
    ballot. (Acceptors must copy learners on their P2b messages for this to
    make progress; the test harness does.)
    """

    def __init__(self, peers: Iterable[ProcessId]) -> None:
        self.peers = tuple(peers)
        self._accepted: dict[Ballot, set[ProcessId]] = {}
        self._values: dict[Ballot, Any] = {}
        self.chosen: Any = None
        self.chosen_ballot: Ballot | None = None

    @property
    def majority(self) -> int:
        return len(self.peers) // 2 + 1

    def on_accepted(self, src: ProcessId, ballot: Ballot, value: Any) -> bool:
        """Feed one observed acceptance; returns True when a value becomes
        (or already was) chosen."""
        self._accepted.setdefault(ballot, set()).add(src)
        self._values[ballot] = value
        if len(self._accepted[ballot]) >= self.majority:
            value = self._values[ballot]
            if self.chosen_ballot is not None and self.chosen != value:
                raise ProtocolError(
                    f"two different values chosen: {self.chosen!r} at "
                    f"{self.chosen_ballot}, {value!r} at {ballot}"
                )
            self.chosen = value
            self.chosen_ballot = ballot
            return True
        return self.chosen_ballot is not None
