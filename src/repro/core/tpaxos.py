"""T-Paxos: the transaction optimization (§3.5).

"The leader does not need to coordinate with other service replicas until
it sees the commit message, and it can reply to each client request
immediately. ... the response time of individual requests is the same as
for an unreplicated service, but the overhead is paid at the commit phase."

Leader-side mechanics:

* a ``TXN_OP`` acquires its locks (no-wait strict 2PL,
  :mod:`repro.core.locks`), executes against the leader's service copy,
  records the result + undo, and is answered immediately;
* a ``TXN_COMMIT`` bundles the transaction's requests into **one**
  consensus instance whose state payload covers all its operations;
* a ``TXN_ABORT`` (from the client, from a lock conflict, or from a leader
  switch, §3.6) runs the undo records in reverse and releases the locks —
  nothing was replicated, so nothing else needs to happen.

Locks are held until the commit is *chosen*, so concurrent transactions
never observe state that could still roll back — the §3.5 consistency
hazard (T1 commits having read r2's effects while T2 aborts) cannot occur.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.messages import Proposal
from repro.core.proposer import ProposalItem
from repro.core.requests import ClientRequest, RequestId
from repro.core.state import build_payload
from repro.errors import ServiceError
from repro.services.base import ExecutionResult
from repro.types import InstanceId, ProcessId, ReplyStatus, RequestKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.replica import Replica


class TxnPhase(enum.Enum):
    ACTIVE = "active"
    COMMITTING = "committing"


@dataclass(slots=True)
class ActiveTxn:
    """Leader-side record of one open transaction."""

    txn_id: str
    client: ProcessId
    phase: TxnPhase = TxnPhase.ACTIVE
    requests: list[ClientRequest] = field(default_factory=list)
    results: list[ExecutionResult] = field(default_factory=list)
    #: op replies already sent, for retransmit dedup: rid -> value.
    replied: dict[RequestId, Any] = field(default_factory=dict)
    #: Causal-tracing scope span: first op -> commit chosen / rollback.
    span: Any = None
    #: Virtual time of the last request touching this transaction; idle
    #: transactions past ``config.txn_timeout`` are expired.
    last_activity: float = 0.0


class TxnManager:
    """Leader-side transaction bookkeeping. Volatile: a leader switch
    aborts every active transaction (§3.6)."""

    def __init__(self, replica: "Replica") -> None:
        self.replica = replica
        self.active: dict[str, ActiveTxn] = {}
        #: Statistics.
        self.commits = 0
        self.aborts = 0
        self._expiry_armed = False

    # --------------------------------------------------------------- routing
    def on_request(self, src: ProcessId, request: ClientRequest) -> None:
        profiler = self.replica.profiler
        if profiler.enabled:
            profiler.enter("txn")
        try:
            self._on_request_inner(src, request)
        finally:
            if profiler.enabled:
                profiler.exit()

    def _on_request_inner(self, src: ProcessId, request: ClientRequest) -> None:
        kind = request.kind
        if request.txn is not None:
            txn = self.active.get(request.txn)
            if txn is not None:
                txn.last_activity = self.replica.now
        if kind is RequestKind.TXN_OP:
            self._on_op(src, request)
        elif kind is RequestKind.TXN_COMMIT:
            self._on_commit(src, request)
        elif kind is RequestKind.TXN_ABORT:
            self._on_abort(src, request)
        else:  # pragma: no cover - routing guarantees
            raise AssertionError(f"non-transactional request routed here: {request}")

    # ------------------------------------------------------------------- ops
    def _on_op(self, src: ProcessId, request: ClientRequest) -> None:
        replica = self.replica
        assert request.txn is not None
        txn = self.active.get(request.txn)
        if txn is None:
            txn = ActiveTxn(
                txn_id=request.txn,
                client=request.rid.client,
                last_activity=replica.now,
            )
            self.active[request.txn] = txn
            self._arm_expiry()
            if replica.tracer.enabled:
                # A transaction scope is its own trace: it outlives each of
                # its ops' request traces and ends at commit/abort.
                txn.span = replica.tracer.start_trace(
                    f"txn:{txn.txn_id}", pid=replica.pid, kind="txn",
                    attrs={"txn": txn.txn_id, "client": txn.client},
                )
        if request.rid in txn.replied:  # client retransmit
            replica.reply(src, request.rid, ReplyStatus.OK, txn.replied[request.rid])
            return
        if txn.phase is not TxnPhase.ACTIVE:
            replica.reply(src, request.rid, ReplyStatus.ERROR, "transaction is committing")
            return
        if request.txn_seq != len(txn.requests):
            # We are missing earlier ops of this transaction (a leader
            # switch orphaned its prefix, §3.6): abort rather than commit a
            # torn suffix.
            self._rollback(txn, cause="missing_prefix")
            replica.reply(src, request.rid, ReplyStatus.ABORTED, "missing transaction prefix")
            return
        read_keys, write_keys = replica.service.locks_for(request.op)
        if not replica.locks.try_acquire(txn.txn_id, read_keys, write_keys):
            # No-wait policy: conflicting transactions abort immediately.
            self._rollback(txn, cause="lock_conflict")
            replica.reply(src, request.rid, ReplyStatus.ABORTED, "lock conflict")
            return
        try:
            result = replica.service.execute(request.op, replica.execution_context(txn=txn.txn_id))
        except ServiceError as exc:
            # The op failed cleanly (no state change); the txn stays alive.
            replica.reply(src, request.rid, ReplyStatus.ERROR, str(exc))
            return
        except Exception as exc:  # malformed op: reject, never crash the replica
            replica.reply(src, request.rid, ReplyStatus.ERROR, f"bad request: {exc}")
            return
        txn.requests.append(request)
        txn.results.append(result)
        txn.replied[request.rid] = result.reply
        # The T-Paxos point: answer now, replicate at commit.
        replica.reply(src, request.rid, ReplyStatus.OK, result.reply)

    # ---------------------------------------------------------------- commit
    def _on_commit(self, src: ProcessId, request: ClientRequest) -> None:
        replica = self.replica
        assert request.txn is not None
        executed, cached = replica.executed.lookup(request.rid)
        if executed:  # retransmit of a commit that was already chosen
            replica.reply(src, request.rid, ReplyStatus.OK, cached)
            return
        txn = self.active.get(request.txn)
        if txn is None:
            # Unknown transaction: it was aborted (leader switch or
            # conflict) or never reached this leader.
            replica.metrics.counter("tpaxos.abort.unknown_txn").inc()
            replica.reply(src, request.rid, ReplyStatus.ABORTED, "unknown transaction")
            return
        if txn.phase is TxnPhase.COMMITTING:
            return  # commit retransmit while the instance is in flight
        if request.txn_seq != len(txn.requests):
            # Incomplete transaction record (mid-stream leader switch).
            self._rollback(txn, cause="missing_prefix")
            replica.reply(src, request.rid, ReplyStatus.ABORTED, "missing transaction prefix")
            return
        txn.phase = TxnPhase.COMMITTING
        bundle = (*txn.requests, request)
        # The commit marker contributes an empty result so payload entries
        # stay aligned with the bundled requests.
        results = (*txn.results, ExecutionResult())

        def prepare() -> Any:
            # Everything already executed; just build the payload at our
            # position in the sequence (FULL snapshots are position-sensitive).
            payload = build_payload(replica.config.state_mode, replica.service, results)
            return Proposal(requests=bundle, payload=payload, reply="committed")

        def on_committed(proposal: Proposal, instance: InstanceId) -> None:
            replica.locks.release_all(txn.txn_id)
            self.active.pop(txn.txn_id, None)
            self.commits += 1
            replica.metrics.counter("tpaxos.commits").inc()
            replica.tracer.end(txn.span)
            replica.reply(src, request.rid, ReplyStatus.OK, proposal.reply)

        replica.proposer.submit(
            ProposalItem(label=f"txn:{txn.txn_id}", prepare=prepare,
                         on_committed=on_committed, ctx=replica.tracer.current)
        )

    # ----------------------------------------------------------------- abort
    def _on_abort(self, src: ProcessId, request: ClientRequest) -> None:
        replica = self.replica
        assert request.txn is not None
        txn = self.active.get(request.txn)
        if txn is not None and txn.phase is TxnPhase.ACTIVE:
            self._rollback(txn, cause="client_abort")
        replica.reply(src, request.rid, ReplyStatus.OK, "aborted")

    def _rollback(self, txn: ActiveTxn, cause: str = "admin") -> None:
        """Undo the transaction's effects on the leader's service copy.

        ``cause`` feeds the per-cause abort counters
        (``tpaxos.abort.<cause>``) the paper's §4.2 abort analysis needs.
        """
        for result in reversed(txn.results):
            if result.undo is not None:
                result.undo()
        self.replica.locks.release_all(txn.txn_id)
        self.active.pop(txn.txn_id, None)
        self.aborts += 1
        self.replica.tracer.end(txn.span, status=f"aborted:{cause}")
        self.replica.metrics.counter(f"tpaxos.abort.{cause}").inc()

    def abort_all(self) -> None:
        """Abort every active transaction via its undo records (used when the
        service state itself is kept — e.g. an administrative abort)."""
        for txn in list(self.active.values()):
            if txn.phase is TxnPhase.ACTIVE:
                self._rollback(txn, cause="admin")
            else:
                # Commit already in flight: its fate is decided by consensus.
                self.active.pop(txn.txn_id, None)

    # ---------------------------------------------------------------- expiry
    def _arm_expiry(self) -> None:
        """Keep one sweep timer pending while transactions are open."""
        timeout = self.replica.config.txn_timeout
        if timeout <= 0 or self._expiry_armed:
            return
        self._expiry_armed = True
        self.replica.set_timer(timeout / 2, self._expire_sweep)

    def _expire_sweep(self) -> None:
        """Abort ACTIVE transactions idle past ``config.txn_timeout``.

        A client that abandoned its transaction (a stale leader during a
        partial view change answered one of its ops with ABORTED, so it
        retried under a fresh txn id) never sends TXN_ABORT for the old
        one; without expiry that zombie holds its locks — aborting every
        later transaction on the same keys — and its speculative effects,
        leaving this replica's service copy diverged forever. COMMITTING
        transactions are left alone: consensus decides their fate."""
        self._expiry_armed = False
        timeout = self.replica.config.txn_timeout
        if timeout <= 0:
            return
        now = self.replica.now
        for txn in list(self.active.values()):
            if txn.phase is TxnPhase.ACTIVE and now - txn.last_activity >= timeout:
                self._rollback(txn, cause="expired")
        if self.active:
            self._arm_expiry()

    def drop_all(self) -> None:
        """Leadership lost mid-transaction (§3.6): every active transaction
        dies. No undo runs — the replica rebuilds its whole service copy
        from the committed log right after, which also erases transactional
        effects. Clients learn the abort when they retransmit to the new
        leader (unknown transaction -> ABORTED)."""
        dropped = sum(1 for t in self.active.values() if t.phase is TxnPhase.ACTIVE)
        self.aborts += dropped
        if dropped:
            self.replica.metrics.counter("tpaxos.abort.leader_switch").inc(dropped)
        tracer = self.replica.tracer
        if tracer.enabled:
            for txn in self.active.values():
                tracer.end(txn.span, status="aborted:leader_switch")
        self.active.clear()

    def reset(self) -> None:
        self.active.clear()
        # Crash path: pending sweep timers died with the process epoch.
        self._expiry_armed = False
