"""State transfer between leader and backups (§3.3).

The value chosen by consensus instance *i* is ``<req_i, state_i>``. Shipping
the *whole* service state can be expensive, so the paper sketches three
options, all implemented here as :class:`repro.types.StateTransferMode`:

* ``FULL`` — the payload is a complete service snapshot; backups install it.
* ``DELTA`` — the payload is the state update produced by executing the
  request; backups apply it on top of the previous state. Requires the
  backups to agree on the previous state — guaranteed because the leader
  proposes instances strictly in order.
* ``REPRO`` — the payload is reproduction info (e.g. the random draw or the
  scheduling decision); backups re-execute the request deterministically
  given that info. This is the paper's grid-scheduler example: "the primary
  only needs to send the state of its queue when it selects a new request".
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

from repro.errors import ProtocolError
from repro.types import StateTransferMode
from repro.util.fastpickle import fast_pickle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.services.base import Service


@fast_pickle
@dataclass(frozen=True, slots=True)
class StatePayload:
    """The ``state`` half of a chosen ``<req, state>`` tuple.

    ``data`` is interpreted according to ``mode``; for transaction commits it
    is a tuple with one element per operation in the transaction.
    """

    mode: StateTransferMode
    data: Any

    def size_hint(self) -> int:
        """Rough payload size in bytes, for the state-transfer ablation."""
        return _deep_size(self.data)


def build_payload(
    mode: StateTransferMode,
    service: "Service",
    results: "Sequence[Any]",
) -> StatePayload:
    """Build the payload the leader attaches to a proposal.

    ``results`` are the :class:`repro.services.base.ExecutionResult`s of
    the bundled operations, in execution order — one for a plain write,
    several for a transaction commit (the commit itself contributes a
    result with ``delta=None``/``repro=None``).

    In FULL mode the snapshot must be taken at *proposal* time (i.e. when
    this function runs inside the leader's sequential pipeline), so that it
    reflects exactly the instances proposed so far. Note the concurrency
    caveat: with other transactions active, a FULL snapshot would embed
    their uncommitted writes — use DELTA or REPRO for transactional
    workloads with concurrency (the lock manager guarantees bundled deltas
    commute with everything interleaved).
    """
    if mode is StateTransferMode.FULL:
        return StatePayload(mode, service.snapshot())
    if mode is StateTransferMode.DELTA:
        return StatePayload(mode, tuple(r.delta for r in results))
    if mode is StateTransferMode.REPRO:
        return StatePayload(mode, tuple(r.repro for r in results))
    if mode is StateTransferMode.SMR:
        # Classic state-machine replication: the request itself is the only
        # thing replicated; backups re-execute (deterministic services only).
        return StatePayload(mode, None)
    raise ProtocolError(f"unknown state transfer mode {mode!r}")


def apply_payload(
    payload: StatePayload,
    service: "Service",
    request_ops: tuple[Any, ...],
) -> None:
    """Apply a chosen proposal's state to a backup's service copy.

    ``request_ops`` are the operation payloads of the chosen request bundle
    (one for a plain write; the ops plus a trailing ``None`` for the commit
    marker of a transaction); only REPRO mode needs them (to re-execute
    deterministically).
    """
    if payload.mode is StateTransferMode.FULL:
        service.restore(payload.data)
        return
    if payload.mode is StateTransferMode.DELTA:
        for delta in payload.data:
            if delta is not None:
                service.apply_delta(delta)
        return
    if payload.mode is StateTransferMode.REPRO:
        if len(payload.data) != len(request_ops):
            raise ProtocolError(
                f"REPRO payload has {len(payload.data)} entries for "
                f"{len(request_ops)} ops"
            )
        for op, repro in zip(request_ops, payload.data, strict=True):
            if op is None and repro is None:
                continue  # the commit marker itself
            service.replay(op, repro)
        return
    raise ProtocolError(f"unknown state transfer mode {payload.mode!r}")


def _deep_size(obj: Any) -> int:
    """Crude recursive byte-size estimate (used only for reporting)."""
    import sys

    if isinstance(obj, (str, bytes, bytearray)):
        return sys.getsizeof(obj)
    if isinstance(obj, dict):
        return sys.getsizeof(obj) + sum(_deep_size(k) + _deep_size(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sys.getsizeof(obj) + sum(_deep_size(x) for x in obj)
    return sys.getsizeof(obj)
