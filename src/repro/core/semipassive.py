"""Semi-passive replication (§5 comparator, Défago-Schiper-Sergent).

"Semi-passive replication, a variant of passive replication that can be
implemented in the asynchronous system model without requiring an
agreement on the primary ... uses the same idea of running consensus on
both the command and the state update, but its practical implementation
and performance remains uninvestigated."

This module investigates it. Each client request runs one instance of
Chandra-Toueg ♦S consensus (:mod:`repro.core.ctconsensus`) whose value is
``<request, state update, reply>``; the *coordinator of the instance's
current round* executes the request lazily — if it is suspected, the next
round's coordinator executes instead (the DSS "lazy execution" idea, which
is what removes the need for an agreed primary).

The group driver below is a deterministic in-memory harness (not the DES):
it exists to measure the protocol's *message pattern* and to demonstrate
correctness under coordinator crashes. The quantitative §5 comparison:

* semi-passive, per request: estimate -> propose -> ack -> decide =
  **4 replica-to-replica delays** (plus client legs), every request —
  the estimate round cannot be elided because there is no stable leader;
* the paper's protocol: **2 delays** (accept -> accepted) with a stable
  leader, degrading to a prepare round only across leader changes.

``benchmarks/bench_semipassive.py`` prints the comparison.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.core.ctconsensus import (
    CTAck,
    CTDecide,
    CTEstimate,
    CTNack,
    CTProcess,
    CTPropose,
)
from repro.errors import ProtocolError
from repro.services.base import ExecutionContext, Service
from repro.types import ProcessId


#: The value decided per instance: (op, delta, reply).
@dataclass(frozen=True, slots=True)
class SPDecision:
    op: Any
    delta: Any
    reply: Any


@dataclass
class SPStats:
    """Per-run message accounting."""

    messages: int = 0
    delays_per_request: list[int] = field(default_factory=list)
    executions: int = 0          # total (incl. redundant lazy re-executions)
    rounds: int = 0


class SemiPassiveGroup:
    """A deterministic in-memory semi-passive replication group.

    ``submit(op)`` drives one full consensus instance synchronously and
    returns the reply. ``crashed`` processes take no steps; crashing the
    round coordinator exercises the suspicion/rotation path.
    """

    def __init__(
        self,
        peers: tuple[ProcessId, ...],
        service_factory: Callable[[], Service],
        seed: int = 0,
    ) -> None:
        self.peers = peers
        self.services: dict[ProcessId, Service] = {
            pid: service_factory() for pid in peers
        }
        self._rngs = {pid: random.Random(f"{seed}/{pid}") for pid in peers}
        self.crashed: set[ProcessId] = set()
        self.stats = SPStats()
        self.decisions: list[SPDecision] = []

    @property
    def n(self) -> int:
        return len(self.peers)

    def crash(self, pid: ProcessId) -> None:
        self.crashed.add(pid)

    def recover(self, pid: ProcessId) -> None:
        # DSS model: a recovered process re-joins with the group state;
        # here we resync its service copy from a correct peer.
        self.crashed.discard(pid)
        donor = next(pid_ for pid_ in self.peers if pid_ not in self.crashed)
        self.services[pid].restore(self.services[donor].snapshot())

    # --------------------------------------------------------------- driving
    def submit(self, op: Any) -> Any:
        """Run one consensus instance on ``<op, update>``; apply everywhere."""
        alive = [pid for pid in self.peers if pid not in self.crashed]
        if len(alive) < self.n // 2 + 1:
            raise ProtocolError("no majority of correct processes")

        # Lazy execution (DSS): nobody executes up front. The coordinator of
        # whichever round first assembles a majority of estimates executes
        # the request *then*, via the propose hook — unless a previous round
        # already locked a value, which the hook must pass through.
        processes: dict[ProcessId, CTProcess] = {}

        def lazy_execute(pid: ProcessId):
            def hook(value):
                if value is not None:
                    return value  # locked by an earlier round: must stick
                service = self.services[pid]
                ctx = ExecutionContext(rng=self._rngs[pid], now=0.0)
                snapshot = service.snapshot()
                result = service.execute(op, ctx)
                service.restore(snapshot)  # tentative until decided
                self.stats.executions += 1
                return SPDecision(op=op, delta=result.delta, reply=result.reply)

            return hook

        for pid in self.peers:
            processes[pid] = CTProcess(
                pid, self.peers, value=None, propose_hook=lazy_execute(pid)
            )

        delays = self._run_instance(processes, alive)
        decision = processes[alive[0]].decision
        assert isinstance(decision, SPDecision)
        self.decisions.append(decision)
        for pid in alive:
            self.services[pid].apply_delta(decision.delta)
        self.stats.delays_per_request.append(delays)
        return decision.reply

    def _run_instance(
        self,
        processes: dict[ProcessId, CTProcess],
        alive: list[ProcessId],
    ) -> int:
        """Synchronous round-by-round execution; returns one-way delays used."""
        inbox: list[tuple[ProcessId, ProcessId, Any]] = []
        delays = 0

        def post(src: ProcessId, dst: ProcessId | None, msg: Any) -> None:
            targets = processes.keys() if dst is None else [dst]
            for target in targets:
                if target not in self.crashed:
                    inbox.append((src, target, msg))
                self.stats.messages += 1

        for pid in alive:
            for dst, msg in processes[pid].start():
                post(pid, dst, msg)

        for round_ in range(2 * self.n):  # bounded rotation
            self.stats.rounds += 1
            coordinator = processes[alive[0]].coordinator_of(round_)
            if coordinator in self.crashed:
                # ♦S eventually suspects the crashed coordinator everywhere;
                # the suspicion exchange costs one extra delay.
                delays += 1
                for pid in alive:
                    for dst, msg in processes[pid].suspect_coordinator():
                        post(pid, dst, msg)
                self._drain(processes, inbox)
                continue
            # Phases 1-4 of the round: estimate, propose, ack, decide.
            delays += 4
            self._drain(processes, inbox)
            if processes[alive[0]].decided:
                return delays
        raise ProtocolError("consensus did not terminate within the round bound")

    def _drain(
        self,
        processes: dict[ProcessId, CTProcess],
        inbox: list[tuple[ProcessId, ProcessId, Any]],
    ) -> None:
        while inbox:
            src, dst, msg = inbox.pop(0)
            process = processes[dst]
            if isinstance(msg, CTEstimate):
                out = process.on_estimate(src, msg)
            elif isinstance(msg, CTPropose):
                out = process.on_propose(src, msg)
            elif isinstance(msg, CTAck):
                out = process.on_ack(src, msg)
            elif isinstance(msg, CTNack):
                out = process.on_nack(src, msg)
            elif isinstance(msg, CTDecide):
                out = process.on_decide(src, msg)
            else:  # pragma: no cover
                raise AssertionError(msg)
            for dst2, msg2 in out:
                targets = processes.keys() if dst2 is None else [dst2]
                for target in targets:
                    self.stats.messages += 1
                    if target not in self.crashed:
                        inbox.append((dst, target, msg2))

    # ---------------------------------------------------------------- queries
    def fingerprints(self) -> dict[ProcessId, Any]:
        return {
            pid: self.services[pid].state_fingerprint()
            for pid in self.peers
            if pid not in self.crashed
        }
