"""Paper-vs-measured reporting helpers used by the benchmark harness."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.util.tables import format_table


def percent_change(baseline: float, value: float) -> float:
    """Signed percent change of ``value`` relative to ``baseline``."""
    if baseline == 0:
        raise ValueError("baseline must be nonzero")
    return (value - baseline) / baseline * 100.0


def comparison_table(
    title: str,
    rows: Sequence[tuple[str, float, float]],
    unit: str = "ms",
    scale: float = 1e3,
) -> str:
    """Render rows of ``(label, paper_value, measured_value)``.

    Values are in seconds and scaled for display (default to ms). The delta
    column shows measured deviation from the paper number.
    """
    table_rows = []
    for label, paper, measured in rows:
        delta = percent_change(paper, measured)
        table_rows.append(
            [
                label,
                f"{paper * scale:.3f}",
                f"{measured * scale:.3f}",
                f"{delta:+.1f}%",
            ]
        )
    header = ["metric", f"paper ({unit})", f"measured ({unit})", "delta"]
    return f"{title}\n{format_table(header, table_rows)}"


def series_comparison(
    title: str,
    x_label: str,
    xs: Sequence[object],
    measured: Mapping[str, Sequence[float]],
    fmt: str = "{:.0f}",
) -> str:
    """Render one measured figure series (paper figures give curves, not
    exact values, so only measured numbers are printed; the expected *shape*
    is stated in the title)."""
    header = [x_label, *measured.keys()]
    rows = []
    for index, x in enumerate(xs):
        rows.append([x, *(fmt.format(measured[name][index]) for name in measured)])
    return f"{title}\n{format_table(header, rows)}"
