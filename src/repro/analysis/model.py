"""The paper's analytic latency model (§3.4), plus its T-Paxos extension.

Notation (all one-way latencies, seconds):

* ``M`` — message latency between a client and a service replica;
* ``m`` — message latency between two service replicas;
* ``E`` — execution time of the request at the service.

The paper gives:

* X-Paxos read:       ``RRT = 2M + max(E, m')``  — execution overlaps the
  confirm wait. Strictly, the confirm detour is client->backup->leader
  replacing the direct client->leader leg, so ``m'`` here is
  ``(M_backup + m) - M`` relative to request arrival; with a uniform
  topology this reduces to the paper's ``m``.
* basic protocol:     ``RRT = 2M + E + 2m``  — one extra accept round trip.
* original (baseline): ``RRT = 2M + E``.

For transactions of ``k`` requests plus a commit:

* unoptimized: each op pays its own protocol cost, the commit pays a write:
  ``TRT = sum(op RRTs) + (2M + 2m)``.
* T-Paxos: ops are answered immediately (original-cost), the commit pays
  one write: ``TRT = k*(2M + E) + (2M + 2m)``.

These functions deliberately ignore per-message CPU costs (a few µs); the
tests check that the simulator agrees with the model to within that slack.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class LatencyModelInputs:
    """The three parameters of the §3.4 model."""

    client_replica: float   # M
    replica_replica: float  # m
    execute: float = 0.0    # E

    def __post_init__(self) -> None:
        if self.client_replica < 0 or self.replica_replica < 0 or self.execute < 0:
            raise ValueError("latencies must be >= 0")


def original_rrt(p: LatencyModelInputs) -> float:
    """Unreplicated baseline: request + reply + execution."""
    return 2 * p.client_replica + p.execute


def xpaxos_rrt(p: LatencyModelInputs) -> float:
    """X-Paxos read (§3.4): ``2M + max(E, m)`` — the leader executes while
    the confirms travel."""
    return 2 * p.client_replica + max(p.execute, p.replica_replica)


def basic_rrt(p: LatencyModelInputs) -> float:
    """Basic protocol write (§3.4): ``2M + E + 2m`` — the accept phase adds
    a full replica round trip on the critical path."""
    return 2 * p.client_replica + p.execute + 2 * p.replica_replica


def unoptimized_trt(p: LatencyModelInputs, reads: int, writes: int) -> float:
    """Transaction served without T-Paxos: each op pays its own protocol
    cost and the commit is one more basic-protocol round (§4.2)."""
    ops = reads * xpaxos_rrt(p) + writes * basic_rrt(p)
    commit = 2 * p.client_replica + 2 * p.replica_replica
    return ops + commit


def tpaxos_trt(p: LatencyModelInputs, k: int) -> float:
    """T-Paxos transaction of ``k`` ops (§3.5): ops at unreplicated cost,
    one coordinated commit."""
    ops = k * original_rrt(p)
    commit = 2 * p.client_replica + 2 * p.replica_replica
    return ops + commit
