"""Closed-loop queueing model of the throughput experiments (Figs. 5-8).

The leader is a single server (its CPU handles every message); ``c``
closed-loop clients each cycle through [think at the network for Z seconds
-> get served for S seconds at the leader]. This is the classic machine-
repairman / interactive closed system, and two standard results bound and
approximate it:

* **Asymptotic bounds** (operational analysis):
  ``X(c) <= min(c / (Z + S), 1 / S)`` — the curve rises linearly with the
  client count until the leader saturates at ``1/S``.
* **MVA (exact for product-form)**: Mean Value Analysis computes X(c) and
  the queueing delay exactly for exponential service; for our deterministic
  service times it is a close approximation, good enough to predict the
  simulator within a few percent below saturation.

Mapping to the protocol:

* ``Z`` = the request's network round trip without leader queueing
  (`2M + ...` per the §3.4 model, minus the leader CPU part).
* ``S`` = the leader's CPU time per request: the per-message costs of
  every message the leader handles for that request kind (e.g. on Sysnet,
  original = recv + send = 10 µs; read = recv + 2 confirms + reply = 20 µs).

``tests/unit/test_queueing.py`` checks the math;
``tests/integration/test_queueing_vs_sim.py`` checks it against the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ClosedSystem:
    """One interactive closed queueing system.

    * ``think`` — Z: time a client spends away from the bottleneck per
      cycle (network legs, its own processing), seconds.
    * ``service`` — S: bottleneck (leader CPU) demand per request, seconds.
    """

    think: float
    service: float

    def __post_init__(self) -> None:
        if self.think < 0 or self.service <= 0:
            raise ValueError("need think >= 0 and service > 0")

    # ------------------------------------------------------------- bounds
    def throughput_upper_bound(self, clients: int) -> float:
        """min(c/(Z+S), 1/S) — the operational-analysis asymptotes."""
        return min(clients / (self.think + self.service), 1.0 / self.service)

    def saturation_clients(self) -> float:
        """c* = (Z+S)/S — where the two asymptotes cross."""
        return (self.think + self.service) / self.service

    # ---------------------------------------------------------------- MVA
    def mva(self, clients: int) -> tuple[float, float]:
        """Exact MVA recursion: returns (throughput, mean response time).

        Response time here is the full cycle minus think time — i.e. the
        time spent at (queueing + being served by) the bottleneck.
        """
        if clients < 0:
            raise ValueError("clients must be >= 0")
        queue = 0.0  # mean number at the server
        response = 0.0
        for n in range(1, clients + 1):
            response = self.service * (1.0 + queue)
            throughput = n / (self.think + response)
            queue = throughput * response
        if clients == 0:
            return 0.0, 0.0
        return clients / (self.think + response), response

    def throughput(self, clients: int) -> float:
        return self.mva(clients)[0]

    def response_time(self, clients: int) -> float:
        """Mean request response time seen by a client: think-time legs are
        part of the RRT in our mapping (they ARE the network), so
        RRT = Z + time-at-bottleneck."""
        _throughput, at_server = self.mva(clients)
        return self.think + at_server


def sysnet_model(kind: str) -> ClosedSystem:
    """The Fig. 5 systems, from the calibrated Sysnet constants.

    Leader CPU demand per request counts the messages the leader handles:
    original = recv + reply; read = recv + 2 confirms + reply; write =
    recv + batch send + ~1 ack recv + reply + chosen broadcast, amortized
    by batching — write demand varies with batch size, so the write model
    uses the empirical ~4.5 messages/request mid-saturation figure.
    """
    from repro.net.profiles import (
        REPLICA_MSG_COST,
        SYSNET_CLIENT_SERVER,
        SYSNET_SERVER_SERVER,
    )

    message_cost = REPLICA_MSG_COST
    two_m_client = 2 * SYSNET_CLIENT_SERVER
    if kind == "original":
        demand = 2 * message_cost
        think = two_m_client
    elif kind == "read":
        demand = 4 * message_cost
        think = two_m_client + SYSNET_SERVER_SERVER
    elif kind == "write":
        demand = 4.5 * message_cost
        think = two_m_client + 2 * SYSNET_SERVER_SERVER
    else:
        raise ValueError(f"unknown kind {kind!r}")
    return ClosedSystem(think=think, service=demand)
