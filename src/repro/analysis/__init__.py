"""Analysis: the §3.4 analytic latency model and paper-vs-measured reports."""

from repro.analysis.linearizability import Op, check_register, history_from_clients
from repro.analysis.model import (
    LatencyModelInputs,
    basic_rrt,
    original_rrt,
    tpaxos_trt,
    unoptimized_trt,
    xpaxos_rrt,
)
from repro.analysis.queueing import ClosedSystem, sysnet_model
from repro.analysis.report import comparison_table, percent_change

__all__ = [
    "ClosedSystem",
    "LatencyModelInputs",
    "Op",
    "basic_rrt",
    "check_register",
    "comparison_table",
    "history_from_clients",
    "original_rrt",
    "percent_change",
    "sysnet_model",
    "tpaxos_trt",
    "unoptimized_trt",
    "xpaxos_rrt",
]
