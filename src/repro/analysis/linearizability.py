"""A linearizability checker for single-register histories.

Used to validate the X-Paxos consistency claim (§3.4: a read "must reflect
the latest update") end to end: concurrent clients' reads and writes of one
register are collected with their invocation/response times, and the
checker searches for a legal linearization (Wing & Gong style DFS with
memoization). Histories from the closed-loop harness are small (hundreds
of ops), well within reach of the search.

Semantics checked: an atomic read/write register. A read returns the value
of the latest write linearized before it (or ``initial`` if none).

Caveat documented in DESIGN.md: with *nondeterministic* writes, a read can
legally observe a leader's speculative (not yet committed) execution; if
that leader dies before commit and the retransmitted write re-executes
with a different outcome, the history is not linearizable. Deterministic
writes — and all fault-free histories — are unaffected.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class Op:
    """One completed operation on the register."""

    kind: str            # "read" or "write"
    value: Any           # value written, or value returned by the read
    invoked: float
    completed: float

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ValueError(f"kind must be read/write, got {self.kind!r}")
        if self.completed < self.invoked:
            raise ValueError("completed before invoked")


def check_register(ops: Sequence[Op], initial: Any = None) -> bool:
    """True iff ``ops`` is linearizable as an atomic register.

    DFS over linearization prefixes: state = (frozenset of linearized op
    indices, current register value). An op may be linearized next if every
    op that *completed before it was invoked* is already linearized
    (real-time order), and — for reads — the current value matches.
    """
    ops = tuple(ops)
    n = len(ops)
    if n == 0:
        return True
    # Precompute real-time predecessors: ops that must precede op i.
    predecessors: list[frozenset[int]] = []
    for i, op in enumerate(ops):
        predecessors.append(
            frozenset(
                j for j, other in enumerate(ops) if other.completed < op.invoked
            )
        )

    seen: set[tuple[frozenset, Any]] = set()

    def dfs(done: frozenset, value: Any) -> bool:
        if len(done) == n:
            return True
        key = (done, value)
        if key in seen:
            return False
        seen.add(key)
        for i, op in enumerate(ops):
            if i in done or not predecessors[i] <= done:
                continue
            if op.kind == "read":
                if op.value == value and dfs(done | {i}, value):
                    return True
            else:
                if dfs(done | {i}, op.value):
                    return True
        return False

    return dfs(frozenset(), initial)


def history_from_clients(clients: Iterable, key: Any) -> list[Op]:
    """Extract a single-register history from harness clients.

    Recognizes KV-store ops ``("put", key, v)`` (write) and ``("get", key)``
    (read); other requests are ignored. Only completed requests enter the
    history.
    """
    history: list[Op] = []
    for client in clients:
        for record in client.request_records():
            op = record.op
            if record.completed_at is None or not isinstance(op, tuple):
                continue
            if op[0] == "put" and op[1] == key:
                history.append(
                    Op("write", op[2], invoked=record.sent_at,
                       completed=record.completed_at)
                )
            elif op[0] == "get" and op[1] == key:
                history.append(
                    Op("read", record.value, invoked=record.sent_at,
                       completed=record.completed_at)
                )
    return history
