"""The simulated network: routes messages according to a topology.

One :class:`repro.net.link.Link` instance is materialized per directed
process pair so that FIFO state and RNG streams are independent per pair —
two clients talking to the same replica never perturb each other's jitter
stream, which keeps experiments reproducible under composition.

On top of the static per-link behaviour the network supports *runtime
disturbances* — temporary loss/duplication probabilities and added latency
applied to every link at once. Fault schedules and the chaos engine use
them to model congestion bursts and transient path degradation without
rebuilding the topology. Disturbance decisions draw from their own seeded
RNG stream, so enabling a burst never perturbs the per-link jitter streams
of messages outside the burst window.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.link import Link
from repro.net.partition import PartitionController
from repro.net.topology import Topology
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.types import ProcessId


@dataclass(slots=True)
class Disturbance:
    """Transient, network-wide adversarial behaviour (congestion bursts).

    * ``loss`` — extra probability a message is dropped (cause
      ``"disturbance"``).
    * ``duplicate`` — extra probability a delivered message is duplicated.
    * ``extra_latency`` — seconds added to every delivered copy's delay.
    """

    loss: float = 0.0
    duplicate: float = 0.0
    extra_latency: float = 0.0

    @property
    def active(self) -> bool:
        return self.loss > 0.0 or self.duplicate > 0.0 or self.extra_latency > 0.0


class SimNetwork:
    """Implements the :class:`repro.sim.world.NetworkLike` protocol."""

    def __init__(self, topology: Topology, seed: int = 0) -> None:
        self.topology = topology
        self.partitions = PartitionController()
        self._seed = seed
        self._links: dict[tuple[ProcessId, ProcessId], Link] = {}
        #: Counters by (src_site, dst_site) — handy for tests and reports.
        self.messages_sent: dict[tuple[str, str], int] = {}
        self.messages_dropped = 0
        self.messages_duplicated = 0
        #: Observability sink: mirrors the site-pair counters into the run's
        #: registry (``net.site.<src>-><dst>``) plus drop-cause counters.
        self.metrics: MetricsRegistry = NULL_REGISTRY
        #: Why the most recent :meth:`delays` call dropped its message
        #: ("partition" | "loss" | "disturbance"), or ``None`` if it
        #: delivered. Read by the world to annotate dropped message spans.
        self.last_drop_cause: str | None = None
        #: Why the most recent :meth:`delays` call duplicated its message
        #: ("link" | "disturbance"), or ``None``. Mirrors ``last_drop_cause``
        #: so duplicated deliveries show up in timelines and span attrs.
        self.last_dup_cause: str | None = None
        #: Current runtime disturbance (none by default). Mutate via
        #: :meth:`set_disturbance` / :meth:`clear_disturbance`.
        self.disturbance = Disturbance()
        self._disturbance_rng = random.Random(f"{seed}/disturbance")
        #: Mirror of ``disturbance.active`` as a plain attribute, so the
        #: per-message fast path pays one load instead of three comparisons.
        self._disturbance_active = False
        #: Route cache: (src, dst) -> (link, site_key, site_counter|None).
        #: Collapses the per-message topology lookups (two ``site_of`` calls,
        #: an f-string metric name, a link-table probe) into one dict hit.
        self._routes: dict[
            tuple[ProcessId, ProcessId], tuple[Link, tuple[str, str], object]
        ] = {}

    def _link(self, src: ProcessId, dst: ProcessId) -> Link:
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            spec = self.topology.link_spec(src, dst)
            rng = random.Random(f"{self._seed}/link/{src}->{dst}")
            link = Link(spec, rng)
            self._links[key] = link
        return link

    def _route(
        self, src: ProcessId, dst: ProcessId
    ) -> tuple[Link, tuple[str, str], object]:
        key = (src, dst)
        route = self._routes.get(key)
        if route is None:
            site_key = (self.topology.site_of(src), self.topology.site_of(dst))
            counter = (
                self.metrics.counter(f"net.site.{site_key[0]}->{site_key[1]}")
                if self.metrics.enabled
                else None
            )
            route = self._routes[key] = (self._link(src, dst), site_key, counter)
        return route

    # ----------------------------------------------------------- disturbances
    def set_disturbance(
        self,
        loss: float = 0.0,
        duplicate: float = 0.0,
        extra_latency: float = 0.0,
    ) -> None:
        """Install a network-wide disturbance (replaces any previous one)."""
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"disturbance loss must be in [0, 1), got {loss}")
        if not 0.0 <= duplicate <= 1.0:
            raise ValueError(f"disturbance duplicate must be in [0, 1], got {duplicate}")
        if extra_latency < 0.0:
            raise ValueError(f"extra_latency must be >= 0, got {extra_latency}")
        self.disturbance = Disturbance(
            loss=loss, duplicate=duplicate, extra_latency=extra_latency
        )
        self._disturbance_active = self.disturbance.active

    def clear_disturbance(self) -> None:
        self.disturbance = Disturbance()
        self._disturbance_active = False

    # --------------------------------------------------------------- delivery
    def delays(self, src: ProcessId, dst: ProcessId, depart: float) -> tuple[float, ...]:
        self.last_drop_cause = None
        self.last_dup_cause = None
        if self.partitions.blocked(src, dst):
            self.messages_dropped += 1
            self.last_drop_cause = "partition"
            self.metrics.counter("net.drop.partition").inc()
            return ()
        route = self._routes.get((src, dst))
        if route is None:
            route = self._route(src, dst)
        link, site_key, site_counter = route
        sent = self.messages_sent
        sent[site_key] = sent.get(site_key, 0) + 1
        if site_counter is not None:
            site_counter.inc()
        if self._disturbance_active and src != dst:
            disturbance = self.disturbance
            if disturbance.loss and self._disturbance_rng.random() < disturbance.loss:
                self.messages_dropped += 1
                self.last_drop_cause = "disturbance"
                self.metrics.counter("net.drop.disturbance").inc()
                return ()
        copies = link.delays(depart)
        if not copies:
            self.messages_dropped += 1
            self.last_drop_cause = "loss"
            self.metrics.counter("net.drop.loss").inc()
            return ()
        if len(copies) > 1:
            self.last_dup_cause = "link"
        if self._disturbance_active and src != dst:
            disturbance = self.disturbance
            if (
                disturbance.duplicate
                and len(copies) == 1
                and self._disturbance_rng.random() < disturbance.duplicate
            ):
                copies = (copies[0], copies[0])
                self.last_dup_cause = "disturbance"
            if disturbance.extra_latency:
                copies = tuple(delay + disturbance.extra_latency for delay in copies)
        if self.last_dup_cause is not None:
            self.messages_duplicated += 1
            self.metrics.counter("net.dup").inc()
            self.metrics.counter(f"net.dup.{self.last_dup_cause}").inc()
        return copies

    def total_messages(self) -> int:
        return sum(self.messages_sent.values())
