"""The simulated network: routes messages according to a topology.

One :class:`repro.net.link.Link` instance is materialized per directed
process pair so that FIFO state and RNG streams are independent per pair —
two clients talking to the same replica never perturb each other's jitter
stream, which keeps experiments reproducible under composition.
"""

from __future__ import annotations

import random

from repro.net.link import Link
from repro.net.partition import PartitionController
from repro.net.topology import Topology
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.types import ProcessId


class SimNetwork:
    """Implements the :class:`repro.sim.world.NetworkLike` protocol."""

    def __init__(self, topology: Topology, seed: int = 0) -> None:
        self.topology = topology
        self.partitions = PartitionController()
        self._seed = seed
        self._links: dict[tuple[ProcessId, ProcessId], Link] = {}
        #: Counters by (src_site, dst_site) — handy for tests and reports.
        self.messages_sent: dict[tuple[str, str], int] = {}
        self.messages_dropped = 0
        #: Observability sink: mirrors the site-pair counters into the run's
        #: registry (``net.site.<src>-><dst>``) plus drop-cause counters.
        self.metrics: MetricsRegistry = NULL_REGISTRY
        #: Why the most recent :meth:`delays` call dropped its message
        #: ("partition" | "loss"), or ``None`` if it delivered. Read by the
        #: world to annotate dropped message spans with a cause.
        self.last_drop_cause: str | None = None

    def _link(self, src: ProcessId, dst: ProcessId) -> Link:
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            spec = self.topology.link_spec(src, dst)
            rng = random.Random(f"{self._seed}/link/{src}->{dst}")
            link = Link(spec, rng)
            self._links[key] = link
        return link

    def delays(self, src: ProcessId, dst: ProcessId, depart: float) -> tuple[float, ...]:
        self.last_drop_cause = None
        if self.partitions.blocked(src, dst):
            self.messages_dropped += 1
            self.last_drop_cause = "partition"
            self.metrics.counter("net.drop.partition").inc()
            return ()
        site_key = (self.topology.site_of(src), self.topology.site_of(dst))
        self.messages_sent[site_key] = self.messages_sent.get(site_key, 0) + 1
        if self.metrics.enabled:
            self.metrics.counter(f"net.site.{site_key[0]}->{site_key[1]}").inc()
        copies = self._link(src, dst).delays(depart)
        if not copies:
            self.messages_dropped += 1
            self.last_drop_cause = "loss"
            self.metrics.counter("net.drop.loss").inc()
        return copies

    def total_messages(self) -> int:
        return sum(self.messages_sent.values())
