"""Site-level topology: which process runs where, and inter-site links.

The paper's deployments are naturally described at site granularity
(Sysnet, Princeton, Berkeley, UIUC, Utah, Texas, Oregon): latency between
two processes is a property of their *sites*. A :class:`Topology` maps
process ids to sites and (site, site) pairs to :class:`LinkSpec`s.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.net.latency import ConstantLatency
from repro.net.link import LinkSpec
from repro.types import ProcessId

#: Delivery to self: effectively instantaneous (in-process queue).
LOOPBACK = LinkSpec(latency=ConstantLatency(0.0), jitter_reorder=False)


class Topology:
    """Process placement plus a site-to-site link map.

    Lookup precedence for ``link_spec(src, dst)``:

    1. the loopback spec when ``src == dst`` (same process);
    2. an explicit (site_src, site_dst) entry;
    3. the intra-site spec when both processes share a site;
    4. the default spec.
    """

    def __init__(self, default: LinkSpec | None = None, loopback: LinkSpec = LOOPBACK) -> None:
        self._default = default
        self._loopback = loopback
        self._site_of: dict[ProcessId, str] = {}
        self._links: dict[tuple[str, str], LinkSpec] = {}
        self._intra: dict[str, LinkSpec] = {}

    # -------------------------------------------------------------- building
    def place(self, pid: ProcessId, site: str) -> "Topology":
        """Assign ``pid`` to ``site`` (re-placing is allowed)."""
        self._site_of[pid] = site
        return self

    def place_all(self, pids: list[ProcessId], site: str) -> "Topology":
        for pid in pids:
            self.place(pid, site)
        return self

    def set_link(self, a: str, b: str, spec: LinkSpec, symmetric: bool = True) -> "Topology":
        """Set the link spec between sites ``a`` and ``b``."""
        self._links[(a, b)] = spec
        if symmetric:
            self._links[(b, a)] = spec
        return self

    def set_intra(self, site: str, spec: LinkSpec) -> "Topology":
        """Set the spec for links between two processes at the same site."""
        self._intra[site] = spec
        return self

    # --------------------------------------------------------------- queries
    def site_of(self, pid: ProcessId) -> str:
        try:
            return self._site_of[pid]
        except KeyError:
            raise ConfigError(f"process {pid!r} has not been placed at any site") from None

    @property
    def sites(self) -> set[str]:
        return set(self._site_of.values())

    def processes_at(self, site: str) -> list[ProcessId]:
        return [pid for pid, s in self._site_of.items() if s == site]

    def link_spec(self, src: ProcessId, dst: ProcessId) -> LinkSpec:
        if src == dst:
            return self._loopback
        site_src, site_dst = self.site_of(src), self.site_of(dst)
        spec = self._links.get((site_src, site_dst))
        if spec is not None:
            return spec
        if site_src == site_dst:
            intra = self._intra.get(site_src)
            if intra is not None:
                return intra
        if self._default is not None:
            return self._default
        raise ConfigError(
            f"no link configured between sites {site_src!r} and {site_dst!r} "
            f"(for {src!r} -> {dst!r}) and no default"
        )

    def mean_latency(self, src: ProcessId, dst: ProcessId) -> float:
        """Expected one-way latency between two processes (analytic model)."""
        return self.link_spec(src, dst).latency.mean
