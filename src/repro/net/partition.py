"""Network partition injection.

A partition is a set of disjoint groups of processes; messages between
processes in *different* groups are dropped. Processes not mentioned in any
group are unrestricted — they can talk to everyone (convenient for
partitioning only the replica set while leaving clients connected).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import ConfigError
from repro.types import ProcessId


class PartitionController:
    """Tracks the current partition; consulted by the network on every send."""

    def __init__(self) -> None:
        self._group_of: dict[ProcessId, int] = {}

    def partition(self, groups: Iterable[Iterable[ProcessId]]) -> None:
        """Install a partition. Replaces any previous one."""
        group_of: dict[ProcessId, int] = {}
        for index, group in enumerate(groups):
            for pid in group:
                if pid in group_of:
                    raise ConfigError(f"process {pid!r} appears in two partition groups")
                group_of[pid] = index
        self._group_of = group_of

    def heal(self) -> None:
        """Remove the partition entirely."""
        self._group_of = {}

    def isolate(self, pid: ProcessId, others: Iterable[ProcessId]) -> None:
        """Convenience: put ``pid`` alone on one side, ``others`` on the other."""
        self.partition([[pid], list(others)])

    @property
    def active(self) -> bool:
        return bool(self._group_of)

    def blocked(self, src: ProcessId, dst: ProcessId) -> bool:
        """True when the partition forbids ``src`` -> ``dst`` delivery."""
        gs = self._group_of.get(src)
        gd = self._group_of.get(dst)
        if gs is None or gd is None:
            return False
        return gs != gd
