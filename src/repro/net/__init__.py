"""Network substrate: latency models, links, site topologies, profiles.

The paper's three experimental configurations (§4) are expressed as
:class:`repro.net.profiles.NetworkProfile` instances:

* ``sysnet()`` — the UCSD Sysnet cluster (Gigabit LAN, fast CPUs);
* ``berkeley_princeton()`` — PlanetLab, clients at Berkeley, all replicas
  co-located at Princeton;
* ``wan()`` — PlanetLab wide-area: leader at UIUC, replicas at Utah and
  Texas, clients at Berkeley and Intel Labs Oregon.
"""

from repro.net.latency import (
    ConstantLatency,
    EmpiricalLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.net.link import Link, LinkSpec
from repro.net.network import SimNetwork
from repro.net.partition import PartitionController
from repro.net.profiles import NetworkProfile, berkeley_princeton, sysnet, wan
from repro.net.topology import Topology

__all__ = [
    "ConstantLatency",
    "EmpiricalLatency",
    "LatencyModel",
    "LogNormalLatency",
    "UniformLatency",
    "Link",
    "LinkSpec",
    "SimNetwork",
    "PartitionController",
    "NetworkProfile",
    "Topology",
    "berkeley_princeton",
    "sysnet",
    "wan",
]
