"""One-way message latency models.

All latencies are in **seconds**. Models are sampled with an externally
provided :class:`random.Random` so the network owns determinism, and models
stay stateless/shareable.

The asynchronous-system assumption of the paper corresponds to latency
models with unbounded support (e.g. :class:`LogNormalLatency`): no upper
bound on delivery time, yet eventual delivery.
"""

from __future__ import annotations

import abc
import math
import random
from collections.abc import Sequence


class LatencyModel(abc.ABC):
    """A distribution of one-way link latencies."""

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one latency, in seconds. Must be >= 0."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected latency in seconds (used by the analytic model)."""


class ConstantLatency(LatencyModel):
    """A fixed one-way delay. The analytic-model workhorse."""

    __slots__ = ("_value",)

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"latency must be >= 0, got {value}")
        self._value = value

    def sample(self, rng: random.Random) -> float:
        return self._value

    @property
    def mean(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"ConstantLatency({self._value!r})"


class UniformLatency(LatencyModel):
    """Uniform on ``[lo, hi]``."""

    __slots__ = ("_lo", "_hi")

    def __init__(self, lo: float, hi: float) -> None:
        if not 0 <= lo <= hi:
            raise ValueError(f"need 0 <= lo <= hi, got {lo}, {hi}")
        self._lo, self._hi = lo, hi

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self._lo, self._hi)

    @property
    def mean(self) -> float:
        return (self._lo + self._hi) / 2.0

    def __repr__(self) -> str:
        return f"UniformLatency({self._lo!r}, {self._hi!r})"


class LogNormalLatency(LatencyModel):
    """Log-normal latency parameterized by its *median* and shape ``sigma``.

    Log-normal is the standard model for wide-area RTT jitter: strictly
    positive, right-skewed, unbounded — exactly the asynchrony the paper
    assumes. ``sigma`` around 0.05 models a quiet LAN; 0.1–0.3 models
    PlanetLab paths.
    """

    __slots__ = ("_median", "_sigma", "_mu")

    def __init__(self, median: float, sigma: float = 0.1) -> None:
        if median <= 0:
            raise ValueError(f"median must be > 0, got {median}")
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self._median = median
        self._sigma = sigma
        self._mu = math.log(median)

    def sample(self, rng: random.Random) -> float:
        if self._sigma == 0.0:
            return self._median
        return rng.lognormvariate(self._mu, self._sigma)

    @property
    def median(self) -> float:
        return self._median

    @property
    def sigma(self) -> float:
        return self._sigma

    @property
    def mean(self) -> float:
        return self._median * math.exp(self._sigma**2 / 2.0)

    def __repr__(self) -> str:
        return f"LogNormalLatency(median={self._median!r}, sigma={self._sigma!r})"


class EmpiricalLatency(LatencyModel):
    """Resamples from a measured trace of latencies (bootstrap)."""

    __slots__ = ("_samples", "_mean")

    def __init__(self, samples: Sequence[float]) -> None:
        if not samples:
            raise ValueError("empirical latency needs at least one sample")
        if any(s < 0 for s in samples):
            raise ValueError("latency samples must be >= 0")
        self._samples = tuple(samples)
        self._mean = sum(samples) / len(samples)

    def sample(self, rng: random.Random) -> float:
        return rng.choice(self._samples)

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"EmpiricalLatency(n={len(self._samples)})"
