"""Links: a latency model plus optional adversarial behaviour.

The paper assumes reliable channels (messages between correct processes are
eventually delivered). Protocol correctness, however, must survive
*duplication* and *reordering* — Paxos explicitly tolerates both — so links
can be configured to inject them for the safety tests. Loss is also
available for stress tests; the protocol layer's retransmission restores
the reliable-channel abstraction on top.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.latency import ConstantLatency, LatencyModel


@dataclass(frozen=True, slots=True)
class LinkSpec:
    """Static description of one (directed) link's behaviour.

    * ``latency`` — one-way delay distribution.
    * ``loss`` — probability a message copy is silently dropped.
    * ``duplicate`` — probability a message is delivered twice.
    * ``jitter_reorder`` — when True, each copy samples latency
      independently, so consecutive messages can overtake each other.
      When False the link enforces FIFO by never letting a later message
      arrive before an earlier one (TCP-like).
    """

    latency: LatencyModel = field(default_factory=lambda: ConstantLatency(0.0))
    loss: float = 0.0
    duplicate: float = 0.0
    jitter_reorder: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {self.loss}")
        if not 0.0 <= self.duplicate <= 1.0:
            raise ValueError(f"duplicate must be in [0, 1], got {self.duplicate}")


class Link:
    """A directed link instance with its own RNG stream and FIFO state."""

    __slots__ = ("spec", "_rng", "_last_arrival")

    def __init__(self, spec: LinkSpec, rng: random.Random) -> None:
        self.spec = spec
        self._rng = rng
        self._last_arrival = 0.0  # absolute time of the latest arrival handed out

    def delays(self, depart: float) -> tuple[float, ...]:
        """Sample delivery delays (relative to ``depart``) for one message.

        ``()`` means the copy was dropped; two entries mean duplication.
        """
        spec = self.spec
        if spec.loss and self._rng.random() < spec.loss:
            return ()
        first = self._sample_one(depart)
        if spec.duplicate and self._rng.random() < spec.duplicate:
            return (first, self._sample_one(depart))
        return (first,)

    def _sample_one(self, depart: float) -> float:
        delay = self.spec.latency.sample(self._rng)
        if not self.spec.jitter_reorder:
            # FIFO (TCP-like): a message may not overtake an earlier one on
            # the same link, so its arrival is clamped to the latest arrival
            # already promised.
            arrival = max(depart + delay, self._last_arrival)
            self._last_arrival = arrival
            delay = arrival - depart
        return delay
