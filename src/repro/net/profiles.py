"""Calibrated deployment profiles for the paper's three configurations (§4).

Each profile bundles a topology builder (site placement + link latencies)
and CPU cost parameters. The constants below are *calibrated*, not fitted:
they are chosen so that the paper's measured response times fall out of the
protocol's message pattern via the analytic model of §3.4
(``basic = 2M + E + 2m``, ``xpaxos = 2M + max(E, m)``), where

* ``M`` = one-way client <-> replica latency,
* ``m`` = one-way replica <-> replica latency,
* per-message CPU costs add the small remaining constant.

Derivations (all one-way latencies):

**Sysnet** (UCSD cluster, GigE, P4 2.8 GHz). Paper: original 0.181 ms,
read 0.263 ms, write 0.338 ms. With per-message CPU cost s = 5 µs at
replicas and 1 µs at clients, original = 2M + 2s_r + 2s_c, so M = 84 µs.
write - original = 2m + 3s_r = 157 µs gives m = 70 µs (the server machines
share a switch, so m < M). read - original = (m - M) + M + ... — the
confirm detour (client -> backup -> leader) replaces one client leg and
lands at 0.263 ms. Throughput saturation comes from the leader's
per-message CPU; Fig. 6's peak-then-decline from ``extra_per_message``
growing with the client count (per-connection poll/scan overhead).

**Berkeley -> Princeton** (PlanetLab, co-located replicas). Paper:
original 91.85 ms, read 92.79 ms, write 93.13 ms. M = 45.85 ms,
m = 0.55 ms: replication adds ~1 ms to a ~92 ms request, so all three
curves collapse — reproducing the paper's conclusion that X-Paxos does not
help when m << M.

**WAN** (leader UIUC; replicas Utah, Texas; clients Berkeley, Oregon).
Paper: original 70.82 ms, read 75.49 ms, write 106.73 ms.
M(Berkeley<->UIUC) = 35.3 ms gives original = 70.6 ms.
write = 2M + 2*min(m) needs min one-way replica latency 17.85 ms
(UIUC<->Texas). The X-Paxos read replies when the first backup confirm
arrives: min over backups of [client->backup + backup->leader] =
min(20+20, 25+17.85) = 40 ms, so read = 40 + 35.3 = 75.3 ms. The paper's
numbers pin those three pairwise latencies; the remaining pairs are set to
geographically sensible values.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.net.latency import LogNormalLatency
from repro.net.link import LinkSpec
from repro.net.topology import Topology
from repro.sim.cpu import CpuProfile
from repro.types import ProcessId

# --------------------------------------------------------------------------
# Calibration constants (seconds). Each constant names the paper number it
# helps reproduce; see the module docstring for the derivations.
# --------------------------------------------------------------------------

#: Per-message CPU cost at a service replica (send or receive one message).
REPLICA_MSG_COST = 5e-6
#: Per-message CPU cost at a client.
CLIENT_MSG_COST = 1e-6
#: Per-connection scanning overhead, per message, per concurrent client.
#: The Fig. 6 harness sets extra_per_message = this * n_clients.
PER_CONNECTION_OVERHEAD = 0.012e-6

#: Sysnet: client <-> server one-way latency (original RRT 0.181 ms).
SYSNET_CLIENT_SERVER = 84e-6
#: Sysnet: server <-> server one-way latency (write RRT 0.338 ms).
SYSNET_SERVER_SERVER = 70e-6
SYSNET_SIGMA = 0.05

#: Berkeley <-> Princeton one-way latency (original RRT 91.85 ms).
BP_CLIENT_SERVER = 45.85e-3
#: Princeton intra-site one-way latency (write RRT 93.13 ms).
BP_SERVER_SERVER = 0.55e-3
BP_SIGMA = 0.02
BP_INTRA_SIGMA = 0.05

#: WAN one-way latencies (original 70.82 ms / read 75.49 ms / write 106.73 ms).
WAN_LATENCY: Mapping[tuple[str, str], float] = {
    ("berkeley", "uiuc"): 35.3e-3,
    ("oregon", "uiuc"): 35.3e-3,
    ("berkeley", "utah"): 20e-3,
    ("oregon", "utah"): 20e-3,
    ("berkeley", "texas"): 25e-3,
    ("oregon", "texas"): 25e-3,
    ("uiuc", "utah"): 20e-3,
    ("uiuc", "texas"): 17.85e-3,
    ("utah", "texas"): 15e-3,
    ("berkeley", "oregon"): 15e-3,
}
WAN_SIGMA = 0.03


@dataclass(frozen=True)
class NetworkProfile:
    """One experimental configuration: placement, latencies and CPU costs."""

    name: str
    description: str
    replica_cpu: CpuProfile
    client_cpu: CpuProfile
    #: Paper-reported mean RRT per request kind, in seconds (for reports).
    paper_rrt: Mapping[str, float]
    _builder: Callable[[Sequence[ProcessId], Sequence[ProcessId]], Topology]
    #: Used by the Fig. 6 harness: extra CPU per message per concurrent client.
    per_connection_overhead: float = PER_CONNECTION_OVERHEAD
    extras: Mapping[str, object] = field(default_factory=dict)

    def build_topology(
        self, replicas: Sequence[ProcessId], clients: Sequence[ProcessId]
    ) -> Topology:
        """Place the given replica and client pids and wire up the links."""
        return self._builder(replicas, clients)

    def replica_cpu_for(self, n_clients: int) -> CpuProfile:
        """Replica CPU profile including per-connection overhead for a run
        with ``n_clients`` concurrent clients."""
        return self.replica_cpu.with_extra(self.per_connection_overhead * n_clients)


def _lognormal_spec(median: float, sigma: float) -> LinkSpec:
    return LinkSpec(latency=LogNormalLatency(median, sigma), jitter_reorder=False)


# --------------------------------------------------------------------- sysnet
def _sysnet_builder(
    replicas: Sequence[ProcessId], clients: Sequence[ProcessId]
) -> Topology:
    topo = Topology()
    topo.place_all(list(replicas), "servers")
    topo.place_all(list(clients), "clients")
    topo.set_intra("servers", _lognormal_spec(SYSNET_SERVER_SERVER, SYSNET_SIGMA))
    topo.set_intra("clients", _lognormal_spec(SYSNET_CLIENT_SERVER, SYSNET_SIGMA))
    topo.set_link("clients", "servers", _lognormal_spec(SYSNET_CLIENT_SERVER, SYSNET_SIGMA))
    return topo


def sysnet() -> NetworkProfile:
    """The UCSD Sysnet cluster configuration (§4, first configuration)."""
    return NetworkProfile(
        name="sysnet",
        description="Local cluster: GigE LAN, replicas share a switch.",
        replica_cpu=CpuProfile(send_cost=REPLICA_MSG_COST, recv_cost=REPLICA_MSG_COST),
        client_cpu=CpuProfile(send_cost=CLIENT_MSG_COST, recv_cost=CLIENT_MSG_COST),
        paper_rrt={"original": 0.181e-3, "read": 0.263e-3, "write": 0.338e-3},
        _builder=_sysnet_builder,
    )


# -------------------------------------------------------- berkeley->princeton
def _bp_builder(replicas: Sequence[ProcessId], clients: Sequence[ProcessId]) -> Topology:
    topo = Topology()
    topo.place_all(list(replicas), "princeton")
    topo.place_all(list(clients), "berkeley")
    topo.set_intra("princeton", _lognormal_spec(BP_SERVER_SERVER, BP_INTRA_SIGMA))
    topo.set_intra("berkeley", _lognormal_spec(BP_SERVER_SERVER, BP_INTRA_SIGMA))
    topo.set_link("berkeley", "princeton", _lognormal_spec(BP_CLIENT_SERVER, BP_SIGMA))
    return topo


def berkeley_princeton() -> NetworkProfile:
    """PlanetLab: remote clients, co-located replicas (§4, second config)."""
    return NetworkProfile(
        name="berkeley_princeton",
        description="PlanetLab: clients at Berkeley, all replicas at Princeton.",
        replica_cpu=CpuProfile(send_cost=REPLICA_MSG_COST, recv_cost=REPLICA_MSG_COST),
        client_cpu=CpuProfile(send_cost=CLIENT_MSG_COST, recv_cost=CLIENT_MSG_COST),
        paper_rrt={"original": 91.85e-3, "read": 92.79e-3, "write": 93.13e-3},
        _builder=_bp_builder,
    )


# ------------------------------------------------------------------------ wan
#: Site assignment for replicas in the WAN profile, in replica order: the
#: first replica (the benchmark leader) runs at UIUC, as in the paper.
WAN_REPLICA_SITES = ("uiuc", "utah", "texas")
#: Client sites alternate between Berkeley and Intel Labs Oregon.
WAN_CLIENT_SITES = ("berkeley", "oregon")


def _wan_builder(replicas: Sequence[ProcessId], clients: Sequence[ProcessId]) -> Topology:
    topo = Topology()
    for index, pid in enumerate(replicas):
        topo.place(pid, WAN_REPLICA_SITES[index % len(WAN_REPLICA_SITES)])
    for index, pid in enumerate(clients):
        topo.place(pid, WAN_CLIENT_SITES[index % len(WAN_CLIENT_SITES)])
    for (a, b), oneway in WAN_LATENCY.items():
        topo.set_link(a, b, _lognormal_spec(oneway, WAN_SIGMA))
    for site in sorted(set(WAN_REPLICA_SITES) | set(WAN_CLIENT_SITES)):
        topo.set_intra(site, _lognormal_spec(0.3e-3, WAN_SIGMA))
    return topo


def wan() -> NetworkProfile:
    """PlanetLab wide-area: replicas spread across sites (§4, third config)."""
    return NetworkProfile(
        name="wan",
        description=(
            "PlanetLab WAN: leader at UIUC, replicas at Utah and Texas, "
            "clients at Berkeley and Intel Labs Oregon."
        ),
        replica_cpu=CpuProfile(send_cost=REPLICA_MSG_COST, recv_cost=REPLICA_MSG_COST),
        client_cpu=CpuProfile(send_cost=CLIENT_MSG_COST, recv_cost=CLIENT_MSG_COST),
        paper_rrt={"original": 70.82e-3, "read": 75.49e-3, "write": 106.73e-3},
        _builder=_wan_builder,
    )


# ----------------------------------------------------------------------- flat
def _flat_builder(replicas: Sequence[ProcessId], clients: Sequence[ProcessId]) -> Topology:
    from repro.net.latency import ConstantLatency

    topo = Topology(
        default=LinkSpec(latency=ConstantLatency(1e-3), jitter_reorder=False)
    )
    topo.place_all(list(replicas), "site")
    topo.place_all(list(clients), "site")
    return topo


def flat() -> NetworkProfile:
    """Featureless 1 ms constant-latency profile (no jitter, free CPUs).

    Not a paper configuration: used by the chaos engine and protocol tests,
    where deterministic timing makes found schedules easy to reason about."""
    return NetworkProfile(
        name="flat",
        description="Flat 1 ms constant-latency profile (chaos/protocol testing).",
        replica_cpu=CpuProfile(),
        client_cpu=CpuProfile(),
        paper_rrt={},
        _builder=_flat_builder,
        per_connection_overhead=0.0,
    )


PROFILES: Mapping[str, Callable[[], NetworkProfile]] = {
    "sysnet": sysnet,
    "berkeley_princeton": berkeley_princeton,
    "wan": wan,
    "flat": flat,
}


def get_profile(name: str) -> NetworkProfile:
    """Look up a profile by name; raises KeyError with the known names."""
    try:
        return PROFILES[name]()
    except KeyError:
        raise KeyError(f"unknown profile {name!r}; known: {sorted(PROFILES)}") from None
