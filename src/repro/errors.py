"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulation was driven into an invalid state."""


class TransportError(ReproError):
    """A transport-level failure (unknown destination, closed transport)."""


class ProtocolError(ReproError):
    """A replication-protocol invariant was violated.

    This indicates a bug in the protocol implementation (or deliberately
    adversarial test input), never a normal runtime condition such as a
    crash or message delay.
    """


class NotLeaderError(ProtocolError):
    """An operation that only the leader may perform was attempted elsewhere."""


class TransactionError(ReproError):
    """Base class for transaction-related failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (conflict, leader switch, or client abort)."""


class LockConflict(TransactionError):
    """A lock request conflicts with a lock held by another transaction."""


class ServiceError(ReproError):
    """An application service rejected or failed to execute a request."""
