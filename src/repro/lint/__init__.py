"""``repro lint`` — AST-based determinism and protocol-invariant analysis.

Every guarantee this reproduction makes (byte-identical artifacts,
replayable schedules, the §3.3 "replicas apply the leader's chosen state"
contract) rests on house rules the runtime cannot check: RNGs and clocks
must be injected, messages must be immutable, JSON output must be
key-sorted. This package enforces those rules statically, at review time,
instead of leaving them to a flaky 50-seed chaos sweep.

Architecture:

* :mod:`repro.lint.context` — one parsed file: AST, import/alias
  resolution (absolute and relative), layer classification, suppression
  comments;
* :mod:`repro.lint.rules` — the plugin registry; each rule is a class
  with an id, severity, rationale and a ``check(ctx)`` generator;
* :mod:`repro.lint.graph` — the whole-program pass: per-file facts with
  an on-disk content-hash cache, the linked project index, the call
  graph, and the interprocedural rules (DET101, MSG101, MSG102,
  PROTO101) with witness-path reporting;
* :mod:`repro.lint.engine` — walks trees, runs rules (per-file phase,
  then whole-program phase), applies ``# lint: ignore[RULE] -- reason``
  suppressions and the baseline;
* :mod:`repro.lint.report` — text and byte-deterministic JSON reporters;
* :mod:`repro.lint.cli` — the ``repro lint`` subcommand.

See ``docs/static-analysis.md`` for the rule catalogue.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.engine import LintEngine, LintResult
from repro.lint.findings import Finding, Severity
from repro.lint.graph import (
    PROJECT_RULE_REGISTRY,
    CallGraph,
    ProjectContext,
    ProjectIndex,
    all_project_rules,
)
from repro.lint.report import render_json, render_text
from repro.lint.rules import RULE_REGISTRY, all_rules

__all__ = [
    "Baseline",
    "CallGraph",
    "Finding",
    "LintEngine",
    "LintResult",
    "PROJECT_RULE_REGISTRY",
    "ProjectContext",
    "ProjectIndex",
    "RULE_REGISTRY",
    "Severity",
    "all_project_rules",
    "all_rules",
    "render_json",
    "render_text",
]
