"""Per-file analysis context: AST, imports, layers and suppressions.

The context is built once per file and shared by every rule, so the tree
is parsed once, the import table is resolved once, and rules stay small:
most are a walk over ``ctx.tree`` plus calls to :meth:`FileContext.resolve`.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import PurePosixPath

#: Directories under the ``repro`` package whose code runs inside the
#: deterministic simulation and therefore may not touch ambient
#: nondeterminism (wall clocks, unseeded RNGs, process entropy).
DETERMINISTIC_LAYERS = frozenset(
    {"sim", "core", "net", "chaos", "election", "cluster", "storage"}
)

#: Suppression comments, e.g. ``lint: ignore[DET001, MSG002] -- reason``.
#: Anchored to the start of the comment token so prose that merely
#: *mentions* the syntax (like this comment) never suppresses anything.
_SUPPRESSION_RE = re.compile(
    r"^#\s*lint:\s*ignore\[(?P<rules>[A-Za-z0-9_*,\s]*)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)


@dataclass(slots=True)
class Suppression:
    """One ``# lint: ignore[...]`` comment, tracked for use and misuse."""

    line: int
    rules: tuple[str, ...]
    reason: str | None
    used: bool = False

    def matches(self, rule_id: str) -> bool:
        return "*" in self.rules or rule_id in self.rules


def layer_of(rel_path: str) -> str | None:
    """The architectural layer a file belongs to.

    The layer is the path segment directly below the ``repro`` package
    directory (``src/repro/core/replica.py`` -> ``core``). Trees that do
    not contain a ``repro`` segment (test fixtures) fall back to the first
    directory under the scan root, so fixture layouts like
    ``<tmp>/core/mod.py`` classify the same way.
    """
    parts = PurePosixPath(rel_path).parts
    if "repro" in parts[:-1]:
        anchor = len(parts) - 2 - parts[:-1][::-1].index("repro")
        below = parts[anchor + 1 :]
        return below[0] if len(below) > 1 else None
    return parts[0] if len(parts) > 1 else None


def _module_package(rel_path: str) -> tuple[str, ...]:
    """Dotted-package parts of a module file, for relative-import resolution.

    Both ``pkg/mod.py`` and ``pkg/__init__.py`` resolve level-1 imports
    against ``pkg``, so the package is simply the containing directory.
    """
    parts = list(PurePosixPath(rel_path).parts)
    if parts and parts[-1].endswith(".py"):
        parts.pop()
    return tuple(parts)


@dataclass(slots=True)
class FileContext:
    """Everything a rule needs to know about one source file."""

    rel: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    layer: str | None = None
    imports: dict[str, str] = field(default_factory=dict)
    suppressions: dict[int, Suppression] = field(default_factory=dict)
    #: (start, end, qualname) spans of every def/class, innermost last.
    symbols: list[tuple[int, int, str]] = field(default_factory=list)
    #: Lazily computed flat node list shared by every rule (see ``walk``).
    _nodes: tuple[ast.AST, ...] | None = None

    @classmethod
    def parse(cls, source: str, rel: str) -> "FileContext":
        """Build a context; raises ``SyntaxError`` on unparseable source."""
        tree = ast.parse(source, filename=rel)
        ctx = cls(
            rel=rel,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            layer=layer_of(rel),
        )
        ctx._collect_imports()
        ctx._collect_suppressions()
        ctx._collect_symbols(tree.body, prefix="")
        return ctx

    # ------------------------------------------------------------- imports
    def _collect_imports(self) -> None:
        package = _module_package(self.rel)
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a`` (to package a); with an
                    # asname it binds the full dotted module.
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[bound] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from_base(node, package)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.imports[bound] = f"{base}.{alias.name}" if base else alias.name

    @staticmethod
    def _resolve_from_base(node: ast.ImportFrom, package: tuple[str, ...]) -> str:
        if not node.level:
            return node.module or ""
        # Relative import: climb ``level - 1`` packages above this module's
        # package, then descend into ``node.module``.
        anchor = package[: len(package) - (node.level - 1)] if node.level > 1 else package
        parts = list(anchor)
        if node.module:
            parts.extend(node.module.split("."))
        return ".".join(parts)

    def walk(self) -> tuple[ast.AST, ...]:
        """Every node of the tree, walked once and shared by all rules.

        A dozen rules each calling ``ast.walk(ctx.tree)`` re-traverses the
        file a dozen times; the flat tuple makes the traversal cost
        per-file instead of per-rule (the scan's former hot path).  Order
        matches ``ast.walk`` (breadth-first), so findings keep their
        historical ordering.
        """
        if self._nodes is None:
            self._nodes = tuple(ast.walk(self.tree))
        return self._nodes

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted origin of a name/attribute chain, through import aliases.

        ``random.Random`` (after ``import random``) -> ``"random.Random"``;
        ``Random`` (after ``from random import Random``) -> the same.
        Returns ``None`` for anything that is not a resolvable chain
        (calls on call results, subscripts, locals the file never imported).
        """
        chain: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.imports.get(current.id, current.id)
        chain.append(root)
        return ".".join(reversed(chain))

    # -------------------------------------------------------- suppressions
    def _collect_suppressions(self) -> None:
        # Tokenize so that the marker only counts in real comments — a
        # docstring *describing* the suppression syntax is not an ignore.
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                (token.start[0], token.string)
                for token in tokens
                if token.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return  # unparseable files are reported as LINT000 anyway
        for number, text in comments:
            match = _SUPPRESSION_RE.search(text)
            if match is None:
                continue
            rules = tuple(
                part.strip() for part in match.group("rules").split(",") if part.strip()
            )
            self.suppressions[number] = Suppression(
                line=number, rules=rules, reason=match.group("reason")
            )

    def suppressed(self, rule_id: str, line: int) -> bool:
        """True (and mark used) if ``line`` carries an ignore for ``rule_id``."""
        suppression = self.suppressions.get(line)
        if suppression is not None and suppression.matches(rule_id):
            suppression.used = True
            return True
        return False

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    # ------------------------------------------------------------- symbols
    def _collect_symbols(self, body: list[ast.stmt], prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                qualname = f"{prefix}{node.name}"
                self.symbols.append(
                    (node.lineno, node.end_lineno or node.lineno, qualname)
                )
                self._collect_symbols(node.body, prefix=f"{qualname}.")

    def symbol_at(self, line: int) -> str:
        """Qualname of the innermost def/class enclosing ``line``.

        Used by the v2 baseline fingerprint: symbols survive file moves,
        absolute line numbers do not. Module-level code (imports,
        constants) reports ``<module>``.
        """
        best: tuple[int, str] | None = None
        for start, end, qualname in self.symbols:
            if start <= line <= end:
                span = end - start
                if best is None or span < best[0]:
                    best = (span, qualname)
        return best[1] if best is not None else "<module>"
