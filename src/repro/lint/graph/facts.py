"""Per-file fact extraction: the cacheable unit of the project analysis.

Phase one of the whole-program pass walks each file's AST exactly once and
distills it into :class:`FileFacts` — functions with their resolved call
sites, message sends, handler dispatch checks, field reads on annotated
parameters, stable-storage calls and durability barriers; classes with
their fields, bases and attribute types. All name resolution that needs
the file's *own* import table happens here, so facts are self-contained,
JSON-serializable, and keyed by content hash in the on-disk index cache
(:mod:`repro.lint.graph.index`). Cross-file linking (method resolution,
re-export chasing, reachability) happens later, over facts only — it
never needs the AST back.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import PurePosixPath

from repro.lint.context import FileContext
from repro.lint.rules.determinism import AMBIENT_CALLS, AMBIENT_PREFIXES

#: Bump when the extraction below changes shape or semantics: a version
#: mismatch invalidates every cached entry at once.
FACTS_VERSION = 2

#: Handler naming convention (mirrors the MSG002 rule).
HANDLER_RE = re.compile(r"^_?(on|handle)_")

#: ``<...>.store.<method>()`` calls that mutate crash-surviving state.
STABLE_MUTATORS = frozenset(
    {"accept", "choose", "record_promise", "record_round",
     "write_checkpoint", "install_state", "initialize"}
)

#: The subset whose loss violates Paxos safety — the writes PROTO101
#: requires a durability barrier for before any acknowledgement leaves.
SAFETY_CRITICAL_MUTATORS = frozenset({"accept", "record_promise", "record_round"})

#: Additional interprocedural taint sources beyond DET001's ambient set:
#: environment reads are nondeterministic across hosts even though they
#: are stable within one process.
ENV_CALLS = frozenset({"os.getenv", "os.environ.get", "os.environb.get"})


def module_of(rel: str) -> str:
    """Dotted module name of a file, relative to the scan root.

    ``repro/core/replica.py`` -> ``repro.core.replica``;
    ``pkg/__init__.py`` -> ``pkg``.
    """
    parts = list(PurePosixPath(rel).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def is_ambient(target: str) -> bool:
    """Is ``target`` (a resolved dotted callable) a nondeterminism source?"""
    return (
        target in AMBIENT_CALLS
        or target in ENV_CALLS
        or target.startswith(AMBIENT_PREFIXES)
        or (target.startswith("random.") and target != "random.Random")
    )


@dataclass(slots=True)
class CallSite:
    """One call expression inside a function body."""

    target: str | None      # import-resolved dotted callee, or None
    chain: tuple[str, ...]  # raw attribute chain, e.g. ("self", "store", "accept")
    line: int

    def to_json(self) -> list:
        return [self.target, list(self.chain), self.line]

    @classmethod
    def from_json(cls, raw: list) -> CallSite:
        return cls(target=raw[0], chain=tuple(raw[1]), line=raw[2])


@dataclass(slots=True)
class SendSite:
    """One ``send``/``broadcast`` call with its message argument."""

    kind: str               # "send" | "broadcast"
    msg: str | None         # resolved message constructor (dotted), or None
    line: int

    def to_json(self) -> list:
        return [self.kind, self.msg, self.line]

    @classmethod
    def from_json(cls, raw: list) -> SendSite:
        return cls(kind=raw[0], msg=raw[1], line=raw[2])


@dataclass(slots=True)
class FunctionFacts:
    """Everything the project pass needs to know about one function."""

    qualname: str                               # "Replica._on_prepare" / "helper"
    name: str
    cls: str | None                             # enclosing class name, if a method
    line: int
    handler: bool                               # name matches on_*/_on_*/handle_*
    params: tuple[tuple[str, str | None], ...]  # (name, resolved annotation)
    calls: tuple[CallSite, ...] = ()
    sends: tuple[SendSite, ...] = ()
    ambient: tuple[tuple[str, int], ...] = ()   # direct nondeterminism calls
    reads: tuple[tuple[str, str, int], ...] = ()  # param attribute reads
    stable_calls: tuple[tuple[str, int], ...] = ()  # *.store.<mutator>() sites
    barrier: bool = False                       # touches flush()/needs_barrier
    handled: tuple[str, ...] = ()               # isinstance-dispatched classes
    local_types: tuple[tuple[str, str], ...] = ()  # var -> constructor class
    rebound: tuple[str, ...] = ()               # params reassigned in the body

    def to_json(self) -> dict:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "cls": self.cls,
            "line": self.line,
            "handler": self.handler,
            "params": [list(p) for p in self.params],
            "calls": [c.to_json() for c in self.calls],
            "sends": [s.to_json() for s in self.sends],
            "ambient": [list(a) for a in self.ambient],
            "reads": [list(r) for r in self.reads],
            "stable_calls": [list(s) for s in self.stable_calls],
            "barrier": self.barrier,
            "handled": list(self.handled),
            "local_types": [list(t) for t in self.local_types],
            "rebound": list(self.rebound),
        }

    @classmethod
    def from_json(cls, raw: dict) -> FunctionFacts:
        return cls(
            qualname=raw["qualname"],
            name=raw["name"],
            cls=raw["cls"],
            line=raw["line"],
            handler=raw["handler"],
            params=tuple((p[0], p[1]) for p in raw["params"]),
            calls=tuple(CallSite.from_json(c) for c in raw["calls"]),
            sends=tuple(SendSite.from_json(s) for s in raw["sends"]),
            ambient=tuple((a[0], a[1]) for a in raw["ambient"]),
            reads=tuple((r[0], r[1], r[2]) for r in raw["reads"]),
            stable_calls=tuple((s[0], s[1]) for s in raw["stable_calls"]),
            barrier=raw["barrier"],
            handled=tuple(raw["handled"]),
            local_types=tuple((t[0], t[1]) for t in raw["local_types"]),
            rebound=tuple(raw["rebound"]),
        )


@dataclass(slots=True)
class ClassFacts:
    """Schema and wiring of one class definition."""

    name: str
    line: int
    bases: tuple[str, ...] = ()         # resolved dotted base names
    methods: tuple[str, ...] = ()
    properties: tuple[str, ...] = ()
    fields: tuple[str, ...] = ()        # class-body AnnAssign/Assign names
    attr_types: tuple[tuple[str, str], ...] = ()  # self.x = Ctor(...) wiring
    is_dataclass: bool = False
    frozen: bool = False
    is_message: bool = False
    #: Declarative handler registries: class-body dict literals mapping
    #: message classes to handler method names, as (resolved class,
    #: method name) pairs — e.g. ``DISPATCH = {Prepare: "_on_prepare"}``.
    dispatch: tuple[tuple[str, str], ...] = ()

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "line": self.line,
            "bases": list(self.bases),
            "methods": list(self.methods),
            "properties": list(self.properties),
            "fields": list(self.fields),
            "attr_types": [list(t) for t in self.attr_types],
            "is_dataclass": self.is_dataclass,
            "frozen": self.frozen,
            "is_message": self.is_message,
            "dispatch": [list(d) for d in self.dispatch],
        }

    @classmethod
    def from_json(cls, raw: dict) -> ClassFacts:
        return cls(
            name=raw["name"],
            line=raw["line"],
            bases=tuple(raw["bases"]),
            methods=tuple(raw["methods"]),
            properties=tuple(raw["properties"]),
            fields=tuple(raw["fields"]),
            attr_types=tuple((t[0], t[1]) for t in raw["attr_types"]),
            is_dataclass=raw["is_dataclass"],
            frozen=raw["frozen"],
            is_message=raw["is_message"],
            dispatch=tuple((d[0], d[1]) for d in raw["dispatch"]),
        )


@dataclass(slots=True)
class FileFacts:
    """The distilled, linkable view of one source file."""

    rel: str
    module: str
    layer: str | None
    functions: dict[str, FunctionFacts] = field(default_factory=dict)
    classes: dict[str, ClassFacts] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "rel": self.rel,
            "module": self.module,
            "layer": self.layer,
            "functions": {
                name: fn.to_json() for name, fn in sorted(self.functions.items())
            },
            "classes": {
                name: c.to_json() for name, c in sorted(self.classes.items())
            },
            "imports": dict(sorted(self.imports.items())),
        }

    @classmethod
    def from_json(cls, raw: dict) -> FileFacts:
        return cls(
            rel=raw["rel"],
            module=raw["module"],
            layer=raw["layer"],
            functions={
                name: FunctionFacts.from_json(fn)
                for name, fn in raw["functions"].items()
            },
            classes={
                name: ClassFacts.from_json(c) for name, c in raw["classes"].items()
            },
            imports=dict(raw["imports"]),
        )


# ============================================================== extraction
_MESSAGE_LAYERS = frozenset({"core", "net"})
_DIRECTION_RE = re.compile(r"\S\s*->\s*\S")


def _attribute_chain(node: ast.AST) -> tuple[str, ...] | None:
    """``a.b.c`` -> ``("a", "b", "c")``; None for non-name chains."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return tuple(reversed(parts))


def _resolve_annotation(ctx: FileContext, node: ast.expr | None) -> str | None:
    """Resolved dotted class name of a simple annotation, or None.

    Handles ``Prepare``, ``messages.Prepare``, string annotations, and
    ``X | None`` unions (taking the non-None side). Subscripted generics
    are opaque on purpose — a handler takes a concrete message type.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _resolve_annotation(ctx, node.left)
        if left is not None:
            return left
        return _resolve_annotation(ctx, node.right)
    if isinstance(node, (ast.Name, ast.Attribute)):
        resolved = ctx.resolve(node)
        if resolved in (None, "None"):
            return None
        return resolved
    return None


def _is_message_class(ctx: FileContext, node: ast.ClassDef) -> bool:
    """Mirror of MSG001's classification: a dataclass in a ``messages.py``
    module, or a core/net dataclass whose docstring declares a direction."""
    if ctx.layer not in _MESSAGE_LAYERS:
        return False
    if ctx.rel.endswith("messages.py"):
        return True
    docstring = ast.get_docstring(node)
    if not docstring:
        return False
    return bool(_DIRECTION_RE.search(docstring.splitlines()[0]))


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "dataclass":
            return decorator
        if (
            isinstance(decorator, ast.Call)
            and isinstance(decorator.func, ast.Name)
            and decorator.func.id == "dataclass"
        ):
            return decorator
    return None


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for decorator in node.decorator_list:
        chain = _attribute_chain(decorator)
        if chain:
            names.add(chain[-1])
            names.add(chain[0])
    return names


class _FunctionWalker(ast.NodeVisitor):
    """Collects one function's facts without descending into nested defs
    (nested functions and lambdas share the enclosing function's facts —
    a send inside a ``flush(lambda: ...)`` callback belongs to the
    function that armed it)."""

    def __init__(self, ctx: FileContext, params: dict[str, str | None]) -> None:
        self.ctx = ctx
        self.params = params
        self.calls: list[CallSite] = []
        self.sends: list[SendSite] = []
        self.ambient: list[tuple[str, int]] = []
        self.reads: list[tuple[str, str, int]] = []
        self.stable_calls: list[tuple[str, int]] = []
        self.barrier = False
        self.handled: list[str] = []
        self.local_types: dict[str, str] = {}
        self.rebound: set[str] = set()

    def visit_Call(self, node: ast.Call) -> None:
        ctx = self.ctx
        chain = _attribute_chain(node.func) or ()
        target = ctx.resolve(node.func)
        if target is not None and is_ambient(target):
            self.ambient.append((target, node.lineno))
        if chain:
            self.calls.append(CallSite(target=target, chain=chain, line=node.lineno))
            if len(chain) >= 2 and chain[-2] == "store":
                if chain[-1] == "flush":
                    self.barrier = True
                elif chain[-1] in STABLE_MUTATORS:
                    self.stable_calls.append((chain[-1], node.lineno))
            if chain[-1] in ("send", "broadcast") and len(node.args) >= 2:
                self.sends.append(
                    SendSite(
                        kind=chain[-1],
                        msg=self._message_argument(node.args[1]),
                        line=node.lineno,
                    )
                )
        if target == "isinstance" and len(node.args) == 2:
            self._collect_isinstance(node.args[1])
        self.generic_visit(node)

    def _message_argument(self, arg: ast.expr) -> str | None:
        """The message class a send's payload argument resolves to."""
        if isinstance(arg, ast.Call):
            return self.ctx.resolve(arg.func)
        if isinstance(arg, ast.Name):
            return self.local_types.get(arg.id)
        return None

    def _collect_isinstance(self, spec: ast.expr) -> None:
        elements = spec.elts if isinstance(spec, ast.Tuple) else [spec]
        for element in elements:
            resolved = self.ctx.resolve(element)
            if resolved is not None:
                self.handled.append(resolved)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in self.params
            and not node.attr.startswith("__")
        ):
            self.reads.append((node.value.id, node.attr, node.lineno))
        if node.attr == "needs_barrier":
            chain = _attribute_chain(node)
            if chain and len(chain) >= 3 and chain[-2] == "store":
                self.barrier = True
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                if target.id in self.params:
                    self.rebound.add(target.id)
                if isinstance(node.value, ast.Call):
                    ctor = self.ctx.resolve(node.value.func)
                    if ctor is not None:
                        self.local_types[target.id] = ctor
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.target.id in self.params:
            self.rebound.add(node.target.id)
        self.generic_visit(node)

    # Nested function/class definitions contribute to the *enclosing*
    # function's facts (closures over handler state are pervasive here),
    # so the walker descends into them via generic_visit. Only their
    # parameter lists would shadow ours; rebinding via inner defs is rare
    # enough to accept the imprecision.


def _extract_function(
    ctx: FileContext,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    cls: ast.ClassDef | None,
) -> FunctionFacts:
    params: dict[str, str | None] = {}
    for arg in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs):
        if arg.arg in ("self", "cls"):
            continue
        params[arg.arg] = _resolve_annotation(ctx, arg.annotation)
    walker = _FunctionWalker(ctx, params)
    for statement in node.body:
        walker.visit(statement)
    qualname = f"{cls.name}.{node.name}" if cls is not None else node.name
    return FunctionFacts(
        qualname=qualname,
        name=node.name,
        cls=cls.name if cls is not None else None,
        line=node.lineno,
        handler=bool(HANDLER_RE.match(node.name)),
        params=tuple(params.items()),
        calls=tuple(walker.calls),
        sends=tuple(walker.sends),
        ambient=tuple(walker.ambient),
        reads=tuple(walker.reads),
        stable_calls=tuple(walker.stable_calls),
        barrier=walker.barrier,
        handled=tuple(dict.fromkeys(walker.handled)),
        local_types=tuple(sorted(walker.local_types.items())),
        rebound=tuple(sorted(walker.rebound)),
    )


def _dispatch_entries(ctx: FileContext, value: ast.expr) -> list[tuple[str, str]]:
    """Entries of a class-body handler registry, or ``[]``.

    A registry is a dict literal whose keys resolve to class names and
    whose values are string constants naming methods — the declarative
    replacement for an ``isinstance`` dispatch chain. Mixed or non-literal
    dicts yield nothing: partial extraction would make MSG102 claim a
    handler exists for a type the table never routes.
    """
    if not isinstance(value, ast.Dict):
        return []
    entries: list[tuple[str, str]] = []
    for key, val in zip(value.keys, value.values):
        if key is None:  # ``**spread`` — not a statically known table
            return []
        if not (isinstance(val, ast.Constant) and isinstance(val.value, str)):
            return []
        resolved = ctx.resolve(key)
        if resolved is None:
            return []
        entries.append((resolved, val.value))
    return entries


def _extract_class(ctx: FileContext, node: ast.ClassDef) -> ClassFacts:
    decorator = _dataclass_decorator(node)
    frozen = False
    if isinstance(decorator, ast.Call):
        for keyword in decorator.keywords:
            if (
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                frozen = True
    bases = tuple(
        resolved
        for base in node.bases
        if (resolved := ctx.resolve(base)) is not None
    )
    methods: list[str] = []
    properties: list[str] = []
    fields: list[str] = []
    attr_types: dict[str, str] = {}
    dispatch: list[tuple[str, str]] = []
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if "property" in _decorator_names(item) or "cached_property" in _decorator_names(item):
                properties.append(item.name)
            else:
                methods.append(item.name)
            # ``self.x = Ctor(...)`` wiring, for attribute-method resolution.
            for statement in ast.walk(item):
                if not isinstance(statement, ast.Assign):
                    continue
                for target in statement.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and isinstance(statement.value, ast.Call)
                    ):
                        ctor = ctx.resolve(statement.value.func)
                        if ctor is not None and target.attr not in attr_types:
                            attr_types[target.attr] = ctor
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            fields.append(item.target.id)
            if item.value is not None:
                dispatch.extend(_dispatch_entries(ctx, item.value))
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    fields.append(target.id)
            dispatch.extend(_dispatch_entries(ctx, item.value))
    return ClassFacts(
        name=node.name,
        line=node.lineno,
        bases=bases,
        methods=tuple(methods),
        properties=tuple(properties),
        fields=tuple(fields),
        attr_types=tuple(sorted(attr_types.items())),
        is_dataclass=decorator is not None,
        frozen=frozen,
        is_message=decorator is not None and _is_message_class(ctx, node),
        dispatch=tuple(dispatch),
    )


def _qualify(name: str | None, module: str, local: frozenset[str]) -> str | None:
    """Prefix module onto names the file defines itself.

    ``ctx.resolve`` leaves locally-defined symbols bare (``CTEstimate``
    instead of ``repro.core.ctconsensus.CTEstimate``) because the import
    table never mentions them; qualification happens here, once, so every
    downstream consumer (call graph, msgflow, base-class chains) sees
    fully-dotted names.
    """
    if name is None or not module:
        return name
    root = name.split(".", 1)[0]
    return f"{module}.{name}" if root in local else name


def _qualify_facts(facts: FileFacts, local: frozenset[str]) -> None:
    module = facts.module
    for fn in facts.functions.values():
        fn.calls = tuple(
            CallSite(
                target=_qualify(call.target, module, local),
                chain=call.chain,
                line=call.line,
            )
            for call in fn.calls
        )
        fn.sends = tuple(
            SendSite(
                kind=send.kind,
                msg=_qualify(send.msg, module, local),
                line=send.line,
            )
            for send in fn.sends
        )
        fn.params = tuple(
            (name, _qualify(annotation, module, local))
            for name, annotation in fn.params
        )
        fn.handled = tuple(_qualify(h, module, local) for h in fn.handled)
        fn.local_types = tuple(
            (name, _qualify(ctor, module, local)) for name, ctor in fn.local_types
        )
    for cls_facts in facts.classes.values():
        cls_facts.bases = tuple(
            _qualify(base, module, local) for base in cls_facts.bases
        )
        cls_facts.attr_types = tuple(
            (attr, _qualify(ctor, module, local))
            for attr, ctor in cls_facts.attr_types
        )
        cls_facts.dispatch = tuple(
            (_qualify(msg, module, local), method)
            for msg, method in cls_facts.dispatch
        )


def extract_facts(ctx: FileContext) -> FileFacts:
    """Distill one parsed file into its linkable facts."""
    facts = FileFacts(
        rel=ctx.rel,
        module=module_of(ctx.rel),
        layer=ctx.layer,
        imports=dict(ctx.imports),
    )
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = _extract_function(ctx, node, cls=None)
            facts.functions[fn.qualname] = fn
        elif isinstance(node, ast.ClassDef):
            cls_facts = _extract_class(ctx, node)
            facts.classes[cls_facts.name] = cls_facts
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn = _extract_function(ctx, item, cls=node)
                    facts.functions[fn.qualname] = fn
    local = frozenset(facts.classes) | {
        fn.name for fn in facts.functions.values() if fn.cls is None
    }
    _qualify_facts(facts, local)
    return facts
