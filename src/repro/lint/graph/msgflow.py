"""Message-flow conformance: schema checks, send/handler pairing, barriers.

Three whole-program rules over the indexed message dataclasses, send
sites and handlers:

* **MSG101** — a handler reads a field off an annotated message parameter
  that the frozen dataclass does not define: a guaranteed
  ``AttributeError`` the first time that handler runs.
* **MSG102** — flow mismatches: a message type that is sent somewhere but
  dispatched by no handler anywhere (the send can never be acted on), and
  the dual — a handler dispatching a type nothing in the project
  constructs (dead protocol surface).
* **PROTO101** — an acknowledgement (``Promise`` / ``Accepted`` /
  ``AcceptedBatch``) reachable from a handler entry point along a call
  path that performs a safety-critical stable write (``accept`` /
  ``record_promise`` / ``record_round``) with **no durability barrier**
  (``store.flush`` / ``store.needs_barrier``) anywhere on the path. This
  is the reachability upgrade of PROTO002: acked-but-volatile state is
  exactly the crash bug §3.3's stable-storage contract exists to prevent.

The module also builds the ``--graph`` export: the send/handle bipartite
flow between functions and message types, as sorted JSON or Graphviz DOT.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.graph.base import ProjectContext, ProjectRule, register_project
from repro.lint.graph.facts import SAFETY_CRITICAL_MUTATORS
from repro.lint.graph.index import ProjectIndex

#: Acknowledgements whose transmission promises durable state to a peer.
ACK_MESSAGES = frozenset({"Promise", "Accepted", "AcceptedBatch"})

#: Attributes every (frozen, slots) dataclass instance legitimately has.
_DATACLASS_BUILTINS = frozenset(
    {"count", "index"}  # tuple-ish helpers appear on namedtuple-style uses
)


def _basename(dotted: str | None) -> str | None:
    return dotted.rpartition(".")[2] if dotted else None


def _schema(index: ProjectIndex, dotted: str) -> frozenset[str] | None:
    """All attribute names defined on a class and its indexed bases."""
    names: set[str] = set()
    seen: set[str] = set()
    queue = [dotted]
    found = False
    while queue:
        current = queue.pop(0)
        if current in seen:
            continue
        seen.add(current)
        resolved = index.resolve_symbol(current)
        if resolved is None:
            continue
        pair = index.cls(resolved)
        if pair is None:
            continue
        found = True
        _facts, cls_facts = pair
        names.update(cls_facts.fields)
        names.update(cls_facts.properties)
        names.update(cls_facts.methods)
        queue.extend(cls_facts.bases)
    return frozenset(names) if found else None


def _resolve_message(index: ProjectIndex, dotted: str | None) -> str | None:
    """Resolve a name to an indexed message class, or None.

    Falls back to matching a bare (dotless) name against the message
    vocabulary when the import table cannot resolve it — under
    ``from __future__ import annotations`` a handler's parameter
    annotation parses fine without the import, and message class names
    are unique, so an unambiguous basename match is safe.
    """
    messages = index.message_classes()
    resolved = index.resolve_symbol(dotted)
    if resolved is not None:
        return resolved if resolved in messages else None
    if dotted and "." not in dotted:
        matches = [m for m in messages if m.rpartition(".")[2] == dotted]
        if len(matches) == 1:
            return matches[0]
    return None


def _message_param_types(
    index: ProjectIndex, params: tuple[tuple[str, str | None], ...]
) -> dict[str, str]:
    """Param name -> dotted message class, for annotated message params."""
    out: dict[str, str] = {}
    for name, annotation in params:
        resolved = _resolve_message(index, annotation)
        if resolved is not None:
            out[name] = resolved
    return out


@register_project
class HandlerFieldSchema(ProjectRule):
    rule_id = "MSG101"
    severity = Severity.ERROR
    summary = "handler reads a field the frozen message dataclass does not define"
    rationale = (
        "Frozen slots dataclasses raise AttributeError on unknown fields "
        "only at runtime — under fault schedules a typo'd field in a "
        "rarely-taken branch can sit untested until it crashes a replica "
        "mid-protocol; the schema is static, so check it statically."
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        index = project.index
        for module in sorted(index.modules):
            facts = index.modules[module]
            for qualname in sorted(facts.functions):
                fn = facts.functions[qualname]
                param_types = _message_param_types(index, fn.params)
                if not param_types:
                    continue
                for param, attr, line in fn.reads:
                    if param not in param_types or param in fn.rebound:
                        continue
                    schema = _schema(index, param_types[param])
                    if schema is None or attr in schema:
                        continue
                    if attr in _DATACLASS_BUILTINS:
                        continue
                    cls_name = _basename(param_types[param])
                    yield self.finding(
                        path=facts.rel,
                        line=line,
                        message=(
                            f"{qualname} reads {param}.{attr} but message "
                            f"{cls_name} defines no field '{attr}' "
                            f"(fields: {', '.join(sorted(schema)) or 'none'})"
                        ),
                    )


@register_project
class SendHandlerPairing(ProjectRule):
    rule_id = "MSG102"
    severity = Severity.ERROR
    summary = "message type sent but never handled, or handled but never constructed"
    rationale = (
        "A send with no dispatching handler is protocol intent that can "
        "never execute; a handler for a type nothing constructs is dead "
        "protocol surface that silently rots — both mean the message flow "
        "diverges from the design."
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        index = project.index
        messages = index.message_classes()
        handled = _handled_types(index)
        constructed = _constructed_types(index)
        for module in sorted(index.modules):
            facts = index.modules[module]
            for qualname in sorted(facts.functions):
                fn = facts.functions[qualname]
                for send in fn.sends:
                    resolved = index.resolve_symbol(send.msg)
                    if resolved is None or resolved not in messages:
                        continue
                    if resolved in handled:
                        continue
                    yield self.finding(
                        path=facts.rel,
                        line=send.line,
                        message=(
                            f"{qualname} {send.kind}s {_basename(resolved)} "
                            "but no handler anywhere dispatches that type"
                        ),
                    )
        for dotted in sorted(handled):
            if dotted in constructed or dotted not in messages:
                continue
            for rel, line, qualname in sorted(handled[dotted]):
                yield self.finding(
                    path=rel,
                    line=line,
                    message=(
                        f"{qualname} dispatches {_basename(dotted)} but "
                        "nothing in the project constructs that message"
                    ),
                )


@register_project
class BarrierDominance(ProjectRule):
    rule_id = "PROTO101"
    severity = Severity.ERROR
    summary = "ack send reachable from a handler past a stable write with no durability barrier on the path"
    rationale = (
        "Sending Promise/Accepted acknowledges state the peer may now rely "
        "on across our crash (§3.3); if any handler-to-ack call path "
        "performs the stable write without routing through a "
        "store.flush()/needs_barrier barrier, a crash after send loses "
        "acked state and re-opens the chosen-twice bug class."
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        index = project.index
        graph = project.graph
        barriers = frozenset(_barrier_nodes(index))
        handlers = sorted(_handler_entries(index))
        reachable = graph.reachable_from(handlers, blocked=barriers)
        writers = {
            node: sites
            for node, sites in _critical_writers(index).items()
            if node in reachable and node not in barriers
        }
        for writer in sorted(writers):
            ack = _first_barrier_free_ack(project, writer, barriers)
            if ack is None:
                continue
            ack_node, send = ack
            handler_path = _first_handler_path(graph, handlers, writer, barriers)
            mutator, write_line = writers[writer][0]
            witness = _render_proto_witness(
                project, handler_path, writer, mutator, write_line, ack_node, send
            )
            ack_pair = index.function(ack_node)
            rel = ack_pair[0].rel if ack_pair is not None else "?"
            yield self.finding(
                path=rel,
                line=send.line,
                message=(
                    f"{_basename(ack_node)} {send.kind}s "
                    f"{_basename(send.msg)} on a handler path through "
                    f"store.{mutator}() with no durability barrier "
                    "(store.flush/needs_barrier) anywhere on the path"
                ),
                witness=witness,
            )


# ------------------------------------------------------------ shared scans
def _handled_types(index: ProjectIndex) -> dict[str, list[tuple[str, int, str]]]:
    """Message class -> [(rel, line, handler qualname)] dispatching it.

    A type counts as handled when a handler isinstance-dispatches it,
    declares it as a parameter annotation, or a class-body dispatch
    registry (``DISPATCH = {Prepare: "_on_prepare", ...}``) routes it to
    a named method.
    """
    out: dict[str, list[tuple[str, int, str]]] = {}
    for module in sorted(index.modules):
        facts = index.modules[module]
        for qualname in sorted(facts.functions):
            fn = facts.functions[qualname]
            dispatched: list[str] = []
            for dotted in fn.handled:
                resolved = index.resolve_symbol(dotted)
                if resolved is not None:
                    dispatched.append(resolved)
            if fn.handler:
                dispatched.extend(
                    _message_param_types(index, fn.params).values()
                )
            for resolved in dict.fromkeys(dispatched):
                out.setdefault(resolved, []).append((facts.rel, fn.line, qualname))
        for cls_name in sorted(facts.classes):
            cls_facts = facts.classes[cls_name]
            for msg, method in cls_facts.dispatch:
                resolved = _resolve_message(index, msg)
                if resolved is None:
                    continue
                handler = f"{cls_name}.{method}"
                target = facts.functions.get(handler)
                line = target.line if target is not None else cls_facts.line
                out.setdefault(resolved, []).append((facts.rel, line, handler))
    return out


def _constructed_types(index: ProjectIndex) -> set[str]:
    """Every class the project constructs anywhere (resolved call targets)."""
    out: set[str] = set()
    for module in sorted(index.modules):
        facts = index.modules[module]
        for qualname in sorted(facts.functions):
            for call in facts.functions[qualname].calls:
                resolved = index.resolve_symbol(call.target)
                if resolved is not None and index.cls(resolved) is not None:
                    out.add(resolved)
    return out


def _handler_entries(index: ProjectIndex) -> list[str]:
    out: list[str] = []
    for module in sorted(index.modules):
        facts = index.modules[module]
        for qualname in sorted(facts.functions):
            if facts.functions[qualname].handler:
                out.append(f"{module}.{qualname}")
    return out


def _barrier_nodes(index: ProjectIndex) -> list[str]:
    out: list[str] = []
    for module in sorted(index.modules):
        facts = index.modules[module]
        for qualname in sorted(facts.functions):
            if facts.functions[qualname].barrier:
                out.append(f"{module}.{qualname}")
    return out


def _critical_writers(index: ProjectIndex) -> dict[str, list[tuple[str, int]]]:
    """Node -> sorted safety-critical ``store.<mutator>()`` sites."""
    out: dict[str, list[tuple[str, int]]] = {}
    for module in sorted(index.modules):
        facts = index.modules[module]
        for qualname in sorted(facts.functions):
            fn = facts.functions[qualname]
            sites = sorted(
                (mutator, line)
                for mutator, line in fn.stable_calls
                if mutator in SAFETY_CRITICAL_MUTATORS
            )
            if sites:
                out[f"{module}.{qualname}"] = sites
    return out


def _first_barrier_free_ack(
    project: ProjectContext, writer: str, barriers: frozenset[str]
):
    """First (node, send-site) acking a peer, barrier-free from ``writer``."""
    graph = project.graph
    index = project.index
    for node in sorted(graph.reachable_from([writer], blocked=barriers)):
        pair = index.function(node)
        if pair is None:
            continue
        for send in pair[1].sends:
            if _basename(index.resolve_symbol(send.msg)) in ACK_MESSAGES:
                return node, send
    return None


def _first_handler_path(graph, handlers, writer, barriers):
    for handler in handlers:
        path = graph.shortest_path(handler, {writer}, blocked=barriers)
        if path is not None:
            return path
    return [(writer, 0)]


def _render_proto_witness(
    project, handler_path, writer, mutator, write_line, ack_node, send
) -> tuple[str, ...]:
    graph = project.graph
    index = project.index
    rendered = list(graph.render_path(handler_path))
    writer_pair = index.function(writer)
    writer_rel = writer_pair[0].rel if writer_pair is not None else "?"
    rendered.append(f"store.{mutator} ({writer_rel}:{write_line})")
    if ack_node != writer:
        ack_path = graph.shortest_path(writer, {ack_node})
        if ack_path is not None:
            rendered.extend(graph.render_path(ack_path)[1:])
    ack_pair = index.function(ack_node)
    ack_rel = ack_pair[0].rel if ack_pair is not None else "?"
    rendered.append(
        f"{send.kind} {_basename(index.resolve_symbol(send.msg))} ({ack_rel}:{send.line})"
    )
    return tuple(rendered)


# ------------------------------------------------------------ graph export
def message_flow(project: ProjectContext) -> dict:
    """The send/handle bipartite flow, as a sorted JSON-ready document."""
    index = project.index
    messages = index.message_classes()
    handled = _handled_types(index)
    sends: list[dict] = []
    for module in sorted(index.modules):
        facts = index.modules[module]
        for qualname in sorted(facts.functions):
            fn = facts.functions[qualname]
            for send in fn.sends:
                resolved = index.resolve_symbol(send.msg)
                if resolved is None or resolved not in messages:
                    continue
                sends.append(
                    {
                        "from": f"{module}.{qualname}",
                        "kind": send.kind,
                        "message": resolved,
                        "line": send.line,
                        "path": facts.rel,
                    }
                )
    return {
        "version": 1,
        "messages": {
            dotted: {
                "fields": sorted(pair[1].fields),
                "frozen": pair[1].frozen,
                "path": pair[0].rel,
            }
            for dotted, pair in sorted(messages.items())
        },
        "sends": sends,
        "handlers": {
            dotted: sorted(qualname for _rel, _line, qualname in sites)
            for dotted, sites in sorted(handled.items())
            if dotted in messages
        },
        "call_edges": [
            {"from": caller, "to": callee, "line": line}
            for caller in project.graph.nodes()
            for callee, line in project.graph.callees(caller)
        ],
    }


def render_dot(flow: dict) -> str:
    """Graphviz DOT of the send/handle flow (messages as boxes)."""
    lines = ["digraph msgflow {", "  rankdir=LR;", '  node [fontsize=10];']
    for dotted in sorted(flow["messages"]):
        label = _basename(dotted)
        lines.append(f'  "{dotted}" [shape=box,label="{label}"];')
    for send in flow["sends"]:
        style = "solid" if send["kind"] == "send" else "bold"
        lines.append(
            f'  "{send["from"]}" -> "{send["message"]}" [style={style}];'
        )
    for dotted, handlers in sorted(flow["handlers"].items()):
        for handler in handlers:
            lines.append(f'  "{dotted}" -> "{handler}" [style=dashed];')
    lines.append("}")
    return "\n".join(lines) + "\n"
