"""The project index: every file's facts, linked, with an on-disk cache.

The index is phase two's input: a map of modules to
:class:`~repro.lint.graph.facts.FileFacts` plus the cross-file lookups
the whole-program rules need — dotted-symbol resolution through package
re-exports, class lookup, and method resolution over the class hierarchy.

The cache is a single sorted-JSON file keyed by **content hash** (sha256
of the source bytes), so ``touch``-ing a file re-hashes but never
re-extracts, while any real edit invalidates exactly that file. A
version stamp (:data:`~repro.lint.graph.facts.FACTS_VERSION`) guards
against stale schemas. Cache hits and misses are identical by
construction — facts round-trip losslessly through JSON — which the CI
cache-correctness check enforces byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.context import FileContext
from repro.lint.graph.facts import FACTS_VERSION, ClassFacts, FileFacts, FunctionFacts, extract_facts

_CACHE_VERSION = 1

#: Symbol-resolution hop budget: re-export chains longer than this are a
#: cycle (``from .a import x`` <-> ``from .b import x``), not a symbol.
_MAX_HOPS = 16


def _content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass(slots=True)
class IndexCache:
    """Load/store of per-file facts keyed by content hash."""

    path: Path
    entries: dict[str, dict] = field(default_factory=dict)  # rel -> {hash, facts}

    @classmethod
    def load(cls, path: str | Path) -> "IndexCache":
        path = Path(path)
        cache = cls(path=path)
        if not path.exists():
            return cache
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache  # unreadable cache == cold cache, never an error
        if (
            not isinstance(document, dict)
            or document.get("cache_version") != _CACHE_VERSION
            or document.get("facts_version") != FACTS_VERSION
        ):
            return cache
        files = document.get("files", {})
        if isinstance(files, dict):
            cache.entries = files
        return cache

    def lookup(self, rel: str, digest: str) -> FileFacts | None:
        entry = self.entries.get(rel)
        if entry is None or entry.get("hash") != digest:
            return None
        try:
            return FileFacts.from_json(entry["facts"])
        except (KeyError, TypeError):
            return None

    def store(self, rel: str, digest: str, facts: FileFacts) -> None:
        self.entries[rel] = {"hash": digest, "facts": facts.to_json()}

    def write(self, scanned: set[str]) -> None:
        """Persist entries for the scanned files (dropping deleted ones)."""
        document = {
            "cache_version": _CACHE_VERSION,
            "facts_version": FACTS_VERSION,
            "tool": "repro-lint",
            "files": {
                rel: entry
                for rel, entry in sorted(self.entries.items())
                if rel in scanned
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n",
            encoding="utf-8",
        )


@dataclass(slots=True)
class ProjectIndex:
    """All files' facts plus the cross-file resolution lookups."""

    files: dict[str, FileFacts] = field(default_factory=dict)   # rel -> facts
    modules: dict[str, FileFacts] = field(default_factory=dict)  # module -> facts
    #: Files whose facts were re-extracted (cache misses) this build.
    reindexed: tuple[str, ...] = ()

    # ---------------------------------------------------------------- build
    @classmethod
    def build(
        cls,
        contexts: dict[str, FileContext],
        cache: IndexCache | None = None,
    ) -> "ProjectIndex":
        """Build the index from parsed file contexts, consulting ``cache``."""
        index = cls()
        reindexed: list[str] = []
        for rel in sorted(contexts):
            ctx = contexts[rel]
            digest = _content_hash(ctx.source)
            facts = cache.lookup(rel, digest) if cache is not None else None
            if facts is None:
                facts = extract_facts(ctx)
                reindexed.append(rel)
                if cache is not None:
                    cache.store(rel, digest, facts)
            index.files[rel] = facts
            index.modules[facts.module] = facts
        index.reindexed = tuple(reindexed)
        if cache is not None:
            cache.write(scanned=set(contexts))
        return index

    # -------------------------------------------------------------- lookups
    def function(self, dotted: str) -> tuple[FileFacts, FunctionFacts] | None:
        """``repro.core.replica.Replica._on_prepare`` -> its facts pair."""
        module, _sep, qualname = dotted.rpartition(".")
        # Method: module.Class.method — the module is one segment shorter.
        facts = self.modules.get(module)
        if facts is not None and qualname in facts.functions:
            return facts, facts.functions[qualname]
        parent, _sep, cls_name = module.rpartition(".")
        facts = self.modules.get(parent)
        if facts is not None:
            method = f"{cls_name}.{qualname}"
            if method in facts.functions:
                return facts, facts.functions[method]
        return None

    def cls(self, dotted: str) -> tuple[FileFacts, ClassFacts] | None:
        module, _sep, name = dotted.rpartition(".")
        facts = self.modules.get(module)
        if facts is not None and name in facts.classes:
            return facts, facts.classes[name]
        return None

    def resolve_symbol(self, dotted: str | None) -> str | None:
        """Chase package re-exports until ``dotted`` names a real symbol.

        ``repro.lint.Baseline`` (bound by ``repro/lint/__init__.py``)
        resolves to ``repro.lint.baseline.Baseline``. Returns the input
        unchanged when it already names an indexed class/function, or
        None when nothing in the project matches.
        """
        for _hop in range(_MAX_HOPS):
            if dotted is None:
                return None
            if self.cls(dotted) is not None or self.function(dotted) is not None:
                return dotted
            module, _sep, attr = dotted.rpartition(".")
            facts = self.modules.get(module)
            if facts is None or attr not in facts.imports:
                return None
            dotted = facts.imports[attr]
        return None

    def find_method(self, dotted_cls: str, name: str) -> str | None:
        """Resolve ``name`` on ``dotted_cls`` or its base-class chain."""
        seen: set[str] = set()
        queue = [dotted_cls]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            resolved = self.resolve_symbol(current)
            if resolved is None:
                continue
            pair = self.cls(resolved)
            if pair is None:
                continue
            facts, cls_facts = pair
            if name in cls_facts.methods or name in cls_facts.properties:
                return f"{facts.module}.{cls_facts.name}.{name}"
            queue.extend(cls_facts.bases)
        return None

    def attr_type(self, dotted_cls: str, attr: str) -> str | None:
        """The constructor class assigned to ``self.<attr>`` on a class or
        its bases (``self.recovery = RecoveryCoordinator(self)``)."""
        seen: set[str] = set()
        queue = [dotted_cls]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            resolved = self.resolve_symbol(current)
            if resolved is None:
                continue
            pair = self.cls(resolved)
            if pair is None:
                continue
            _facts, cls_facts = pair
            for name, ctor in cls_facts.attr_types:
                if name == attr:
                    return self.resolve_symbol(ctor)
            queue.extend(cls_facts.bases)
        return None

    def layer_of_function(self, dotted: str) -> str | None:
        pair = self.function(dotted)
        return pair[0].layer if pair is not None else None

    def message_classes(self) -> dict[str, tuple[FileFacts, ClassFacts]]:
        """Every indexed message dataclass, keyed by dotted name."""
        out: dict[str, tuple[FileFacts, ClassFacts]] = {}
        for module in sorted(self.modules):
            facts = self.modules[module]
            for name in sorted(facts.classes):
                cls_facts = facts.classes[name]
                if cls_facts.is_message:
                    out[f"{module}.{name}"] = (facts, cls_facts)
        return out
