"""Whole-program analysis layer: facts, index, call graph, project rules.

Importing this package registers the project rules (DET101, MSG101,
MSG102, PROTO101) into :data:`~repro.lint.graph.base.PROJECT_RULE_REGISTRY`,
mirroring how :mod:`repro.lint.rules` registers the per-file rules.
"""

from repro.lint.graph import msgflow, taint  # noqa: F401  (rule registration)
from repro.lint.graph.base import (
    PROJECT_RULE_REGISTRY,
    ProjectContext,
    ProjectRule,
    all_project_rules,
    register_project,
)
from repro.lint.graph.callgraph import CallGraph
from repro.lint.graph.facts import FACTS_VERSION, FileFacts, extract_facts, module_of
from repro.lint.graph.index import IndexCache, ProjectIndex
from repro.lint.graph.msgflow import message_flow, render_dot

__all__ = [
    "PROJECT_RULE_REGISTRY",
    "ProjectContext",
    "ProjectRule",
    "all_project_rules",
    "register_project",
    "CallGraph",
    "FACTS_VERSION",
    "FileFacts",
    "extract_facts",
    "module_of",
    "IndexCache",
    "ProjectIndex",
    "message_flow",
    "render_dot",
]
