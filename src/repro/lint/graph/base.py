"""Project-rule base class and registry.

Project rules are the whole-program counterpart of the per-file
:class:`~repro.lint.rules.base.Rule`: they run once per scan, over a
:class:`ProjectContext` bundling the fact index and the call graph, and
yield findings that may carry a **witness path** — the call chain that
makes an interprocedural claim checkable by a human reading the report.

Registration mirrors the per-file registry so ``--select`` and
``--list-rules`` treat both kinds uniformly.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.lint.findings import Finding, Severity
from repro.lint.graph.callgraph import CallGraph
from repro.lint.graph.index import ProjectIndex

PROJECT_RULE_REGISTRY: dict[str, type["ProjectRule"]] = {}


@dataclass(slots=True)
class ProjectContext:
    """Everything a project rule sees: linked facts plus the call graph."""

    index: ProjectIndex
    graph: CallGraph


class ProjectRule:
    """One whole-program rule: a stable id, a severity, a project check."""

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""
    rationale: str = ""

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        path: str,
        line: int,
        message: str,
        witness: tuple[str, ...] = (),
        col: int = 1,
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=path,
            line=line,
            col=col,
            message=message,
            witness=witness,
        )


def register_project(cls: type[ProjectRule]) -> type[ProjectRule]:
    if not cls.rule_id:
        raise ValueError(f"project rule {cls.__name__} has no rule_id")
    if cls.rule_id in PROJECT_RULE_REGISTRY:
        raise ValueError(f"duplicate project rule id {cls.rule_id}")
    PROJECT_RULE_REGISTRY[cls.rule_id] = cls
    return cls


def all_project_rules() -> list[ProjectRule]:
    """Fresh instances of every registered project rule, sorted by id."""
    return [PROJECT_RULE_REGISTRY[rule_id]() for rule_id in sorted(PROJECT_RULE_REGISTRY)]
