"""DET101 — interprocedural nondeterminism taint.

DET001 (per-file) flags a *direct* ambient clock/RNG/env call inside a
deterministic layer. This rule closes the laundering gap: a helper chain
``replica.py -> util.helper -> time.time()`` leaves every det-layer file
syntactically clean while the replica still diverges across hosts.

Algorithm — backward reachability over the call graph:

1. **Sources** are functions with a direct ambient call (the
   ``FunctionFacts.ambient`` sites: ``time.*``, ``random.*``,
   ``os.urandom``, ``uuid``, env reads).
2. **Taint** is the backward closure of the sources over the reverse
   edges: any function that can reach a source is tainted.
3. **Frontier reporting**: a det-layer function is flagged only at the
   call edge where taint *enters* from outside the deterministic layers —
   a tainted callee that itself lives in a det layer is that callee's own
   finding (DET001 if direct, DET101 at its own frontier), so each
   laundering chain produces exactly one finding, at the boundary.

Every finding carries a BFS-shortest witness path from the flagged
function down to the ambient call, rendered hop by hop with file:line.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.lint.context import DETERMINISTIC_LAYERS
from repro.lint.findings import Finding, Severity
from repro.lint.graph.base import ProjectContext, ProjectRule, register_project


def compute_taint(project: ProjectContext) -> tuple[set[str], dict[str, tuple[str, int]]]:
    """(tainted nodes, direct-source node -> first ambient (target, line))."""
    graph = project.graph
    sources: dict[str, tuple[str, int]] = {}
    for module in sorted(project.index.modules):
        facts = project.index.modules[module]
        for qualname in sorted(facts.functions):
            fn = facts.functions[qualname]
            if fn.ambient:
                sources[f"{module}.{qualname}"] = min(
                    fn.ambient, key=lambda site: (site[1], site[0])
                )
    tainted: set[str] = set()
    queue = sorted(sources)
    while queue:
        node = queue.pop(0)
        if node in tainted:
            continue
        tainted.add(node)
        for caller in graph.callers(node):
            if caller not in tainted:
                queue.append(caller)
    return tainted, sources


@register_project
class InterproceduralTaint(ProjectRule):
    rule_id = "DET101"
    severity = Severity.ERROR
    summary = "deterministic-layer function reaches an ambient clock/RNG/env call through a helper chain"
    rationale = (
        "Replica divergence does not require a direct time.time() call — "
        "nondeterminism laundered through any helper chain breaks the "
        "identical-execution assumption the paper's replication protocol "
        "rests on (§3.3); taint must be tracked interprocedurally."
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        index = project.index
        graph = project.graph
        tainted, sources = compute_taint(project)
        goal_set = set(sources)
        for module in sorted(index.modules):
            facts = index.modules[module]
            if facts.layer not in DETERMINISTIC_LAYERS:
                continue
            for qualname in sorted(facts.functions):
                fn = facts.functions[qualname]
                if fn.ambient:
                    continue  # direct call: DET001's jurisdiction
                node = f"{module}.{qualname}"
                for callee, line in graph.callees(node):
                    if callee not in tainted:
                        continue
                    callee_layer = index.layer_of_function(callee)
                    if callee_layer in DETERMINISTIC_LAYERS:
                        continue  # the callee gets its own finding
                    witness = self._witness(project, node, callee, goal_set, sources)
                    ambient_target = witness[-1].split(" ")[0] if witness else callee
                    yield self.finding(
                        path=facts.rel,
                        line=line,
                        message=(
                            f"{qualname} reaches nondeterministic "
                            f"{ambient_target}() via {callee} "
                            f"({len(witness) - 1} hop(s)); deterministic layers "
                            "must take time/randomness from the simulation kernel"
                        ),
                        witness=witness,
                    )
                    break  # one finding per function: the first frontier edge

    def _witness(
        self,
        project: ProjectContext,
        start: str,
        first_callee: str,
        goals: set[str],
        sources: dict[str, tuple[str, int]],
    ) -> tuple[str, ...]:
        """Witness path start -> ... -> source -> ambient call, rendered."""
        graph = project.graph
        path = graph.shortest_path(first_callee, goals)
        if path is None:
            return (start, first_callee)
        # Prefix the frontier function itself: its call line into the callee.
        entry_line = 0
        for callee, line in graph.callees(start):
            if callee == first_callee:
                entry_line = line
                break
        rendered = list(graph.render_path([(start, entry_line), *path]))
        source_node = path[-1][0]
        target, line = sources[source_node]
        pair = project.index.function(source_node)
        rel = pair[0].rel if pair is not None else "?"
        rendered.append(f"{target} ({rel}:{line})")
        return tuple(rendered)
