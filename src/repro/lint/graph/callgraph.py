"""Module-qualified call graph over the project index.

Nodes are dotted function names (``repro.core.replica.Replica.choose``);
edges carry the call-site line so witness paths point at real source
locations. Resolution is deliberately conservative — an edge exists only
when the callee can be named with confidence:

* plain names, through the file's import table and module-level defs;
* ``self.method()`` / ``cls.method()``, through the enclosing class and
  its resolved base-class chain (so ``Replica.send`` finds
  ``sim.process.Process.send``);
* ``self.attr.method()``, through the ``self.attr = Ctor(...)`` wiring
  recorded in the class facts (``self.recovery.on_promise`` resolves to
  ``RecoveryCoordinator.on_promise``);
* ``local.method()``, through simple local constructor assignments;
* constructor calls, edged to the class's ``__init__`` when it has one.

Unresolvable calls are dropped, never guessed — the analysis
under-approximates reachability, which for lint rules means missed
findings, not false ones. Iteration and adjacency are sorted, so every
traversal (and therefore every witness path) is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.graph.facts import FileFacts, FunctionFacts
from repro.lint.graph.index import ProjectIndex

#: Resolved-name suffixes that are never project functions; skipping them
#: early keeps the edge list small.
_BUILTIN_ROOTS = frozenset(
    {"isinstance", "len", "sorted", "tuple", "list", "dict", "set", "max",
     "min", "range", "enumerate", "zip", "print", "super", "getattr",
     "setattr", "hasattr", "frozenset", "str", "int", "float", "bool",
     "repr", "iter", "next", "sum", "any", "all", "map", "filter"}
)


@dataclass(slots=True)
class CallGraph:
    """Forward and reverse adjacency with call-site lines."""

    index: ProjectIndex
    #: caller -> sorted tuple of (callee, line)
    edges: dict[str, tuple[tuple[str, int], ...]] = field(default_factory=dict)
    #: callee -> sorted tuple of callers
    redges: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @classmethod
    def build(cls, index: ProjectIndex) -> "CallGraph":
        graph = cls(index=index)
        forward: dict[str, dict[tuple[str, int], None]] = {}
        reverse: dict[str, dict[str, None]] = {}
        for module in sorted(index.modules):
            facts = index.modules[module]
            for qualname in sorted(facts.functions):
                fn = facts.functions[qualname]
                caller = f"{module}.{qualname}"
                out = forward.setdefault(caller, {})
                for callee, line in _resolve_calls(index, facts, fn):
                    out[(callee, line)] = None
                    reverse.setdefault(callee, {})[caller] = None
        graph.edges = {
            caller: tuple(sorted(targets)) for caller, targets in forward.items()
        }
        graph.redges = {
            callee: tuple(sorted(callers)) for callee, callers in reverse.items()
        }
        return graph

    # ------------------------------------------------------------ traversal
    def callees(self, node: str) -> tuple[tuple[str, int], ...]:
        return self.edges.get(node, ())

    def callers(self, node: str) -> tuple[str, ...]:
        return self.redges.get(node, ())

    def nodes(self) -> list[str]:
        return sorted(self.edges)

    def reachable_from(
        self, roots: list[str], blocked: frozenset[str] = frozenset()
    ) -> set[str]:
        """Forward closure of ``roots`` (roots included), never entering
        ``blocked`` nodes."""
        seen: set[str] = set()
        queue = sorted(r for r in roots if r not in blocked)
        while queue:
            node = queue.pop(0)
            if node in seen:
                continue
            seen.add(node)
            for callee, _line in self.callees(node):
                if callee not in seen and callee not in blocked:
                    queue.append(callee)
        return seen

    def shortest_path(
        self,
        start: str,
        goals: set[str],
        blocked: frozenset[str] = frozenset(),
    ) -> list[tuple[str, int]] | None:
        """BFS witness ``[(node, line-of-call-into-next), ..., (goal, 0)]``.

        Deterministic: neighbors expand in sorted order, so ties always
        break the same way regardless of hash seed.
        """
        if start in blocked:
            return None
        if start in goals:
            return [(start, 0)]
        parents: dict[str, tuple[str, int]] = {}
        seen = {start}
        queue = [start]
        while queue:
            node = queue.pop(0)
            for callee, line in self.callees(node):
                if callee in seen or callee in blocked:
                    continue
                seen.add(callee)
                parents[callee] = (node, line)
                if callee in goals:
                    return self._unwind(start, callee, parents)
                queue.append(callee)
        return None

    def _unwind(
        self, start: str, goal: str, parents: dict[str, tuple[str, int]]
    ) -> list[tuple[str, int]]:
        path: list[tuple[str, int]] = [(goal, 0)]
        node = goal
        while node != start:
            node, line = parents[node]
            path.append((node, line))
        path.reverse()
        return path

    def render_path(self, path: list[tuple[str, int]]) -> tuple[str, ...]:
        """Human-readable witness: ``name (file:line-of-the-call)`` hops."""
        rendered: list[str] = []
        for i, (node, _line) in enumerate(path):
            pair = self.index.function(node)
            if pair is None:
                rendered.append(node)
                continue
            facts, fn = pair
            # Each hop points at the line where it calls the *next* hop;
            # the final hop points at its own definition.
            line = path[i][1] if i < len(path) - 1 else fn.line
            rendered.append(f"{node} ({facts.rel}:{line})")
        return tuple(rendered)


def _resolve_calls(
    index: ProjectIndex, facts: FileFacts, fn: FunctionFacts
) -> list[tuple[str, int]]:
    """Resolved (callee, line) pairs for one function's call sites."""
    out: list[tuple[str, int]] = []
    local_types = dict(fn.local_types)
    own_class = f"{facts.module}.{fn.cls}" if fn.cls else None
    for call in fn.calls:
        chain = call.chain
        if not chain or chain[0] in _BUILTIN_ROOTS:
            continue
        callee: str | None = None
        if chain[0] in ("self", "cls") and own_class is not None:
            if len(chain) == 2:
                callee = index.find_method(own_class, chain[1])
            elif len(chain) == 3:
                attr_cls = index.attr_type(own_class, chain[1])
                if attr_cls is not None:
                    callee = index.find_method(attr_cls, chain[2])
        elif len(chain) == 2 and chain[0] in local_types:
            local_cls = index.resolve_symbol(local_types[chain[0]])
            if local_cls is not None:
                callee = index.find_method(local_cls, chain[1])
        if callee is None and call.target is not None:
            resolved = index.resolve_symbol(call.target)
            if resolved is not None:
                if index.function(resolved) is not None:
                    callee = resolved
                else:
                    pair = index.cls(resolved)
                    if pair is not None:
                        # Constructor: edge into __init__ when defined.
                        ctor = index.find_method(resolved, "__init__")
                        callee = ctor
        if callee is not None:
            out.append((callee, call.line))
    return out
