"""Lint reporters: human text and byte-deterministic JSON.

The JSON reporter is itself held to the linter's own DET004/DET003
standard: sorted findings, sorted keys, no clocks, no absolute paths —
two runs over the same tree are byte-identical under any PYTHONHASHSEED.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult

_REPORT_VERSION = 2


def render_text(result: LintResult) -> str:
    """Human-readable report: one line per finding (whole-program findings
    followed by their indented witness path) plus a summary."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(finding.render())
        lines.extend(finding.render_witness())
    lines.append(
        f"{len(result.findings)} finding(s) "
        f"({result.errors} error(s), {result.warnings} warning(s)) "
        f"in {result.files} file(s); "
        f"{result.suppressed} suppressed, {result.baselined} baselined"
    )
    return "\n".join(lines) + "\n"


def render_json(result: LintResult) -> str:
    """Machine-readable report; deterministic byte-for-byte."""
    document = {
        "version": _REPORT_VERSION,
        "tool": "repro-lint",
        "findings": [finding.as_dict() for finding in result.findings],
        "summary": {
            "files": result.files,
            "findings": len(result.findings),
            "errors": result.errors,
            "warnings": result.warnings,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
        },
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"


def render_rules(rules: list) -> str:
    """The ``--list-rules`` catalogue: id, severity, summary, rationale."""
    blocks = []
    for rule in rules:
        blocks.append(
            f"{rule.rule_id} [{rule.severity}] {rule.summary}\n"
            f"    {rule.rationale}"
        )
    return "\n".join(blocks) + "\n"
