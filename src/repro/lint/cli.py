"""The ``repro lint`` subcommand.

Exit codes follow the usual linter convention: 0 clean, 1 findings,
2 usage or I/O errors — CI gates on the exit status, tooling parses the
``--format json`` report.
"""

from __future__ import annotations

import argparse
import sys

from repro.lint.baseline import Baseline
from repro.lint.engine import LintEngine
from repro.lint.report import render_json, render_rules, render_text
from repro.lint.rules import all_rules


def add_lint_parser(sub: argparse._SubParsersAction) -> None:
    lint = sub.add_parser(
        "lint",
        help="AST-based determinism & protocol-invariant checks",
        description=(
            "Statically enforce the repo's determinism house rules: "
            "injected RNGs/clocks, frozen messages, sorted JSON, "
            "transport-free core. See docs/static-analysis.md."
        ),
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is byte-deterministic)",
    )
    lint.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--baseline", metavar="FILE",
        help="tolerate findings recorded in this baseline file",
    )
    lint.add_argument(
        "--write-baseline", metavar="FILE",
        help="record current findings as the new baseline and exit 0",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def lint_command(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(render_rules(all_rules()), end="")
        return 0

    baseline = None
    if args.baseline and not args.write_baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"repro lint: error: {exc}", file=sys.stderr)
            return 2

    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]

    try:
        engine = LintEngine(baseline=baseline, select=select)
    except ValueError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2

    try:
        result = engine.check_paths(args.paths)
    except (OSError, FileNotFoundError) as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        path = Baseline.from_fingerprints(result.fingerprints).write(
            args.write_baseline
        )
        print(f"baseline: {path} ({len(result.findings)} finding(s) recorded)")
        return 0

    if args.format == "json":
        print(render_json(result), end="")
    else:
        print(render_text(result), end="")
    return 0 if result.ok else 1
