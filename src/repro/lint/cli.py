"""The ``repro lint`` subcommand.

Exit codes follow the usual linter convention: 0 clean, 1 findings,
2 usage or I/O errors — CI gates on the exit status, tooling parses the
``--format json`` report.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.lint.baseline import Baseline
from repro.lint.engine import LintEngine
from repro.lint.graph import all_project_rules, message_flow, render_dot
from repro.lint.report import render_json, render_rules, render_text
from repro.lint.rules import all_rules


def add_lint_parser(sub: argparse._SubParsersAction) -> None:
    lint = sub.add_parser(
        "lint",
        help="AST-based determinism & protocol-invariant checks",
        description=(
            "Statically enforce the repo's determinism house rules: "
            "injected RNGs/clocks, frozen messages, sorted JSON, "
            "transport-free core. See docs/static-analysis.md."
        ),
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is byte-deterministic)",
    )
    lint.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--baseline", metavar="FILE",
        help="tolerate findings recorded in this baseline file",
    )
    lint.add_argument(
        "--write-baseline", metavar="FILE",
        help="record current findings as the new baseline and exit 0",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.add_argument(
        "--graph", choices=("dot", "json"), metavar="FMT",
        help="export the message-flow graph (dot|json) instead of a report",
    )
    lint.add_argument(
        "--cache", metavar="FILE",
        help="on-disk facts cache for the whole-program pass, keyed by "
        "file content hash (stats go to stderr; reports are unaffected)",
    )


def lint_command(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(render_rules(all_rules() + all_project_rules()), end="")
        return 0

    baseline = None
    if args.baseline and not args.write_baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"repro lint: error: {exc}", file=sys.stderr)
            return 2

    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]

    try:
        engine = LintEngine(baseline=baseline, select=select)
    except ValueError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2

    try:
        result = engine.check_paths(args.paths, cache_path=args.cache)
    except (OSError, FileNotFoundError) as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2

    if args.cache:
        # Stats go to stderr so cached and cold reports stay byte-identical.
        print(
            f"repro lint: cache: reindexed {len(result.reindexed)}/"
            f"{result.files} file(s)"
            + (
                f" ({', '.join(result.reindexed)})"
                if 0 < len(result.reindexed) <= 5
                else ""
            ),
            file=sys.stderr,
        )

    if args.graph:
        project = engine.project
        if project is None:
            print("repro lint: error: --graph needs at least one parsed file",
                  file=sys.stderr)
            return 2
        flow = message_flow(project)
        if args.graph == "dot":
            print(render_dot(flow), end="")
        else:
            print(json.dumps(flow, sort_keys=True, separators=(",", ":")))
        return 0 if result.ok else 1

    if args.write_baseline:
        path = Baseline.from_fingerprints(result.fingerprints).write(
            args.write_baseline
        )
        print(f"baseline: {path} ({len(result.findings)} finding(s) recorded)")
        return 0

    if args.format == "json":
        print(render_json(result), end="")
    else:
        print(render_text(result), end="")
    return 0 if result.ok else 1
