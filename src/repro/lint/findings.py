"""Finding and severity types shared by the engine, rules and reporters."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How a finding affects the exit status.

    Both levels are reported and both fail the run (the linter's job is to
    keep the tree clean, not to accumulate warnings); the distinction
    exists so reporters and baselines can tell hard invariant violations
    from hygiene issues.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is posix-style and relative to the scan root so reports are
    byte-identical across machines and working directories.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def fingerprint(finding: Finding, line_text: str) -> str:
    """Baseline identity of a finding: rule + file + normalized source line.

    Line *numbers* are deliberately excluded so unrelated edits above a
    baselined finding do not invalidate the baseline; duplicate
    fingerprints are counted, not collapsed (see :mod:`repro.lint.baseline`).
    """
    return f"{finding.rule}::{finding.path}::{line_text.strip()}"
