"""Finding and severity types shared by the engine, rules and reporters."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How a finding affects the exit status.

    Both levels are reported and both fail the run (the linter's job is to
    keep the tree clean, not to accumulate warnings); the distinction
    exists so reporters and baselines can tell hard invariant violations
    from hygiene issues.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is posix-style and relative to the scan root so reports are
    byte-identical across machines and working directories. Whole-program
    findings additionally carry a ``witness`` — the rendered call chain
    (``name (file:line)`` hops) that substantiates an interprocedural
    claim; per-file findings leave it empty.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    witness: tuple[str, ...] = ()

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"

    def render_witness(self) -> list[str]:
        """Indented witness-path lines for the text reporter."""
        lines: list[str] = []
        for i, hop in enumerate(self.witness):
            marker = "   witness:" if i == 0 else "        ->"
            lines.append(f"{marker} {hop}")
        return lines

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "witness": list(self.witness),
        }


def fingerprint(finding: Finding, line_text: str, symbol: str) -> str:
    """Baseline identity of a finding: rule + enclosing symbol + source line.

    ``symbol`` is the innermost enclosing def/class qualname (or
    ``<module>``), so fingerprints survive file moves and renames as long
    as the symbol keeps its name. Line *numbers* and *paths* are
    deliberately excluded; duplicate fingerprints are counted, not
    collapsed (see :mod:`repro.lint.baseline`).
    """
    return f"{finding.rule}::{symbol}::{line_text.strip()}"


def legacy_fingerprint(finding: Finding, line_text: str) -> str:
    """The v1 (path-based) fingerprint, kept so existing v1 baselines keep
    matching until rewritten with ``--write-baseline``."""
    return f"{finding.rule}::{finding.path}::{line_text.strip()}"
