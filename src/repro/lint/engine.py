"""The lint engine: file discovery, rule execution, suppressions, baseline.

The engine is deliberately boring and deterministic: files are visited in
sorted order, findings are sorted by location, and nothing reads clocks —
so two runs over the same tree produce byte-identical reports regardless
of PYTHONHASHSEED (the same property the rules themselves enforce).

Tree scans run in **two phases**. Phase one parses every file once and
runs the per-file rules. Phase two distills the retained contexts into a
:class:`~repro.lint.graph.index.ProjectIndex` (consulting the on-disk
content-hash cache when one is configured), links the call graph, and
runs the whole-program rules (DET101, MSG101, MSG102, PROTO101) over it.
Suppression accounting (LINT001/LINT002) is deferred until after phase
two so a ``# lint: ignore[DET101]`` on a project-rule finding counts as
used; the baseline is applied last, over both phases' findings at once,
with one global budget.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity, fingerprint, legacy_fingerprint
from repro.lint.graph.base import ProjectContext
from repro.lint.graph.callgraph import CallGraph
from repro.lint.graph.index import IndexCache, ProjectIndex
from repro.lint.rules import all_rules

#: Meta-rule ids emitted by the engine itself (not by plugins).
PARSE_ERROR = "LINT000"
BAD_SUPPRESSION = "LINT001"
UNUSED_SUPPRESSION = "LINT002"

META_RULES = {
    PARSE_ERROR: "file does not parse (reported, never crashes the run)",
    BAD_SUPPRESSION: "malformed suppression: missing reason or unknown rule id",
    UNUSED_SUPPRESSION: "suppression comment that suppresses nothing",
}


@dataclass(slots=True)
class LintResult:
    """Everything one engine run produced."""

    findings: list[Finding] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    baselined: int = 0
    #: Fingerprint of every kept finding, for --write-baseline.
    fingerprints: list[str] = field(default_factory=list)
    #: Files whose facts were re-extracted (index-cache misses); equals
    #: every scanned file on a cold run or when no cache is configured.
    reindexed: tuple[str, ...] = ()

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        return not self.findings


class LintEngine:
    """Runs the registered rules over source trees or raw source strings."""

    def __init__(
        self,
        rules: Sequence | None = None,
        baseline: Baseline | None = None,
        select: Iterable[str] | None = None,
        project_rules: Sequence | None = None,
    ) -> None:
        from repro.lint.graph import all_project_rules

        self.rules = list(rules) if rules is not None else all_rules()
        self.project_rules = (
            list(project_rules) if project_rules is not None else all_project_rules()
        )
        if select is not None:
            wanted = set(select)
            known = (
                {rule.rule_id for rule in self.rules}
                | {rule.rule_id for rule in self.project_rules}
                | set(META_RULES)
            )
            unknown = wanted - known
            if unknown:
                raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
            self.rules = [rule for rule in self.rules if rule.rule_id in wanted]
            self.project_rules = [
                rule for rule in self.project_rules if rule.rule_id in wanted
            ]
        self.baseline = baseline
        #: The last tree scan's linked view, for ``--graph`` exports.
        self.project: ProjectContext | None = None

    def known_rule_ids(self) -> set[str]:
        return (
            {rule.rule_id for rule in self.rules}
            | {rule.rule_id for rule in self.project_rules}
            | set(META_RULES)
        )

    # ----------------------------------------------------------- execution
    def check_source(
        self, source: str, rel: str, result: LintResult | None = None
    ) -> list[Finding]:
        """Lint one in-memory source file with the **per-file** rules only
        (whole-program rules need a whole program — see :meth:`check_paths`);
        returns its (sorted) findings.

        ``result``, when given, accrues the suppressed/baselined counters.
        """
        counters = result if result is not None else LintResult()
        ctx = self._parse(source, rel)
        if isinstance(ctx, Finding):
            return [ctx]
        kept = self._file_findings(ctx, counters)
        kept.extend(self._suppression_findings(ctx))
        kept = self._finish(kept, {rel: ctx}, counters)
        return kept

    def _parse(self, source: str, rel: str) -> FileContext | Finding:
        try:
            return FileContext.parse(source, rel)
        except SyntaxError as exc:
            return Finding(
                rule=PARSE_ERROR,
                severity=Severity.ERROR,
                path=rel,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                message=f"syntax error: {exc.msg}",
            )

    def _file_findings(self, ctx: FileContext, counters: LintResult) -> list[Finding]:
        """Per-file rule findings with suppressions applied (phase one)."""
        raw: list[Finding] = []
        for rule in self.rules:
            raw.extend(rule.check(ctx))
        kept: list[Finding] = []
        for finding in raw:
            if ctx.suppressed(finding.rule, finding.line):
                counters.suppressed += 1
            else:
                kept.append(finding)
        return kept

    def _finish(
        self,
        findings: list[Finding],
        contexts: dict[str, FileContext],
        counters: LintResult,
    ) -> list[Finding]:
        """Sort, apply the baseline globally, and collect fingerprints."""
        findings.sort(key=lambda f: f.sort_key)
        kept: list[Finding] = []
        budget = dict(self.baseline.fingerprints) if self.baseline is not None else {}
        for finding in findings:
            ctx = contexts.get(finding.path)
            line_text = ctx.line_text(finding.line) if ctx is not None else ""
            symbol = ctx.symbol_at(finding.line) if ctx is not None else "<module>"
            key = fingerprint(finding, line_text, symbol)
            legacy = legacy_fingerprint(finding, line_text)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                counters.baselined += 1
            elif budget.get(legacy, 0) > 0:
                budget[legacy] -= 1
                counters.baselined += 1
            else:
                kept.append(finding)
                counters.fingerprints.append(key)
        return kept

    def _suppression_findings(self, ctx: FileContext) -> list[Finding]:
        known = self.known_rule_ids()
        findings: list[Finding] = []
        for suppression in ctx.suppressions.values():
            if not suppression.rules:
                findings.append(
                    Finding(
                        rule=BAD_SUPPRESSION,
                        severity=Severity.ERROR,
                        path=ctx.rel,
                        line=suppression.line,
                        col=1,
                        message="suppression names no rules: use "
                        "# lint: ignore[RULE] -- reason",
                    )
                )
                continue
            unknown = [
                rule
                for rule in suppression.rules
                if rule != "*" and rule not in known
            ]
            if unknown:
                findings.append(
                    Finding(
                        rule=BAD_SUPPRESSION,
                        severity=Severity.ERROR,
                        path=ctx.rel,
                        line=suppression.line,
                        col=1,
                        message=f"suppression names unknown rule(s) "
                        f"{', '.join(unknown)}",
                    )
                )
            if not suppression.reason:
                findings.append(
                    Finding(
                        rule=BAD_SUPPRESSION,
                        severity=Severity.ERROR,
                        path=ctx.rel,
                        line=suppression.line,
                        col=1,
                        message="suppression requires a reason: "
                        "# lint: ignore[RULE] -- why this is safe",
                    )
                )
            elif not suppression.used and not unknown:
                findings.append(
                    Finding(
                        rule=UNUSED_SUPPRESSION,
                        severity=Severity.WARNING,
                        path=ctx.rel,
                        line=suppression.line,
                        col=1,
                        message=f"suppression for "
                        f"{', '.join(suppression.rules)} matches no finding "
                        "on this line; delete it",
                    )
                )
        return findings

    # ----------------------------------------------------------- discovery
    def check_paths(
        self, paths: Sequence[str | Path], cache_path: str | Path | None = None
    ) -> LintResult:
        """Lint files and directory trees; paths are reported relative to
        the scanned root that contained them.

        Runs both phases: per-file rules while parsing, then the
        whole-program rules over the linked project index (consulting the
        facts cache at ``cache_path``, if given).
        """
        result = LintResult()
        contexts: dict[str, FileContext] = {}
        pending: list[Finding] = []
        for root, file in self._discover(paths):
            # Directory scans report paths relative to the scanned root;
            # explicit files keep the path as given (so layer classification
            # still sees the package directories above the file).
            rel = file.relative_to(root).as_posix() if root != file else file.as_posix()
            source = file.read_text(encoding="utf-8")
            result.files += 1
            ctx = self._parse(source, rel)
            if isinstance(ctx, Finding):
                pending.append(ctx)
                continue
            contexts[rel] = ctx
            pending.extend(self._file_findings(ctx, result))

        pending.extend(self._project_findings(contexts, result, cache_path))

        # Suppression accounting runs only now, after both phases have had
        # the chance to mark their suppressions used.
        for rel in sorted(contexts):
            pending.extend(self._suppression_findings(contexts[rel]))

        result.findings = self._finish(pending, contexts, result)
        return result

    def _project_findings(
        self,
        contexts: dict[str, FileContext],
        result: LintResult,
        cache_path: str | Path | None,
    ) -> list[Finding]:
        """Phase two: index, link, and run the whole-program rules."""
        if not contexts:
            return []
        cache = IndexCache.load(cache_path) if cache_path is not None else None
        index = ProjectIndex.build(contexts, cache)
        result.reindexed = index.reindexed
        graph = CallGraph.build(index)
        self.project = ProjectContext(index=index, graph=graph)
        kept: list[Finding] = []
        for rule in self.project_rules:
            for finding in rule.check(self.project):
                ctx = contexts.get(finding.path)
                if ctx is not None and ctx.suppressed(finding.rule, finding.line):
                    result.suppressed += 1
                else:
                    kept.append(finding)
        return kept

    @staticmethod
    def _discover(paths: Sequence[str | Path]) -> list[tuple[Path, Path]]:
        pairs: list[tuple[Path, Path]] = []
        for raw in paths:
            path = Path(raw)
            if not path.exists():
                raise FileNotFoundError(f"no such file or directory: {path}")
            if path.is_dir():
                pairs.extend(
                    (path, file)
                    for file in sorted(path.rglob("*.py"))
                    if "__pycache__" not in file.parts
                    and not any(part.endswith(".egg-info") for part in file.parts)
                )
            else:
                pairs.append((path, path))
        return pairs
