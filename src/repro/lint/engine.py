"""The lint engine: file discovery, rule execution, suppressions, baseline.

The engine is deliberately boring and deterministic: files are visited in
sorted order, findings are sorted by location, and nothing reads clocks —
so two runs over the same tree produce byte-identical reports regardless
of PYTHONHASHSEED (the same property the rules themselves enforce).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity, fingerprint
from repro.lint.rules import all_rules

#: Meta-rule ids emitted by the engine itself (not by plugins).
PARSE_ERROR = "LINT000"
BAD_SUPPRESSION = "LINT001"
UNUSED_SUPPRESSION = "LINT002"

META_RULES = {
    PARSE_ERROR: "file does not parse (reported, never crashes the run)",
    BAD_SUPPRESSION: "malformed suppression: missing reason or unknown rule id",
    UNUSED_SUPPRESSION: "suppression comment that suppresses nothing",
}


@dataclass(slots=True)
class LintResult:
    """Everything one engine run produced."""

    findings: list[Finding] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    baselined: int = 0
    #: Fingerprint of every kept finding, for --write-baseline.
    fingerprints: list[str] = field(default_factory=list)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        return not self.findings


class LintEngine:
    """Runs the registered rules over source trees or raw source strings."""

    def __init__(
        self,
        rules: Sequence | None = None,
        baseline: Baseline | None = None,
        select: Iterable[str] | None = None,
    ) -> None:
        self.rules = list(rules) if rules is not None else all_rules()
        if select is not None:
            wanted = set(select)
            unknown = wanted - {rule.rule_id for rule in self.rules} - set(META_RULES)
            if unknown:
                raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
            self.rules = [rule for rule in self.rules if rule.rule_id in wanted]
        self.baseline = baseline

    def known_rule_ids(self) -> set[str]:
        return {rule.rule_id for rule in self.rules} | set(META_RULES)

    # ----------------------------------------------------------- execution
    def check_source(
        self, source: str, rel: str, result: LintResult | None = None
    ) -> list[Finding]:
        """Lint one in-memory source file; returns its (sorted) findings.

        ``result``, when given, accrues the suppressed/baselined counters.
        """
        counters = result if result is not None else LintResult()
        try:
            ctx = FileContext.parse(source, rel)
        except SyntaxError as exc:
            return [
                Finding(
                    rule=PARSE_ERROR,
                    severity=Severity.ERROR,
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) or 1,
                    message=f"syntax error: {exc.msg}",
                )
            ]

        raw: list[Finding] = []
        for rule in self.rules:
            raw.extend(rule.check(ctx))

        kept: list[Finding] = []
        for finding in raw:
            if ctx.suppressed(finding.rule, finding.line):
                counters.suppressed += 1
            else:
                kept.append(finding)
        kept.extend(self._suppression_findings(ctx))

        if self.baseline is not None:
            kept = self._apply_baseline(ctx, kept, counters)
        kept.sort(key=lambda f: f.sort_key)
        counters.fingerprints.extend(
            fingerprint(f, ctx.line_text(f.line)) for f in kept
        )
        return kept

    def _suppression_findings(self, ctx: FileContext) -> list[Finding]:
        known = self.known_rule_ids()
        findings: list[Finding] = []
        for suppression in ctx.suppressions.values():
            if not suppression.rules:
                findings.append(
                    Finding(
                        rule=BAD_SUPPRESSION,
                        severity=Severity.ERROR,
                        path=ctx.rel,
                        line=suppression.line,
                        col=1,
                        message="suppression names no rules: use "
                        "# lint: ignore[RULE] -- reason",
                    )
                )
                continue
            unknown = [
                rule
                for rule in suppression.rules
                if rule != "*" and rule not in known
            ]
            if unknown:
                findings.append(
                    Finding(
                        rule=BAD_SUPPRESSION,
                        severity=Severity.ERROR,
                        path=ctx.rel,
                        line=suppression.line,
                        col=1,
                        message=f"suppression names unknown rule(s) "
                        f"{', '.join(unknown)}",
                    )
                )
            if not suppression.reason:
                findings.append(
                    Finding(
                        rule=BAD_SUPPRESSION,
                        severity=Severity.ERROR,
                        path=ctx.rel,
                        line=suppression.line,
                        col=1,
                        message="suppression requires a reason: "
                        "# lint: ignore[RULE] -- why this is safe",
                    )
                )
            elif not suppression.used and not unknown:
                findings.append(
                    Finding(
                        rule=UNUSED_SUPPRESSION,
                        severity=Severity.WARNING,
                        path=ctx.rel,
                        line=suppression.line,
                        col=1,
                        message=f"suppression for "
                        f"{', '.join(suppression.rules)} matches no finding "
                        "on this line; delete it",
                    )
                )
        return findings

    def _apply_baseline(
        self, ctx: FileContext, findings: list[Finding], counters: LintResult
    ) -> list[Finding]:
        assert self.baseline is not None
        budget = dict(self.baseline.fingerprints)
        kept: list[Finding] = []
        for finding in findings:
            key = fingerprint(finding, ctx.line_text(finding.line))
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                counters.baselined += 1
            else:
                kept.append(finding)
        return kept

    # ----------------------------------------------------------- discovery
    def check_paths(self, paths: Sequence[str | Path]) -> LintResult:
        """Lint files and directory trees; paths are reported relative to
        the scanned root that contained them."""
        result = LintResult()
        for root, file in self._discover(paths):
            # Directory scans report paths relative to the scanned root;
            # explicit files keep the path as given (so layer classification
            # still sees the package directories above the file).
            rel = file.relative_to(root).as_posix() if root != file else file.as_posix()
            source = file.read_text(encoding="utf-8")
            result.findings.extend(self.check_source(source, rel, result))
            result.files += 1
        result.findings.sort(key=lambda f: f.sort_key)
        return result

    @staticmethod
    def _discover(paths: Sequence[str | Path]) -> list[tuple[Path, Path]]:
        pairs: list[tuple[Path, Path]] = []
        for raw in paths:
            path = Path(raw)
            if not path.exists():
                raise FileNotFoundError(f"no such file or directory: {path}")
            if path.is_dir():
                pairs.extend(
                    (path, file)
                    for file in sorted(path.rglob("*.py"))
                    if "__pycache__" not in file.parts
                    and not any(part.endswith(".egg-info") for part in file.parts)
                )
            else:
                pairs.append((path, path))
        return pairs
