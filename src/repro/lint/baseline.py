"""Baseline files: adopt the linter on a tree with pre-existing findings.

A baseline maps finding fingerprints to occurrence counts. Findings
covered by the baseline are reported in the summary but do not fail the
run; anything *new* still does. The shipped tree is clean, so the
checked-in ``lint-baseline.json`` is empty — it exists to pin the CI
invocation and the adoption workflow.

Fingerprint formats (see :mod:`repro.lint.findings`):

* **v2** (current): ``rule::<enclosing symbol>::<stripped line>`` —
  stable under file moves and renames.
* **v1** (legacy): ``rule::<path>::<stripped line>``. v1 baseline files
  still load and still match (the engine tries the v2 key first, then
  the v1 key), so migration is just rerunning ``--write-baseline``,
  which always writes v2.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

_VERSION = 2
_ACCEPTED_VERSIONS = frozenset({1, 2})


@dataclass(slots=True)
class Baseline:
    """Known-and-tolerated findings, keyed by fingerprint."""

    fingerprints: dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        document = json.loads(Path(path).read_text(encoding="utf-8"))
        if (
            not isinstance(document, dict)
            or document.get("version") not in _ACCEPTED_VERSIONS
        ):
            raise ValueError(f"{path}: not a v{_VERSION} lint baseline")
        raw = document.get("fingerprints", {})
        if not isinstance(raw, dict):
            raise ValueError(f"{path}: 'fingerprints' must be an object")
        fingerprints: dict[str, int] = {}
        for key, count in raw.items():
            if not isinstance(count, int) or count < 1:
                raise ValueError(f"{path}: bad count for {key!r}: {count!r}")
            fingerprints[key] = count
        return cls(fingerprints=fingerprints)

    @classmethod
    def from_fingerprints(cls, fingerprints: list[str]) -> "Baseline":
        """Build from the fingerprints a no-baseline engine run collected."""
        return cls(fingerprints=dict(Counter(fingerprints)))

    def dump(self) -> str:
        document = {
            "version": _VERSION,
            "tool": "repro-lint",
            "fingerprints": dict(sorted(self.fingerprints.items())),
        }
        return json.dumps(document, sort_keys=True, indent=2) + "\n"

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.dump(), encoding="utf-8")
        return path
