"""MSG rules: protocol messages must be immutable value objects.

§3.3's contract is that replicas apply exactly the value the leader chose.
A message that can be mutated after construction — or mutated by a
receiving handler — silently forks replica state, which is precisely the
nondeterminism leak Cachin et al. identify as the failure mode of this
protocol family.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.rules import register
from repro.lint.rules.base import Rule, is_const_true, keyword_value

#: Layers whose dataclasses are checked (where messages are defined).
MESSAGE_LAYERS = frozenset({"core", "net"})

#: Handler naming convention: ``on_*`` / ``_on_*`` / ``handle_*``.
_HANDLER_RE = re.compile(r"^_?(on|handle)_")

#: Docstring convention marking a message class outside ``messages.py``:
#: the first line names sender and receiver, e.g. "Replica -> leader: ...".
_DIRECTION_RE = re.compile(r"\S\s*->\s*\S")


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "dataclass":
            return decorator
        if (
            isinstance(decorator, ast.Call)
            and isinstance(decorator.func, ast.Name)
            and decorator.func.id == "dataclass"
        ):
            return decorator
    return None


def _is_message_class(ctx: FileContext, node: ast.ClassDef) -> bool:
    if ctx.rel.endswith("messages.py"):
        return True
    docstring = ast.get_docstring(node)
    if not docstring:
        return False
    return bool(_DIRECTION_RE.search(docstring.splitlines()[0]))


@register
class MutableMessageDataclass(Rule):
    """MSG001: message dataclasses must be ``frozen=True, slots=True``."""

    rule_id = "MSG001"
    summary = "message dataclass not @dataclass(frozen=True, slots=True)"
    rationale = (
        "Messages cross replica boundaries; freezing makes post-send "
        "mutation a TypeError instead of a state divergence, and slots "
        "block typo-attributes from riding along. Applies to every "
        "dataclass in a messages.py module and to any core/net dataclass "
        "whose docstring declares a 'sender -> receiver' direction."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.layer not in MESSAGE_LAYERS:
            return
        for node in ctx.walk():
            if not isinstance(node, ast.ClassDef):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None or not _is_message_class(ctx, node):
                continue
            missing = []
            if not (
                isinstance(decorator, ast.Call)
                and is_const_true(keyword_value(decorator, "frozen"))
            ):
                missing.append("frozen=True")
            if not (
                isinstance(decorator, ast.Call)
                and is_const_true(keyword_value(decorator, "slots"))
            ):
                missing.append("slots=True")
            if missing:
                yield self.finding(
                    ctx,
                    node,
                    f"message dataclass {node.name} must declare "
                    f"{' and '.join(missing)} on @dataclass",
                )


@register
class HandlerMutatesMessage(Rule):
    """MSG002: handlers must not assign attributes on received messages."""

    rule_id = "MSG002"
    summary = "attribute assignment on a handler parameter"
    rationale = (
        "A message object is shared: the in-memory transport delivers the "
        "same instance to every local recipient, and replay relies on "
        "messages staying exactly as sent. Handlers derive new values; "
        "they never write back into their inputs."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _HANDLER_RE.match(node.name):
                continue
            params = {
                arg.arg
                for arg in (
                    *node.args.posonlyargs,
                    *node.args.args,
                    *node.args.kwonlyargs,
                )
                if arg.arg not in {"self", "cls"}
            }
            if not params:
                continue
            yield from self._check_body(ctx, node, params)

    def _check_body(
        self, ctx: FileContext, func: ast.AST, params: set[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                root = target
                while isinstance(root, ast.Attribute):
                    root = root.value
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(root, ast.Name)
                    and root.id in params
                ):
                    yield self.finding(
                        ctx,
                        target,
                        f"handler assigns to attribute of received parameter "
                        f"'{root.id}'; messages are immutable once sent",
                    )
